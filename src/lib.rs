//! Workspace root crate: hosts the repository-level integration tests in
//! `tests/` and the runnable examples in `examples/`. The real library
//! surface lives in the [`hppa_muldiv`] facade crate and its sub-crates.

pub use hppa_muldiv;
