//! Every program the system generates must survive a print → parse round
//! trip, and arbitrary synthesised programs must too (the assembler and
//! disassembler are part of the public surface).

use hppa_muldiv::millicode::{divvar, mulvar};
use hppa_muldiv::{Compiler, Runtime};
use pa_isa::parse::parse_program;
use proptest::prelude::*;

fn assert_roundtrip(p: &pa_isa::Program, what: &str) {
    let text = p.to_string();
    let back = parse_program(&text).unwrap_or_else(|e| panic!("{what}: {e}\n{text}"));
    assert_eq!(&back, p, "{what} listing does not round-trip");
}

#[test]
fn millicode_round_trips() {
    assert_roundtrip(&mulvar::naive().unwrap(), "naive");
    assert_roundtrip(&mulvar::early_exit().unwrap(), "early_exit");
    assert_roundtrip(&mulvar::nibble().unwrap(), "nibble");
    assert_roundtrip(&mulvar::swap().unwrap(), "swap");
    assert_roundtrip(&mulvar::switched(true).unwrap(), "switched signed");
    assert_roundtrip(&mulvar::switched(false).unwrap(), "switched unsigned");
    assert_roundtrip(&divvar::udiv().unwrap(), "udiv");
    assert_roundtrip(&divvar::sdiv().unwrap(), "sdiv");
    assert_roundtrip(&divvar::small_dispatch(20).unwrap(), "small_dispatch");
    assert_roundtrip(&divvar::restoring_udiv().unwrap(), "restoring");
}

#[test]
fn runtime_programs_round_trip() {
    let rt = Runtime::new().unwrap();
    for (name, p) in rt.programs() {
        assert_roundtrip(p, name);
    }
}

#[test]
fn compiled_constants_round_trip() {
    let c = Compiler::new();
    for n in -40i64..=300 {
        assert_roundtrip(c.mul_const(n).unwrap().program(), "mul_const");
    }
    for y in 1u32..=64 {
        assert_roundtrip(c.udiv_const(y).unwrap().program(), "udiv_const");
        assert_roundtrip(c.sdiv_const(y as i32).unwrap().program(), "sdiv_const");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn prop_random_mul_and_div_round_trip(n in any::<i32>(), y in 1u32..1_000_000) {
        let c = Compiler::new();
        assert_roundtrip(c.mul_const(i64::from(n)).unwrap().program(), "mul_const");
        assert_roundtrip(c.udiv_const(y).unwrap().program(), "udiv_const");
    }
}
