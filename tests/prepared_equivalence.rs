//! The tentpole acceptance suite: `execute_prepared` must be bit-identical
//! to the interpreter across the full E0–E14 program set — every millicode
//! routine and every compiled constant operation — on representative and
//! randomized operands. "Bit-identical" means the final machine state and
//! all run counters (cycles, executed, nullified, taken branches) and the
//! termination agree exactly.

use hppa_muldiv::{millicode, Compiler, DISPATCH_LIMIT};
use pa_isa::{Program, Reg};
use pa_sim::{execute_prepared, run_fn, ExecConfig, Machine, PreparedProgram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `p` both ways with `R26 = a`, `R25 = b` and demands exact equality.
fn assert_bit_identical(name: &str, p: &Program, prepared: &PreparedProgram, a: u32, b: u32) {
    let inputs = [(Reg::R26, a), (Reg::R25, b)];
    let (m_interp, r_interp) = run_fn(p, &inputs, &ExecConfig::default());
    let mut m_fast = Machine::with_regs(&inputs);
    let r_fast = execute_prepared(prepared, &mut m_fast);
    assert_eq!(m_interp, m_fast, "{name}({a}, {b}): machine state");
    assert_eq!(r_interp.cycles, r_fast.cycles, "{name}({a}, {b}): cycles");
    assert_eq!(
        r_interp.executed, r_fast.executed,
        "{name}({a}, {b}): executed"
    );
    assert_eq!(
        r_interp.nullified, r_fast.nullified,
        "{name}({a}, {b}): nullified"
    );
    assert_eq!(
        r_interp.taken_branches, r_fast.taken_branches,
        "{name}({a}, {b}): taken branches"
    );
    assert_eq!(
        r_interp.termination, r_fast.termination,
        "{name}({a}, {b}): termination"
    );
}

/// Representative corners plus seeded random operands.
fn operand_pairs(seed: u64, random: usize) -> Vec<(u32, u32)> {
    let mut pairs = vec![
        (0u32, 0u32),
        (0, 60_000),
        (1, 1),
        (1, u32::MAX),
        (15, 60_000),
        (255, 60_000),
        (4095, 60_000),
        (46_340, 46_340),
        (60_000, 5),
        (i32::MAX as u32, 1),
        (i32::MIN as u32, 1),
        (u32::MAX, u32::MAX),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..random {
        pairs.push((rng.gen(), rng.gen()));
    }
    pairs
}

#[test]
fn every_multiply_routine_is_bit_identical() {
    let routines: Vec<(&str, Program)> = vec![
        ("naive", millicode::mulvar::naive().unwrap()),
        ("early_exit", millicode::mulvar::early_exit().unwrap()),
        ("nibble", millicode::mulvar::nibble().unwrap()),
        ("swap", millicode::mulvar::swap().unwrap()),
        (
            "switched_signed",
            millicode::mulvar::switched(true).unwrap(),
        ),
        (
            "switched_unsigned",
            millicode::mulvar::switched(false).unwrap(),
        ),
    ];
    for (name, p) in &routines {
        let prepared = PreparedProgram::new(p, ExecConfig::default());
        for (a, b) in operand_pairs(0xE0, 40) {
            assert_bit_identical(name, p, &prepared, a, b);
        }
    }
}

#[test]
fn every_divide_routine_is_bit_identical() {
    let routines: Vec<(&str, Program)> = vec![
        ("udiv", millicode::divvar::udiv().unwrap()),
        ("sdiv", millicode::divvar::sdiv().unwrap()),
        (
            "small_dispatch",
            millicode::divvar::small_dispatch(DISPATCH_LIMIT).unwrap(),
        ),
        (
            "restoring_udiv",
            millicode::divvar::restoring_udiv().unwrap(),
        ),
    ];
    let mut rng = StdRng::seed_from_u64(0xE13);
    for (name, p) in &routines {
        let prepared = PreparedProgram::new(p, ExecConfig::default());
        for (a, _) in operand_pairs(0xE4, 20) {
            for y in [1u32, 2, 7, 19, 20, 97, 65_537, 0x8000_0000, u32::MAX] {
                assert_bit_identical(name, p, &prepared, a, y);
            }
            let y: u32 = rng.gen_range(1..=u32::MAX);
            assert_bit_identical(name, p, &prepared, a, y);
        }
        // Division by zero BREAKs identically too.
        assert_bit_identical(name, p, &prepared, 1000, 0);
    }
}

#[test]
fn every_compiled_constant_op_is_bit_identical() {
    let c = Compiler::new();
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut xs: Vec<u32> = vec![0, 1, 2, 1000, i32::MAX as u32, i32::MIN as u32, u32::MAX];
    xs.extend((0..20).map(|_| rng.gen::<u32>()));

    let mut ops = Vec::new();
    for n in [0i64, 1, 2, 3, 10, 59, 100, 641, 1979, -7, -100, 46_341] {
        ops.push((format!("mul_const({n})"), c.mul_const(n).unwrap()));
        // Not every chain has a trapping-capable form; cover those that do.
        if let Ok(op) = c.mul_const_checked(n) {
            ops.push((format!("mul_const_checked({n})"), op));
        }
    }
    for y in [1u32, 2, 3, 5, 7, 10, 16, 19, 641, 1_000_000] {
        ops.push((format!("udiv_const({y})"), c.udiv_const(y).unwrap()));
        ops.push((format!("urem_const({y})"), c.urem_const(y).unwrap()));
        ops.push((format!("sdiv_const({y})"), c.sdiv_const(y as i32).unwrap()));
        ops.push((
            format!("sdiv_const(-{y})"),
            c.sdiv_const(-(y as i32)).unwrap(),
        ));
        ops.push((format!("srem_const({y})"), c.srem_const(y as i32).unwrap()));
    }

    for (name, op) in &ops {
        let prepared = op.prepared();
        for &x in &xs {
            assert_bit_identical(name, op.program(), prepared, x, 0);
        }
    }
}
