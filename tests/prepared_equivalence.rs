//! The tentpole acceptance suite: `execute_prepared` must be bit-identical
//! to the interpreter across the full E0–E14 program set — every millicode
//! routine and every compiled constant operation — on representative and
//! randomized operands. "Bit-identical" means the final machine state and
//! all run counters (cycles, executed, nullified, taken branches) and the
//! termination agree exactly.
//!
//! Path equivalence alone would let both paths be identically *wrong*, so
//! each completed run is additionally anchored to `oracle::reference` —
//! the independent bit-serial multiplier and restoring divider.

use hppa_muldiv::{millicode, Compiler, DISPATCH_LIMIT};
use oracle::reference;
use pa_isa::{Program, Reg};
use pa_sim::{execute_prepared, run_fn, ExecConfig, Machine, PreparedProgram, RunResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `p` both ways with `R26 = a`, `R25 = b`, demands exact equality,
/// and hands back the (shared) final state for semantic checks.
fn assert_bit_identical(
    name: &str,
    p: &Program,
    prepared: &PreparedProgram,
    a: u32,
    b: u32,
) -> (Machine, RunResult) {
    let inputs = [(Reg::R26, a), (Reg::R25, b)];
    let (m_interp, r_interp) = run_fn(p, &inputs, &ExecConfig::default());
    let mut m_fast = Machine::with_regs(&inputs);
    let r_fast = execute_prepared(prepared, &mut m_fast);
    assert_eq!(m_interp, m_fast, "{name}({a}, {b}): machine state");
    assert_eq!(r_interp.cycles, r_fast.cycles, "{name}({a}, {b}): cycles");
    assert_eq!(
        r_interp.executed, r_fast.executed,
        "{name}({a}, {b}): executed"
    );
    assert_eq!(
        r_interp.nullified, r_fast.nullified,
        "{name}({a}, {b}): nullified"
    );
    assert_eq!(
        r_interp.taken_branches, r_fast.taken_branches,
        "{name}({a}, {b}): taken branches"
    );
    assert_eq!(
        r_interp.termination, r_fast.termination,
        "{name}({a}, {b}): termination"
    );
    (m_interp, r_interp)
}

/// Representative corners plus seeded random operands.
fn operand_pairs(seed: u64, random: usize) -> Vec<(u32, u32)> {
    let mut pairs = vec![
        (0u32, 0u32),
        (0, 60_000),
        (1, 1),
        (1, u32::MAX),
        (15, 60_000),
        (255, 60_000),
        (4095, 60_000),
        (46_340, 46_340),
        (60_000, 5),
        (i32::MAX as u32, 1),
        (i32::MIN as u32, 1),
        (u32::MAX, u32::MAX),
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..random {
        pairs.push((rng.gen(), rng.gen()));
    }
    pairs
}

#[test]
fn every_multiply_routine_is_bit_identical() {
    let routines: Vec<(&str, Program)> = vec![
        ("naive", millicode::mulvar::naive().unwrap()),
        ("early_exit", millicode::mulvar::early_exit().unwrap()),
        ("nibble", millicode::mulvar::nibble().unwrap()),
        ("swap", millicode::mulvar::swap().unwrap()),
        (
            "switched_signed",
            millicode::mulvar::switched(true).unwrap(),
        ),
        (
            "switched_unsigned",
            millicode::mulvar::switched(false).unwrap(),
        ),
    ];
    for (name, p) in &routines {
        let prepared = PreparedProgram::new(p, ExecConfig::default());
        for (a, b) in operand_pairs(0xE0, 40) {
            let (m, r) = assert_bit_identical(name, p, &prepared, a, b);
            // Signed and unsigned products share their low word, so one
            // oracle model anchors every multiply flavour.
            assert!(r.termination.is_completed(), "{name}({a}, {b})");
            assert_eq!(
                m.reg(Reg::R28),
                reference::mul_wrapping_u32(a, b),
                "{name}({a}, {b}) vs oracle"
            );
        }
    }
}

#[test]
fn every_divide_routine_is_bit_identical() {
    type Oracle = fn(u32, u32) -> (u32, Option<u32>);
    fn unsigned(a: u32, y: u32) -> (u32, Option<u32>) {
        let (q, r) = reference::div_restoring(a, y).unwrap();
        (q, Some(r))
    }
    fn signed(a: u32, y: u32) -> (u32, Option<u32>) {
        let (q, r) = reference::sdiv_trunc(a as i32, y as i32).unwrap();
        (q as u32, Some(r as u32))
    }
    fn dispatch(a: u32, y: u32) -> (u32, Option<u32>) {
        // The dispatch table returns only the quotient register.
        (reference::udiv(a, y).unwrap(), None)
    }
    let routines: Vec<(&str, Program, Oracle)> = vec![
        ("udiv", millicode::divvar::udiv().unwrap(), unsigned),
        ("sdiv", millicode::divvar::sdiv().unwrap(), signed),
        (
            "small_dispatch",
            millicode::divvar::small_dispatch(DISPATCH_LIMIT).unwrap(),
            dispatch,
        ),
        (
            "restoring_udiv",
            millicode::divvar::restoring_udiv().unwrap(),
            unsigned,
        ),
    ];
    let mut rng = StdRng::seed_from_u64(0xE13);
    for (name, p, oracle) in &routines {
        let prepared = PreparedProgram::new(p, ExecConfig::default());
        let check = |a: u32, y: u32| {
            let (m, r) = assert_bit_identical(name, p, &prepared, a, y);
            assert!(r.termination.is_completed(), "{name}({a}, {y})");
            let (q, rem) = oracle(a, y);
            assert_eq!(m.reg(Reg::R28), q, "{name}({a}, {y}) quotient vs oracle");
            if let Some(rem) = rem {
                assert_eq!(m.reg(Reg::R29), rem, "{name}({a}, {y}) remainder vs oracle");
            }
        };
        for (a, _) in operand_pairs(0xE4, 20) {
            for y in [1u32, 2, 7, 19, 20, 97, 65_537, 0x8000_0000, u32::MAX] {
                check(a, y);
            }
            let y: u32 = rng.gen_range(1..=u32::MAX);
            check(a, y);
        }
        // Division by zero BREAKs identically too (no quotient to check —
        // the oracle returns None for a zero divisor).
        let (_, r) = assert_bit_identical(name, p, &prepared, 1000, 0);
        assert!(!r.termination.is_completed(), "{name}(1000, 0) must BREAK");
    }
}

#[test]
fn every_compiled_constant_op_is_bit_identical() {
    // Expected value per operand, `None` meaning "must trap".
    type Expect = Box<dyn Fn(u32) -> Option<u32>>;
    let c = Compiler::new();
    let mut rng = StdRng::seed_from_u64(0xE14);
    let mut xs: Vec<u32> = vec![0, 1, 2, 1000, i32::MAX as u32, i32::MIN as u32, u32::MAX];
    xs.extend((0..20).map(|_| rng.gen::<u32>()));

    let mut ops: Vec<(String, _, Expect)> = Vec::new();
    for n in [0i64, 1, 2, 3, 10, 59, 100, 641, 1979, -7, -100, 46_341] {
        ops.push((
            format!("mul_const({n})"),
            c.mul_const(n).unwrap(),
            Box::new(move |x| Some(reference::mul_wrapping_i32(x as i32, n as i32) as u32)),
        ));
        // Not every chain has a trapping-capable form; cover those that do.
        if let Ok(op) = c.mul_const_checked(n) {
            ops.push((
                format!("mul_const_checked({n})"),
                op,
                Box::new(move |x| {
                    reference::mul_checked_chain(x as i32, n as i32).map(|v| v as u32)
                }),
            ));
        }
    }
    for y in [1u32, 2, 3, 5, 7, 10, 16, 19, 641, 1_000_000] {
        ops.push((
            format!("udiv_const({y})"),
            c.udiv_const(y).unwrap(),
            Box::new(move |x| reference::udiv(x, y)),
        ));
        ops.push((
            format!("urem_const({y})"),
            c.urem_const(y).unwrap(),
            Box::new(move |x| reference::urem(x, y)),
        ));
        ops.push((
            format!("sdiv_const({y})"),
            c.sdiv_const(y as i32).unwrap(),
            Box::new(move |x| reference::sdiv_trunc(x as i32, y as i32).map(|(q, _)| q as u32)),
        ));
        ops.push((
            format!("sdiv_const(-{y})"),
            c.sdiv_const(-(y as i32)).unwrap(),
            Box::new(move |x| reference::sdiv_trunc(x as i32, -(y as i32)).map(|(q, _)| q as u32)),
        ));
        ops.push((
            format!("srem_const({y})"),
            c.srem_const(y as i32).unwrap(),
            Box::new(move |x| reference::sdiv_trunc(x as i32, y as i32).map(|(_, r)| r as u32)),
        ));
    }

    for (name, op, expect) in &ops {
        let prepared = op.prepared();
        for &x in &xs {
            let (m, r) = assert_bit_identical(name, op.program(), prepared, x, 0);
            match expect(x) {
                Some(v) => {
                    assert!(r.termination.is_completed(), "{name}({x})");
                    assert_eq!(m.reg(Reg::R28), v, "{name}({x}) vs oracle");
                }
                None => assert!(
                    !r.termination.is_completed(),
                    "{name}({x}) must trap per the oracle"
                ),
            }
        }
    }
}
