//! Cross-crate integration: the compiler and runtime facades against the
//! independent reference oracle, including property-based sweeps.
//!
//! Expected values come from `oracle::reference` — the bit-serial
//! schoolbook multiplier and restoring divider that share no code with
//! the implementation crates — so these tests cross-check two
//! independently derived computations rather than trusting the host's
//! `*`/`/` to stand in for the paper's semantics.

use std::sync::OnceLock;

use hppa_muldiv::{Compiler, Error, Runtime};
use oracle::reference;
use proptest::prelude::*;

/// The millicode routines are immutable once built; share one instance
/// across all property cases (building the dispatch table compiles ~20
/// divide bodies).
fn runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new().unwrap())
}

#[test]
fn compiler_and_runtime_agree_with_the_oracle() {
    let c = Compiler::new();
    let rt = Runtime::new().unwrap();
    for n in [0i64, 1, 2, 3, 10, 59, 100, 641, -7, -100] {
        let op = c.mul_const(n).unwrap();
        for x in [0i32, 1, -1, 12345, -99999, i32::MAX, i32::MIN] {
            let expect = reference::mul_wrapping_i32(x, n as i32);
            assert_eq!(op.run_i32(x).unwrap(), expect, "compile {x}*{n}");
            assert_eq!(
                rt.mul(x, n as i32).unwrap().value,
                expect,
                "millicode {x}*{n}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn prop_mul_const_matches_oracle_wrapping_mul(n in -100_000i64..100_000, x in any::<i32>()) {
        let c = Compiler::new();
        let op = c.mul_const(n).unwrap();
        prop_assert_eq!(op.run_i32(x).unwrap(), reference::mul_wrapping_i32(x, n as i32));
    }

    #[test]
    fn prop_checked_mul_traps_iff_oracle_chain_overflows(
        n in -5_000i64..5_000,
        x in any::<i32>(),
    ) {
        let c = Compiler::new();
        let op = c.mul_const_checked(n).unwrap();
        // `mul_checked_chain` models the generated chain exactly: for a
        // negative constant the |n| product is negated with SUBO, so a
        // product of exactly i32::MIN traps despite being representable.
        match reference::mul_checked_chain(x, n as i32) {
            Some(exact) => prop_assert_eq!(op.run_i32(x).unwrap(), exact),
            None => prop_assert!(matches!(
                op.run_i32(x),
                Err(Error::Trapped(_))
            )),
        }
    }

    #[test]
    fn prop_udiv_const_matches_oracle(y in 1u32.., x in any::<u32>()) {
        let c = Compiler::new();
        let op = c.udiv_const(y).unwrap();
        prop_assert_eq!(op.run_u32(x).unwrap(), reference::udiv(x, y).unwrap());
    }

    #[test]
    fn prop_sdiv_const_matches_oracle(y in any::<i32>(), x in any::<i32>()) {
        prop_assume!(y != 0);
        let c = Compiler::new();
        let op = c.sdiv_const(y).unwrap();
        let (expect, _) = reference::sdiv_trunc(x, y).unwrap(); // wraps for MIN/-1
        prop_assert_eq!(op.run_i32(x).unwrap(), expect);
    }

    #[test]
    fn prop_urem_const_matches_oracle(y in 1u32.., x in any::<u32>()) {
        let c = Compiler::new();
        let op = c.urem_const(y).unwrap();
        prop_assert_eq!(op.run_u32(x).unwrap(), reference::urem(x, y).unwrap());
    }

    #[test]
    fn prop_runtime_mul_matches_oracle(x in any::<i32>(), y in any::<i32>()) {
        let rt = runtime();
        let out = rt.mul(x, y).unwrap();
        prop_assert_eq!(out.value, reference::mul_wrapping_i32(x, y));
        prop_assert!(out.cycles <= 130, "switched multiply took {} cycles", out.cycles);
    }

    #[test]
    fn prop_runtime_udiv_matches_oracle(x in any::<u32>(), y in 1u32..) {
        let rt = runtime();
        let out = rt.div_unsigned(x, y).unwrap();
        let (q, r) = reference::div_restoring(x, y).unwrap();
        prop_assert_eq!((out.value, out.rem), (q, Some(r)));
        prop_assert!(out.cycles <= 90);
    }

    #[test]
    fn prop_runtime_sdiv_matches_oracle(x in any::<i32>(), y in any::<i32>()) {
        prop_assume!(y != 0);
        let rt = runtime();
        let out = rt.div(x, y).unwrap();
        let (q, r) = reference::sdiv_trunc(x, y).unwrap();
        prop_assert_eq!(out.value, q);
        prop_assert_eq!(out.rem, Some(r));
    }

    #[test]
    fn prop_dispatch_matches_oracle_udiv(x in any::<u32>(), y in 1u32..64) {
        let rt = runtime();
        let out = rt.div_dispatch(x, y).unwrap();
        prop_assert_eq!(out.value, reference::udiv(x, y).unwrap());
    }

    #[test]
    fn prop_session_batches_match_singular_calls(
        pairs in proptest::collection::vec((any::<i32>(), any::<i32>()), 16),
    ) {
        let rt = runtime();
        let mut session = rt.session();
        let batch = session.mul_batch(&pairs).unwrap();
        prop_assert_eq!(batch.ops(), pairs.len());
        let mut cycles = 0u64;
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let out = rt.mul(x, y).unwrap();
            prop_assert_eq!(batch.values[i], out.value);
            prop_assert_eq!(batch.values[i], reference::mul_wrapping_i32(x, y));
            cycles += out.cycles;
        }
        prop_assert_eq!(batch.cycles, cycles);
    }
}

#[test]
fn division_by_zero_is_reported_everywhere() {
    let c = Compiler::new();
    assert_eq!(c.udiv_const(0).unwrap_err(), Error::DivideByZero);
    assert_eq!(c.sdiv_const(0).unwrap_err(), Error::DivideByZero);
    let rt = Runtime::new().unwrap();
    assert_eq!(rt.div_unsigned(1, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div(1, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div_dispatch(1, 0).unwrap_err(), Error::DivideByZero);
    // The oracle agrees: a zero divisor has no quotient to disagree about.
    assert_eq!(reference::div_restoring(1, 0), None);
    assert_eq!(reference::sdiv_trunc(1, 0), None);
}

#[test]
fn unified_error_implements_std_error() {
    let e: Box<dyn std::error::Error> = Box::new(Error::DivideByZero);
    assert_eq!(e.to_string(), "division by zero");
}
