//! Cross-crate integration: the compiler and runtime facades against native
//! Rust integer semantics, including property-based sweeps.

use std::sync::OnceLock;

use hppa_muldiv::{Compiler, Error, Runtime};
use proptest::prelude::*;

/// The millicode routines are immutable once built; share one instance
/// across all property cases (building the dispatch table compiles ~20
/// divide bodies).
fn runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new().unwrap())
}

#[test]
fn compiler_and_runtime_agree_with_native_ops() {
    let c = Compiler::new();
    let rt = Runtime::new().unwrap();
    for n in [0i64, 1, 2, 3, 10, 59, 100, 641, -7, -100] {
        let op = c.mul_const(n).unwrap();
        for x in [0i32, 1, -1, 12345, -99999, i32::MAX, i32::MIN] {
            let expect = x.wrapping_mul(n as i32);
            assert_eq!(op.run_i32(x).unwrap(), expect, "compile {x}*{n}");
            assert_eq!(
                rt.mul(x, n as i32).unwrap().value,
                expect,
                "millicode {x}*{n}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn prop_mul_const_matches_wrapping_mul(n in -100_000i64..100_000, x in any::<i32>()) {
        let c = Compiler::new();
        let op = c.mul_const(n).unwrap();
        prop_assert_eq!(op.run_i32(x).unwrap(), x.wrapping_mul(n as i32));
    }

    #[test]
    fn prop_checked_mul_traps_iff_rust_overflows(
        n in -5_000i64..5_000,
        x in any::<i32>(),
    ) {
        let c = Compiler::new();
        let op = c.mul_const_checked(n).unwrap();
        match x.checked_mul(n as i32) {
            Some(exact) => prop_assert_eq!(op.run_i32(x).unwrap(), exact),
            None => prop_assert!(matches!(
                op.run_i32(x),
                Err(Error::Trapped(_))
            )),
        }
    }

    #[test]
    fn prop_udiv_const_matches(y in 1u32.., x in any::<u32>()) {
        let c = Compiler::new();
        let op = c.udiv_const(y).unwrap();
        prop_assert_eq!(op.run_u32(x).unwrap(), x / y);
    }

    #[test]
    fn prop_sdiv_const_matches(y in any::<i32>(), x in any::<i32>()) {
        prop_assume!(y != 0);
        let c = Compiler::new();
        let op = c.sdiv_const(y).unwrap();
        let expect = (i64::from(x) / i64::from(y)) as i32; // wrapping for MIN/-1
        prop_assert_eq!(op.run_i32(x).unwrap(), expect);
    }

    #[test]
    fn prop_urem_const_matches(y in 1u32.., x in any::<u32>()) {
        let c = Compiler::new();
        let op = c.urem_const(y).unwrap();
        prop_assert_eq!(op.run_u32(x).unwrap(), x % y);
    }

    #[test]
    fn prop_runtime_mul_matches(x in any::<i32>(), y in any::<i32>()) {
        let rt = runtime();
        let out = rt.mul(x, y).unwrap();
        prop_assert_eq!(out.value, x.wrapping_mul(y));
        prop_assert!(out.cycles <= 130, "switched multiply took {} cycles", out.cycles);
    }

    #[test]
    fn prop_runtime_udiv_matches(x in any::<u32>(), y in 1u32..) {
        let rt = runtime();
        let out = rt.div_unsigned(x, y).unwrap();
        prop_assert_eq!((out.value, out.rem), (x / y, Some(x % y)));
        prop_assert!(out.cycles <= 90);
    }

    #[test]
    fn prop_runtime_sdiv_matches(x in any::<i32>(), y in any::<i32>()) {
        prop_assume!(y != 0);
        let rt = runtime();
        let out = rt.div(x, y).unwrap();
        prop_assert_eq!(i64::from(out.value), i64::from(x) / i64::from(y));
        prop_assert_eq!(i64::from(out.rem.unwrap()), i64::from(x) % i64::from(y));
    }

    #[test]
    fn prop_dispatch_matches_udiv(x in any::<u32>(), y in 1u32..64) {
        let rt = runtime();
        let out = rt.div_dispatch(x, y).unwrap();
        prop_assert_eq!(out.value, x / y);
    }

    #[test]
    fn prop_session_batches_match_singular_calls(
        pairs in proptest::collection::vec((any::<i32>(), any::<i32>()), 16),
    ) {
        let rt = runtime();
        let mut session = rt.session();
        let batch = session.mul_batch(&pairs).unwrap();
        prop_assert_eq!(batch.ops(), pairs.len());
        let mut cycles = 0u64;
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let out = rt.mul(x, y).unwrap();
            prop_assert_eq!(batch.values[i], out.value);
            cycles += out.cycles;
        }
        prop_assert_eq!(batch.cycles, cycles);
    }
}

#[test]
fn division_by_zero_is_reported_everywhere() {
    let c = Compiler::new();
    assert_eq!(c.udiv_const(0).unwrap_err(), Error::DivideByZero);
    assert_eq!(c.sdiv_const(0).unwrap_err(), Error::DivideByZero);
    let rt = Runtime::new().unwrap();
    assert_eq!(rt.div_unsigned(1, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div(1, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div_dispatch(1, 0).unwrap_err(), Error::DivideByZero);
}

#[test]
fn unified_error_implements_std_error() {
    let e: Box<dyn std::error::Error> = Box::new(Error::DivideByZero);
    assert_eq!(e.to_string(), "division by zero");
}
