//! Heavy boundary sweeps for the derived-method division — the places magic
//! numbers break when the `(K+1)y ≥ 2^32` condition is miscomputed are
//! always right next to multiples of the divisor and at the top of the
//! dividend range.

use hppa_muldiv::{Compiler, Signedness};

fn boundary_dividends(y: u64) -> Vec<u32> {
    let mut xs = vec![0u32, 1, 2, y as u32 / 2, u32::MAX, u32::MAX - 1];
    for k in [1u64, 2, 3, 7, 1 << 8, 1 << 16, u64::from(u32::MAX) / y] {
        let base = k * y;
        for d in -2i64..=2 {
            if let Ok(x) = u32::try_from(base as i64 + d) {
                xs.push(x);
            }
        }
    }
    xs
}

#[test]
fn unsigned_boundaries_every_divisor_to_384() {
    let c = Compiler::new();
    for y in 1..=384u32 {
        let op = c.udiv_const(y).unwrap();
        for x in boundary_dividends(u64::from(y)) {
            assert_eq!(op.run_u32(x).unwrap(), x / y, "{x} / {y}");
        }
    }
}

#[test]
fn unsigned_boundaries_scattered_large_divisors() {
    let c = Compiler::new();
    // Divisors chosen to stress every strategy: large odd primes, odd
    // composites with repeating-pattern multipliers, even splits, powers of
    // two, and near-2^31/2^32 extremes.
    let ys = [
        513u32,
        641,
        999,
        1000,
        1023,
        1024,
        1025,
        4097,
        65535,
        65536,
        65537,
        1_000_003,
        16_777_213,
        (1 << 30) - 1,
        (1 << 30) + 1,
        0x7FFF_FFFF,
        0x8000_0000,
        0x8000_0001,
        u32::MAX - 2,
        u32::MAX,
    ];
    for y in ys {
        let op = c.udiv_const(y).unwrap();
        for x in boundary_dividends(u64::from(y)) {
            assert_eq!(op.run_u32(x).unwrap(), x / y, "{x} / {y}");
        }
    }
}

#[test]
fn signed_boundaries_every_divisor_to_128() {
    let c = Compiler::new();
    for y in 1..=128i32 {
        let op = c.sdiv_const(y).unwrap();
        let ymag = i64::from(y);
        let mut xs: Vec<i64> = vec![0, 1, -1, i64::from(i32::MAX), i64::from(i32::MIN)];
        for k in [1i64, 2, 100, i64::from(i32::MAX) / ymag] {
            for d in -2..=2 {
                xs.push(k * ymag + d);
                xs.push(-(k * ymag) + d);
            }
        }
        for x in xs {
            let Ok(x) = i32::try_from(x) else { continue };
            let expect = (i64::from(x) / ymag) as i32;
            assert_eq!(op.run_i32(x).unwrap(), expect, "{x} / {y}");
        }
    }
}

#[test]
fn strategy_consistency_between_plan_and_code() {
    // `plan` must describe what `compile` emits: power-of-two divisors get
    // one instruction, even splits get the shift prefix, magic bodies stay
    // within the documented width.
    let c = Compiler::new();
    for y in 2..=256u32 {
        let strategy = hppa_muldiv::divconst::plan(y, Signedness::Unsigned).unwrap();
        let op = c.udiv_const(y).unwrap();
        match strategy {
            hppa_muldiv::divconst::DivStrategy::PowerOfTwo { .. } => {
                assert_eq!(op.len(), 1, "y = {y}");
            }
            hppa_muldiv::divconst::DivStrategy::EvenSplit { .. } => {
                assert!(op.len() >= 2, "y = {y}");
            }
            hppa_muldiv::divconst::DivStrategy::Magic { .. } => {
                assert!(op.len() >= 4, "y = {y}");
            }
            other => unreachable!("y ≥ 2 never plans {other}"),
        }
    }
}
