//! Heavy boundary sweeps for the derived-method division — the places magic
//! numbers break when the `(K+1)y ≥ 2^32` condition is miscomputed are
//! always right next to multiples of the divisor and at the top of the
//! dividend range — plus the three semantic edges (`i32::MIN / -1`, the
//! divide-by-zero `BREAK`, overflow at the top of the multiply range),
//! each pinned across all three execution paths: one-shot interpreter,
//! pre-decoded prepared program, and batch.

use hppa_muldiv::{millicode, Compiler, Error, Runtime, Signedness};
use millicode::divvar::DIV_ZERO_BREAK;
use oracle::reference;
use pa_isa::Reg;
use pa_sim::{execute_prepared, run_fn, ExecConfig, Machine, Termination, TrapKind};

fn boundary_dividends(y: u64) -> Vec<u32> {
    let mut xs = vec![0u32, 1, 2, y as u32 / 2, u32::MAX, u32::MAX - 1];
    for k in [1u64, 2, 3, 7, 1 << 8, 1 << 16, u64::from(u32::MAX) / y] {
        let base = k * y;
        for d in -2i64..=2 {
            if let Ok(x) = u32::try_from(base as i64 + d) {
                xs.push(x);
            }
        }
    }
    xs
}

#[test]
fn unsigned_boundaries_every_divisor_to_384() {
    let c = Compiler::new();
    for y in 1..=384u32 {
        let op = c.udiv_const(y).unwrap();
        for x in boundary_dividends(u64::from(y)) {
            assert_eq!(op.run_u32(x).unwrap(), x / y, "{x} / {y}");
        }
    }
}

#[test]
fn unsigned_boundaries_scattered_large_divisors() {
    let c = Compiler::new();
    // Divisors chosen to stress every strategy: large odd primes, odd
    // composites with repeating-pattern multipliers, even splits, powers of
    // two, and near-2^31/2^32 extremes.
    let ys = [
        513u32,
        641,
        999,
        1000,
        1023,
        1024,
        1025,
        4097,
        65535,
        65536,
        65537,
        1_000_003,
        16_777_213,
        (1 << 30) - 1,
        (1 << 30) + 1,
        0x7FFF_FFFF,
        0x8000_0000,
        0x8000_0001,
        u32::MAX - 2,
        u32::MAX,
    ];
    for y in ys {
        let op = c.udiv_const(y).unwrap();
        for x in boundary_dividends(u64::from(y)) {
            assert_eq!(op.run_u32(x).unwrap(), x / y, "{x} / {y}");
        }
    }
}

#[test]
fn signed_boundaries_every_divisor_to_128() {
    let c = Compiler::new();
    for y in 1..=128i32 {
        let op = c.sdiv_const(y).unwrap();
        let ymag = i64::from(y);
        let mut xs: Vec<i64> = vec![0, 1, -1, i64::from(i32::MAX), i64::from(i32::MIN)];
        for k in [1i64, 2, 100, i64::from(i32::MAX) / ymag] {
            for d in -2..=2 {
                xs.push(k * ymag + d);
                xs.push(-(k * ymag) + d);
            }
        }
        for x in xs {
            let Ok(x) = i32::try_from(x) else { continue };
            let expect = (i64::from(x) / ymag) as i32;
            assert_eq!(op.run_i32(x).unwrap(), expect, "{x} / {y}");
        }
    }
}

/// `i32::MIN / -1`: the quotient magnitude `2^31` does not fit a signed
/// word, so C (and the Precision) wrap back to `i32::MIN` with remainder
/// zero rather than trapping.
#[test]
fn min_over_minus_one_wraps_on_every_path() {
    assert_eq!(reference::sdiv_trunc(i32::MIN, -1), Some((i32::MIN, 0)));

    // Compiled constant divide, interpreter path.
    let c = Compiler::new();
    let op = c.sdiv_const(-1).unwrap();
    assert_eq!(op.run_i32(i32::MIN).unwrap(), i32::MIN);

    // Prepared fast path, bit-for-bit.
    let mut m = Machine::with_regs(&[(Reg::R26, i32::MIN as u32)]);
    let r = execute_prepared(op.prepared(), &mut m);
    assert!(r.termination.is_completed(), "{:?}", r.termination);
    assert_eq!(m.reg(Reg::R28), i32::MIN as u32);

    // Batched path.
    let batch = op.run_batch_i32(&[i32::MIN, -1, 0, i32::MAX]).unwrap();
    assert_eq!(batch.values, vec![i32::MIN, 1, 0, -i32::MAX]);

    // Millicode general divide through the runtime facade and a session.
    let rt = Runtime::new().unwrap();
    let out = rt.div(i32::MIN, -1).unwrap();
    assert_eq!((out.value, out.rem), (i32::MIN, Some(0)));
    let mut session = rt.session();
    let out = session.div(i32::MIN, -1).unwrap();
    assert_eq!((out.value, out.rem), (i32::MIN, Some(0)));
}

/// A zero divisor raises `BREAK 0x2d` in millicode and surfaces as
/// `Error::DivideByZero` from every facade entry point.
#[test]
fn divide_by_zero_traps_on_every_path() {
    assert_eq!(reference::div_restoring(1000, 0), None);

    // Interpreter on the raw millicode routine: the BREAK is visible in
    // the termination itself.
    let p = millicode::divvar::udiv().unwrap();
    let (_, r) = run_fn(
        &p,
        &[(Reg::R26, 1000), (Reg::R25, 0)],
        &ExecConfig::default(),
    );
    match r.termination {
        Termination::Trapped(t) => assert_eq!(t.kind, TrapKind::Break(DIV_ZERO_BREAK)),
        other => panic!("udiv(1000, 0) terminated {other:?}, expected BREAK"),
    }

    // Compile-time rejection for constant divides.
    let c = Compiler::new();
    assert_eq!(c.udiv_const(0).unwrap_err(), Error::DivideByZero);
    assert_eq!(c.sdiv_const(0).unwrap_err(), Error::DivideByZero);
    assert_eq!(c.urem_const(0).unwrap_err(), Error::DivideByZero);
    assert_eq!(c.srem_const(0).unwrap_err(), Error::DivideByZero);

    // Runtime facade, per-call and batched session paths.
    let rt = Runtime::new().unwrap();
    assert_eq!(rt.div(1000, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div_unsigned(1000, 0).unwrap_err(), Error::DivideByZero);
    assert_eq!(rt.div_dispatch(1000, 0).unwrap_err(), Error::DivideByZero);
    let mut session = rt.session();
    assert_eq!(
        session
            .div_unsigned_batch(&[(7, 7), (1000, 0)])
            .unwrap_err(),
        Error::DivideByZero
    );
    assert_eq!(
        session.div_dispatch_batch(&[(1000, 0)]).unwrap_err(),
        Error::DivideByZero
    );
}

/// The top of the multiply range: `u32::MAX` through a wrapping constant
/// multiply wraps identically everywhere, and the checked (Pascal) form
/// raises an overflow trap on every path.
#[test]
fn umax_multiply_overflow_on_every_path() {
    let x = u32::MAX as i32; // -1: wrapping multiply treats bits, not signs
    let expect = reference::mul_wrapping_i32(x, 3);

    let c = Compiler::new();
    let op = c.mul_const(3).unwrap();
    assert_eq!(op.run_i32(x).unwrap(), expect);
    let mut m = Machine::with_regs(&[(Reg::R26, x as u32)]);
    let r = execute_prepared(op.prepared(), &mut m);
    assert!(r.termination.is_completed());
    assert_eq!(m.reg(Reg::R28), expect as u32);
    assert_eq!(op.run_batch_i32(&[x]).unwrap().values, vec![expect]);

    // The checked form: an operand whose exact product leaves i32.
    let big = i32::MAX / 2; // 3 * (i32::MAX / 2) > i32::MAX
    assert_eq!(reference::mul_checked_chain(big, 3), None);
    let checked = c.mul_const_checked(3).unwrap();
    assert_eq!(
        checked.run_i32(big).unwrap_err(),
        Error::Trapped(TrapKind::Overflow)
    );
    let mut m = Machine::with_regs(&[(Reg::R26, big as u32)]);
    let r = execute_prepared(checked.prepared(), &mut m);
    match r.termination {
        Termination::Trapped(t) => assert_eq!(t.kind, TrapKind::Overflow),
        other => panic!("checked 3*{big} terminated {other:?}, expected overflow"),
    }
    assert_eq!(
        checked.run_batch_i32(&[big]).unwrap_err(),
        Error::Trapped(TrapKind::Overflow)
    );

    // In-range operands still flow through the checked chain untrapped.
    assert_eq!(checked.run_i32(1000).unwrap(), 3000);

    // The millicode switched multiply wraps like the oracle at the top too.
    let rt = Runtime::new().unwrap();
    assert_eq!(rt.mul(x, 3).unwrap().value, expect);
    assert_eq!(
        rt.mul_unsigned(u32::MAX, 3).unwrap().value,
        reference::mul_wrapping_u32(u32::MAX, 3)
    );
}

#[test]
fn strategy_consistency_between_plan_and_code() {
    // `plan` must describe what `compile` emits: power-of-two divisors get
    // one instruction, even splits get the shift prefix, magic bodies stay
    // within the documented width.
    let c = Compiler::new();
    for y in 2..=256u32 {
        let strategy = hppa_muldiv::divconst::plan(y, Signedness::Unsigned).unwrap();
        let op = c.udiv_const(y).unwrap();
        match strategy {
            hppa_muldiv::divconst::DivStrategy::PowerOfTwo { .. } => {
                assert_eq!(op.len(), 1, "y = {y}");
            }
            hppa_muldiv::divconst::DivStrategy::EvenSplit { .. } => {
                assert!(op.len() >= 2, "y = {y}");
            }
            hppa_muldiv::divconst::DivStrategy::Magic { .. } => {
                assert!(op.len() >= 4, "y = {y}");
            }
            other => unreachable!("y ≥ 2 never plans {other}"),
        }
    }
}
