//! Regression pins for the paper's published numbers — the tables and
//! figures as executable assertions (the `bench` crate regenerates them in
//! report form; EXPERIMENTS.md records paper-vs-measured).

use hppa_muldiv::chains::{self, Frontier, FrontierConfig};
use hppa_muldiv::divconst::Magic;
use hppa_muldiv::millicode::mulvar;
use hppa_muldiv::sim::{run_fn, ExecConfig};
use hppa_muldiv::{isa::Reg, Compiler};

/// Figure 1, rows 1–4 (rows 5–6 run in the bench harness: minutes of CPU).
#[test]
fn figure1_rows_1_to_4() {
    let f = Frontier::compute(&FrontierConfig {
        max_len: 4,
        target_max: 600,
        value_cap: 1 << 14,
        max_shift: 14,
        threads: 2,
    });
    assert_eq!(f.row(1), vec![2, 3, 4, 5, 8, 9, 16, 32, 64, 128, 256, 512]);
    assert_eq!(
        &f.row(2)[..12],
        &[6, 7, 10, 11, 12, 13, 15, 17, 18, 19, 20, 21]
    );
    assert_eq!(
        &f.row(3)[..11],
        &[14, 22, 23, 26, 28, 29, 30, 35, 38, 39, 42]
    );
    assert_eq!(&f.row(4)[..9], &[58, 78, 86, 92, 106, 110, 114, 115, 116]);
}

/// Figure 1, row 5's least value (the full row is bench-harness work).
#[test]
fn figure1_row5_least_is_466() {
    let limits = chains::SearchLimits {
        max_len: 5,
        value_cap: 1 << 14,
        max_shift: 14,
        node_budget: 100_000_000,
    };
    assert_eq!(chains::optimal_len(466, &limits), Some(5));
}

/// §5 Register Use: only 59, 87, 94 below 100 need a temporary.
#[test]
fn register_use_exceptions() {
    let tf = chains::temp_free_lengths(100, 1 << 13, 13, 8);
    let limits = chains::SearchLimits {
        max_len: 6,
        value_cap: 1 << 13,
        max_shift: 13,
        node_budget: 50_000_000,
    };
    let need_temp: Vec<u64> = (1..100u64)
        .filter(|&n| tf[n as usize].unwrap() > chains::optimal_len(n, &limits).unwrap())
        .collect();
    assert_eq!(need_temp, vec![59, 87, 94]);
}

/// §5 Overflow: ×15 monotonic in 2 steps; ×31 needs 3.
#[test]
fn overflow_detection_penalty() {
    assert_eq!(chains::monotonic::optimal_len(15, 6), Some(2));
    assert_eq!(chains::monotonic::optimal_len(31, 6), Some(3));
    let c = Compiler::new();
    assert_eq!(c.mul_const(31).unwrap().cycles(), 2);
    assert_eq!(c.mul_const_checked(31).unwrap().cycles(), 3);
}

/// Figure 6, all nine rows, exactly.
#[test]
fn figure6_magic_numbers() {
    let expect: [(u32, u32, u64, u64, u128); 9] = [
        (3, 32, 1, 0x5555_5555, 0x1_0000_0002),
        (5, 32, 1, 0x3333_3333, 0x1_0000_0004),
        (7, 33, 1, 0x4924_9249, 0x2_0000_0006),
        (9, 35, 5, 0xE38E_38E3, 0x1_9999_99A7),
        (11, 36, 9, 0x1_745D_1745, 0x1_C71C_71D6),
        (13, 35, 7, 0x9D8_9D89D, 0x1_2492_4938),
        (15, 32, 1, 0x1111_1111, 0x1_0000_000E),
        (17, 32, 1, 0xF0F_0F0F, 0x1_0000_0010),
        (19, 36, 1, 0xD794_35E5, 0x10_0000_0012),
    ];
    for ((y, s, r, a, reach), m) in expect.into_iter().zip(Magic::figure6()) {
        assert_eq!(m.y(), y);
        assert_eq!(
            (m.s(), m.r(), m.a(), m.reach()),
            (s, r, a, reach),
            "y = {y}"
        );
    }
}

/// Figure 7: the unsigned divide by 3 is exactly 17 instructions; §7's
/// signed version is 17–19 cycles depending on sign.
#[test]
fn figure7_divide_by_three() {
    let c = Compiler::new();
    let udiv3 = c.udiv_const(3).unwrap();
    assert_eq!(udiv3.cycles(), 17);
    let sdiv3 = c.sdiv_const(3).unwrap();
    let pos = sdiv3.cycles_for(100);
    let neg = sdiv3.cycles_for(-100i32 as u32);
    assert!((17..=19).contains(&pos), "positive {pos}");
    assert!((17..=20).contains(&neg), "negative {neg}");
}

/// §6: the Figure 2 algorithm's 167-instruction dynamic path.
#[test]
fn figure2_naive_multiply_path() {
    let p = mulvar::naive().unwrap();
    let (m, stats) = run_fn(
        &p,
        &[(Reg::R26, 123_456), (Reg::R25, 7)],
        &ExecConfig::default(),
    );
    assert_eq!(m.reg(Reg::R28), 123_456 * 7);
    assert!(
        (160..=175).contains(&stats.cycles),
        "measured {} (paper: 167)",
        stats.cycles
    );
}

/// §7 Performance: constant divisors < 20 stay far below the ~80-cycle
/// general routine.
#[test]
fn constant_divisors_below_twenty() {
    let c = Compiler::new();
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for y in 2..20u32 {
        let op = c.udiv_const(y).unwrap();
        let cycles = op.cycles_for(1_000_000_007);
        lo = lo.min(cycles);
        hi = hi.max(cycles);
    }
    assert!(lo <= 4, "fastest constant divisor: {lo} (paper: 1)");
    assert!(hi <= 45, "slowest constant divisor: {hi} (paper: 27)");
}
