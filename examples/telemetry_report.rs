//! Telemetry tour: collect structured events from the codegen pipeline,
//! attribute a millicode run's cycles to its labelled regions, and print
//! the strategy histogram a `BENCH_*.json` report is built from.
//!
//! ```sh
//! cargo run --example telemetry_report
//! ```

use hppa_muldiv::{millicode::mulvar, telemetry, Compiler, Runtime};
use pa_sim::{run_fn, ExecConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Every decision the pipeline makes inside a `collect` scope becomes
    //    a structured event: chain searches from the constant-multiply
    //    compiler, divide plans from the magic-number planner, strategy
    //    tiers (with measured cycles) from the millicode runtime.
    let (result, events) = telemetry::collect(|| {
        let compiler = Compiler::new();
        compiler.mul_const(45)?;
        compiler.udiv_const(7)?;
        let rt = Runtime::new()?;
        rt.mul(-123, 456)?;
        rt.div_unsigned(1_000_000, 7)?;
        rt.div_dispatch(1_000_000, 7)?;
        Ok::<(), Box<dyn std::error::Error>>(())
    });
    result?;

    println!("events ({}):", events.len());
    let mut sink = telemetry::JsonlSink::new(Vec::new());
    sink.write_all(&events)?;
    print!("{}", String::from_utf8(sink.into_inner())?);

    println!("\nstrategy histogram:");
    for (key, count) in telemetry::strategy_histogram(&events) {
        println!("  {key:<24} {count}");
    }

    // 2. The simulator side: run the switched multiply with stats enabled
    //    and see where its cycles go, label by label.
    let p = mulvar::switched(true)?;
    let config = ExecConfig::default().with_stats();
    let (_, run) = run_fn(
        &p,
        &[(pa_isa::Reg::R26, 46340), (pa_isa::Reg::R25, 60_000)],
        &config,
    );
    let stats = run.stats.as_deref().expect("stats enabled");
    println!("\nswitched(46340, 60000): {} cycles", run.cycles);
    println!(
        "{:<20} {:>6} {:>8} {:>9}",
        "region", "cycles", "executed", "nullified"
    );
    for r in &stats.regions {
        println!(
            "{:<20} {:>6} {:>8} {:>9}",
            r.label, r.cycles, r.executed, r.nullified
        );
    }
    println!("\nper-opcode (executed):");
    for (op, n) in stats.per_opcode() {
        println!("  {op:<8} {n}");
    }
    assert_eq!(stats.executed_total() + stats.nullified_total(), run.cycles);
    Ok(())
}
