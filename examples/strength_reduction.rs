//! §2's compiler observation, measured: strength reduction turns the
//! multiply inside a loop into an addition — and as multiply cycles vanish,
//! the divisions the optimiser *cannot* remove eat a growing share of the
//! runtime.
//!
//! ```sh
//! cargo run --release --example strength_reduction
//! ```

use hppa_muldiv::strength::{compare, LoopSpec};
use hppa_muldiv::Compiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== for (i = 0; i < 10; i++) j += i * 15  (the paper's loop) ==");
    let cmp = compare(LoopSpec {
        trips: 10,
        factor: 15,
    })?;
    println!("  {cmp}");
    println!("  saved per trip: {:.1} cycles", cmp.saved_per_trip(10));

    println!();
    println!("== the payoff grows with the chain length of the factor ==");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "factor", "naive", "reduced", "saved/trip"
    );
    for factor in [2i64, 15, 60, 641, 1979, 46341] {
        let cmp = compare(LoopSpec {
            trips: 1000,
            factor,
        })?;
        println!(
            "{:>8} {:>12} {:>12} {:>10.1}",
            factor,
            cmp.naive_cycles,
            cmp.reduced_cycles,
            cmp.saved_per_trip(1000)
        );
    }

    println!();
    println!(
        "== \"the percent of time a program spends doing divisions may actually increase\" =="
    );
    // A loop body with one multiply (reducible) and one divide (not):
    // before: mul(i*15) + div(x/7); after: add + div(x/7).
    let compiler = Compiler::new();
    let div_cycles = compiler.udiv_const(7)?.cycles();
    let mul_cycles = compiler.mul_const(15)?.cycles();
    let before = mul_cycles + 2 + div_cycles; // mul, acc-add + i-increment, div
    let after = 2 + div_cycles;
    println!(
        "  before optimisation: divide is {div_cycles}/{before} = {:.0}% of the body",
        100.0 * div_cycles as f64 / before as f64
    );
    println!(
        "  after optimisation:  divide is {div_cycles}/{after} = {:.0}% of the body",
        100.0 * div_cycles as f64 / after as f64
    );
    Ok(())
}
