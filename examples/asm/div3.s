; Figure 7: r28 = r26 / 3 (unsigned), 17 cycles
    addi 1,r26,r17
    addc r0,r0,r16
    shd r16,r17,30,r1
    sh2add r17,r17,r17
    addc r1,r16,r16
    shd r16,r17,28,r18
    shl r17,4,r19
    add r19,r17,r17
    addc r18,r16,r16
    shd r16,r17,24,r18
    shl r17,8,r19
    add r19,r17,r17
    addc r18,r16,r16
    shd r16,r17,16,r18
    shl r17,16,r19
    add r19,r17,r29
    addc r18,r16,r28