; r28 = 10 * r26 — the paper's §5 example chain
    sh2add r26,r26,r28
    add r28,r28,r28
