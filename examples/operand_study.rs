//! Recreate the paper's operand-frequency analysis over a synthetic trace
//! and recompute the §8 summary averages from it — the study that justified
//! removing the Multiply Step hardware.
//!
//! ```sh
//! cargo run --release --example operand_study
//! ```

use hppa_muldiv::analysis;
use hppa_muldiv::baselines::booth;
use hppa_muldiv::operand_dist::{Figure5Mix, TraceSummary, FIGURE5_CLASSES, FIGURE5_WEIGHTS};

fn main() {
    let mix = Figure5Mix::new();
    let pairs = mix.pairs(2024, 100_000);
    let summary = TraceSummary::of(&pairs);

    println!(
        "== operand classes over {} sampled multiplies ==",
        summary.total
    );
    println!(
        "{:<14} {:>10} {:>10}",
        "min(|x|,|y|)", "measured", "Figure 5"
    );
    for (i, &(lo, hi)) in FIGURE5_CLASSES.iter().enumerate() {
        println!(
            "{:<14} {:>9.1}% {:>9}%",
            format!("{lo}-{hi}"),
            summary.class_percent(i),
            FIGURE5_WEIGHTS[i]
        );
    }
    println!(
        "both operands positive: {:.1}% (paper: ~90%)",
        summary.positive_percent()
    );

    println!();
    println!("== §8 summary, re-measured on the simulator ==");
    let mul = analysis::multiply_summary(2024, 3_000);
    let div = analysis::divide_summary(2024, 3_000);
    println!(
        "multiply: avg {:.1} cycles (constants {:.1}, variables {:.1}) — paper: ≈6",
        mul.average, mul.constant_average, mul.variable_average
    );
    println!(
        "divide:   avg {:.1} cycles (constants {:.1}, variables {:.1}) — paper: ≈40",
        div.average, div.constant_average, div.variable_average
    );

    println!();
    println!("== what the removed hardware would have cost ==");
    let booth_cycles = booth::cost().total();
    println!(
        "Booth multiply-step machine: {booth_cycles} cycles every time; \
         the software multiply averages {:.1} — \"meets or exceeds other \
         methods but with significantly less cost\"",
        mul.average
    );
}
