//! The paper's §2 motivation, compiled: array subscripts are hidden
//! multiplications, pointer differences are hidden divisions.
//!
//! ```c
//! a = structureA[x][y].b;                 // x*y*sizeof(structureA)
//! diff = &structureB[x] - &structureB[y]; // (…) / sizeof(structureB)
//! ```
//!
//! This example plays the compiler: for a batch of realistic struct sizes it
//! emits the §5 multiply chains and the §7 derived-method divisions, and
//! compares their cycle costs against calling the general millicode.
//!
//! ```sh
//! cargo run --example array_indexing
//! ```

use hppa_muldiv::{Compiler, Runtime};

/// Field layouts a C programmer would actually write.
const STRUCT_SIZES: [(u32, &str); 10] = [
    (4, "struct { int a; }"),
    (8, "struct { int a, b; }"),
    (12, "struct { int a, b, c; }"),
    (16, "struct { double a, b; }"),
    (20, "struct { int v[5]; }"),
    (24, "struct { double a; int v[4]; }"),
    (36, "struct { int m[3][3]; }"),
    (40, "struct { double a[5]; }"),
    (56, "struct dirent-ish"),
    (88, "struct stat-ish"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::new();
    let rt = Runtime::new()?;

    println!("== subscript scaling: x * sizeof(S) ==");
    println!("{:<6} {:>8} {:>10}   layout", "size", "cycles", "millicode");
    for (size, layout) in STRUCT_SIZES {
        let op = compiler.mul_const(i64::from(size))?;
        // The same product through the general switched multiply:
        let milli = rt.mul(1234, size as i32)?;
        println!(
            "{:<6} {:>8} {:>10}   {}",
            size,
            op.cycles(),
            milli.cycles,
            layout
        );
        assert_eq!(op.run_i32(1234)?, 1234 * size as i32);
    }

    println!();
    println!("== pointer difference: bytes / sizeof(S) ==");
    println!("{:<6} {:>8} {:>10}   layout", "size", "cycles", "millicode");
    for (size, layout) in STRUCT_SIZES {
        let op = compiler.sdiv_const(size as i32)?;
        let bytes = 1234 * size as i32;
        let milli = rt.div(bytes, size as i32)?;
        println!(
            "{:<6} {:>8} {:>10}   {}",
            size,
            op.cycles_for(bytes as u32),
            milli.cycles,
            layout
        );
        assert_eq!(op.run_i32(bytes)?, 1234);
        assert_eq!(op.run_i32(-bytes)?, -1234);
    }

    println!();
    println!("== a two-dimensional subscript, end to end ==");
    // structureA[x][y].b with 13 columns of 24-byte structs:
    // offset = (x*13 + y) * 24 + 8
    let cols = compiler.mul_const(13)?;
    let elem = compiler.mul_const(24)?;
    let (x, y) = (57, 11);
    let row = cols.run_i32(x)?;
    let offset = elem.run_i32(row + y)? + 8;
    let total_cycles = cols.cycles() + elem.cycles();
    assert_eq!(offset, (x * 13 + y) * 24 + 8);
    println!(
        "offset of structureA[{x}][{y}].b = {offset} — {} multiply cycles total \
         (both multiplies compiled to chains)",
        total_cycles
    );
    Ok(())
}
