//! Disassemble every millicode routine and trace the four generations of
//! the multiply algorithm on the same operands — §6 as a guided tour.
//!
//! ```sh
//! cargo run --example millicode_listing            # summary
//! cargo run --example millicode_listing -- --full  # with full listings
//! ```

use hppa_muldiv::isa::Reg;
use hppa_muldiv::millicode::{divvar, mulvar};
use hppa_muldiv::sim::{run_fn, ExecConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");

    let generations = [
        ("naive (Figure 2)", mulvar::naive()?),
        ("early-exit", mulvar::early_exit()?),
        ("nibble (Figure 3)", mulvar::nibble()?),
        ("swap", mulvar::swap()?),
        ("switched (Figure 4)", mulvar::switched(true)?),
    ];

    println!("== §6: the four generations, same multiplication 4711 * 13 ==");
    println!("{:<22} {:>6} {:>8}", "routine", "static", "cycles");
    for (name, program) in &generations {
        let (m, stats) = run_fn(
            program,
            &[(Reg::R26, 4711), (Reg::R25, 13)],
            &ExecConfig::default(),
        );
        assert_eq!(m.reg(Reg::R28), 4711 * 13);
        println!("{:<22} {:>6} {:>8}", name, program.len(), stats.cycles);
    }

    println!();
    println!("== data dependence of the final algorithm ==");
    let switched = mulvar::switched(true)?;
    for (x, y) in [
        (1i32, 99999),
        (9, 99999),
        (300, 99999),
        (3000, 99999),
        (46000, 46000),
    ] {
        let (m, stats) = run_fn(
            &switched,
            &[(Reg::R26, x as u32), (Reg::R25, y as u32)],
            &ExecConfig::default(),
        );
        assert_eq!(m.reg_i32(Reg::R28), x.wrapping_mul(y));
        println!("  {x:>6} * {y:<6} -> {:>3} cycles", stats.cycles);
    }

    println!();
    println!("== division routines ==");
    let divisions = [
        ("udiv (DS/ADDC, §4)", divvar::udiv()?),
        ("sdiv", divvar::sdiv()?),
        ("small_dispatch(20)", divvar::small_dispatch(20)?),
        ("restoring baseline", divvar::restoring_udiv()?),
    ];
    println!("{:<22} {:>6} {:>14}", "routine", "static", "cycles (1e6/7)");
    for (name, program) in &divisions {
        let (m, stats) = run_fn(
            program,
            &[(Reg::R26, 1_000_000), (Reg::R25, 7)],
            &ExecConfig::default(),
        );
        assert_eq!(m.reg(Reg::R28), 1_000_000 / 7);
        println!("{:<22} {:>6} {:>14}", name, program.len(), stats.cycles);
    }

    if full {
        println!();
        println!("== full listings ==");
        for (name, program) in generations.iter().chain(divisions.iter()) {
            println!("---- {name} ----\n{program}");
        }
    } else {
        println!("\n(re-run with --full for complete assembly listings)");
    }
    Ok(())
}
