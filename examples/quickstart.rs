//! Quickstart: compile a constant multiply and divide, inspect the code,
//! run it on the simulated machine, and multiply/divide run-time values
//! through the millicode.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hppa_muldiv::{analysis, Compiler, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::new();

    // §5: multiplication by a constant is an addition chain. The paper's
    // own example: ×10 in two shift-and-adds.
    let times10 = compiler.mul_const(10)?;
    println!(
        "x * 10  ({} cycles):\n{}",
        times10.cycles(),
        times10.program()
    );
    assert_eq!(times10.run_i32(7)?, 70);

    // A larger constant still fits "four or fewer" (§8).
    let times1000 = compiler.mul_const(1000)?;
    println!(
        "x * 1000  ({} cycles):\n{}",
        times1000.cycles(),
        times1000.program()
    );

    // Overflow-checking flavour (Pascal): monotonic chain, trapping adds.
    let checked = compiler.mul_const_checked(31)?;
    println!(
        "x * 31 with overflow traps ({} cycles — one more than unchecked):\n{}",
        checked.cycles(),
        checked.program()
    );
    assert!(checked.run_i32(i32::MAX / 3).is_err(), "overflow must trap");

    // §7: division by a constant is a multiply by the reciprocal — the
    // 17-instruction divide-by-3 of Figure 7.
    let div3 = compiler.udiv_const(3)?;
    println!("x / 3  ({} cycles):\n{}", div3.cycles(), div3.program());
    assert_eq!(div3.run_u32(u32::MAX)?, u32::MAX / 3);

    // Run-time values go through the millicode routines.
    let rt = Runtime::new()?;
    let (product, mul_cycles) = rt.mul_i32(-1234, 5678)?;
    let (quotient, remainder, div_cycles) = rt.udiv(1_000_000, 7)?;
    println!("millicode: -1234 * 5678 = {product}  ({mul_cycles} cycles)");
    println!("millicode: 1000000 / 7 = {quotient} rem {remainder}  ({div_cycles} cycles)");

    // And the paper's famous summary numbers, re-measured:
    let mul = analysis::multiply_summary(42, 500);
    let div = analysis::divide_summary(42, 500);
    println!(
        "average multiply: {:.1} cycles (paper: ≈6); average divide: {:.1} cycles (paper: ≈40)",
        mul.average, div.average
    );
    Ok(())
}
