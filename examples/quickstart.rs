//! Quickstart: compile a constant multiply and divide, inspect the code,
//! run it on the simulated machine, and multiply/divide run-time values
//! through the millicode.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hppa_muldiv::{analysis, Compiler, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiler = Compiler::new();

    // §5: multiplication by a constant is an addition chain. The paper's
    // own example: ×10 in two shift-and-adds.
    let times10 = compiler.mul_const(10)?;
    println!(
        "x * 10  ({} cycles):\n{}",
        times10.cycles(),
        times10.program()
    );
    assert_eq!(times10.run_i32(7)?, 70);

    // Compiling the same constant again is a cache hit — no chain search —
    // and batches replay one reusable machine over the whole operand set.
    let again = compiler.mul_const(10)?;
    let batch = again.run_batch_i32(&[1, 2, 3, 4])?;
    println!(
        "x * 10 over a batch: {:?} ({} simulated cycles for {} ops)",
        batch.values,
        batch.cycles,
        batch.ops()
    );

    // A larger constant still fits "four or fewer" (§8).
    let times1000 = compiler.mul_const(1000)?;
    println!(
        "x * 1000  ({} cycles):\n{}",
        times1000.cycles(),
        times1000.program()
    );

    // Overflow-checking flavour (Pascal): monotonic chain, trapping adds.
    let checked = compiler.mul_const_checked(31)?;
    println!(
        "x * 31 with overflow traps ({} cycles — one more than unchecked):\n{}",
        checked.cycles(),
        checked.program()
    );
    assert!(checked.run_i32(i32::MAX / 3).is_err(), "overflow must trap");

    // §7: division by a constant is a multiply by the reciprocal — the
    // 17-instruction divide-by-3 of Figure 7.
    let div3 = compiler.udiv_const(3)?;
    println!("x / 3  ({} cycles):\n{}", div3.cycles(), div3.program());
    assert_eq!(div3.run_u32(u32::MAX)?, u32::MAX / 3);

    // Run-time values go through the millicode routines.
    let rt = Runtime::new()?;
    let product = rt.mul(-1234, 5678)?;
    let division = rt.div_unsigned(1_000_000, 7)?;
    println!(
        "millicode: -1234 * 5678 = {}  ({} cycles)",
        product.value, product.cycles
    );
    println!(
        "millicode: 1000000 / 7 = {} rem {}  ({} cycles)",
        division.value,
        division.rem.unwrap(),
        division.cycles
    );

    // Hot loops open a session: one machine, reset between calls, no
    // per-operation allocation.
    let mut session = rt.session();
    let products = session.mul_batch(&[(3, 4), (-5, 6), (1000, -70)])?;
    println!(
        "session batch: {:?} ({} simulated cycles)",
        products.values, products.cycles
    );

    // Large batches fan out across a worker pool; results, checksums and
    // simulated cycles are bit-identical to the serial session for any
    // worker count.
    let pairs: Vec<(i32, i32)> = (0..64).map(|i| (i * 3 - 90, 7 - i)).collect();
    let serial = rt.session().mul_batch(&pairs)?;
    let engine = rt.engine();
    let parallel = engine.mul_batch(&pairs)?;
    assert_eq!(serial.values, parallel.values);
    assert_eq!(serial.cycles, parallel.cycles);
    println!(
        "engine batch: {} ops, checksum {:#018x} at any worker count",
        parallel.ops(),
        parallel.checksum()
    );

    // And the paper's famous summary numbers, re-measured:
    let mul = analysis::multiply_summary(42, 500);
    let div = analysis::divide_summary(42, 500);
    println!(
        "average multiply: {:.1} cycles (paper: ≈6); average divide: {:.1} cycles (paper: ≈40)",
        mul.average, div.average
    );
    Ok(())
}
