//! Measures the observability overhead ladder quoted in
//! `docs/OBSERVABILITY.md`: the same signed-multiply operand sweep through
//!
//! 1. the prepared fast path with every knob off (the production setting),
//! 2. the stats interpreter (`RuntimeBuilder::stats(true)` — per-opcode and
//!    per-label cycle attribution),
//! 3. the stats interpreter under an armed `telemetry::span::trace` scope
//!    (one `execute` span recorded per run).
//!
//! ```sh
//! cargo run --release --example observability_overhead
//! ```
//!
//! Simulated cycle totals are identical in all three configurations — the
//! ladder only changes host wall-clock cost.

use std::time::{Duration, Instant};

use hppa_muldiv::{telemetry, Runtime, Session};

const OPS: u32 = 20_000;

/// A deterministic operand sweep (Weyl-ish multiplier keeps the millicode
/// tiers varied) whose checksum pins all three configurations together.
fn mul_sweep(session: &mut Session, n: u32) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        let x = (i.wrapping_mul(2_654_435_761) | 1) as i32;
        let out = session.mul(x, 12_345).expect("multiply never faults");
        acc = acc.wrapping_add(out.value as u64).wrapping_add(out.cycles);
    }
    acc
}

fn best_of<R>(mut f: impl FnMut() -> R) -> (R, Duration) {
    let mut best: Option<(R, Duration)> = None;
    for _ in 0..3 {
        let start = Instant::now();
        let r = f();
        let took = start.elapsed();
        if best.as_ref().is_none_or(|(_, b)| took < *b) {
            best = Some((r, took));
        }
    }
    best.unwrap()
}

fn per_op(d: Duration) -> f64 {
    d.as_nanos() as f64 / f64::from(OPS)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fast_rt = Runtime::new()?;
    let stats_rt = Runtime::builder().stats(true).build()?;

    // Warm every compile cache and the allocator before timing.
    mul_sweep(&mut fast_rt.session(), OPS / 4);
    mul_sweep(&mut stats_rt.session(), OPS / 4);

    let (fast_sum, fast) = best_of(|| mul_sweep(&mut fast_rt.session(), OPS));
    let (stats_sum, stats) = best_of(|| mul_sweep(&mut stats_rt.session(), OPS));
    let ((spans_sum, span_count), spans) = best_of(|| {
        let (sum, recorded) = telemetry::span::trace(|| mul_sweep(&mut stats_rt.session(), OPS));
        (sum, recorded.len())
    });

    assert_eq!(
        fast_sum, stats_sum,
        "stats must not change results or cycles"
    );
    assert_eq!(
        fast_sum, spans_sum,
        "spans must not change results or cycles"
    );

    println!("{OPS} signed multiplies per configuration (best of 3):");
    println!(
        "  stats-off (prepared fast path)   {:>8.0} ns/op",
        per_op(fast)
    );
    println!(
        "  stats-on  (SimStats interpreter) {:>8.0} ns/op  ({:.1}x stats-off)",
        per_op(stats),
        per_op(stats) / per_op(fast)
    );
    println!(
        "  spans-on  (stats + armed trace)  {:>8.0} ns/op  ({:.1}x stats-off, {span_count} spans)",
        per_op(spans),
        per_op(spans) / per_op(fast)
    );
    Ok(())
}
