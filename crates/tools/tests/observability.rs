//! End-to-end tests for the observability surface: the cycle-exact folded
//! profiler and the perf-regression sentinel, run against the built `hppa`
//! binary and the repository's committed baseline + thresholds files.

use std::path::{Path, PathBuf};
use std::process::Command;

use telemetry::json::{parse, Json};

fn hppa() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hppa"))
}

/// A file at the repository root (the workspace is `crates/tools/../..`).
fn repo_file(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn temp_json(name: &str, doc: &Json) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hppa_obs_{name}_{}.json", std::process::id()));
    std::fs::write(&path, doc.to_pretty_string()).unwrap();
    path
}

#[test]
fn folded_profile_sums_to_the_simulated_cycle_totals_exactly() {
    let out = hppa().args(["profile", "--folded"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let folded = String::from_utf8(out.stdout).unwrap();

    // Every line is `frame;frame;... count`.
    for line in folded.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {line}"));
        assert!(stack.contains(';'), "{line}");
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad count in {line}"));
    }

    // The acceptance identity: per workload, the folded counts sum to the
    // simulator's cycle total exactly — the profile is cycle-exact.
    let workloads = tools::report::paper_workloads();
    for name in ["figure5_switched_multiply", "general_divide"] {
        let expected = workloads
            .iter()
            .find(|w| w.workload == name)
            .unwrap_or_else(|| panic!("missing workload {name}"))
            .cycles;
        let prefix = format!("{name};");
        let sum: u64 = folded
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, expected, "{name}: folded stacks must sum to cycles");
    }
}

#[test]
fn profile_can_narrow_to_one_workload_and_write_a_file() {
    let path = std::env::temp_dir().join(format!("hppa_obs_folded_{}.txt", std::process::id()));
    let out = hppa()
        .args([
            "profile",
            "--folded",
            "--workload",
            "general_divide",
            "-o",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!text.is_empty());
    assert!(
        text.lines().all(|l| l.starts_with("general_divide;")),
        "{text}"
    );
}

#[test]
fn bench_passes_clean_against_the_committed_baseline() {
    let baseline = repo_file("BENCH_pr2.json");
    let thresholds = repo_file("bench/thresholds.toml");
    let out = hppa()
        .args([
            "bench",
            "--compare",
            baseline.to_str().unwrap(),
            "--thresholds",
            thresholds.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("perf sentinel"), "{stdout}");
    assert!(!stdout.contains("REGRESSED"), "{stdout}");
}

#[test]
fn bench_catches_an_injected_ten_percent_cycle_regression() {
    // Doctor the committed baseline: shrink every workload's cycle count by
    // 10%, which makes the (unchanged) current run look ~11% slower — well
    // past the zero-growth threshold.
    let text = std::fs::read_to_string(repo_file("BENCH_pr2.json")).unwrap();
    let mut doc = parse(&text).unwrap();
    if let Json::Object(pairs) = &mut doc {
        for (key, value) in pairs.iter_mut() {
            if key != "workloads" {
                continue;
            }
            let Json::Array(records) = value else {
                panic!("workloads must be an array")
            };
            for record in records {
                let Json::Object(fields) = record else {
                    panic!("record must be an object")
                };
                for (name, field) in fields.iter_mut() {
                    if name == "cycles" {
                        let cycles = field.as_u64().unwrap();
                        *field = Json::uint(cycles * 9 / 10);
                    }
                }
            }
        }
    }
    let path = temp_json("regressed", &doc);
    let out = hppa()
        .args(["bench", "--compare", path.to_str().unwrap()])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success(), "doctored baseline must regress");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
}

#[test]
fn bench_refuses_a_future_schema_version() {
    let doc = Json::object(vec![
        ("schema_version".to_string(), Json::uint(99)),
        ("workloads".to_string(), Json::Array(Vec::new())),
        ("throughput".to_string(), Json::Array(Vec::new())),
    ]);
    let path = temp_json("future", &doc);
    let out = hppa()
        .args(["bench", "--compare", path.to_str().unwrap()])
        .output()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unsupported schema_version 99"), "{stderr}");
}

#[test]
fn report_compare_applies_the_same_sentinel() {
    // `hppa report --compare` shares the sentinel: a clean run against the
    // committed baseline writes the new document AND exits zero.
    let out_path =
        std::env::temp_dir().join(format!("hppa_obs_report_{}.json", std::process::id()));
    let out = hppa()
        .args([
            "report",
            "--ops",
            "200",
            "-o",
            out_path.to_str().unwrap(),
            "--compare",
            repo_file("BENCH_pr2.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("perf sentinel"), "{stdout}");
    let written = std::fs::read_to_string(&out_path).unwrap();
    std::fs::remove_file(&out_path).ok();
    let doc = parse(&written).unwrap();
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(telemetry::SCHEMA_VERSION)
    );
}

#[test]
fn metrics_exports_prometheus_and_json() {
    let out = hppa().args(["metrics"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("# TYPE hppa_workload_cycles_total counter"),
        "{text}"
    );
    assert!(text.contains("hppa_span_total{name=\"execute\"}"), "{text}");

    let out = hppa()
        .args(["metrics", "--format", "json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let doc = parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let counters = doc.get("counters").expect("counters section");
    assert!(counters
        .keys()
        .iter()
        .any(|k| k.starts_with("hppa_workload_cycles_total")));

    let out = hppa()
        .args(["metrics", "--format", "yaml"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown formats must fail");
}
