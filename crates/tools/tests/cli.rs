//! End-to-end tests for the command-line tools, run against the built
//! binaries.

use std::io::Write as _;
use std::process::Command;

fn pa_run() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pa-run"))
}

fn codegen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hppa-codegen"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pa_cli_test_{name}_{}.s", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn pa_run_executes_a_listing() {
    let path = write_temp(
        "mul10",
        "; ×10\n    sh2add r26,r26,r28\n    add r28,r28,r28\n",
    );
    let out = pa_run()
        .args(["-r", "r26=7", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("completed in 2 cycles"), "{stdout}");
    assert!(stdout.contains("(70)"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn pa_run_traces_and_profiles() {
    let path = write_temp("loop", "    ldo 3(r0),r5\ntop:\n    addib,<> -1,r5,top\n");
    let out = pa_run()
        .args(["-t", "-p", path.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("3x"), "profile missing:\n{stdout}");
    assert!(
        stdout.matches("addib").count() >= 3,
        "trace missing:\n{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn pa_run_reports_traps() {
    let path = write_temp("trap", "    break 7\n");
    let out = pa_run().arg(path.to_str().unwrap()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("break trap"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn pa_run_stats_summarise_nullification_and_faults() {
    // A small counted loop that completes without traps or faults; the
    // summary line must still report the (zero) nullified share and counts.
    let path = write_temp("stats", "    ldo 3(r0),r5\ntop:\n    addib,<> -1,r5,top\n");
    let out = pa_run()
        .args(["-s", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let summary = stdout
        .lines()
        .find(|l| l.starts_with("slots:"))
        .unwrap_or_else(|| panic!("no slots summary in:\n{stdout}"));
    assert!(summary.contains("fetched"), "{summary}");
    assert!(summary.contains('%'), "{summary}");
    assert!(summary.contains("traps: 0"), "{summary}");
    assert!(summary.contains("faults: 0"), "{summary}");
    std::fs::remove_file(path).ok();
}

#[test]
fn pa_run_help_documents_the_flags() {
    for flag in ["-h", "--help"] {
        let out = pa_run().arg(flag).output().unwrap();
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("-s"), "{stdout}");
        assert!(stdout.contains("nullified-slot percentage"), "{stdout}");
        assert!(stdout.contains("--metrics"), "{stdout}");
    }
}

#[test]
fn pa_run_metrics_prints_a_prometheus_page() {
    let path = write_temp(
        "metrics",
        "    ldo 3(r0),r5\ntop:\n    addib,<> -1,r5,top\n",
    );
    let out = pa_run()
        .args(["--metrics", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("# TYPE pa_run_cycles_total counter"),
        "{stdout}"
    );
    assert!(stdout.contains("pa_run_traps_total 0"), "{stdout}");
    assert!(
        stdout.contains("pa_run_region_cycles_total{label=\"top\"}"),
        "{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn pa_run_rejects_bad_input() {
    let path = write_temp("bad", "    frobnicate r1\n");
    let out = pa_run().arg(path.to_str().unwrap()).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(path).ok();
}

#[test]
fn codegen_emits_runnable_divide() {
    let out = codegen().args(["udiv", "3"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("17 cycles"), "{stdout}");
    assert!(stdout.contains("sh2add"), "{stdout}");

    // Round-trip: what hppa-codegen prints, pa-run executes.
    let listing: String = stdout
        .lines()
        .filter(|l| !l.trim_start().starts_with(';'))
        .collect::<Vec<_>>()
        .join("\n");
    let path = write_temp("gen_div3", &listing);
    let run = pa_run()
        .args(["-r", "r26=1000", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(run.status.success());
    let run_out = String::from_utf8(run.stdout).unwrap();
    assert!(run_out.contains("(333)"), "{run_out}");
    std::fs::remove_file(path).ok();
}

#[test]
fn codegen_chain_and_magic_modes() {
    let out = codegen().args(["chain", "45"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("l(45) = 2"), "{stdout}");

    let out = codegen().args(["magic", "7"]).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("z=2^33"), "{stdout}");

    let out = codegen().args(["magic", "8"]).output().unwrap();
    assert!(!out.status.success(), "even divisors have no magic row");
}

#[test]
fn codegen_usage_errors() {
    assert!(!codegen().output().unwrap().status.success());
    assert!(!codegen()
        .args(["mul", "abc"])
        .output()
        .unwrap()
        .status
        .success());
    assert!(!codegen()
        .args(["nonsense", "3"])
        .output()
        .unwrap()
        .status
        .success());
}
