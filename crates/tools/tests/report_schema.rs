//! Golden-schema test for `hppa report`: the written `BENCH_*.json` must
//! parse and carry exactly the documented shape. Numbers are workload and
//! wall-clock dependent, so the test pins names, key sets, and invariants —
//! not exact counts, and never the nanosecond timings.

use std::process::Command;

use telemetry::json::{parse, Json};

const EXPECTED_WORKLOADS: [&str; 5] = [
    "figure5_switched_multiply",
    "general_divide",
    "small_divisor_dispatch",
    "constant_multiply_chains",
    "constant_divide",
];

const RECORD_KEYS: [&str; 7] = [
    "workload",
    "cycles",
    "executed",
    "nullified",
    "per_opcode",
    "strategy_histogram",
    "regions",
];

const EXPECTED_THROUGHPUT: [&str; 2] = ["e13_multiply_mix", "e13_divide_mix"];

const PARALLEL_KEYS: [&str; 8] = [
    "workload",
    "threads",
    "ops",
    "wall_ns",
    "ops_per_sec",
    "simulated_cycles",
    "checksum",
    "speedup_vs_1",
];

const THROUGHPUT_KEYS: [&str; 8] = [
    "workload",
    "ops",
    "simulated_cycles",
    "unprepared_ns",
    "prepared_ns",
    "unprepared_ops_per_sec",
    "prepared_ops_per_sec",
    "speedup",
];

/// Keep the throughput batches small: the schema does not depend on the
/// batch size, and the cold pass compiles every operation.
const OPS: &str = "200";

fn written_report() -> Json {
    let path = std::env::temp_dir().join(format!("hppa_report_schema_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .args(["report", "--ops", OPS, "-o", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    parse(&text).expect("BENCH_*.json must be valid JSON")
}

#[test]
fn bench_json_matches_the_documented_schema() {
    let doc = written_report();
    assert_eq!(
        doc.keys(),
        vec!["schema_version", "workloads", "throughput", "parallel"]
    );
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(telemetry::SCHEMA_VERSION),
        "documents must declare the schema version they were written with"
    );

    let records = doc
        .get("workloads")
        .and_then(Json::as_array)
        .expect("workloads is an array");
    let names: Vec<&str> = records
        .iter()
        .map(|r| {
            r.get("workload")
                .and_then(Json::as_str)
                .expect("workload name")
        })
        .collect();
    assert_eq!(names, EXPECTED_WORKLOADS);

    for record in records {
        let name = record.get("workload").and_then(Json::as_str).unwrap();
        assert_eq!(record.keys(), RECORD_KEYS, "{name}: unexpected key set");

        let field = |key: &str| {
            record
                .get(key)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{name}: {key} must be a u64"))
        };
        let (cycles, executed, nullified) =
            (field("cycles"), field("executed"), field("nullified"));
        assert_eq!(cycles, executed + nullified, "{name}: cycle identity");
        assert!(executed > 0, "{name}: ran nothing");

        let per_opcode = record.get("per_opcode").unwrap();
        let opcode_sum: u64 = per_opcode
            .keys()
            .iter()
            .map(|op| per_opcode.get(op).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(opcode_sum, executed, "{name}: per-opcode sum");

        let hist = record.get("strategy_histogram").unwrap();
        assert!(!hist.keys().is_empty(), "{name}: empty strategy histogram");
        for key in hist.keys() {
            assert!(
                key.contains('/'),
                "{name}: strategy key `{key}` must be family/detail"
            );
            assert!(hist.get(key).and_then(Json::as_u64).unwrap() > 0);
        }

        let regions = record
            .get("regions")
            .and_then(Json::as_array)
            .expect("regions is an array");
        assert!(!regions.is_empty(), "{name}: no region attribution");
        let region_sum: u64 = regions
            .iter()
            .map(|r| r.get("cycles").and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(region_sum, cycles, "{name}: regions partition the cycles");
    }

    let throughput = doc
        .get("throughput")
        .and_then(Json::as_array)
        .expect("throughput is an array");
    let names: Vec<&str> = throughput
        .iter()
        .map(|r| r.get("workload").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(names, EXPECTED_THROUGHPUT);
    for record in throughput {
        let name = record.get("workload").and_then(Json::as_str).unwrap();
        assert_eq!(record.keys(), THROUGHPUT_KEYS, "{name}: unexpected key set");
        assert_eq!(record.get("ops").and_then(Json::as_u64), Some(200));
        assert!(
            record
                .get("simulated_cycles")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
        for key in ["unprepared_ns", "prepared_ns"] {
            assert!(
                record.get(key).and_then(Json::as_u64).unwrap() > 0,
                "{name}: {key} must be positive"
            );
        }
        for key in ["unprepared_ops_per_sec", "prepared_ops_per_sec", "speedup"] {
            let v = record
                .get(key)
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{name}: {key} must be a number"));
            assert!(v > 0.0, "{name}: {key} must be positive");
        }
    }

    let parallel = doc
        .get("parallel")
        .and_then(Json::as_array)
        .expect("parallel is an array");
    let threads: Vec<u64> = parallel
        .iter()
        .map(|r| r.get("threads").and_then(Json::as_u64).unwrap())
        .collect();
    assert_eq!(threads, vec![1, 2, 4, 8]);
    let base = &parallel[0];
    for record in parallel {
        let t = record.get("threads").and_then(Json::as_u64).unwrap();
        assert_eq!(
            record.keys(),
            PARALLEL_KEYS,
            "{t} threads: unexpected key set"
        );
        assert_eq!(
            record.get("workload").and_then(Json::as_str),
            Some("e13_parallel_mix")
        );
        assert!(record.get("wall_ns").and_then(Json::as_u64).unwrap() > 0);
        assert!(record.get("ops_per_sec").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(record.get("speedup_vs_1").and_then(Json::as_f64).unwrap() > 0.0);
        // The determinism contract: every thread count reports the same
        // results and the same simulated cost.
        for key in ["ops", "simulated_cycles", "checksum"] {
            assert_eq!(
                record.get(key).and_then(Json::as_u64),
                base.get(key).and_then(Json::as_u64),
                "{t} threads: {key} must not depend on the thread count"
            );
        }
    }
}

#[test]
fn workload_section_is_deterministic_across_runs() {
    // Wall-clock timings vary run to run; the simulated section must not.
    let a = written_report();
    let b = written_report();
    assert_eq!(
        a.get("workloads").unwrap().to_compact_string(),
        b.get("workloads").unwrap().to_compact_string(),
        "workload records must be reproducible byte for byte"
    );
}

#[test]
fn report_stdout_mode_prints_the_same_workloads() {
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .args(["report", "--ops", OPS, "--stdout"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let printed = parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        printed.keys(),
        vec!["schema_version", "workloads", "throughput", "parallel"]
    );
    assert_eq!(
        printed.get("workloads").unwrap().to_compact_string(),
        written_report()
            .get("workloads")
            .unwrap()
            .to_compact_string(),
        "stdout and file modes must agree on the simulated section"
    );
}

#[test]
fn unknown_subcommands_fail() {
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .arg("frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
}
