//! Golden-schema test for `hppa report`: the written `BENCH_pr1.json` must
//! parse and carry exactly the documented shape. Numbers are workload
//! dependent, so the test pins names, key sets, and invariants — not exact
//! counts.

use std::process::Command;

use telemetry::json::{parse, Json};

const EXPECTED_WORKLOADS: [&str; 5] = [
    "figure5_switched_multiply",
    "general_divide",
    "small_divisor_dispatch",
    "constant_multiply_chains",
    "constant_divide",
];

const RECORD_KEYS: [&str; 6] = [
    "workload",
    "cycles",
    "executed",
    "nullified",
    "per_opcode",
    "strategy_histogram",
];

fn written_report() -> Json {
    let path = std::env::temp_dir().join(format!("hppa_report_schema_{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .args(["report", "-o", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    parse(&text).expect("BENCH_pr1.json must be valid JSON")
}

#[test]
fn bench_json_matches_the_documented_schema() {
    let doc = written_report();
    let records = doc.as_array().expect("top level is an array");
    let names: Vec<&str> = records
        .iter()
        .map(|r| {
            r.get("workload")
                .and_then(Json::as_str)
                .expect("workload name")
        })
        .collect();
    assert_eq!(names, EXPECTED_WORKLOADS);

    for record in records {
        let name = record.get("workload").and_then(Json::as_str).unwrap();
        assert_eq!(record.keys(), RECORD_KEYS, "{name}: unexpected key set");

        let field = |key: &str| {
            record
                .get(key)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("{name}: {key} must be a u64"))
        };
        let (cycles, executed, nullified) =
            (field("cycles"), field("executed"), field("nullified"));
        assert_eq!(cycles, executed + nullified, "{name}: cycle identity");
        assert!(executed > 0, "{name}: ran nothing");

        let per_opcode = record.get("per_opcode").unwrap();
        let opcode_sum: u64 = per_opcode
            .keys()
            .iter()
            .map(|op| per_opcode.get(op).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(opcode_sum, executed, "{name}: per-opcode sum");

        let hist = record.get("strategy_histogram").unwrap();
        assert!(!hist.keys().is_empty(), "{name}: empty strategy histogram");
        for key in hist.keys() {
            assert!(
                key.contains('/'),
                "{name}: strategy key `{key}` must be family/detail"
            );
            assert!(hist.get(key).and_then(Json::as_u64).unwrap() > 0);
        }
    }
}

#[test]
fn report_stdout_mode_prints_the_same_document() {
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .args(["report", "--stdout"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let printed = parse(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(
        printed.to_compact_string(),
        written_report().to_compact_string(),
        "stdout and file modes must agree"
    );
}

#[test]
fn unknown_subcommands_fail() {
    let out = Command::new(env!("CARGO_BIN_EXE_hppa"))
        .arg("frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
}
