//! `hppa` — the top-level workbench command.
//!
//! ```sh
//! hppa report                    # write BENCH_pr2.json in the current dir
//! hppa report -o out/bench.json  # write elsewhere
//! hppa report --stdout           # print the document instead
//! hppa report --ops 20000        # size the throughput batches
//! hppa verify                    # 10k differential fuzz cases, seed 0xA5
//! hppa verify --seed 0x1 --cases 100000
//! hppa verify --sweep smoke      # every 257th 16-bit constant, boundary xs
//! hppa verify --replay verify_failures.jsonl
//! ```
//!
//! `report` replays the paper-table workloads (Figure 5 multiply classes,
//! the general divide, the §7 dispatch, constant multiply/divide) with
//! cycle-attribution stats and telemetry enabled, then times the E13 operand
//! mix through the one-shot path and the cached/pre-decoded hot path. The
//! output is one JSON object: `{"workloads": […], "throughput": […]}`.
//!
//! `verify` runs every generated case through the interpreter, the prepared
//! fast path, a batched session, and the independent reference oracle, and
//! checks observed cycles against the per-strategy budgets. Failures land in
//! a JSONL artifact plus a shrunk one-line minimal replay file.

use std::io::Write as _;
use std::process::ExitCode;

use tools::{report, verify};

const USAGE: &str = "usage: hppa report [-o PATH] [--stdout] [--ops N]
       hppa verify [--seed N] [--cases N] [--sweep smoke|full]
                   [--budgets PATH] [--replay FILE] [--inject magic-off-by-one]
                   [--failures PATH] [--minimal PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => run_report(&args[1..]),
        Some("verify") => run_verify(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("hppa: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_verify(args: &[String]) -> ExitCode {
    let opts = match verify::parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("hppa verify: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let report = match verify::execute(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("hppa verify: {msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", verify::summarize(&report));
    if report.passed() {
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&opts.failures_path)
        .and_then(|f| verify::write_failures(&report, f))
    {
        Ok(()) => eprintln!("wrote {}", opts.failures_path),
        Err(e) => eprintln!("hppa verify: cannot write {}: {e}", opts.failures_path),
    }
    if let Some(case) = &report.shrunk {
        let line = format!("{}\n", case.to_json().to_compact_string());
        match std::fs::write(&opts.minimal_path, line) {
            Ok(()) => eprintln!("wrote {}", opts.minimal_path),
            Err(e) => eprintln!("hppa verify: cannot write {}: {e}", opts.minimal_path),
        }
    }
    ExitCode::FAILURE
}

fn run_report(args: &[String]) -> ExitCode {
    let mut out_path = String::from("BENCH_pr2.json");
    let mut to_stdout = false;
    let mut ops = 1_000usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("hppa report: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stdout" => to_stdout = true,
            "--ops" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => ops = n,
                None => {
                    eprintln!("hppa report: --ops needs a count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa report: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let workloads = report::paper_workloads();
    let throughput = report::throughput_workloads_with(ops);
    let doc = report::report_json(&workloads, &throughput).to_pretty_string();
    if to_stdout {
        print!("{doc}");
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(doc.as_bytes())) {
        Ok(()) => {
            for w in &workloads {
                eprintln!(
                    "{:<28} {:>8} cycles ({} executed + {} nullified)",
                    w.workload, w.cycles, w.executed, w.nullified
                );
            }
            for t in &throughput {
                eprintln!(
                    "{:<28} {:>8} ops: {:>12.0} ops/s cold, {:>12.0} ops/s hot ({:.1}x)",
                    t.workload,
                    t.ops,
                    t.unprepared_ops_per_sec(),
                    t.prepared_ops_per_sec(),
                    t.speedup()
                );
            }
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hppa report: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
