//! `hppa` — the top-level workbench command.
//!
//! ```sh
//! hppa report                    # write BENCH_pr7.json in the current dir
//! hppa report -o out/bench.json  # write elsewhere
//! hppa report --stdout           # print the document instead
//! hppa report --ops 20000        # size the throughput batches
//! hppa report --compare BENCH_pr2.json   # also diff against a baseline
//! hppa verify                    # 10k differential fuzz cases, seed 0xA5
//! hppa verify --seed 0x1 --cases 100000
//! hppa verify --sweep smoke      # every 257th 16-bit constant, boundary xs
//! hppa verify --replay verify_failures.jsonl
//! hppa profile --folded          # cycle-exact flamegraph folded stacks
//! hppa bench --compare BENCH_pr2.json    # perf-regression sentinel
//! hppa metrics --format prometheus       # registry export
//! ```
//!
//! `report` replays the paper-table workloads (Figure 5 multiply classes,
//! the general divide, the §7 dispatch, constant multiply/divide) with
//! cycle-attribution stats and telemetry enabled, times the E13 operand
//! mix through the one-shot path and the cached/pre-decoded hot path, and
//! measures the same mix through the worker-pool engine at 1/2/4/8
//! threads. The output is one JSON object:
//! `{"schema_version": N, "workloads": […], "throughput": […],
//! "parallel": […]}`.
//!
//! `verify` runs every generated case through the interpreter, the prepared
//! fast path, a batched session, and the independent reference oracle, and
//! checks observed cycles against the per-strategy budgets. Failures land in
//! a JSONL artifact plus a shrunk one-line minimal replay file.
//!
//! `profile` folds the per-label cycle attribution into flamegraph
//! folded-stack lines whose counts sum to the simulator's cycle total
//! exactly. `bench` replays the paper workloads and diffs them against a
//! committed `BENCH_*.json` baseline under `bench/thresholds.toml`, exiting
//! non-zero on any regression. `metrics` exports the run as a Prometheus
//! text page or a JSON document.

use std::io::Write as _;
use std::process::ExitCode;

use tools::{metrics, profile, report, sentinel, verify};

const USAGE: &str = "usage: hppa report [-o PATH] [--stdout] [--ops N]
                   [--compare BASELINE] [--thresholds PATH]
       hppa verify [--seed N] [--cases N] [--sweep smoke|full]
                   [--budgets PATH] [--replay FILE] [--inject magic-off-by-one]
                   [--failures PATH] [--minimal PATH]
       hppa profile [--folded] [-o PATH] [--workload NAME]
       hppa bench --compare BASELINE [--thresholds PATH] [-o PATH]
       hppa metrics [--format prometheus|json] [-o PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => run_report(&args[1..]),
        Some("verify") => run_verify(&args[1..]),
        Some("profile") => run_profile(&args[1..]),
        Some("bench") => run_bench(&args[1..]),
        Some("metrics") => run_metrics(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("hppa: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Writes `text` to `path`, or to stdout when `path` is `None`.
fn emit(command: &str, path: Option<&str>, text: &str) -> ExitCode {
    match path {
        None => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Some(p) => match std::fs::write(p, text) {
            Ok(()) => {
                eprintln!("wrote {p}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hppa {command}: cannot write {p}: {e}");
                ExitCode::FAILURE
            }
        },
    }
}

fn run_verify(args: &[String]) -> ExitCode {
    let opts = match verify::parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("hppa verify: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let report = match verify::execute(&opts) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("hppa verify: {msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", verify::summarize(&report));
    if report.passed() {
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&opts.failures_path)
        .and_then(|f| verify::write_failures(&report, f))
    {
        Ok(()) => eprintln!("wrote {}", opts.failures_path),
        Err(e) => eprintln!("hppa verify: cannot write {}: {e}", opts.failures_path),
    }
    if let Some(case) = &report.shrunk {
        let line = format!("{}\n", case.to_json().to_compact_string());
        match std::fs::write(&opts.minimal_path, line) {
            Ok(()) => eprintln!("wrote {}", opts.minimal_path),
            Err(e) => eprintln!("hppa verify: cannot write {}: {e}", opts.minimal_path),
        }
    }
    ExitCode::FAILURE
}

/// Reads, parses, and version-checks a baseline `BENCH_*.json`, then
/// compares the current document against it. Success only when nothing
/// regressed.
fn compare_against(
    command: &str,
    current: &telemetry::json::Json,
    baseline_path: &str,
    thresholds_path: Option<&str>,
) -> ExitCode {
    let thresholds = match sentinel::Thresholds::load(thresholds_path) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("hppa {command}: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hppa {command}: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match telemetry::json::parse(&baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("hppa {command}: baseline {baseline_path} is not JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match sentinel::compare(current, &baseline, &thresholds) {
        Ok(comparison) => {
            print!("{}", comparison.render());
            if comparison.regressed() {
                eprintln!("hppa {command}: performance regressed against {baseline_path}");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("hppa {command}: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(args: &[String]) -> ExitCode {
    let mut out_path = String::from("BENCH_pr7.json");
    let mut to_stdout = false;
    let mut ops = 1_000usize;
    let mut compare: Option<String> = None;
    let mut thresholds: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("hppa report: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stdout" => to_stdout = true,
            "--ops" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => ops = n,
                None => {
                    eprintln!("hppa report: --ops needs a count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--compare" => match it.next() {
                Some(p) => compare = Some(p.clone()),
                None => {
                    eprintln!("hppa report: --compare needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--thresholds" => match it.next() {
                Some(p) => thresholds = Some(p.clone()),
                None => {
                    eprintln!("hppa report: --thresholds needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa report: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let workloads = report::paper_workloads();
    let throughput = report::throughput_workloads_with(ops);
    let parallel = report::parallel_workloads_with(ops);
    let json = report::report_json(&workloads, &throughput, &parallel);
    let doc = json.to_pretty_string();
    if to_stdout {
        print!("{doc}");
    } else {
        match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(doc.as_bytes())) {
            Ok(()) => {
                for w in &workloads {
                    eprintln!(
                        "{:<28} {:>8} cycles ({} executed + {} nullified)",
                        w.workload, w.cycles, w.executed, w.nullified
                    );
                }
                for t in &throughput {
                    eprintln!(
                        "{:<28} {:>8} ops: {:>12.0} ops/s cold, {:>12.0} ops/s hot ({:.1}x)",
                        t.workload,
                        t.ops,
                        t.unprepared_ops_per_sec(),
                        t.prepared_ops_per_sec(),
                        t.speedup()
                    );
                }
                for p in &parallel {
                    eprintln!(
                        "{:<28} {:>8} ops @ {} threads: {:>12.0} ops/s ({:.2}x vs 1 thread)",
                        p.workload,
                        p.ops,
                        p.threads,
                        p.ops_per_sec(),
                        p.speedup_vs_1
                    );
                }
                eprintln!("wrote {out_path}");
            }
            Err(e) => {
                eprintln!("hppa report: cannot write {out_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match compare {
        Some(baseline) => compare_against("report", &json, &baseline, thresholds.as_deref()),
        None => ExitCode::SUCCESS,
    }
}

fn run_profile(args: &[String]) -> ExitCode {
    // `--folded` is the only output format today; it is accepted explicitly
    // so invocations read naturally and future formats have somewhere to go.
    let mut out_path: Option<String> = None;
    let mut workload: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--folded" => {}
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("hppa profile: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--workload" => match it.next() {
                Some(w) => workload = Some(w.clone()),
                None => {
                    eprintln!("hppa profile: --workload needs a name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa profile: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut workloads = report::paper_workloads();
    if let Some(name) = &workload {
        workloads.retain(|w| w.workload == name.as_str());
        if workloads.is_empty() {
            eprintln!("hppa profile: no workload named `{name}`");
            return ExitCode::FAILURE;
        }
    }
    let text = profile::render_folded(&profile::folded_stacks(&workloads));
    emit("profile", out_path.as_deref(), &text)
}

fn run_bench(args: &[String]) -> ExitCode {
    let mut baseline: Option<String> = None;
    let mut thresholds: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => match it.next() {
                Some(p) => baseline = Some(p.clone()),
                None => {
                    eprintln!("hppa bench: --compare needs a baseline path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--thresholds" => match it.next() {
                Some(p) => thresholds = Some(p.clone()),
                None => {
                    eprintln!("hppa bench: --thresholds needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("hppa bench: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa bench: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(baseline) = baseline else {
        eprintln!("hppa bench: --compare BASELINE is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    // The sentinel gates on deterministic cycle counts, so the current
    // document carries no throughput section: host-timing noise never blocks
    // CI unless the thresholds file opts in AND a throughput-bearing
    // document is compared via `hppa report --compare`.
    let workloads = report::paper_workloads();
    let current = report::report_json(&workloads, &[], &[]);
    if let Some(p) = &out_path {
        if let Err(e) = std::fs::write(p, current.to_pretty_string()) {
            eprintln!("hppa bench: cannot write {p}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {p}");
    }
    compare_against("bench", &current, &baseline, thresholds.as_deref())
}

fn run_metrics(args: &[String]) -> ExitCode {
    let mut format = String::from("prometheus");
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) => format = f.clone(),
                None => {
                    eprintln!("hppa metrics: --format needs a name\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("hppa metrics: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa metrics: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let registry = metrics::paper_metrics();
    match metrics::render(&registry, &format) {
        Ok(text) => emit("metrics", out_path.as_deref(), &text),
        Err(msg) => {
            eprintln!("hppa metrics: {msg}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
