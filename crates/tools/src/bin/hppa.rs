//! `hppa` — the top-level workbench command.
//!
//! ```sh
//! hppa report                    # write BENCH_pr2.json in the current dir
//! hppa report -o out/bench.json  # write elsewhere
//! hppa report --stdout           # print the document instead
//! hppa report --ops 20000        # size the throughput batches
//! ```
//!
//! `report` replays the paper-table workloads (Figure 5 multiply classes,
//! the general divide, the §7 dispatch, constant multiply/divide) with
//! cycle-attribution stats and telemetry enabled, then times the E13 operand
//! mix through the one-shot path and the cached/pre-decoded hot path. The
//! output is one JSON object: `{"workloads": […], "throughput": […]}`.

use std::io::Write as _;
use std::process::ExitCode;

use tools::report;

const USAGE: &str = "usage: hppa report [-o PATH] [--stdout] [--ops N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => run_report(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("hppa: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(args: &[String]) -> ExitCode {
    let mut out_path = String::from("BENCH_pr2.json");
    let mut to_stdout = false;
    let mut ops = 1_000usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("hppa report: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stdout" => to_stdout = true,
            "--ops" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => ops = n,
                None => {
                    eprintln!("hppa report: --ops needs a count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("hppa report: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let workloads = report::paper_workloads();
    let throughput = report::throughput_workloads_with(ops);
    let doc = report::report_json(&workloads, &throughput).to_pretty_string();
    if to_stdout {
        print!("{doc}");
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(doc.as_bytes())) {
        Ok(()) => {
            for w in &workloads {
                eprintln!(
                    "{:<28} {:>8} cycles ({} executed + {} nullified)",
                    w.workload, w.cycles, w.executed, w.nullified
                );
            }
            for t in &throughput {
                eprintln!(
                    "{:<28} {:>8} ops: {:>12.0} ops/s cold, {:>12.0} ops/s hot ({:.1}x)",
                    t.workload,
                    t.ops,
                    t.unprepared_ops_per_sec(),
                    t.prepared_ops_per_sec(),
                    t.speedup()
                );
            }
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hppa report: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
