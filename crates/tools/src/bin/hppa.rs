//! `hppa` — the top-level workbench command.
//!
//! ```sh
//! hppa report                    # write BENCH_pr1.json in the current dir
//! hppa report -o out/bench.json  # write elsewhere
//! hppa report --stdout           # print the document instead
//! ```
//!
//! `report` replays the paper-table workloads (Figure 5 multiply classes,
//! the general divide, the §7 dispatch, constant multiply/divide) with
//! cycle-attribution stats and telemetry enabled, and writes one JSON array
//! of `{workload, cycles, executed, nullified, per_opcode,
//! strategy_histogram}` records.

use std::io::Write as _;
use std::process::ExitCode;

use tools::report;

const USAGE: &str = "usage: hppa report [-o PATH] [--stdout]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => run_report(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("hppa: unknown subcommand `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_report(args: &[String]) -> ExitCode {
    let mut out_path = String::from("BENCH_pr1.json");
    let mut to_stdout = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("hppa report: {arg} needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stdout" => to_stdout = true,
            other => {
                eprintln!("hppa report: unknown option `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let workloads = report::paper_workloads();
    let doc = report::report_json(&workloads).to_pretty_string();
    if to_stdout {
        print!("{doc}");
        return ExitCode::SUCCESS;
    }
    match std::fs::File::create(&out_path).and_then(|mut f| f.write_all(doc.as_bytes())) {
        Ok(()) => {
            for w in &workloads {
                eprintln!(
                    "{:<28} {:>8} cycles ({} executed + {} nullified)",
                    w.workload, w.cycles, w.executed, w.nullified
                );
            }
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hppa report: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
