//! `pa-run` — assemble and execute a `pa-isa` program from a text listing.
//!
//! ```text
//! pa-run [options] <file.s>
//!   -r REG=VALUE   preload a register (repeatable); VALUE may be 0x-hex or
//!                  a negative decimal
//!   -t             print the execution trace
//!   -p             print the per-instruction profile
//!   -s             print run statistics: per-opcode histogram, per-label
//!                  cycle attribution, and a summary line with the
//!                  nullified-slot percentage and trap/fault counts
//!   -m CYCLES      cycle budget (default 1000000)
//!   --precise      use the precise overflow detector instead of the cheap
//!                  circuit
//!   --metrics      print the run as a Prometheus text page (implies stats)
//!   -h, --help     print this help and exit
//! ```
//!
//! Exit status: 0 on completion, 2 on trap, 3 on fault/limit, 1 on usage or
//! parse errors. Prints the final register file (non-zero registers only).
//!
//! Example:
//!
//! ```sh
//! cargo run -p tools --bin pa-run -- -r r26=100 -t examples/asm/div3.s
//! ```

use std::process::ExitCode;

use pa_isa::parse::parse_program;
use pa_isa::Reg;
use pa_sim::{format_trace, run, ExecConfig, Machine, OverflowModel, Termination};

struct Options {
    file: String,
    regs: Vec<(Reg, u32)>,
    trace: bool,
    profile: bool,
    stats: bool,
    metrics: bool,
    max_cycles: u64,
    precise: bool,
}

const USAGE: &str = "usage: pa-run [-r REG=VALUE]... [-t] [-p] [-s] [-m CYCLES] [--precise]
              [--metrics] <file.s>

  -r REG=VALUE   preload a register (repeatable); VALUE may be 0x-hex or a
                 negative decimal
  -t             print the execution trace
  -p             print the per-instruction profile
  -s             print run statistics: per-opcode histogram, per-label
                 cycle attribution, and a summary line with the
                 nullified-slot percentage and trap/fault counts
  -m CYCLES      cycle budget (default 1000000)
  --precise      use the precise overflow detector instead of the cheap
                 circuit
  --metrics      print the run as a Prometheus text page (implies -s)
  -h, --help     print this help and exit";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(1)
}

fn parse_value(text: &str) -> Option<u32> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = text.strip_prefix('-') {
        neg.parse::<u32>().ok().map(u32::wrapping_neg)
    } else {
        text.parse().ok()
    }
}

fn parse_args() -> Option<Options> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        file: String::new(),
        regs: Vec::new(),
        trace: false,
        profile: false,
        stats: false,
        metrics: false,
        max_cycles: 1_000_000,
        precise: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-r" => {
                let spec = args.next()?;
                let (reg, value) = spec.split_once('=')?;
                opts.regs.push((reg.parse().ok()?, parse_value(value)?));
            }
            "-t" => opts.trace = true,
            "-p" => opts.profile = true,
            "-s" => opts.stats = true,
            "-m" => opts.max_cycles = args.next()?.parse().ok()?,
            "--precise" => opts.precise = true,
            "--metrics" => {
                opts.metrics = true;
                opts.stats = true;
            }
            file if !file.starts_with('-') && opts.file.is_empty() => {
                opts.file = file.to_string();
            }
            _ => return None,
        }
    }
    (!opts.file.is_empty()).then_some(opts)
}

fn main() -> ExitCode {
    if std::env::args().skip(1).any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some(opts) = parse_args() else {
        return usage();
    };
    let source = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pa-run: {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };
    let program = match parse_program(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pa-run: {}: {e}", opts.file);
            return ExitCode::from(1);
        }
    };

    let mut machine = Machine::with_regs(&opts.regs);
    let config = ExecConfig {
        overflow: if opts.precise {
            OverflowModel::Precise
        } else {
            OverflowModel::CheapCircuit
        },
        max_cycles: opts.max_cycles,
        profile: opts.profile,
        trace: opts.trace,
        stats: opts.stats,
    };
    let result = run(&program, &mut machine, &config);

    if opts.trace {
        print!("{}", format_trace(&program, &result.trace));
    }
    if opts.profile {
        for (idx, count) in result.profile.iter().enumerate() {
            if *count > 0 {
                println!("{count:>8}x  {}", program.get(idx).expect("in range"));
            }
        }
    }
    if let Some(stats) = result.stats.as_deref() {
        println!("per-opcode (executed):");
        for (name, count) in stats.per_opcode() {
            println!("  {name:<8} {count:>8}");
        }
        let nullified = stats.nullified_per_opcode();
        if !nullified.is_empty() {
            println!("per-opcode (nullified):");
            for (name, count) in nullified {
                println!("  {name:<8} {count:>8}");
            }
        }
        println!("per-label cycles:");
        for region in &stats.regions {
            println!(
                "  {:<20} {:>8} cycles ({} executed, {} nullified)",
                region.label, region.cycles, region.executed, region.nullified
            );
        }
        // Every fetched slot costs a cycle, so `cycles` is the fetched-slot
        // count and the nullified share reads directly off the run result.
        let nullified_pct = if result.cycles > 0 {
            result.nullified as f64 * 100.0 / result.cycles as f64
        } else {
            0.0
        };
        println!(
            "slots: {} fetched, {} nullified ({nullified_pct:.1}%); traps: {}, faults: {}",
            result.cycles, result.nullified, stats.traps, stats.faults
        );
    }
    if opts.metrics {
        print!(
            "{}",
            tools::metrics::registry_for_run(&result).to_prometheus()
        );
    }
    println!(
        "{} in {} cycles ({} executed, {} nullified, {} branches taken)",
        result.termination, result.cycles, result.executed, result.nullified, result.taken_branches
    );
    for r in Reg::all() {
        let v = machine.reg(r);
        if v != 0 {
            println!("  {r:<4} = {v:#010x} ({})", v as i32);
        }
    }
    match result.termination {
        Termination::Completed => ExitCode::SUCCESS,
        Termination::Trapped(_) => ExitCode::from(2),
        _ => ExitCode::from(3),
    }
}
