//! `hppa-codegen` — emit the Precision code sequences for a constant
//! multiply or divide, as a compiler back end would.
//!
//! ```text
//! hppa-codegen mul <N>            multiply by N (wrapping)
//! hppa-codegen mul-checked <N>    multiply by N with overflow traps
//! hppa-codegen udiv <Y>           unsigned divide by Y
//! hppa-codegen sdiv <Y>           signed divide by Y (Y may be negative)
//! hppa-codegen urem <Y>           unsigned remainder by Y
//! hppa-codegen chain <N>          just the shift-add chain, paper notation
//! hppa-codegen magic <Y>          the derived-method parameters for odd Y
//! ```
//!
//! Example:
//!
//! ```sh
//! cargo run -p tools --bin hppa-codegen -- udiv 3
//! ```

use std::process::ExitCode;

use hppa_muldiv::chains;
use hppa_muldiv::divconst::Magic;
use hppa_muldiv::Compiler;

fn usage() -> ExitCode {
    eprintln!("usage: hppa-codegen <mul|mul-checked|udiv|sdiv|urem|chain|magic> <constant>");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [mode, value] = args.as_slice() else {
        return usage();
    };
    let Ok(n) = value.parse::<i64>() else {
        eprintln!("hppa-codegen: `{value}` is not an integer");
        return ExitCode::from(1);
    };
    let compiler = Compiler::new();
    let compiled = match mode.as_str() {
        "mul" => compiler.mul_const(n),
        "mul-checked" => compiler.mul_const_checked(n),
        "udiv" => match u32::try_from(n) {
            Ok(y) => compiler.udiv_const(y),
            Err(_) => {
                eprintln!("hppa-codegen: unsigned divisor out of range");
                return ExitCode::from(1);
            }
        },
        "sdiv" => match i32::try_from(n) {
            Ok(y) => compiler.sdiv_const(y),
            Err(_) => {
                eprintln!("hppa-codegen: signed divisor out of range");
                return ExitCode::from(1);
            }
        },
        "urem" => match u32::try_from(n) {
            Ok(y) => compiler.urem_const(y),
            Err(_) => {
                eprintln!("hppa-codegen: unsigned divisor out of range");
                return ExitCode::from(1);
            }
        },
        "chain" => {
            let chain = chains::find_chain(n);
            println!(
                "; l({n}) = {} step(s){}{}",
                chain.len(),
                if chain.is_overflow_safe() {
                    ", overflow-safe"
                } else {
                    ""
                },
                if chain.needs_temp() {
                    ", needs a temporary"
                } else {
                    ""
                },
            );
            print!("{chain}");
            return ExitCode::SUCCESS;
        }
        "magic" => match u32::try_from(n)
            .map_err(|_| ())
            .and_then(|y| Magic::minimal(y).map_err(|e| eprintln!("hppa-codegen: {e}")))
        {
            Ok(m) => {
                println!("{m}");
                println!(
                    "b = {:#x}, fits two words: {}",
                    m.b(),
                    if m.fits_pair() {
                        "yes"
                    } else {
                        "no (third word needed)"
                    }
                );
                return ExitCode::SUCCESS;
            }
            Err(()) => return ExitCode::from(1),
        },
        _ => return usage(),
    };
    match compiled {
        Ok(op) => {
            println!("; {} — {} cycles", op.kind(), op.cycles());
            print!("{}", op.program());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hppa-codegen: {e}");
            ExitCode::from(1)
        }
    }
}
