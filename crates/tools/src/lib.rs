//! Library backing for the command-line tools.
//!
//! The binaries in `src/bin/` stay thin; anything worth testing lives here.
//! Currently that is [`report`], the `hppa report` builder that replays the
//! paper-table workloads with full telemetry and writes `BENCH_*.json`, and
//! [`verify`], the differential-oracle driver behind `hppa verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod verify;
