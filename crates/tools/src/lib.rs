//! Library backing for the command-line tools.
//!
//! The binaries in `src/bin/` stay thin; anything worth testing lives here:
//!
//! * [`report`] — the `hppa report` builder that replays the paper-table
//!   workloads with full telemetry and writes `BENCH_*.json`;
//! * [`verify`] — the differential-oracle driver behind `hppa verify`;
//! * [`profile`] — the cycle-exact folded-stack builder behind
//!   `hppa profile`;
//! * [`sentinel`] — the perf-regression comparator behind
//!   `hppa bench --compare` and `bench/thresholds.toml`;
//! * [`metrics`] — the registry builders behind `hppa metrics` and
//!   `pa-run --metrics`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod report;
pub mod sentinel;
pub mod verify;
