//! The `hppa verify` subcommand: drive the differential oracle.
//!
//! Modes (combinable; at least one of fuzz/sweep/replay runs):
//!
//! * **fuzz** (default) — `--seed N --cases N` structured cases through
//!   interpreter, prepared fast path, batched session, and oracle;
//! * **sweep** — `--sweep smoke` (every 257th 16-bit constant) or
//!   `--sweep full` (all of them; a long lunch) over boundary operands;
//! * **replay** — `--replay FILE` re-checks previously written failure
//!   cases (one compact JSON object per line; bare cases, full verify
//!   events, and the `{"schema_version":N}` header are all accepted).
//!
//! On failure the divergences and budget violations are written as
//! telemetry JSONL to `--failures PATH` and the first divergence is
//! shrunk to a minimal single-line replay file at `--minimal PATH`.
//! `--inject magic-off-by-one` plants a deliberate off-by-one in the
//! oracle's scratch magic constants to prove the harness catches it.

use std::fmt::Write as _;
use std::io;

use oracle::{Budgets, Case, Inject, Verifier, VerifyReport};
use telemetry::{Event, JsonlSink};

/// Which constant sweep to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// A bounded CI-sized subset: every 257th 16-bit constant.
    Smoke,
    /// All 65535 16-bit constants. Compiling each divisor costs a chain
    /// search (~80ms), so expect on the order of an hour or two.
    Full,
}

impl Sweep {
    /// The sweep stride over the 16-bit constants.
    #[must_use]
    pub fn stride(self) -> u32 {
        match self {
            Sweep::Smoke => 257,
            Sweep::Full => 1,
        }
    }
}

/// Parsed `hppa verify` options.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Fuzz seed (`--seed`, decimal or `0x` hex). Default `0xA5`.
    pub seed: u64,
    /// Fuzz case count (`--cases`). Default 10 000; `0` skips fuzzing.
    pub cases: u64,
    /// Optional constant sweep (`--sweep smoke|full`).
    pub sweep: Option<Sweep>,
    /// Optional budget TOML path (`--budgets`); default is the embedded
    /// `crates/oracle/budgets.toml`.
    pub budgets: Option<String>,
    /// Optional deliberate fault (`--inject magic-off-by-one`).
    pub inject: Option<Inject>,
    /// Optional replay file of JSONL cases (`--replay`).
    pub replay: Option<String>,
    /// Where failure events go as JSONL (`--failures`).
    pub failures_path: String,
    /// Where the shrunk minimal case goes (`--minimal`).
    pub minimal_path: String,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            seed: 0xA5,
            cases: 10_000,
            sweep: None,
            budgets: None,
            inject: None,
            replay: None,
            failures_path: "verify_failures.jsonl".to_string(),
            minimal_path: "verify_minimal_case.json".to_string(),
        }
    }
}

/// Parses `hppa verify` arguments.
///
/// # Errors
///
/// A usage message naming the offending argument.
pub fn parse_args(args: &[String]) -> Result<VerifyOptions, String> {
    let mut opts = VerifyOptions::default();
    let mut explicit_cases = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = parse_u64(&v).ok_or_else(|| format!("bad seed `{v}`"))?;
            }
            "--cases" => {
                let v = value("--cases")?;
                opts.cases = parse_u64(&v).ok_or_else(|| format!("bad case count `{v}`"))?;
                explicit_cases = true;
            }
            "--sweep" => {
                opts.sweep = Some(match value("--sweep")?.as_str() {
                    "smoke" => Sweep::Smoke,
                    "full" => Sweep::Full,
                    other => return Err(format!("bad sweep mode `{other}` (smoke|full)")),
                });
            }
            "--budgets" => opts.budgets = Some(value("--budgets")?),
            "--inject" => {
                opts.inject = Some(match value("--inject")?.as_str() {
                    "magic-off-by-one" => Inject::MagicOffByOne,
                    other => return Err(format!("bad injection `{other}` (magic-off-by-one)")),
                });
            }
            "--replay" => opts.replay = Some(value("--replay")?),
            "--failures" => opts.failures_path = value("--failures")?,
            "--minimal" => opts.minimal_path = value("--minimal")?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    // A sweep or replay invocation without an explicit --cases runs just
    // that mode; fuzzing stays the default otherwise.
    if (opts.sweep.is_some() || opts.replay.is_some()) && !explicit_cases {
        opts.cases = 0;
    }
    Ok(opts)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs verification per `opts` and returns the report.
///
/// # Errors
///
/// A message for configuration problems (unreadable budget or replay
/// file, malformed replay line) — distinct from verification *failure*,
/// which is reported in the returned [`VerifyReport`].
pub fn execute(opts: &VerifyOptions) -> Result<VerifyReport, String> {
    let budgets = match &opts.budgets {
        None => Budgets::embedded(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read budgets {path}: {e}"))?;
            Budgets::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
    };
    let mut verifier =
        Verifier::new(budgets, opts.inject).map_err(|e| format!("cannot build runtime: {e}"))?;
    if let Some(path) = &opts.replay {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read replay file {path}: {e}"))?;
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let doc = telemetry::json::parse(line)
                .map_err(|e| format!("{path}:{}: not JSON ({e}): `{line}`", idx + 1))?;
            // Failure artifacts lead with a {"schema_version":N} header.
            if doc.get("schema_version").is_some() && doc.get("kind").is_none() {
                continue;
            }
            // Accept both bare case objects and telemetry verify events
            // (which embed the replayable case as a compact JSON string).
            let case = match doc.get("case").and_then(telemetry::json::Json::as_str) {
                Some(embedded) => Case::parse(embedded),
                None => Case::from_json(&doc),
            }
            .ok_or_else(|| format!("{path}:{}: unparseable case `{line}`", idx + 1))?;
            verifier.check_case(&case);
        }
    }
    if opts.cases > 0 {
        verifier.run_fuzz(opts.seed, opts.cases);
    }
    if let Some(sweep) = opts.sweep {
        verifier.run_sweep(sweep.stride());
    }
    Ok(verifier.finish())
}

/// Serialises every failure in `report` as telemetry JSONL, prefixed by a
/// `{"schema_version":N}` header line. Clean reports write nothing (no
/// header, no events), so an empty failure file still reads as "no
/// failures".
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_failures(report: &VerifyReport, w: impl io::Write) -> io::Result<()> {
    let mut sink = JsonlSink::new(w);
    let mut events = Vec::new();
    for d in &report.divergences {
        events.push(Event::Verify {
            suite: "divergence",
            case: d.case.to_json().to_compact_string(),
            detail: format!("[{}] {}", d.paths, d.detail),
        });
    }
    for v in &report.budget_violations {
        events.push(Event::Verify {
            suite: "budget",
            case: v.case.clone(),
            detail: v.to_string(),
        });
    }
    if events.is_empty() {
        return Ok(());
    }
    sink.write_header()?;
    sink.write_all(&events)
}

/// The human-readable run summary printed by the subcommand.
#[must_use]
pub fn summarize(report: &VerifyReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} cases, {} divergences, {} budget violations, {} unsupported-checked-mul skips",
        report.cases_run,
        report.divergence_count,
        report.budget_violations.len(),
        report.skipped_unsupported
    );
    if !report.max_cycles.is_empty() {
        let _ = writeln!(s, "worst observed cycles per strategy:");
        for (key, cycles) in &report.max_cycles {
            let _ = writeln!(s, "  {key:<26} {cycles:>4}");
        }
    }
    for d in report.divergences.iter().take(10) {
        let _ = writeln!(s, "divergence: {d}");
    }
    if report.divergences.len() > 10 {
        let _ = writeln!(s, "… {} more divergences", report.divergences.len() - 10);
    }
    for v in report.budget_violations.iter().take(10) {
        let _ = writeln!(s, "over budget: {v}");
    }
    if report.budget_violations.len() > 10 {
        let _ = writeln!(
            s,
            "… {} more budget violations",
            report.budget_violations.len() - 10
        );
    }
    if let Some(c) = &report.shrunk {
        let _ = writeln!(s, "minimal failing case: {c}");
    }
    let _ = writeln!(
        s,
        "verdict: {}",
        if report.passed() { "PASS" } else { "FAIL" }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_the_documented_flags() {
        let o = parse_args(&args(&[
            "--seed",
            "0xA5",
            "--cases",
            "1000",
            "--inject",
            "magic-off-by-one",
            "--failures",
            "f.jsonl",
            "--minimal",
            "m.json",
        ]))
        .unwrap();
        assert_eq!(o.seed, 0xA5);
        assert_eq!(o.cases, 1000);
        assert_eq!(o.inject, Some(Inject::MagicOffByOne));
        assert_eq!(o.failures_path, "f.jsonl");
        assert_eq!(o.minimal_path, "m.json");
        assert!(o.sweep.is_none());
    }

    #[test]
    fn sweep_without_cases_skips_fuzzing() {
        let o = parse_args(&args(&["--sweep", "smoke"])).unwrap();
        assert_eq!(o.sweep, Some(Sweep::Smoke));
        assert_eq!(o.cases, 0);
        let o = parse_args(&args(&["--sweep", "full", "--cases", "5"])).unwrap();
        assert_eq!(o.sweep, Some(Sweep::Full));
        assert_eq!(o.cases, 5);
        assert_eq!(Sweep::Smoke.stride(), 257);
        assert_eq!(Sweep::Full.stride(), 1);
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(parse_args(&args(&["--seed"])).is_err());
        assert!(parse_args(&args(&["--seed", "zebra"])).is_err());
        assert!(parse_args(&args(&["--sweep", "everything"])).is_err());
        assert!(parse_args(&args(&["--inject", "bit-flip"])).is_err());
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn small_clean_run_passes_and_summarises() {
        let opts = VerifyOptions {
            cases: if cfg!(debug_assertions) { 40 } else { 400 },
            ..VerifyOptions::default()
        };
        let report = execute(&opts).unwrap();
        assert!(report.passed(), "{:?}", report.divergences);
        let text = summarize(&report);
        assert!(text.contains("verdict: PASS"), "{text}");
        let mut buf = Vec::new();
        write_failures(&report, &mut buf).unwrap();
        assert!(buf.is_empty(), "clean run writes no failure lines");
    }

    #[test]
    fn injected_fault_fails_and_writes_artifacts() {
        let opts = VerifyOptions {
            cases: if cfg!(debug_assertions) { 100 } else { 600 },
            inject: Some(Inject::MagicOffByOne),
            ..VerifyOptions::default()
        };
        let report = execute(&opts).unwrap();
        assert!(!report.passed());
        let text = summarize(&report);
        assert!(text.contains("verdict: FAIL"));
        assert!(text.contains("minimal failing case:"));
        let mut buf = Vec::new();
        write_failures(&report, &mut buf).unwrap();
        let jsonl = String::from_utf8(buf).unwrap();
        let mut lines = jsonl.lines();
        let header = telemetry::json::parse(lines.next().expect("header line")).unwrap();
        assert_eq!(
            header
                .get("schema_version")
                .and_then(telemetry::json::Json::as_u64),
            Some(telemetry::SCHEMA_VERSION)
        );
        let first = lines.next().expect("at least one failure line");
        let parsed = telemetry::json::parse(first).unwrap();
        assert_eq!(
            parsed.get("event").and_then(telemetry::json::Json::as_str),
            Some("verify")
        );
        // The embedded case replays: running just it against a clean
        // verifier (no injection) is green, proving the artifact format
        // round-trips into a checkable case.
        let case_line = parsed
            .get("case")
            .and_then(telemetry::json::Json::as_str)
            .unwrap();
        assert!(
            Case::parse(case_line).is_some(),
            "replayable case: {case_line}"
        );
    }

    #[test]
    fn replay_files_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("hppa_verify_replay_test.jsonl");
        std::fs::write(
            &path,
            "{\"kind\":\"udiv_const\",\"y\":7,\"x\":123456}\n\n{\"kind\":\"mul_var\",\"x\":-3,\"y\":9001}\n",
        )
        .unwrap();
        let opts = VerifyOptions {
            replay: Some(path.display().to_string()),
            cases: 0,
            ..VerifyOptions::default()
        };
        let report = execute(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.cases_run, 2);
        assert!(report.passed(), "{:?}", report.divergences);
    }

    #[test]
    fn replay_accepts_failure_artifacts_verbatim() {
        // A failures file as write_failures produces it: schema header,
        // then verify events embedding their cases as compact JSON strings.
        let path = std::env::temp_dir().join(format!(
            "hppa_verify_replay_artifact_{}.jsonl",
            std::process::id()
        ));
        std::fs::write(
            &path,
            concat!(
                "{\"schema_version\":2}\n",
                "{\"event\":\"verify\",\"suite\":\"divergence\",",
                "\"case\":\"{\\\"kind\\\":\\\"udiv_const\\\",\\\"y\\\":7,\\\"x\\\":123456}\",",
                "\"detail\":\"[sim vs oracle] values differ\"}\n",
            ),
        )
        .unwrap();
        let opts = VerifyOptions {
            replay: Some(path.display().to_string()),
            cases: 0,
            ..VerifyOptions::default()
        };
        let report = execute(&opts).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(report.cases_run, 1, "header skipped, event unwrapped");
        assert!(report.passed(), "{:?}", report.divergences);
    }

    #[test]
    fn execute_surfaces_configuration_errors() {
        let missing = VerifyOptions {
            budgets: Some("no/such/budgets.toml".to_string()),
            ..VerifyOptions::default()
        };
        assert!(execute(&missing).unwrap_err().contains("cannot read"));
        let missing_replay = VerifyOptions {
            replay: Some("no/such/replay.jsonl".to_string()),
            cases: 0,
            ..VerifyOptions::default()
        };
        assert!(execute(&missing_replay)
            .unwrap_err()
            .contains("cannot read replay"));
    }
}
