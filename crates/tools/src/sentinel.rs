//! The perf-regression sentinel behind `hppa bench --compare` (and `hppa
//! report --compare`): diff a freshly generated benchmark document against a
//! committed `BENCH_prN.json` baseline, per workload, against configurable
//! thresholds, and report regressions for CI to fail on.
//!
//! The paper workloads are fully deterministic — their cycle counts are a
//! property of the generated code, not of the host — so the default cycle
//! threshold is **zero percent**: any cycle growth is a real codegen or
//! simulator change and deserves a failing check. Thresholds live in
//! `bench/thresholds.toml` (a small hand-rolled parser; this workspace takes
//! no external dependencies), where individual workloads can be granted
//! slack and the host-noisy throughput comparison can be opted into.
//!
//! Baselines from the PR 1–2 era carry no `schema_version` field and are
//! read as version 1; documents claiming a version newer than
//! [`telemetry::SCHEMA_VERSION`] are refused with a clear error rather than
//! mis-read.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use telemetry::json::Json;

/// Thresholds for the comparison, normally loaded from
/// `bench/thresholds.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Allowed cycle growth in percent before a workload regresses.
    pub cycles_default_pct: f64,
    /// Per-workload overrides of the cycle threshold.
    pub cycles_overrides: BTreeMap<String, f64>,
    /// Whether to also gate on wall-clock throughput (off by default:
    /// ops/sec is host-noisy and belongs in CI only with generous slack).
    pub throughput_enabled: bool,
    /// Allowed `prepared_ops_per_sec` drop in percent.
    pub throughput_default_pct: f64,
    /// Whether to gate on the parallel scaling section (off by default:
    /// multi-thread wall-clock speedup depends entirely on how many host
    /// cores the runner actually has).
    pub parallel_enabled: bool,
    /// Minimum acceptable `speedup_vs_1` at [`Thresholds::parallel_at_threads`].
    pub parallel_min_speedup: f64,
    /// The thread count the speedup gate inspects.
    pub parallel_at_threads: u64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            cycles_default_pct: 0.0,
            cycles_overrides: BTreeMap::new(),
            throughput_enabled: false,
            throughput_default_pct: 10.0,
            parallel_enabled: false,
            parallel_min_speedup: 2.0,
            parallel_at_threads: 4,
        }
    }
}

impl Thresholds {
    /// Parses the `bench/thresholds.toml` dialect: `[section]` headers,
    /// `key = value` pairs (floats, integers, booleans), `#` comments.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending line.
    pub fn from_toml(text: &str) -> Result<Thresholds, String> {
        let mut t = Thresholds::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: &str| format!("thresholds line {}: {msg}", idx + 1);
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| at("unterminated section header"))?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at("expected `key = value`"))?;
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            let as_pct = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| at(&format!("`{key}` must be a number, got `{value}`")))
            };
            match (section.as_str(), key) {
                ("cycles", "default") => t.cycles_default_pct = as_pct()?,
                ("cycles.workloads", workload) => {
                    t.cycles_overrides.insert(workload.to_string(), as_pct()?);
                }
                ("throughput", "enabled") => {
                    t.throughput_enabled = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(at("`enabled` must be true or false")),
                    }
                }
                ("throughput", "default") => t.throughput_default_pct = as_pct()?,
                ("parallel", "enabled") => {
                    t.parallel_enabled = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(at("`enabled` must be true or false")),
                    }
                }
                ("parallel", "min_speedup") => t.parallel_min_speedup = as_pct()?,
                ("parallel", "at_threads") => {
                    t.parallel_at_threads = value.parse::<u64>().map_err(|_| {
                        at(&format!("`at_threads` must be an integer, got `{value}`"))
                    })?;
                }
                _ => return Err(at(&format!("unknown key `{key}` in section `[{section}]`"))),
            }
        }
        Ok(t)
    }

    /// Loads thresholds from a file, or the defaults when `path` is `None`.
    ///
    /// # Errors
    ///
    /// I/O or parse failures as a human-readable message.
    pub fn load(path: Option<&str>) -> Result<Thresholds, String> {
        match path {
            None => Ok(Thresholds::default()),
            Some(p) => {
                let text = std::fs::read_to_string(p)
                    .map_err(|e| format!("cannot read thresholds {p}: {e}"))?;
                Thresholds::from_toml(&text)
            }
        }
    }

    fn cycles_pct_for(&self, workload: &str) -> f64 {
        self.cycles_overrides
            .get(workload)
            .copied()
            .unwrap_or(self.cycles_default_pct)
    }
}

/// The schema version a benchmark document declares (documents predating
/// the field are version 1).
///
/// # Errors
///
/// A clear message when the field is malformed or newer than this binary
/// supports.
pub fn schema_version(doc: &Json) -> Result<u64, String> {
    let version = match doc.get("schema_version") {
        None => 1,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "schema_version must be a non-negative integer".to_string())?,
    };
    if version == 0 || version > telemetry::SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version}: this build reads versions 1..={} — \
             regenerate the file or update the toolchain",
            telemetry::SCHEMA_VERSION
        ));
    }
    Ok(version)
}

/// One workload's cycle diff.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDelta {
    /// Workload name.
    pub workload: String,
    /// Cycles recorded by the baseline document.
    pub baseline_cycles: u64,
    /// Cycles measured now.
    pub current_cycles: u64,
    /// Growth in percent (positive = slower now).
    pub delta_pct: f64,
    /// The threshold applied.
    pub threshold_pct: f64,
    /// Whether the growth exceeds the threshold.
    pub regressed: bool,
}

/// One throughput record's ops/sec diff (only populated when enabled).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputDelta {
    /// Workload name.
    pub workload: String,
    /// Baseline `prepared_ops_per_sec`.
    pub baseline_ops_per_sec: f64,
    /// Current `prepared_ops_per_sec`.
    pub current_ops_per_sec: f64,
    /// Drop in percent (positive = slower now).
    pub drop_pct: f64,
    /// The threshold applied.
    pub threshold_pct: f64,
    /// Whether the drop exceeds the threshold.
    pub regressed: bool,
}

/// The opt-in absolute gate on the current document's parallel scaling
/// section: `speedup_vs_1` at the configured thread count must reach the
/// configured minimum. Unlike the cycle and throughput gates this does not
/// diff against the baseline — scaling is a property of the current build
/// on the current host.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelCheck {
    /// The thread count inspected.
    pub threads: u64,
    /// `speedup_vs_1` the current document reports at that thread count
    /// (0.0 when the record is missing — which also regresses).
    pub speedup_vs_1: f64,
    /// The minimum the thresholds demand.
    pub min_speedup: f64,
    /// Whether the gate failed.
    pub regressed: bool,
}

/// The full comparison of a current document against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Schema version of the baseline document.
    pub baseline_version: u64,
    /// Schema version of the current document.
    pub current_version: u64,
    /// Per-workload cycle diffs, in current-document order.
    pub deltas: Vec<WorkloadDelta>,
    /// Throughput diffs (empty unless enabled in the thresholds).
    pub throughput: Vec<ThroughputDelta>,
    /// The parallel scaling gate (`None` unless enabled in the thresholds).
    pub parallel: Option<ParallelCheck>,
    /// Workloads the baseline had but the current run lost — counted as a
    /// regression (coverage must not silently shrink).
    pub missing_in_current: Vec<String>,
    /// Workloads new since the baseline (informational).
    pub new_in_current: Vec<String>,
}

impl Comparison {
    /// Whether anything regressed (the CI gate).
    #[must_use]
    pub fn regressed(&self) -> bool {
        !self.missing_in_current.is_empty()
            || self.deltas.iter().any(|d| d.regressed)
            || self.throughput.iter().any(|t| t.regressed)
            || self.parallel.as_ref().is_some_and(|p| p.regressed)
    }

    /// A human-readable table of the comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf sentinel: baseline schema v{}, current schema v{}",
            self.baseline_version, self.current_version
        );
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>9}  verdict",
            "workload", "baseline", "current", "delta"
        );
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.current_cycles < d.baseline_cycles {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<28} {:>12} {:>12} {:>+8.2}%  {verdict} (threshold {:+.2}%)",
                d.workload, d.baseline_cycles, d.current_cycles, d.delta_pct, d.threshold_pct
            );
        }
        for t in &self.throughput {
            let verdict = if t.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "{:<28} {:>10.0}/s {:>10.0}/s {:>+8.2}%  {verdict} (throughput, threshold {:+.2}%)",
                t.workload,
                t.baseline_ops_per_sec,
                t.current_ops_per_sec,
                -t.drop_pct,
                t.threshold_pct
            );
        }
        if let Some(p) = &self.parallel {
            let verdict = if p.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "{:<28} {:>10.2}x @ {} threads  {verdict} (parallel, minimum {:.2}x)",
                "e13_parallel_mix", p.speedup_vs_1, p.threads, p.min_speedup
            );
        }
        for name in &self.missing_in_current {
            let _ = writeln!(out, "{name:<28} missing from current run  REGRESSED");
        }
        for name in &self.new_in_current {
            let _ = writeln!(out, "{name:<28} new since baseline (no comparison)");
        }
        out
    }
}

fn workload_cycles(doc: &Json, section_missing: &str) -> Result<Vec<(String, u64)>, String> {
    let records = doc
        .get("workloads")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{section_missing}: no `workloads` array"))?;
    records
        .iter()
        .map(|r| {
            let name = r
                .get("workload")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{section_missing}: workload record without a name"))?;
            let cycles = r
                .get("cycles")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{section_missing}: `{name}` has no cycles"))?;
            Ok((name.to_string(), cycles))
        })
        .collect()
}

fn pct_change(baseline: u64, current: u64) -> f64 {
    if baseline == 0 {
        if current == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (current as f64 - baseline as f64) * 100.0 / baseline as f64
    }
}

/// Compares a freshly generated document against a baseline.
///
/// # Errors
///
/// A human-readable message on schema refusal or malformed documents.
pub fn compare(
    current: &Json,
    baseline: &Json,
    thresholds: &Thresholds,
) -> Result<Comparison, String> {
    let baseline_version =
        schema_version(baseline).map_err(|e| format!("baseline refused: {e}"))?;
    let current_version = schema_version(current).map_err(|e| format!("current refused: {e}"))?;

    let base_cycles: BTreeMap<String, u64> =
        workload_cycles(baseline, "baseline")?.into_iter().collect();
    let current_list = workload_cycles(current, "current")?;

    let mut deltas = Vec::new();
    let mut new_in_current = Vec::new();
    for (name, cycles) in &current_list {
        match base_cycles.get(name) {
            Some(&base) => {
                let delta_pct = pct_change(base, *cycles);
                let threshold_pct = thresholds.cycles_pct_for(name);
                deltas.push(WorkloadDelta {
                    workload: name.clone(),
                    baseline_cycles: base,
                    current_cycles: *cycles,
                    delta_pct,
                    threshold_pct,
                    regressed: delta_pct > threshold_pct,
                });
            }
            None => new_in_current.push(name.clone()),
        }
    }
    let current_names: BTreeMap<&str, ()> =
        current_list.iter().map(|(n, _)| (n.as_str(), ())).collect();
    let missing_in_current: Vec<String> = base_cycles
        .keys()
        .filter(|n| !current_names.contains_key(n.as_str()))
        .cloned()
        .collect();

    let mut throughput = Vec::new();
    if thresholds.throughput_enabled {
        let records = |doc: &Json| -> BTreeMap<String, f64> {
            doc.get("throughput")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|r| {
                    let name = r.get("workload").and_then(Json::as_str)?;
                    let ops = r.get("prepared_ops_per_sec").and_then(Json::as_f64)?;
                    Some((name.to_string(), ops))
                })
                .collect()
        };
        let base_tp = records(baseline);
        for (name, current_ops) in records(current) {
            if let Some(&base_ops) = base_tp.get(&name) {
                let drop_pct = if base_ops > 0.0 {
                    (base_ops - current_ops) * 100.0 / base_ops
                } else {
                    0.0
                };
                throughput.push(ThroughputDelta {
                    workload: name,
                    baseline_ops_per_sec: base_ops,
                    current_ops_per_sec: current_ops,
                    drop_pct,
                    threshold_pct: thresholds.throughput_default_pct,
                    regressed: drop_pct > thresholds.throughput_default_pct,
                });
            }
        }
    }

    let parallel = thresholds.parallel_enabled.then(|| {
        let speedup = current
            .get("parallel")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .find(|r| {
                r.get("threads").and_then(Json::as_u64) == Some(thresholds.parallel_at_threads)
            })
            .and_then(|r| r.get("speedup_vs_1").and_then(Json::as_f64))
            .unwrap_or(0.0);
        ParallelCheck {
            threads: thresholds.parallel_at_threads,
            speedup_vs_1: speedup,
            min_speedup: thresholds.parallel_min_speedup,
            regressed: speedup < thresholds.parallel_min_speedup,
        }
    });

    Ok(Comparison {
        baseline_version,
        current_version,
        deltas,
        throughput,
        parallel,
        missing_in_current,
        new_in_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json::parse;

    fn doc(version: Option<u64>, workloads: &[(&str, u64)]) -> Json {
        let mut pairs = Vec::new();
        if let Some(v) = version {
            pairs.push(("schema_version".to_string(), Json::uint(v)));
        }
        pairs.push((
            "workloads".to_string(),
            Json::Array(
                workloads
                    .iter()
                    .map(|(name, cycles)| {
                        Json::object(vec![
                            ("workload".to_string(), Json::str(*name)),
                            ("cycles".to_string(), Json::uint(*cycles)),
                        ])
                    })
                    .collect(),
            ),
        ));
        pairs.push(("throughput".to_string(), Json::Array(Vec::new())));
        Json::object(pairs)
    }

    #[test]
    fn missing_schema_version_reads_as_v1() {
        assert_eq!(schema_version(&doc(None, &[])), Ok(1));
        assert_eq!(
            schema_version(&doc(Some(telemetry::SCHEMA_VERSION), &[])),
            Ok(telemetry::SCHEMA_VERSION)
        );
    }

    #[test]
    fn newer_schema_versions_are_refused_clearly() {
        let err = schema_version(&doc(Some(99), &[])).unwrap_err();
        assert!(err.contains("unsupported schema_version 99"), "{err}");
        assert!(err.contains("1..="), "{err}");
        let err =
            compare(&doc(None, &[]), &doc(Some(99), &[]), &Thresholds::default()).unwrap_err();
        assert!(err.contains("baseline refused"), "{err}");
    }

    #[test]
    fn equal_cycles_pass_at_zero_threshold() {
        let base = doc(None, &[("a", 100), ("b", 250)]);
        let cur = doc(Some(2), &[("a", 100), ("b", 250)]);
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(!cmp.regressed(), "{}", cmp.render());
        assert_eq!(cmp.baseline_version, 1);
        assert_eq!(cmp.current_version, 2);
    }

    #[test]
    fn cycle_growth_beyond_threshold_regresses() {
        let base = doc(None, &[("a", 100)]);
        let cur = doc(Some(2), &[("a", 110)]);
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(cmp.regressed());
        assert!((cmp.deltas[0].delta_pct - 10.0).abs() < 1e-9);
        assert!(cmp.render().contains("REGRESSED"), "{}", cmp.render());

        // The same growth passes when the workload is granted slack.
        let mut relaxed = Thresholds::default();
        relaxed.cycles_overrides.insert("a".to_string(), 15.0);
        assert!(!compare(&cur, &base, &relaxed).unwrap().regressed());
    }

    #[test]
    fn improvements_and_new_workloads_do_not_regress() {
        let base = doc(None, &[("a", 100)]);
        let cur = doc(Some(2), &[("a", 90), ("brand_new", 7)]);
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(!cmp.regressed(), "{}", cmp.render());
        assert_eq!(cmp.new_in_current, vec!["brand_new".to_string()]);
        assert!(cmp.render().contains("improved"));
    }

    #[test]
    fn lost_workloads_regress() {
        let base = doc(None, &[("a", 100), ("gone", 5)]);
        let cur = doc(Some(2), &[("a", 100)]);
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(cmp.regressed());
        assert_eq!(cmp.missing_in_current, vec!["gone".to_string()]);
    }

    #[test]
    fn toml_parsing_covers_the_dialect() {
        let t = Thresholds::from_toml(
            "# comment\n\
             [cycles]\n\
             default = 0.5 # inline comment\n\
             [cycles.workloads]\n\
             figure5_switched_multiply = 2.0\n\
             [throughput]\n\
             enabled = true\n\
             default = 25\n",
        )
        .unwrap();
        assert!((t.cycles_default_pct - 0.5).abs() < 1e-12);
        assert_eq!(
            t.cycles_overrides.get("figure5_switched_multiply"),
            Some(&2.0)
        );
        assert!(t.throughput_enabled);
        assert!((t.throughput_default_pct - 25.0).abs() < 1e-12);
        assert_eq!(t.cycles_pct_for("figure5_switched_multiply"), 2.0);
        assert_eq!(t.cycles_pct_for("other"), 0.5);
    }

    #[test]
    fn toml_errors_name_the_line() {
        let err = Thresholds::from_toml("[cycles]\nnonsense\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Thresholds::from_toml("[cycles]\ndefault = fast\n").unwrap_err();
        assert!(err.contains("must be a number"), "{err}");
        let err = Thresholds::from_toml("[mystery]\nx = 1\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn throughput_gate_is_opt_in() {
        let with_tp = |ops: f64| {
            parse(&format!(
                "{{\"workloads\": [], \"throughput\": [{{\"workload\": \"mix\", \
                 \"prepared_ops_per_sec\": {ops}}}]}}"
            ))
            .unwrap()
        };
        let base = with_tp(1000.0);
        let cur = with_tp(500.0);
        // Disabled (the default): a 50% drop is ignored.
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(cmp.throughput.is_empty());
        assert!(!cmp.regressed());
        // Enabled: the same drop trips the gate.
        let enabled = Thresholds {
            throughput_enabled: true,
            ..Thresholds::default()
        };
        let cmp = compare(&cur, &base, &enabled).unwrap();
        assert_eq!(cmp.throughput.len(), 1);
        assert!(cmp.regressed());
    }

    #[test]
    fn parallel_toml_keys_parse() {
        let t = Thresholds::from_toml(
            "[parallel]\n\
             enabled = true\n\
             min_speedup = 1.5\n\
             at_threads = 8\n",
        )
        .unwrap();
        assert!(t.parallel_enabled);
        assert!((t.parallel_min_speedup - 1.5).abs() < 1e-12);
        assert_eq!(t.parallel_at_threads, 8);
        let err = Thresholds::from_toml("[parallel]\nat_threads = many\n").unwrap_err();
        assert!(err.contains("must be an integer"), "{err}");
    }

    #[test]
    fn parallel_gate_is_opt_in_and_absolute() {
        let cur = parse(
            "{\"workloads\": [], \"throughput\": [], \"parallel\": [\
             {\"workload\": \"e13_parallel_mix\", \"threads\": 1, \"speedup_vs_1\": 1.0},\
             {\"workload\": \"e13_parallel_mix\", \"threads\": 4, \"speedup_vs_1\": 1.3}]}",
        )
        .unwrap();
        let base = parse("{\"workloads\": [], \"throughput\": []}").unwrap();
        // Disabled (the default): sub-minimum scaling is ignored entirely.
        let cmp = compare(&cur, &base, &Thresholds::default()).unwrap();
        assert!(cmp.parallel.is_none());
        assert!(!cmp.regressed());
        // Enabled: 1.3x at 4 threads misses the default 2x floor.
        let enabled = Thresholds {
            parallel_enabled: true,
            ..Thresholds::default()
        };
        let cmp = compare(&cur, &base, &enabled).unwrap();
        let p = cmp.parallel.clone().unwrap();
        assert_eq!(p.threads, 4);
        assert!((p.speedup_vs_1 - 1.3).abs() < 1e-12);
        assert!(p.regressed);
        assert!(cmp.regressed());
        assert!(cmp.render().contains("parallel"), "{}", cmp.render());
        // A relaxed floor passes the same document.
        let relaxed = Thresholds {
            parallel_enabled: true,
            parallel_min_speedup: 1.25,
            ..Thresholds::default()
        };
        assert!(!compare(&cur, &base, &relaxed).unwrap().regressed());
        // A missing record regresses when the gate is on: the section must
        // not silently disappear while CI claims scaling holds.
        let cmp = compare(&base, &base, &enabled).unwrap();
        assert!(cmp.parallel.unwrap().regressed);
    }
}
