//! The `hppa report` builder: replay the paper-table workloads with the
//! simulator's [`SimStats`] and the telemetry collector both armed, and fold
//! everything into one JSON document:
//!
//! ```json
//! {"schema_version": N,
//!  "workloads": [{"workload": "…", "cycles": N, "executed": N, "nullified": N,
//!                 "per_opcode": {"add": N, …},
//!                 "strategy_histogram": {"mul/nibble-x1": N, …},
//!                 "regions": [{"label": "…", "cycles": N, "executed": N,
//!                              "nullified": N, "taken_branches": N}, …]}, …],
//!  "throughput": [{"workload": "e13_multiply_mix", "ops": N,
//!                  "simulated_cycles": N, "unprepared_ns": N, "prepared_ns": N,
//!                  "unprepared_ops_per_sec": F, "prepared_ops_per_sec": F,
//!                  "speedup": F}, …],
//!  "parallel": [{"workload": "e13_parallel_mix", "threads": N, "ops": N,
//!                "wall_ns": N, "ops_per_sec": F, "simulated_cycles": N,
//!                "checksum": N, "speedup_vs_1": F}, …]}
//! ```
//!
//! The five `workloads` records mirror the paper's measurement tables: the
//! Figure 5 switched multiply per operand class, the ≈80-cycle general
//! divide, the §7 small-divisor dispatch, the §5 constant-multiply chains,
//! and the §7 derived-method constant divides. Every operand stream is
//! deterministic (fixed strides or seeded mixes, no ambient RNG), so the
//! `workloads` section is reproducible byte for byte.
//!
//! The `throughput` records time the same E13 operand mix twice in wall
//! clock: once through the old one-shot path (cold compile per operation,
//! fresh machine per call, interpreter execution) and once through the hot
//! path (strategy-keyed compile cache, pre-decoded programs, batched
//! sessions). Simulated cycles and result checksums are asserted identical
//! between the passes — the speedup is pure host-side overhead removed.

use std::collections::BTreeMap;
use std::time::Instant;

use divconst::{compile_div_const, DivCodegenConfig, Signedness};
use hppa_muldiv::operand_dist::{DivMix, DivOp, Figure5Mix, CONSTANT_OPERAND_PERCENT};
use hppa_muldiv::{Compiler, Runtime, DISPATCH_LIMIT};
use millicode::{divvar, mulvar};
use mulconst::{compile_mul_const, CodegenConfig};
use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, Machine, RegionCycles, SimStats};
use telemetry::json::Json;
use telemetry::Event;

/// One replayed workload with its aggregate counters.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Stable workload name (the `workload` field of `BENCH_*.json`).
    pub workload: &'static str,
    /// Total fetched slots across all runs (`executed + nullified`).
    pub cycles: u64,
    /// Executed (non-nullified) instructions.
    pub executed: u64,
    /// Fetched-but-nullified slots.
    pub nullified: u64,
    /// Executed-instruction counts per mnemonic (zero entries omitted).
    pub per_opcode: BTreeMap<&'static str, u64>,
    /// `family/detail` counts folded from the telemetry event stream.
    pub strategy_histogram: BTreeMap<String, u64>,
    /// Per-label cycle attribution merged across every run of the workload
    /// (in program order; the folded-stack profiler consumes these).
    pub regions: Vec<RegionCycles>,
}

impl WorkloadReport {
    /// The JSON object form, matching the `BENCH_*.json` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let per_opcode = Json::object(
            self.per_opcode
                .iter()
                .map(|(op, n)| ((*op).to_string(), Json::uint(*n)))
                .collect(),
        );
        Json::object(vec![
            ("workload".to_string(), Json::str(self.workload)),
            ("cycles".to_string(), Json::uint(self.cycles)),
            ("executed".to_string(), Json::uint(self.executed)),
            ("nullified".to_string(), Json::uint(self.nullified)),
            ("per_opcode".to_string(), per_opcode),
            (
                "strategy_histogram".to_string(),
                Json::from_counts(&self.strategy_histogram),
            ),
            (
                "regions".to_string(),
                Json::Array(
                    self.regions
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("label".to_string(), Json::str(&r.label)),
                                ("cycles".to_string(), Json::uint(r.cycles)),
                                ("executed".to_string(), Json::uint(r.executed)),
                                ("nullified".to_string(), Json::uint(r.nullified)),
                                ("taken_branches".to_string(), Json::uint(r.taken_branches)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One wall-clock comparison of the one-shot path against the hot path over
/// the same operation stream.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Stable workload name.
    pub workload: &'static str,
    /// Operations replayed (each pass runs all of them).
    pub ops: u64,
    /// Simulated cycles consumed — identical in both passes by assertion.
    pub simulated_cycles: u64,
    /// Wall-clock nanoseconds for the cold-compile, fresh-machine,
    /// interpreter pass.
    pub unprepared_ns: u64,
    /// Wall-clock nanoseconds for the cached, pre-decoded, batched pass.
    pub prepared_ns: u64,
}

impl ThroughputReport {
    /// Host operations per second of the one-shot path.
    #[must_use]
    pub fn unprepared_ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.unprepared_ns.max(1) as f64
    }

    /// Host operations per second of the hot path.
    #[must_use]
    pub fn prepared_ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.prepared_ns.max(1) as f64
    }

    /// Hot-path speedup over the one-shot path.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.unprepared_ns.max(1) as f64 / self.prepared_ns.max(1) as f64
    }

    /// The JSON object form, matching the `BENCH_*.json` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("workload".to_string(), Json::str(self.workload)),
            ("ops".to_string(), Json::uint(self.ops)),
            (
                "simulated_cycles".to_string(),
                Json::uint(self.simulated_cycles),
            ),
            ("unprepared_ns".to_string(), Json::uint(self.unprepared_ns)),
            ("prepared_ns".to_string(), Json::uint(self.prepared_ns)),
            (
                "unprepared_ops_per_sec".to_string(),
                Json::Float(self.unprepared_ops_per_sec()),
            ),
            (
                "prepared_ops_per_sec".to_string(),
                Json::Float(self.prepared_ops_per_sec()),
            ),
            ("speedup".to_string(), Json::Float(self.speedup())),
        ])
    }
}

/// One thread-count measurement of the E13 mixed workload through the
/// worker-pool [`hppa_muldiv::ParallelExecutor`].
///
/// Records at different `threads` values are directly comparable: the
/// engine guarantees bit-identical results and summed simulated cycles
/// for any pool width, and the builder asserts both, so only `wall_ns`
/// may differ between records.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Stable workload name (`"e13_parallel_mix"`).
    pub workload: &'static str,
    /// Worker threads the batch was partitioned across.
    pub threads: u64,
    /// Operations executed (multiplies plus dispatch divides).
    pub ops: u64,
    /// Wall-clock nanoseconds for the timed pass (after an untimed warm
    /// pass that populates caches and faults in the routines).
    pub wall_ns: u64,
    /// Simulated cycles consumed — identical at every thread count by
    /// assertion.
    pub simulated_cycles: u64,
    /// FNV-1a checksum over both batch outcomes — identical at every
    /// thread count by assertion.
    pub checksum: u64,
    /// Wall-clock speedup relative to the single-thread record of the
    /// same run (1.0 for the single-thread record itself).
    pub speedup_vs_1: f64,
}

impl ParallelReport {
    /// Host operations per second of the timed pass.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    /// The JSON object form, matching the `BENCH_*.json` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("workload".to_string(), Json::str(self.workload)),
            ("threads".to_string(), Json::uint(self.threads)),
            ("ops".to_string(), Json::uint(self.ops)),
            ("wall_ns".to_string(), Json::uint(self.wall_ns)),
            ("ops_per_sec".to_string(), Json::Float(self.ops_per_sec())),
            (
                "simulated_cycles".to_string(),
                Json::uint(self.simulated_cycles),
            ),
            ("checksum".to_string(), Json::uint(self.checksum)),
            ("speedup_vs_1".to_string(), Json::Float(self.speedup_vs_1)),
        ])
    }
}

/// Every paper-table workload, in report order.
#[must_use]
pub fn paper_workloads() -> Vec<WorkloadReport> {
    vec![
        figure5_switched_multiply(),
        general_divide(),
        small_divisor_dispatch(),
        constant_multiply_chains(),
        constant_divide(),
    ]
}

/// The E13 wall-clock comparisons at the default batch size.
#[must_use]
pub fn throughput_workloads() -> Vec<ThroughputReport> {
    throughput_workloads_with(1_000)
}

/// The E13 wall-clock comparisons over `n` operations each.
#[must_use]
pub fn throughput_workloads_with(n: usize) -> Vec<ThroughputReport> {
    vec![e13_multiply_mix(n), e13_divide_mix(n)]
}

/// The thread counts every parallel scaling run measures.
pub const PARALLEL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The E13 parallel scaling measurements at the default batch size.
#[must_use]
pub fn parallel_workloads() -> Vec<ParallelReport> {
    parallel_workloads_with(1_000)
}

/// The E13 mixed workload (multiplies plus dispatch divides, `n` ops
/// total) replayed through the worker-pool engine at each thread count in
/// [`PARALLEL_THREADS`].
///
/// The engine is built once — every record shares the same prepared
/// routines and compile cache via [`hppa_muldiv::ParallelExecutor::with_workers`] —
/// and each thread count gets one untimed warm pass before the timed one.
/// Results are asserted bit-identical across thread counts (checksums and
/// summed simulated cycles), so the records differ only in wall clock.
///
/// # Panics
///
/// If any thread count produces a different checksum or cycle total than
/// the single-thread baseline — that would be an engine determinism bug.
#[must_use]
pub fn parallel_workloads_with(n: usize) -> Vec<ParallelReport> {
    let half = (n / 2).max(1);
    let mul_pairs = Figure5Mix::new().pairs(13, half);
    let div_pairs: Vec<(u32, u32)> = DivMix::default()
        .ops(13, half)
        .into_iter()
        .map(|op| match op {
            DivOp::Constant { x, y } | DivOp::Variable { x, y } => (x, y),
        })
        .collect();
    let ops = (mul_pairs.len() + div_pairs.len()) as u64;

    let rt = Runtime::new().expect("routines build");
    let engine = rt.engine();
    let mut reports: Vec<ParallelReport> = Vec::with_capacity(PARALLEL_THREADS.len());
    for threads in PARALLEL_THREADS {
        let pool = engine.with_workers(threads).expect("non-zero threads");
        // Warm pass: faults in code paths and populates the shared cache
        // so the timed pass measures steady-state execution only.
        pool.mul_batch(&mul_pairs).expect("warm multiply");
        pool.div_dispatch_batch(&div_pairs).expect("warm divide");
        let started = Instant::now();
        let mul_out = pool.mul_batch(&mul_pairs).expect("timed multiply");
        let div_out = pool.div_dispatch_batch(&div_pairs).expect("timed divide");
        let wall_ns = started.elapsed().as_nanos() as u64;
        let simulated_cycles = mul_out.cycles + div_out.cycles;
        let checksum = mul_out
            .checksum()
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(div_out.checksum());
        if let Some(base) = reports.first() {
            assert_eq!(checksum, base.checksum, "{threads} threads: checksum");
            assert_eq!(
                simulated_cycles, base.simulated_cycles,
                "{threads} threads: cycles"
            );
        }
        let speedup_vs_1 = reports.first().map_or(1.0, |base| {
            base.wall_ns.max(1) as f64 / wall_ns.max(1) as f64
        });
        reports.push(ParallelReport {
            workload: "e13_parallel_mix",
            threads: threads as u64,
            ops,
            wall_ns,
            simulated_cycles,
            checksum,
            speedup_vs_1,
        });
    }
    reports
}

/// The full report document:
/// `{"schema_version": N, "workloads": […], "throughput": […],
/// "parallel": […]}`.
#[must_use]
pub fn report_json(
    workloads: &[WorkloadReport],
    throughput: &[ThroughputReport],
    parallel: &[ParallelReport],
) -> Json {
    Json::object(vec![
        (
            "schema_version".to_string(),
            Json::uint(telemetry::SCHEMA_VERSION),
        ),
        (
            "workloads".to_string(),
            Json::Array(workloads.iter().map(WorkloadReport::to_json).collect()),
        ),
        (
            "throughput".to_string(),
            Json::Array(throughput.iter().map(ThroughputReport::to_json).collect()),
        ),
        (
            "parallel".to_string(),
            Json::Array(parallel.iter().map(ParallelReport::to_json).collect()),
        ),
    ])
}

/// Accumulates merged [`SimStats`] over many stats-enabled runs, replaying
/// every program on one reused (reset) machine.
struct Runner {
    config: ExecConfig,
    machine: Machine,
    stats: SimStats,
}

impl Runner {
    fn new() -> Runner {
        Runner {
            config: ExecConfig::default().with_stats(),
            machine: Machine::new(),
            stats: SimStats::default(),
        }
    }

    /// Runs `p` to completion, merging its stats; returns the run's cycles.
    fn run(&mut self, p: &Program, inputs: &[(Reg, u32)]) -> u64 {
        self.machine.reset();
        for &(reg, value) in inputs {
            self.machine.set_reg(reg, value);
        }
        let result = pa_sim::run(p, &mut self.machine, &self.config);
        assert!(
            result.termination.is_completed(),
            "workload run must complete: {:?}",
            result.termination
        );
        let stats = result.stats.as_deref().expect("stats were enabled");
        self.stats.merge(stats);
        result.cycles
    }

    fn finish(self, workload: &'static str, events: &[Event]) -> WorkloadReport {
        let executed = self.stats.executed_total();
        let nullified = self.stats.nullified_total();
        WorkloadReport {
            workload,
            cycles: executed + nullified,
            executed,
            nullified,
            per_opcode: self.stats.per_opcode(),
            strategy_histogram: telemetry::strategy_histogram(events),
            regions: self.stats.regions,
        }
    }
}

/// Figure 5 — the switched multiply over the paper's four operand classes,
/// sampling each `min(|x|,|y|)` band on a fixed stride.
fn figure5_switched_multiply() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let p = mulvar::switched(true).expect("switched builds");
        let mut runner = Runner::new();
        // (lo, hi) bands of Figure 5, plus the 0/1 quick-exit drivers.
        let classes: [(u32, u32); 4] = [(0, 15), (16, 255), (256, 4095), (4096, 46340)];
        let multiplicand = 60_000u32;
        for (lo, hi) in classes {
            let step = ((hi - lo) / 8).max(1);
            let mut driver = lo;
            while driver <= hi {
                let cycles = runner.run(&p, &[(Reg::R26, driver), (Reg::R25, multiplicand)]);
                telemetry::emit(|| {
                    let (tier, operand) = mulvar::tier_for(true, driver, multiplicand);
                    Event::MulStrategy {
                        routine: "switched",
                        tier,
                        operand: i64::from(operand),
                        cycles: Some(cycles),
                    }
                });
                match driver.checked_add(step) {
                    Some(next) if next <= hi => driver = next,
                    _ => break,
                }
            }
        }
        runner
    });
    runner.finish("figure5_switched_multiply", &events)
}

/// §4 — the general `DS`/`ADDC` divide (the paper's "average 80 cycles"),
/// over a divisor sweep that also hits the big-divisor special case.
fn general_divide() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let p = divvar::udiv().expect("udiv builds");
        let mut runner = Runner::new();
        let dividends = [1u32, 1000, 1_000_000_007, u32::MAX];
        let divisors = [1u32, 7, 97, 65_537, 0x8000_0000];
        for &x in &dividends {
            for &y in &divisors {
                let cycles = runner.run(&p, &[(Reg::R26, x), (Reg::R25, y)]);
                telemetry::emit(|| Event::DivDispatch {
                    routine: "udiv",
                    tier: divvar::general_tier(false, y),
                    divisor: i64::from(y),
                    cycles: Some(cycles),
                });
            }
        }
        runner
    });
    runner.finish("general_divide", &events)
}

/// §7 — the small-divisor `BLR` dispatch: constructing the routine emits the
/// planner's `DivPlan` events (one per inlined body), and every run below
/// the cutoff lands in an inlined derived-method body.
fn small_divisor_dispatch() -> WorkloadReport {
    const LIMIT: u32 = 20;
    let (runner, events) = telemetry::collect(|| {
        let p = divvar::small_dispatch(LIMIT).expect("dispatch builds");
        let mut runner = Runner::new();
        let dividends = [1u32, 19, 12_345, 1_000_000_007, u32::MAX];
        for y in 1..=LIMIT {
            for &x in &dividends {
                let cycles = runner.run(&p, &[(Reg::R26, x), (Reg::R25, y)]);
                telemetry::emit(|| Event::DivDispatch {
                    routine: "small_dispatch",
                    tier: divvar::dispatch_tier(LIMIT, y),
                    divisor: i64::from(y),
                    cycles: Some(cycles),
                });
            }
        }
        runner
    });
    runner.finish("small_divisor_dispatch", &events)
}

/// §5 — constant multiplies over the Figure 1 range: the chain searcher
/// emits one `ChainSearch` per target, and each compiled body runs once.
fn constant_multiply_chains() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let cfg = CodegenConfig::default();
        let mut runner = Runner::new();
        for n in 2..=100i64 {
            let p = compile_mul_const(n, &cfg).expect("constant multiply compiles");
            runner.run(&p, &[(Reg::R26, 321)]);
        }
        runner
    });
    runner.finish("constant_multiply_chains", &events)
}

/// §7 — derived-method constant divides for every divisor the paper's
/// dispatch table covers: planning emits one `DivPlan` per divisor.
fn constant_divide() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let cfg = DivCodegenConfig::default();
        let mut runner = Runner::new();
        for y in 2..=20u32 {
            let p =
                compile_div_const(y, Signedness::Unsigned, &cfg).expect("constant divide compiles");
            for &x in &[0u32, 1_000_000_007, u32::MAX] {
                runner.run(&p, &[(Reg::R26, x)]);
            }
        }
        runner
    });
    runner.finish("constant_divide", &events)
}

/// §8's averages only matter at trace scale: a running program revisits
/// each static multiply/divide site many times, so the E13 throughput
/// workloads replay their operand mix this many rounds. The unprepared
/// pass re-derives code per dynamic op (the old per-call API); the hot
/// pass compiles each distinct constant once and replays prepared
/// programs through batches.
const TRACE_ROUNDS: usize = 8;

/// Repeats one round of static sites into a `TRACE_ROUNDS`-deep trace.
fn trace_of<T: Copy>(sites: &[T]) -> Vec<T> {
    let mut ops = Vec::with_capacity(sites.len() * TRACE_ROUNDS);
    for _ in 0..TRACE_ROUNDS {
        ops.extend_from_slice(sites);
    }
    ops
}

/// One multiply from the E13 mix, already split the way the §8 analysis
/// splits it: 91 % compile-time constants, the rest run-time values.
#[derive(Clone, Copy)]
enum MulOp {
    Constant { c: i64, v: i32 },
    Variable { x: i32, y: i32 },
}

fn e13_multiply_ops(n: usize) -> Vec<MulOp> {
    Figure5Mix::new()
        .pairs(13, n)
        .into_iter()
        .enumerate()
        .map(|(i, (x, y))| {
            // Deterministic 91/9 interleaving instead of a second RNG draw.
            if (i as u32) % 100 < CONSTANT_OPERAND_PERCENT {
                let (c, v) = if x.unsigned_abs() <= y.unsigned_abs() {
                    (x, y)
                } else {
                    (y, x)
                };
                MulOp::Constant { c: i64::from(c), v }
            } else {
                MulOp::Variable { x, y }
            }
        })
        .collect()
}

/// E13 — the §8 multiply mix as a trace, one-shot path vs hot path.
fn e13_multiply_mix(n: usize) -> ThroughputReport {
    let sites = e13_multiply_ops((n / TRACE_ROUNDS).max(1));
    let ops = trace_of(&sites);
    let switched = mulvar::switched(true).expect("switched builds");
    let interp_cfg = ExecConfig::default();

    // One-shot path: every constant re-compiles (cache disabled), every run
    // interprets on a fresh machine.
    let cold = Compiler::builder().cache_capacity(0).build();
    let started = Instant::now();
    let mut cold_cycles = 0u64;
    let mut cold_checksum = 0u32;
    for op in &ops {
        match *op {
            MulOp::Constant { c, v } => {
                let compiled = cold.mul_const(c).expect("mul codegen");
                let (m, r) = run_fn(compiled.program(), &[(Reg::R26, v as u32)], &interp_cfg);
                assert!(r.termination.is_completed());
                cold_checksum = cold_checksum.wrapping_add(m.reg(Reg::R28));
                cold_cycles += r.cycles;
            }
            MulOp::Variable { x, y } => {
                let (m, r) = run_fn(
                    &switched,
                    &[(Reg::R26, x as u32), (Reg::R25, y as u32)],
                    &interp_cfg,
                );
                assert!(r.termination.is_completed());
                cold_checksum = cold_checksum.wrapping_add(m.reg(Reg::R28));
                cold_cycles += r.cycles;
            }
        }
    }
    let unprepared_ns = started.elapsed().as_nanos() as u64;

    // Hot path: cached compiles, batched execution on reused machines.
    let compiler = Compiler::new();
    let rt = Runtime::new().expect("routines build");
    let started = Instant::now();
    let mut groups: BTreeMap<i64, Vec<i32>> = BTreeMap::new();
    let mut var_pairs = Vec::new();
    for op in &ops {
        match *op {
            MulOp::Constant { c, v } => groups.entry(c).or_default().push(v),
            MulOp::Variable { x, y } => var_pairs.push((x, y)),
        }
    }
    let mut hot_cycles = 0u64;
    let mut hot_checksum = 0u32;
    for (c, values) in &groups {
        let compiled = compiler.mul_const(*c).expect("mul codegen");
        let out = compiled.run_batch_i32(values).expect("mul runs");
        for &v in &out.values {
            hot_checksum = hot_checksum.wrapping_add(v as u32);
        }
        hot_cycles += out.cycles;
    }
    let mut session = rt.session();
    let out = session.mul_batch(&var_pairs).expect("mul millicode");
    for &v in &out.values {
        hot_checksum = hot_checksum.wrapping_add(v as u32);
    }
    hot_cycles += out.cycles;
    let prepared_ns = started.elapsed().as_nanos() as u64;

    assert_eq!(cold_checksum, hot_checksum, "multiply results must agree");
    assert_eq!(cold_cycles, hot_cycles, "simulated cycles must agree");
    ThroughputReport {
        workload: "e13_multiply_mix",
        ops: ops.len() as u64,
        simulated_cycles: cold_cycles,
        unprepared_ns,
        prepared_ns,
    }
}

/// E13 — the §7 divide mix as a trace, one-shot path vs hot path.
fn e13_divide_mix(n: usize) -> ThroughputReport {
    let sites = DivMix::default().ops(13, (n / TRACE_ROUNDS).max(1));
    let ops = trace_of(&sites);
    let dispatch = divvar::small_dispatch(DISPATCH_LIMIT).expect("dispatch builds");
    let interp_cfg = ExecConfig::default();

    let cold = Compiler::builder().cache_capacity(0).build();
    let started = Instant::now();
    let mut cold_cycles = 0u64;
    let mut cold_checksum = 0u32;
    for op in &ops {
        match *op {
            DivOp::Constant { x, y } => {
                let compiled = cold.udiv_const(y).expect("div codegen");
                let (m, r) = run_fn(compiled.program(), &[(Reg::R26, x)], &interp_cfg);
                assert!(r.termination.is_completed());
                cold_checksum = cold_checksum.wrapping_add(m.reg(Reg::R28));
                cold_cycles += r.cycles;
            }
            DivOp::Variable { x, y } => {
                let (m, r) = run_fn(&dispatch, &[(Reg::R26, x), (Reg::R25, y)], &interp_cfg);
                assert!(r.termination.is_completed());
                cold_checksum = cold_checksum.wrapping_add(m.reg(Reg::R28));
                cold_cycles += r.cycles;
            }
        }
    }
    let unprepared_ns = started.elapsed().as_nanos() as u64;

    let compiler = Compiler::new();
    let rt = Runtime::new().expect("routines build");
    let started = Instant::now();
    let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut var_pairs = Vec::new();
    for op in &ops {
        match *op {
            DivOp::Constant { x, y } => groups.entry(y).or_default().push(x),
            DivOp::Variable { x, y } => var_pairs.push((x, y)),
        }
    }
    let mut hot_cycles = 0u64;
    let mut hot_checksum = 0u32;
    for (y, dividends) in &groups {
        let compiled = compiler.udiv_const(*y).expect("div codegen");
        let out = compiled.run_batch_u32(dividends).expect("div runs");
        for &q in &out.values {
            hot_checksum = hot_checksum.wrapping_add(q);
        }
        hot_cycles += out.cycles;
    }
    let mut session = rt.session();
    let out = session
        .div_dispatch_batch(&var_pairs)
        .expect("div millicode");
    for &q in &out.values {
        hot_checksum = hot_checksum.wrapping_add(q);
    }
    hot_cycles += out.cycles;
    let prepared_ns = started.elapsed().as_nanos() as u64;

    assert_eq!(cold_checksum, hot_checksum, "divide results must agree");
    assert_eq!(cold_cycles, hot_cycles, "simulated cycles must agree");
    ThroughputReport {
        workload: "e13_divide_mix",
        ops: ops.len() as u64,
        simulated_cycles: cold_cycles,
        unprepared_ns,
        prepared_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_hold_the_cycle_identity() {
        for w in paper_workloads() {
            assert_eq!(w.cycles, w.executed + w.nullified, "{}", w.workload);
            let opcode_sum: u64 = w.per_opcode.values().sum();
            assert_eq!(opcode_sum, w.executed, "{}", w.workload);
            assert!(!w.strategy_histogram.is_empty(), "{}", w.workload);
        }
    }

    #[test]
    fn workload_regions_partition_cycles_and_branches() {
        for w in paper_workloads() {
            assert!(!w.regions.is_empty(), "{}", w.workload);
            let cycles: u64 = w.regions.iter().map(|r| r.cycles).sum();
            assert_eq!(
                cycles, w.cycles,
                "{}: regions must partition cycles",
                w.workload
            );
            let executed: u64 = w.regions.iter().map(|r| r.executed).sum();
            assert_eq!(executed, w.executed, "{}", w.workload);
            for r in &w.regions {
                assert!(
                    r.taken_branches <= r.executed,
                    "{}/{}: branches are a subset of executed slots",
                    w.workload,
                    r.label
                );
            }
        }
    }

    #[test]
    fn workload_section_is_deterministic() {
        let a = report_json(&paper_workloads(), &[], &[]).to_compact_string();
        let b = report_json(&paper_workloads(), &[], &[]).to_compact_string();
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_histograms_record_expected_families() {
        let workloads = paper_workloads();
        let find = |name: &str| {
            workloads
                .iter()
                .find(|w| w.workload == name)
                .unwrap_or_else(|| panic!("missing workload {name}"))
        };
        let mul = find("figure5_switched_multiply");
        assert!(mul.strategy_histogram.keys().any(|k| k.starts_with("mul/")));
        assert_eq!(mul.strategy_histogram.get("mul/zero-exit"), Some(&1));
        let dispatch = find("small_divisor_dispatch");
        // Construction plans one constant body per divisor in 2..20 …
        assert!(dispatch
            .strategy_histogram
            .keys()
            .any(|k| k.starts_with("div/")));
        // … and every sub-cutoff run dispatches into an inlined body.
        assert_eq!(
            dispatch.strategy_histogram.get("divvar/inlined-body"),
            Some(&(18 * 5))
        );
        let chains = find("constant_multiply_chains");
        assert!(chains
            .strategy_histogram
            .keys()
            .any(|k| k.starts_with("chain/")));
    }

    #[test]
    fn throughput_passes_agree_and_the_hot_path_wins() {
        // Small batch keeps the test quick; the internal asserts already
        // prove cycle/checksum identity between the passes.
        for t in throughput_workloads_with(200) {
            assert!(t.ops == 200, "{}", t.workload);
            assert!(t.simulated_cycles > 0, "{}", t.workload);
            assert!(
                t.speedup() > 1.0,
                "{}: hot path must beat cold path ({}ns vs {}ns)",
                t.workload,
                t.prepared_ns,
                t.unprepared_ns
            );
            assert!(t.prepared_ops_per_sec() > t.unprepared_ops_per_sec());
        }
    }

    #[test]
    fn throughput_json_carries_the_documented_keys() {
        let t = ThroughputReport {
            workload: "e13_multiply_mix",
            ops: 10,
            simulated_cycles: 100,
            unprepared_ns: 5_000,
            prepared_ns: 500,
        };
        let json = t.to_json();
        assert_eq!(
            json.keys(),
            vec![
                "workload",
                "ops",
                "simulated_cycles",
                "unprepared_ns",
                "prepared_ns",
                "unprepared_ops_per_sec",
                "prepared_ops_per_sec",
                "speedup",
            ]
        );
        assert!((t.speedup() - 10.0).abs() < 1e-9);
        assert_eq!(json.get("speedup").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn parallel_records_are_deterministic_across_thread_counts() {
        let reports = parallel_workloads_with(120);
        assert_eq!(reports.len(), PARALLEL_THREADS.len());
        let base = &reports[0];
        assert_eq!(base.threads, 1);
        assert!((base.speedup_vs_1 - 1.0).abs() < 1e-12);
        for r in &reports {
            assert_eq!(r.workload, "e13_parallel_mix");
            assert_eq!(r.ops, base.ops);
            // The builder itself asserts these; restated here so a future
            // refactor cannot silently drop the identity checks.
            assert_eq!(r.checksum, base.checksum, "{} threads", r.threads);
            assert_eq!(
                r.simulated_cycles, base.simulated_cycles,
                "{} threads",
                r.threads
            );
            assert!(r.wall_ns > 0);
            assert!(r.speedup_vs_1 > 0.0);
            assert!(r.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn parallel_json_carries_the_documented_keys() {
        let r = ParallelReport {
            workload: "e13_parallel_mix",
            threads: 4,
            ops: 1_000,
            wall_ns: 2_000_000,
            simulated_cycles: 50_000,
            checksum: 0xdead_beef,
            speedup_vs_1: 2.5,
        };
        let json = r.to_json();
        assert_eq!(
            json.keys(),
            vec![
                "workload",
                "threads",
                "ops",
                "wall_ns",
                "ops_per_sec",
                "simulated_cycles",
                "checksum",
                "speedup_vs_1",
            ]
        );
        assert_eq!(json.get("speedup_vs_1").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            json.get("ops_per_sec").and_then(Json::as_f64),
            Some(500_000.0)
        );
    }
}
