//! The `hppa report` builder: replay the paper-table workloads with the
//! simulator's [`SimStats`] and the telemetry collector both armed, and fold
//! each workload into one JSON record:
//!
//! ```json
//! {"workload": "…", "cycles": N, "executed": N, "nullified": N,
//!  "per_opcode": {"add": N, …}, "strategy_histogram": {"mul/nibble-x1": N, …}}
//! ```
//!
//! The five workloads mirror the paper's measurement tables: the Figure 5
//! switched multiply per operand class, the ≈80-cycle general divide, the
//! §7 small-divisor dispatch, the §5 constant-multiply chains, and the §7
//! derived-method constant divides. Every operand stream is deterministic
//! (fixed strides, no RNG), so reports are reproducible byte for byte.

use std::collections::BTreeMap;

use divconst::{compile_div_const, DivCodegenConfig, Signedness};
use millicode::{divvar, mulvar};
use mulconst::{compile_mul_const, CodegenConfig};
use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, SimStats};
use telemetry::json::Json;
use telemetry::Event;

/// One replayed workload with its aggregate counters.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Stable workload name (the `workload` field of `BENCH_*.json`).
    pub workload: &'static str,
    /// Total fetched slots across all runs (`executed + nullified`).
    pub cycles: u64,
    /// Executed (non-nullified) instructions.
    pub executed: u64,
    /// Fetched-but-nullified slots.
    pub nullified: u64,
    /// Executed-instruction counts per mnemonic (zero entries omitted).
    pub per_opcode: BTreeMap<&'static str, u64>,
    /// `family/detail` counts folded from the telemetry event stream.
    pub strategy_histogram: BTreeMap<String, u64>,
}

impl WorkloadReport {
    /// The JSON object form, matching the `BENCH_*.json` schema.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let per_opcode = Json::object(
            self.per_opcode
                .iter()
                .map(|(op, n)| ((*op).to_string(), Json::uint(*n)))
                .collect(),
        );
        Json::object(vec![
            ("workload".to_string(), Json::str(self.workload)),
            ("cycles".to_string(), Json::uint(self.cycles)),
            ("executed".to_string(), Json::uint(self.executed)),
            ("nullified".to_string(), Json::uint(self.nullified)),
            ("per_opcode".to_string(), per_opcode),
            (
                "strategy_histogram".to_string(),
                Json::from_counts(&self.strategy_histogram),
            ),
        ])
    }
}

/// Every paper-table workload, in report order.
#[must_use]
pub fn paper_workloads() -> Vec<WorkloadReport> {
    vec![
        figure5_switched_multiply(),
        general_divide(),
        small_divisor_dispatch(),
        constant_multiply_chains(),
        constant_divide(),
    ]
}

/// The full report document: a JSON array of workload records.
#[must_use]
pub fn report_json(workloads: &[WorkloadReport]) -> Json {
    Json::Array(workloads.iter().map(WorkloadReport::to_json).collect())
}

/// Accumulates merged [`SimStats`] over many stats-enabled runs.
struct Runner {
    config: ExecConfig,
    stats: SimStats,
}

impl Runner {
    fn new() -> Runner {
        Runner {
            config: ExecConfig::default().with_stats(),
            stats: SimStats::default(),
        }
    }

    /// Runs `p` to completion, merging its stats; returns the run's cycles.
    fn run(&mut self, p: &Program, inputs: &[(Reg, u32)]) -> u64 {
        let (_, result) = run_fn(p, inputs, &self.config);
        assert!(
            result.termination.is_completed(),
            "workload run must complete: {:?}",
            result.termination
        );
        let stats = result.stats.as_deref().expect("stats were enabled");
        self.stats.merge(stats);
        result.cycles
    }

    fn finish(self, workload: &'static str, events: &[Event]) -> WorkloadReport {
        let executed = self.stats.executed_total();
        let nullified = self.stats.nullified_total();
        WorkloadReport {
            workload,
            cycles: executed + nullified,
            executed,
            nullified,
            per_opcode: self.stats.per_opcode(),
            strategy_histogram: telemetry::strategy_histogram(events),
        }
    }
}

/// Figure 5 — the switched multiply over the paper's four operand classes,
/// sampling each `min(|x|,|y|)` band on a fixed stride.
fn figure5_switched_multiply() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let p = mulvar::switched(true).expect("switched builds");
        let mut runner = Runner::new();
        // (lo, hi) bands of Figure 5, plus the 0/1 quick-exit drivers.
        let classes: [(u32, u32); 4] = [(0, 15), (16, 255), (256, 4095), (4096, 46340)];
        let multiplicand = 60_000u32;
        for (lo, hi) in classes {
            let step = ((hi - lo) / 8).max(1);
            let mut driver = lo;
            while driver <= hi {
                let cycles = runner.run(&p, &[(Reg::R26, driver), (Reg::R25, multiplicand)]);
                telemetry::emit(|| {
                    let (tier, operand) = mulvar::tier_for(true, driver, multiplicand);
                    Event::MulStrategy {
                        routine: "switched",
                        tier,
                        operand: i64::from(operand),
                        cycles: Some(cycles),
                    }
                });
                match driver.checked_add(step) {
                    Some(next) if next <= hi => driver = next,
                    _ => break,
                }
            }
        }
        runner
    });
    runner.finish("figure5_switched_multiply", &events)
}

/// §4 — the general `DS`/`ADDC` divide (the paper's "average 80 cycles"),
/// over a divisor sweep that also hits the big-divisor special case.
fn general_divide() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let p = divvar::udiv().expect("udiv builds");
        let mut runner = Runner::new();
        let dividends = [1u32, 1000, 1_000_000_007, u32::MAX];
        let divisors = [1u32, 7, 97, 65_537, 0x8000_0000];
        for &x in &dividends {
            for &y in &divisors {
                let cycles = runner.run(&p, &[(Reg::R26, x), (Reg::R25, y)]);
                telemetry::emit(|| Event::DivDispatch {
                    routine: "udiv",
                    tier: divvar::general_tier(false, y),
                    divisor: i64::from(y),
                    cycles: Some(cycles),
                });
            }
        }
        runner
    });
    runner.finish("general_divide", &events)
}

/// §7 — the small-divisor `BLR` dispatch: constructing the routine emits the
/// planner's `DivPlan` events (one per inlined body), and every run below
/// the cutoff lands in an inlined derived-method body.
fn small_divisor_dispatch() -> WorkloadReport {
    const LIMIT: u32 = 20;
    let (runner, events) = telemetry::collect(|| {
        let p = divvar::small_dispatch(LIMIT).expect("dispatch builds");
        let mut runner = Runner::new();
        let dividends = [1u32, 19, 12_345, 1_000_000_007, u32::MAX];
        for y in 1..=LIMIT {
            for &x in &dividends {
                let cycles = runner.run(&p, &[(Reg::R26, x), (Reg::R25, y)]);
                telemetry::emit(|| Event::DivDispatch {
                    routine: "small_dispatch",
                    tier: divvar::dispatch_tier(LIMIT, y),
                    divisor: i64::from(y),
                    cycles: Some(cycles),
                });
            }
        }
        runner
    });
    runner.finish("small_divisor_dispatch", &events)
}

/// §5 — constant multiplies over the Figure 1 range: the chain searcher
/// emits one `ChainSearch` per target, and each compiled body runs once.
fn constant_multiply_chains() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let cfg = CodegenConfig::default();
        let mut runner = Runner::new();
        for n in 2..=100i64 {
            let p = compile_mul_const(n, &cfg).expect("constant multiply compiles");
            runner.run(&p, &[(Reg::R26, 321)]);
        }
        runner
    });
    runner.finish("constant_multiply_chains", &events)
}

/// §7 — derived-method constant divides for every divisor the paper's
/// dispatch table covers: planning emits one `DivPlan` per divisor.
fn constant_divide() -> WorkloadReport {
    let (runner, events) = telemetry::collect(|| {
        let cfg = DivCodegenConfig::default();
        let mut runner = Runner::new();
        for y in 2..=20u32 {
            let p =
                compile_div_const(y, Signedness::Unsigned, &cfg).expect("constant divide compiles");
            for &x in &[0u32, 1_000_000_007, u32::MAX] {
                runner.run(&p, &[(Reg::R26, x)]);
            }
        }
        runner
    });
    runner.finish("constant_divide", &events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_hold_the_cycle_identity() {
        for w in paper_workloads() {
            assert_eq!(w.cycles, w.executed + w.nullified, "{}", w.workload);
            let opcode_sum: u64 = w.per_opcode.values().sum();
            assert_eq!(opcode_sum, w.executed, "{}", w.workload);
            assert!(!w.strategy_histogram.is_empty(), "{}", w.workload);
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let a = report_json(&paper_workloads()).to_compact_string();
        let b = report_json(&paper_workloads()).to_compact_string();
        assert_eq!(a, b);
    }

    #[test]
    fn strategy_histograms_record_expected_families() {
        let workloads = paper_workloads();
        let find = |name: &str| {
            workloads
                .iter()
                .find(|w| w.workload == name)
                .unwrap_or_else(|| panic!("missing workload {name}"))
        };
        let mul = find("figure5_switched_multiply");
        assert!(mul.strategy_histogram.keys().any(|k| k.starts_with("mul/")));
        assert_eq!(mul.strategy_histogram.get("mul/zero-exit"), Some(&1));
        let dispatch = find("small_divisor_dispatch");
        // Construction plans one constant body per divisor in 2..20 …
        assert!(dispatch
            .strategy_histogram
            .keys()
            .any(|k| k.starts_with("div/")));
        // … and every sub-cutoff run dispatches into an inlined body.
        assert_eq!(
            dispatch.strategy_histogram.get("divvar/inlined-body"),
            Some(&(18 * 5))
        );
        let chains = find("constant_multiply_chains");
        assert!(chains
            .strategy_histogram
            .keys()
            .any(|k| k.starts_with("chain/")));
    }
}
