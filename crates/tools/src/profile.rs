//! The `hppa profile` builder: fold [`SimStats`](pa_sim::SimStats) per-label
//! cycle attribution into flamegraph-compatible folded-stack lines.
//!
//! Each line is `frame;frame;frame count`, the format consumed by
//! `flamegraph.pl`, inferno, and speedscope. The stack layers are
//!
//! 1. the workload name,
//! 2. the region label (millicode routines label every loop head and shared
//!    tail, so this is the paper's per-phase breakdown),
//! 3. the slot disposition: `executed;straight-line`, `executed;taken-branch`
//!    (cycles whose instruction redirected control — the `BLR` dispatches
//!    and millicode returns stand out here), or `nullified`.
//!
//! Dispositions partition each region's cycles and regions partition each
//! workload's cycles, so **the summed counts equal the simulator's cycle
//! total exactly** — the flamegraph is cycle-exact, not sampled. That
//! identity is asserted by `workload_lines` and re-checked end-to-end by the
//! observability tests.

use std::fmt::Write as _;

use crate::report::WorkloadReport;

/// One folded stack: the `;`-joined frames and the cycle count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Frames from root to leaf, already joined with `;`.
    pub stack: String,
    /// Cycles attributed to exactly this stack.
    pub cycles: u64,
}

/// Folds one workload's region attribution into stacks (zero-cycle stacks
/// omitted). The returned counts sum to `report.cycles` exactly.
#[must_use]
pub fn workload_lines(report: &WorkloadReport) -> Vec<FoldedStack> {
    let mut lines = Vec::with_capacity(report.regions.len() * 3);
    let mut total = 0u64;
    for region in &report.regions {
        let straight = region.executed - region.taken_branches;
        let splits = [
            ("executed;straight-line", straight),
            ("executed;taken-branch", region.taken_branches),
            ("nullified", region.nullified),
        ];
        for (disposition, cycles) in splits {
            if cycles > 0 {
                lines.push(FoldedStack {
                    stack: format!("{};{};{disposition}", report.workload, region.label),
                    cycles,
                });
                total += cycles;
            }
        }
    }
    assert_eq!(
        total, report.cycles,
        "{}: folded stacks must partition the cycle total",
        report.workload
    );
    lines
}

/// Folds every workload, preserving report order.
#[must_use]
pub fn folded_stacks(reports: &[WorkloadReport]) -> Vec<FoldedStack> {
    reports.iter().flat_map(workload_lines).collect()
}

/// Renders stacks in the folded text format, one `stack count` per line.
#[must_use]
pub fn render_folded(stacks: &[FoldedStack]) -> String {
    let mut out = String::new();
    for s in stacks {
        let _ = writeln!(out, "{} {}", s.stack, s.cycles);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::paper_workloads;

    #[test]
    fn folded_cycles_sum_to_the_simstats_total_exactly() {
        for w in paper_workloads() {
            let lines = workload_lines(&w);
            let sum: u64 = lines.iter().map(|l| l.cycles).sum();
            assert_eq!(sum, w.cycles, "{}", w.workload);
        }
    }

    #[test]
    fn frames_carry_workload_label_and_disposition() {
        let workloads = paper_workloads();
        let divide = workloads
            .iter()
            .find(|w| w.workload == "general_divide")
            .unwrap();
        let lines = workload_lines(divide);
        assert!(lines.iter().all(|l| l.stack.starts_with("general_divide;")));
        // The DS divide takes its loop-closing and dispatch branches.
        assert!(
            lines.iter().any(|l| l.stack.ends_with("taken-branch")),
            "{lines:?}"
        );
        // The small-divisor dispatch is the workload that nullifies (its
        // BLR table slots); its folded stacks must say so.
        let dispatch = workloads
            .iter()
            .find(|w| w.workload == "small_divisor_dispatch")
            .unwrap();
        let lines = workload_lines(dispatch);
        assert!(
            lines.iter().any(|l| l.stack.ends_with("nullified")),
            "{lines:?}"
        );
    }

    #[test]
    fn rendering_is_one_stack_per_line() {
        let stacks = vec![
            FoldedStack {
                stack: "w;<entry>;executed;straight-line".to_string(),
                cycles: 3,
            },
            FoldedStack {
                stack: "w;loop;nullified".to_string(),
                cycles: 1,
            },
        ];
        let text = render_folded(&stacks);
        assert_eq!(
            text,
            "w;<entry>;executed;straight-line 3\nw;loop;nullified 1\n"
        );
    }
}
