//! The `hppa metrics` / `pa-run --metrics` builder: fold workload reports,
//! span traces and simulator statistics into a
//! [`telemetry::metrics::Registry`] ready for export.
//!
//! `telemetry` cannot depend on `pa-sim` (the simulator depends on it for
//! spans), so the SimStats → registry feeding lives here in the tools layer.

use hppa_muldiv::CacheShardStats;
use telemetry::metrics::Registry;

use crate::report::{self, WorkloadReport};

/// Replays the paper workloads under a span trace and folds everything —
/// workload counters, per-opcode counts, region attribution, strategy
/// histograms, and the span stream itself — into one registry.
#[must_use]
pub fn paper_metrics() -> Registry {
    let (workloads, spans) = telemetry::span::trace(report::paper_workloads);
    let mut registry = registry_from_workloads(&workloads);
    registry.record_spans(&spans);
    // Drive the §5 constant range through the sharded compile cache twice —
    // a miss pass and a hit pass — so the per-shard series export live
    // values rather than zeros.
    let compiler = hppa_muldiv::Compiler::new();
    for _ in 0..2 {
        for n in 2..=33i64 {
            let _ = compiler.mul_const(n);
        }
    }
    record_cache_shards(&mut registry, &compiler.cache_stats());
    registry
}

/// Folds per-shard compile-cache statistics into the registry: the
/// `hppa_cache_shard_{hits,misses,evictions}_total` counters and the
/// `hppa_cache_shard_entries` gauge, all labelled by shard index.
pub fn record_cache_shards(reg: &mut Registry, stats: &[CacheShardStats]) {
    for s in stats {
        let shard = s.shard.to_string();
        let labels = [("shard", shard.as_str())];
        reg.inc_counter("hppa_cache_shard_hits_total", &labels, s.hits);
        reg.inc_counter("hppa_cache_shard_misses_total", &labels, s.misses);
        reg.inc_counter("hppa_cache_shard_evictions_total", &labels, s.evictions);
        reg.set_gauge("hppa_cache_shard_entries", &labels, s.entries as f64);
    }
}

/// Folds finished workload reports into a registry (no spans).
#[must_use]
pub fn registry_from_workloads(workloads: &[WorkloadReport]) -> Registry {
    let mut reg = Registry::new();
    for w in workloads {
        let labels = [("workload", w.workload)];
        reg.inc_counter("hppa_workload_cycles_total", &labels, w.cycles);
        reg.inc_counter("hppa_workload_executed_total", &labels, w.executed);
        reg.inc_counter("hppa_workload_nullified_total", &labels, w.nullified);
        reg.observe("hppa_workload_cycles", &[], w.cycles);
        for (opcode, count) in &w.per_opcode {
            reg.inc_counter("hppa_opcode_executed_total", &[("opcode", opcode)], *count);
        }
        for (strategy, count) in &w.strategy_histogram {
            reg.inc_counter("hppa_strategy_total", &[("strategy", strategy)], *count);
        }
        for region in &w.regions {
            let region_labels = [("workload", w.workload), ("label", region.label.as_str())];
            reg.inc_counter("hppa_region_cycles_total", &region_labels, region.cycles);
            reg.inc_counter(
                "hppa_region_taken_branches_total",
                &region_labels,
                region.taken_branches,
            );
        }
    }
    reg
}

/// Folds one `pa-run` execution (its [`pa_sim::RunResult`], with stats
/// enabled) into a registry for the `--metrics` flag.
#[must_use]
pub fn registry_for_run(result: &pa_sim::RunResult) -> Registry {
    let mut reg = Registry::new();
    reg.inc_counter("pa_run_cycles_total", &[], result.cycles);
    reg.inc_counter("pa_run_executed_total", &[], result.executed);
    reg.inc_counter("pa_run_nullified_total", &[], result.nullified);
    reg.inc_counter("pa_run_taken_branches_total", &[], result.taken_branches);
    if let Some(stats) = result.stats.as_deref() {
        reg.inc_counter("pa_run_traps_total", &[], stats.traps);
        reg.inc_counter("pa_run_faults_total", &[], stats.faults);
        for (opcode, count) in stats.per_opcode() {
            reg.inc_counter("pa_run_opcode_executed_total", &[("opcode", opcode)], count);
        }
        for region in &stats.regions {
            reg.inc_counter(
                "pa_run_region_cycles_total",
                &[("label", region.label.as_str())],
                region.cycles,
            );
        }
    }
    reg
}

/// Renders a registry in the requested format (`"prometheus"` or
/// `"json"`).
///
/// # Errors
///
/// Names the unknown format.
pub fn render(registry: &Registry, format: &str) -> Result<String, String> {
    match format {
        "prometheus" => Ok(registry.to_prometheus()),
        "json" => Ok(registry.to_json().to_pretty_string()),
        other => Err(format!(
            "unknown metrics format `{other}` (expected `prometheus` or `json`)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json::Json;

    #[test]
    fn paper_metrics_cover_workloads_strategies_and_spans() {
        let reg = paper_metrics();
        let cycles = reg
            .counter(
                "hppa_workload_cycles_total",
                &[("workload", "figure5_switched_multiply")],
            )
            .expect("figure5 counter present");
        assert!(cycles > 0);
        // The interpreter's execute span fires for every workload run.
        let executes = reg
            .counter("hppa_span_total", &[("name", "execute")])
            .expect("execute spans recorded");
        assert!(executes > 0);
        // Region counters partition each workload's cycle counter.
        let divide = reg
            .counter(
                "hppa_workload_cycles_total",
                &[("workload", "general_divide")],
            )
            .unwrap();
        assert!(divide > 0);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE hppa_workload_cycles_total counter"));
        assert!(text.contains("hppa_strategy_total{strategy="));
        assert!(text.contains("hppa_region_cycles_total{"));
    }

    #[test]
    fn run_registry_reports_traps_and_regions() {
        let mut b = pa_isa::ProgramBuilder::new();
        b.ldi(3, pa_isa::Reg::R1);
        let top = b.here("loop");
        b.addib(-1, pa_isa::Reg::R1, pa_isa::Cond::Ne, top);
        let p = b.build().unwrap();
        let (_, result) = pa_sim::run_fn(&p, &[], &pa_sim::ExecConfig::default().with_stats());
        let reg = registry_for_run(&result);
        assert_eq!(reg.counter("pa_run_cycles_total", &[]), Some(result.cycles));
        assert_eq!(reg.counter("pa_run_traps_total", &[]), Some(0));
        assert_eq!(
            reg.counter("pa_run_region_cycles_total", &[("label", "loop")]),
            Some(3)
        );
        assert_eq!(
            reg.counter("pa_run_taken_branches_total", &[]),
            Some(result.taken_branches)
        );
    }

    #[test]
    fn cache_shard_series_fold_hits_misses_and_residency() {
        let compiler = hppa_muldiv::Compiler::builder()
            .cache_capacity(8)
            .cache_shards(2)
            .build();
        for _ in 0..2 {
            for n in [3i64, 5, 7, 9] {
                let _ = compiler.mul_const(n);
            }
        }
        let stats = compiler.cache_stats();
        let mut reg = Registry::new();
        record_cache_shards(&mut reg, &stats);
        let mut hits = 0;
        let mut misses = 0;
        let mut entries = 0.0;
        for s in &stats {
            let shard = s.shard.to_string();
            let labels = [("shard", shard.as_str())];
            hits += reg.counter("hppa_cache_shard_hits_total", &labels).unwrap();
            misses += reg
                .counter("hppa_cache_shard_misses_total", &labels)
                .unwrap();
            assert_eq!(
                reg.counter("hppa_cache_shard_evictions_total", &labels),
                Some(s.evictions)
            );
            entries += reg.gauge("hppa_cache_shard_entries", &labels).unwrap();
        }
        // Four distinct constants, compiled twice: miss then hit each.
        assert_eq!(misses, 4);
        assert_eq!(hits, 4);
        assert!((entries - 4.0).abs() < 1e-12);
        // And the hppa metrics entry point exports the same series.
        let text = paper_metrics().to_prometheus();
        assert!(
            text.contains("hppa_cache_shard_hits_total{shard="),
            "{text}"
        );
        assert!(text.contains("hppa_cache_shard_entries{shard="), "{text}");
    }

    #[test]
    fn render_supports_both_formats_and_rejects_others() {
        let mut reg = Registry::new();
        reg.inc_counter("x_total", &[], 1);
        assert!(render(&reg, "prometheus").unwrap().contains("x_total 1"));
        let json = render(&reg, "json").unwrap();
        let doc = telemetry::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("x_total"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(render(&reg, "yaml").is_err());
    }
}
