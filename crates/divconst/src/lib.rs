//! # divconst — division by constants via the derived ("magic number") method
//!
//! §7 of the ASPLOS'87 paper replaces `⌊x/y⌋` for a known divisor `y` with a
//! multiplication by a precomputed reciprocal:
//!
//! ```text
//! q'(x) = (a·x + b) / z,   z = 2^s, a = ⌊z/y⌋, r = z mod y, b = a + r - 1
//! ```
//!
//! computed as `(x+1)·a + (r-1)` in two-word precision with shift-and-add
//! pairs. This crate derives the parameters ([`Magic`], reproducing Figure 6
//! exactly), picks shift-add chains for the multipliers, and emits `pa_isa`
//! programs ([`compile_div_const`]) — including the 17-instruction divide by
//! 3 of Figure 7, the signed wrappers (17/19 instructions), power-of-two and
//! even divisors.
//!
//! ## Example
//!
//! ```
//! use divconst::Magic;
//!
//! for m in Magic::figure6() {
//!     println!("{m}");
//! }
//! assert_eq!(Magic::minimal(7)?.s(), 33);
//! # Ok::<(), divconst::MagicError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codegen;
mod magic;

pub use codegen::{
    compile_div_const, compile_div_const_i32, plan, DivCodegenConfig, DivCodegenError, DivStrategy,
    Signedness,
};
pub use magic::{Magic, MagicError};

#[cfg(test)]
mod tests {
    use super::*;
    use pa_isa::Reg;
    use pa_sim::{run_fn, ExecConfig};

    fn cfg() -> DivCodegenConfig {
        DivCodegenConfig::default()
    }

    fn udiv(p: &pa_isa::Program, x: u32) -> u32 {
        let (m, r) = run_fn(p, &[(Reg::R26, x)], &ExecConfig::default());
        assert!(r.termination.is_completed(), "x = {x}: {:?}", r.termination);
        m.reg(Reg::R28)
    }

    fn sdiv(p: &pa_isa::Program, x: i32) -> i32 {
        let (m, r) = run_fn(p, &[(Reg::R26, x as u32)], &ExecConfig::default());
        assert!(r.termination.is_completed(), "x = {x}: {:?}", r.termination);
        m.reg_i32(Reg::R28)
    }

    fn interesting_u32(y: u32) -> Vec<u32> {
        let mut v = vec![0u32, 1, 2, 3, 9, 100, u32::MAX, u32::MAX - 1, 1 << 31];
        for k in [
            1u64,
            2,
            3,
            1000,
            (u64::from(u32::MAX) / u64::from(y)).max(1),
        ] {
            let base = k * u64::from(y);
            for d in -2i64..=2 {
                if let Ok(x) = u32::try_from(base as i64 + d) {
                    v.push(x);
                }
            }
        }
        v
    }

    #[test]
    fn figure7_divide_by_three_is_17_instructions() {
        let p = compile_div_const(3, Signedness::Unsigned, &cfg()).unwrap();
        assert_eq!(p.len(), 17, "Figure 7:\n{p}");
    }

    #[test]
    fn unsigned_division_exhaustive_small_divisors() {
        for y in 1..=64u32 {
            let p = compile_div_const(y, Signedness::Unsigned, &cfg()).unwrap();
            for x in interesting_u32(y) {
                assert_eq!(udiv(&p, x), x / y, "{x} / {y}\n{p}");
            }
        }
    }

    #[test]
    fn unsigned_division_figure6_divisors_full_boundaries() {
        for y in (3..=19u32).step_by(2) {
            let p = compile_div_const(y, Signedness::Unsigned, &cfg()).unwrap();
            for x in interesting_u32(y) {
                assert_eq!(udiv(&p, x), x / y, "{x} / {y}");
            }
        }
    }

    #[test]
    fn unsigned_larger_divisors() {
        for y in [
            21u32,
            100,
            127,
            255,
            1000,
            1023,
            1025,
            4097,
            65535,
            0x8000_0001,
        ] {
            let p = compile_div_const(y, Signedness::Unsigned, &cfg()).unwrap();
            for x in interesting_u32(y) {
                assert_eq!(udiv(&p, x), x / y, "{x} / {y}");
            }
        }
    }

    #[test]
    fn signed_division_truncates_toward_zero() {
        let xs = [
            0i32,
            1,
            -1,
            2,
            -2,
            7,
            -7,
            100,
            -100,
            i32::MAX,
            i32::MIN,
            i32::MIN + 1,
            -3,
            3,
        ];
        for y in [1u32, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 15, 19, 100, 6] {
            let p = compile_div_const(y, Signedness::Signed, &cfg()).unwrap();
            for &x in &xs {
                // Rust's `/` truncates toward zero, same as C and the paper.
                let expect = i64::from(x) / i64::from(y);
                assert_eq!(i64::from(sdiv(&p, x)), expect, "{x} / {y}\n{p}");
            }
        }
    }

    #[test]
    fn signed_negative_divisors() {
        for y in [-3i32, -1, -2, -7, -10, i32::MIN] {
            let p = compile_div_const_i32(y, &cfg()).unwrap();
            for x in [0i32, 1, -1, 99, -99, i32::MAX, i32::MIN + 1] {
                let expect = i64::from(x) / i64::from(y);
                assert_eq!(i64::from(sdiv(&p, x)), expect, "{x} / {y}");
            }
        }
    }

    #[test]
    fn power_of_two_costs() {
        // §7: unsigned 1 instruction; signed 3 for /2, 4 for the rest.
        for k in 1..=31u32 {
            let y = 1u32 << k;
            let pu = compile_div_const(y, Signedness::Unsigned, &cfg()).unwrap();
            assert_eq!(pu.len(), 1, "unsigned 2^{k}");
            let ps = compile_div_const(y, Signedness::Signed, &cfg()).unwrap();
            let expect = if k == 1 { 3 } else { 4 };
            assert_eq!(ps.len(), expect, "signed 2^{k}\n{ps}");
        }
    }

    #[test]
    fn signed_cycle_counts_for_three() {
        // §7: signed /3 takes 17 cycles when positive, ~19 when negative.
        let p = compile_div_const(3, Signedness::Signed, &cfg()).unwrap();
        let (_, pos) = run_fn(&p, &[(Reg::R26, 100)], &ExecConfig::default());
        let (_, neg) = run_fn(&p, &[(Reg::R26, -100i32 as u32)], &ExecConfig::default());
        assert!(
            (17..=19).contains(&pos.cycles),
            "positive path: {} cycles\n{p}",
            pos.cycles
        );
        assert!(
            (17..=20).contains(&neg.cycles),
            "negative path: {} cycles",
            neg.cycles
        );
    }

    #[test]
    fn constant_divisors_under_twenty_beat_the_general_routine() {
        // §7 Performance: "divisions using constant divisors less than
        // twenty vary from one to 27 cycles" vs ~80 general. Our measured
        // band is recorded in EXPERIMENTS.md; assert the shape: every y < 20
        // costs far less than 80 cycles.
        for y in 2..20u32 {
            let p = compile_div_const(y, Signedness::Unsigned, &cfg()).unwrap();
            let (_, r) = run_fn(&p, &[(Reg::R26, 123_456_789)], &ExecConfig::default());
            assert!(
                r.cycles <= 45,
                "y = {y}: {} cycles is not clearly better than 80",
                r.cycles
            );
        }
    }

    #[test]
    fn strategies_match_divisor_structure() {
        assert_eq!(
            plan(1, Signedness::Unsigned).unwrap(),
            DivStrategy::Identity
        );
        assert_eq!(
            plan(8, Signedness::Unsigned).unwrap(),
            DivStrategy::PowerOfTwo { k: 3 }
        );
        assert!(matches!(
            plan(12, Signedness::Unsigned).unwrap(),
            DivStrategy::EvenSplit { k: 2, odd: 3 }
        ));
        assert!(matches!(
            plan(7, Signedness::Unsigned).unwrap(),
            DivStrategy::Magic { .. }
        ));
        assert!(matches!(
            plan(0, Signedness::Unsigned),
            Err(DivCodegenError::ZeroDivisor)
        ));
    }

    #[test]
    fn y11_uses_triple_precision_unsigned_but_pair_signed() {
        // The paper: "except for y = 11, the largest possible intermediate
        // result will fit using two 32-bit words". Signed magnitudes are a
        // bit smaller, so y = 11 fits a pair there.
        match plan(11, Signedness::Unsigned).unwrap() {
            DivStrategy::Magic { triple, .. } => assert!(triple),
            other => panic!("unexpected {other}"),
        }
        match plan(11, Signedness::Signed).unwrap() {
            DivStrategy::Magic { triple, .. } => assert!(!triple),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn source_register_is_preserved() {
        for y in [2u32, 3, 7, 9, 11, 12, 100] {
            for sign in [Signedness::Unsigned, Signedness::Signed] {
                let p = compile_div_const(y, sign, &cfg()).unwrap();
                assert!(
                    !p.clobbered_registers().contains(&Reg::R26),
                    "y = {y} {sign:?} clobbers the dividend"
                );
            }
        }
    }

    #[test]
    fn register_conflicts_rejected() {
        let bad = DivCodegenConfig {
            source: Reg::R28,
            ..cfg()
        };
        assert!(matches!(
            compile_div_const(3, Signedness::Unsigned, &bad),
            Err(DivCodegenError::RegisterConflict)
        ));
    }

    #[test]
    fn too_few_temps_detected() {
        let narrow = DivCodegenConfig {
            temps: vec![Reg::R1, Reg::R31],
            ..cfg()
        };
        assert!(matches!(
            compile_div_const(3, Signedness::Unsigned, &narrow),
            Err(DivCodegenError::OutOfTemps { .. })
        ));
    }

    #[test]
    fn division_by_one_and_identity_edge() {
        let p = compile_div_const(1, Signedness::Unsigned, &cfg()).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(udiv(&p, 12345), 12345);
    }

    #[test]
    fn even_split_composes_signedly() {
        // 24 = 8·3: signed trunc composition.
        let p = compile_div_const(24, Signedness::Signed, &cfg()).unwrap();
        for x in [
            -25i32,
            -24,
            -23,
            -1,
            0,
            1,
            23,
            24,
            25,
            100,
            i32::MIN,
            i32::MAX,
        ] {
            assert_eq!(i64::from(sdiv(&p, x)), i64::from(x) / 24, "{x} / 24");
        }
    }
}
