//! Derivation of the §7 "derived method" parameters — the magic numbers.
//!
//! For a known odd divisor `y > 0` the paper replaces `q(x) = ⌊x/y⌋` with
//!
//! ```text
//! q'(x) = (a·x + b) / z        z = 2^s,  a = ⌊z/y⌋,  r = z mod y
//! ```
//!
//! choosing `b = a + r - 1` (or `b = 0` when `r = 0`), which makes
//! `⌊q'(x)⌋ = q(x)` for all `x` in `[0, (K+1)·y)` with `K = ⌊b/r⌋`. For full
//! 32-bit dividends `(K+1)·y` must reach `2^32` — the condition that picks
//! the `z` column of **Figure 6**.
//!
//! Because `b = a + r - 1`, the runtime computation is `(x+1)·a + (r-1)`,
//! which drops the final addition entirely when `r = 1` — the paper's own
//! observation, and the reason Figure 7's divide-by-3 is just a multiply by
//! `0x55555555` of `x + 1`.

use core::fmt;

/// Errors from [`Magic::derive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MagicError {
    /// The divisor must be odd and at least 3 (evens split a shift out
    /// first; 1 is the identity).
    DivisorNotOdd {
        /// The offending divisor.
        y: u32,
    },
    /// `2^s` too small: `(K+1)·y < 2^32`, so some 32-bit dividends would
    /// divide incorrectly.
    RangeTooSmall {
        /// The attempted exponent.
        s: u32,
        /// The achieved exclusive bound `(K+1)·y`.
        reach: u128,
    },
    /// `s` above 63 would need more than a two-word right shift.
    ExponentTooLarge {
        /// The attempted exponent.
        s: u32,
    },
}

impl fmt::Display for MagicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagicError::DivisorNotOdd { y } => {
                write!(f, "divisor {y} is not an odd number ≥ 3")
            }
            MagicError::RangeTooSmall { s, reach } => {
                write!(f, "z = 2^{s} only covers dividends below {reach} (< 2^32)")
            }
            MagicError::ExponentTooLarge { s } => write!(f, "z = 2^{s} exceeds 2^63"),
        }
    }
}

impl std::error::Error for MagicError {}

/// The derived-method parameters for one `(y, z)` choice.
///
/// # Example
///
/// ```
/// use divconst::Magic;
///
/// // Figure 6, first row: y = 3 → z = 2^32, r = 1, a = 0x55555555.
/// let m = Magic::minimal(3)?;
/// assert_eq!(m.s(), 32);
/// assert_eq!(m.a(), 0x5555_5555);
/// assert_eq!(m.r(), 1);
/// assert_eq!(m.reach(), 0x1_0000_0002); // (K+1)·y
/// # Ok::<(), divconst::MagicError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Magic {
    y: u32,
    s: u32,
    a: u64,
    r: u64,
}

impl Magic {
    /// Derives the parameters for divisor `y` with `z = 2^s`.
    ///
    /// # Errors
    ///
    /// [`MagicError::DivisorNotOdd`] unless `y` is odd and ≥ 3;
    /// [`MagicError::RangeTooSmall`] when `2^s` cannot cover all `u32`
    /// dividends; [`MagicError::ExponentTooLarge`] for `s > 63`.
    pub fn derive(y: u32, s: u32) -> Result<Magic, MagicError> {
        Magic::derive_for(y, s, 1 << 32)
    }

    /// Like [`Magic::derive`], but for dividends below `need` instead of the
    /// full `2^32` — signed division only has magnitudes up to `2^31`, which
    /// occasionally buys a smaller `z` (and a one-word multiplier where the
    /// unsigned case needs three-word intermediates, e.g. `y = 11`).
    ///
    /// # Errors
    ///
    /// As [`Magic::derive`], with the range test against `need`.
    pub fn derive_for(y: u32, s: u32, need: u128) -> Result<Magic, MagicError> {
        if y < 3 || y.is_multiple_of(2) {
            return Err(MagicError::DivisorNotOdd { y });
        }
        if s > 63 {
            return Err(MagicError::ExponentTooLarge { s });
        }
        let z = 1u128 << s;
        let a = (z / u128::from(y)) as u64;
        let r = (z % u128::from(y)) as u64;
        let m = Magic { y, s, a, r };
        if m.reach() < need {
            return Err(MagicError::RangeTooSmall {
                s,
                reach: m.reach(),
            });
        }
        Ok(m)
    }

    /// The smallest power of two satisfying the full-range condition — the
    /// `z` column of Figure 6.
    ///
    /// # Errors
    ///
    /// [`MagicError::DivisorNotOdd`] unless `y` is odd and ≥ 3.
    pub fn minimal(y: u32) -> Result<Magic, MagicError> {
        if y < 3 || y.is_multiple_of(2) {
            return Err(MagicError::DivisorNotOdd { y });
        }
        for s in 32..=63u32 {
            if let Ok(m) = Magic::derive(y, s) {
                return Ok(m);
            }
        }
        unreachable!("s = 32 + ceil(log2 y) + 1 always satisfies the bound for odd y < 2^31")
    }

    /// The divisor `y`.
    #[must_use]
    pub fn y(&self) -> u32 {
        self.y
    }

    /// The exponent `s` with `z = 2^s`.
    #[must_use]
    pub fn s(&self) -> u32 {
        self.s
    }

    /// `z = 2^s`.
    #[must_use]
    pub fn z(&self) -> u128 {
        1u128 << self.s
    }

    /// The multiplier `a = ⌊z/y⌋` (may exceed 32 bits, e.g. `y = 11`).
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The remainder `r = z mod y`.
    #[must_use]
    pub fn r(&self) -> u64 {
        self.r
    }

    /// The adjustment `b`: `a + r - 1`, or 0 when `r = 0`.
    #[must_use]
    pub fn b(&self) -> u64 {
        if self.r == 0 {
            0
        } else {
            self.a + self.r - 1
        }
    }

    /// The exclusive dividend bound `(K+1)·y` — the last Figure 6 column.
    /// Unbounded (`r = 0`) reports as `2^128 - 1`.
    #[must_use]
    pub fn reach(&self) -> u128 {
        if self.r == 0 {
            return u128::MAX;
        }
        let k = self.b() / self.r; // K = ⌊b/r⌋
        (u128::from(k) + 1) * u128::from(self.y)
    }

    /// Whether the multiplier fits one machine word (`a < 2^32`); when it
    /// does not, the runtime product needs a third word of precision (the
    /// paper notes this for `y = 11`).
    #[must_use]
    pub fn fits_pair(&self) -> bool {
        // Largest intermediate: (x+1)·a + (r-1) with x+1 = 2^32.
        let worst = (1u128 << 32) * u128::from(self.a) + u128::from(self.r.saturating_sub(1));
        worst < (1u128 << 64)
    }

    /// Checks `⌊(a·x + b)/z⌋ = ⌊x/y⌋` directly (used by tests and the
    /// experiment harness; the codegen relies on it).
    #[must_use]
    pub fn evaluate(&self, x: u32) -> u32 {
        let q = (u128::from(self.a) * u128::from(x) + u128::from(self.b())) >> self.s;
        q as u32
    }

    /// The Figure 6 rows: minimal derivations for odd `y` in `3..=19`.
    #[must_use]
    pub fn figure6() -> Vec<Magic> {
        (3..=19u32)
            .step_by(2)
            .map(|y| Magic::minimal(y).expect("odd y ≥ 3"))
            .collect()
    }
}

impl fmt::Display for Magic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y={} z=2^{} r={} a={:X} (K+1)y={:X}",
            self.y,
            self.s,
            self.r,
            self.a,
            self.reach()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 6 verbatim: (y, s, r, a, (K+1)y).
    const FIGURE6: [(u32, u32, u64, u64, u128); 9] = [
        (3, 32, 1, 0x5555_5555, 0x1_0000_0002),
        (5, 32, 1, 0x3333_3333, 0x1_0000_0004),
        (7, 33, 1, 0x4924_9249, 0x2_0000_0006),
        (9, 35, 5, 0xE38E_38E3, 0x1_9999_99A7),
        (11, 36, 9, 0x1_745D_1745, 0x1_C71C_71D6),
        (13, 35, 7, 0x9D8_9D89D, 0x1_2492_4938),
        (15, 32, 1, 0x1111_1111, 0x1_0000_000E),
        (17, 32, 1, 0xF0F_0F0F, 0x1_0000_0010),
        (19, 36, 1, 0xD794_35E5, 0x10_0000_0012),
    ];

    #[test]
    fn figure6_reproduced_exactly() {
        for &(y, s, r, a, reach) in &FIGURE6 {
            let m = Magic::minimal(y).unwrap();
            assert_eq!(m.s(), s, "z for y={y}");
            assert_eq!(m.r(), r, "r for y={y}");
            assert_eq!(m.a(), a, "a for y={y}");
            assert_eq!(m.reach(), reach, "(K+1)y for y={y}");
        }
    }

    #[test]
    fn figure6_helper_matches() {
        let rows = Magic::figure6();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].y(), 3);
        assert_eq!(rows[8].y(), 19);
    }

    #[test]
    fn rejects_bad_divisors() {
        for y in [0u32, 1, 2, 4, 100] {
            assert!(matches!(
                Magic::minimal(y),
                Err(MagicError::DivisorNotOdd { .. })
            ));
        }
    }

    #[test]
    fn rejects_small_exponents() {
        // y = 9 needs 2^35 (Figure 6): 32..35 must fail.
        for s in 32..35 {
            assert!(matches!(
                Magic::derive(9, s),
                Err(MagicError::RangeTooSmall { .. })
            ));
        }
        assert!(Magic::derive(9, 35).is_ok());
        assert!(Magic::derive(9, 64).is_err());
    }

    #[test]
    fn larger_exponents_stay_valid() {
        // The paper: "there are an infinite number of choices for z".
        for extra in 0..6u32 {
            let m = Magic::derive(9, 35 + extra).unwrap();
            assert!(m.reach() >= 1 << 32);
        }
    }

    #[test]
    fn evaluate_agrees_with_division_on_boundaries() {
        for y in (3..=101u32).step_by(2) {
            let m = Magic::minimal(y).unwrap();
            for k in [0u64, 1, 2, 3, 1000, (1 << 32) / u64::from(y)] {
                for delta in -2i64..=2 {
                    let x = (k * u64::from(y)) as i64 + delta;
                    let Ok(x) = u32::try_from(x) else { continue };
                    assert_eq!(m.evaluate(x), x / y, "y={y} x={x}");
                }
            }
        }
    }

    #[test]
    fn pair_fit_matches_paper_note() {
        // "In the cases listed, except for y = 11, the largest possible
        // intermediate result will fit using two 32-bit words."
        for m in Magic::figure6() {
            assert_eq!(m.fits_pair(), m.y() != 11, "y = {}", m.y());
        }
    }

    #[test]
    fn b_and_r_relation() {
        let m = Magic::minimal(7).unwrap();
        assert_eq!(m.b(), m.a() + m.r() - 1);
        assert_eq!(m.z(), u128::from(m.a()) * 7 + u128::from(m.r()));
    }

    #[test]
    fn display_mentions_all_columns() {
        let text = Magic::minimal(3).unwrap().to_string();
        assert!(text.contains("y=3"));
        assert!(text.contains("z=2^32"));
        assert!(text.contains("a=55555555"));
    }
}
