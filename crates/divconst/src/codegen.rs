//! Code generation for division by compile-time constants.
//!
//! Reproduces §7 of the paper end to end:
//!
//! * powers of two: one `SHR` unsigned; the sign-fixup sequences for signed
//!   dividends (three instructions for `/2`, four in general — the 11-bit
//!   `ADDI` immediate is what separates the paper's "small" and "large"
//!   powers);
//! * even divisors: shift out the power of two, then divide by the odd
//!   factor;
//! * odd divisors: the **derived method** — compute `(x+1)·a + (r-1)` in
//!   two-word (or, when `a ≥ 2^32`, three-word) precision with shift-and-add
//!   pairs, then take the high bits. For `y = 3` this emits exactly the
//!   17-instruction sequence of **Figure 7**;
//! * signed dividends by branching to a negated copy (§7 *Negative
//!   Dividends*): test, divide `|x|`, negate the quotient.
//!
//! The multiplier's shift-add chain comes from [`addchain`]; several `z`
//! exponents are tried and the cheapest pair-precision cost wins (the paper:
//! "there are an infinite number of choices for z").

use core::fmt;

use addchain::{find_chain, Chain, Ref, Step};
use pa_isa::{Cond, Im11, IsaError, Program, ProgramBuilder, Reg};

use crate::magic::Magic;

/// Register assignment for division codegen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivCodegenConfig {
    /// Dividend register; never written.
    pub source: Reg,
    /// Quotient destination.
    pub dest: Reg,
    /// Scratch registers. The derived method holds multi-word values, so it
    /// wants around seven (two scratch + three register pairs); the paper's
    /// millicode conventions burn the caller-saves the same way.
    pub temps: Vec<Reg>,
}

impl Default for DivCodegenConfig {
    fn default() -> DivCodegenConfig {
        DivCodegenConfig {
            source: Reg::R26,
            dest: Reg::R28,
            temps: vec![
                Reg::R1,
                Reg::R31,
                Reg::R29,
                Reg::R25,
                Reg::R24,
                Reg::R23,
                Reg::R22,
                Reg::R21,
                Reg::R20,
                Reg::R19,
                Reg::R18,
                Reg::R17,
                Reg::R16,
                Reg::R15,
            ],
        }
    }
}

/// Whether the dividend is interpreted as `u32` or `i32` (truncating
/// division, as C/Pascal/Fortran define it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signedness {
    /// `u32` dividend.
    Unsigned,
    /// `i32` dividend, quotient truncated toward zero.
    Signed,
}

/// What the generator decided to emit for a divisor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DivStrategy {
    /// `y = 1`: a register copy.
    Identity,
    /// `y = 2^k`: shift (plus sign fixup when signed).
    PowerOfTwo {
        /// The shift distance.
        k: u32,
    },
    /// Even `y`: shift out `2^k`, then divide by the odd factor.
    EvenSplit {
        /// The power of two removed first.
        k: u32,
        /// The remaining odd divisor.
        odd: u32,
    },
    /// Odd `y`: the derived method.
    Magic {
        /// The chosen parameters.
        magic: Magic,
        /// Chain length for the multiplier `a`.
        chain_len: usize,
        /// Whether three words of intermediate precision are needed.
        triple: bool,
    },
}

impl fmt::Display for DivStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivStrategy::Identity => write!(f, "identity"),
            DivStrategy::PowerOfTwo { k } => write!(f, "shift by {k}"),
            DivStrategy::EvenSplit { k, odd } => {
                write!(f, "shift by {k} then divide by {odd}")
            }
            DivStrategy::Magic {
                magic,
                chain_len,
                triple,
            } => write!(
                f,
                "derived method: {magic}, chain of {chain_len}{}",
                if *triple { ", triple precision" } else { "" }
            ),
        }
    }
}

/// Errors from division codegen.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DivCodegenError {
    /// Division by zero has no code sequence.
    ZeroDivisor,
    /// Not enough scratch registers for the multi-word chain evaluation.
    OutOfTemps {
        /// Registers the pool would have needed.
        needed: usize,
    },
    /// `source`, `dest` and `temps` must be distinct, non-`r0` registers.
    RegisterConflict,
    /// An instruction could not be constructed.
    Isa(IsaError),
}

impl fmt::Display for DivCodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivCodegenError::ZeroDivisor => write!(f, "division by zero"),
            DivCodegenError::OutOfTemps { needed } => {
                write!(f, "derived method needs about {needed} scratch registers")
            }
            DivCodegenError::RegisterConflict => {
                write!(
                    f,
                    "source, dest and temp registers must be distinct and non-zero"
                )
            }
            DivCodegenError::Isa(e) => write!(f, "instruction construction failed: {e}"),
        }
    }
}

impl std::error::Error for DivCodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DivCodegenError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for DivCodegenError {
    fn from(e: IsaError) -> DivCodegenError {
        DivCodegenError::Isa(e)
    }
}

/// Chooses the strategy for `y` (`signedness` affects the dividend bound the
/// derived method must cover: `2^31` instead of `2^32`, which occasionally
/// buys a smaller `z`).
///
/// # Errors
///
/// [`DivCodegenError::ZeroDivisor`] for `y = 0`.
///
/// # Example
///
/// ```
/// use divconst::{plan, DivStrategy, Signedness};
///
/// match plan(3, Signedness::Unsigned)? {
///     DivStrategy::Magic { magic, .. } => assert_eq!(magic.a(), 0x5555_5555),
///     other => panic!("unexpected: {other}"),
/// }
/// # Ok::<(), divconst::DivCodegenError>(())
/// ```
pub fn plan(y: u32, signedness: Signedness) -> Result<DivStrategy, DivCodegenError> {
    if y == 0 {
        return Err(DivCodegenError::ZeroDivisor);
    }
    let strategy = if y == 1 {
        DivStrategy::Identity
    } else if y.is_power_of_two() {
        DivStrategy::PowerOfTwo {
            k: y.trailing_zeros(),
        }
    } else if y.trailing_zeros() > 0 {
        let k = y.trailing_zeros();
        DivStrategy::EvenSplit { k, odd: y >> k }
    } else {
        let (magic, chain) = choose_magic(y, signedness);
        DivStrategy::Magic {
            triple: !magic_fits_pair(&magic, signedness),
            chain_len: chain.len(),
            magic,
        }
    };
    telemetry::emit(|| plan_event(y, signedness, &strategy));
    Ok(strategy)
}

/// Builds the [`telemetry::Event::DivPlan`] record for a chosen strategy.
fn plan_event(y: u32, signedness: Signedness, strategy: &DivStrategy) -> telemetry::Event {
    let signed = matches!(signedness, Signedness::Signed);
    let sign_fixup = || if signed { "sign-fixup" } else { "none" };
    let (name, magic_a, shift_s, fixup, chain_len) = match strategy {
        DivStrategy::Identity => ("identity", None, None, "none", None),
        DivStrategy::PowerOfTwo { k } => ("power-of-two", None, Some(*k), sign_fixup(), None),
        DivStrategy::EvenSplit { k, odd: _ } => ("even-split", None, Some(*k), sign_fixup(), None),
        DivStrategy::Magic {
            magic,
            chain_len,
            triple,
        } => (
            "magic",
            Some(magic.a()),
            Some(magic.s()),
            if *triple { "triple-precision" } else { "pair" },
            Some(*chain_len),
        ),
    };
    telemetry::Event::DivPlan {
        y,
        strategy: name,
        magic_a,
        shift_s,
        fixup,
        chain_len,
    }
}

/// Required dividend coverage: `2^32` unsigned, `2^31` for signed
/// magnitudes.
fn needed_reach(signedness: Signedness) -> u128 {
    match signedness {
        Signedness::Unsigned => 1 << 32,
        // |i32::MIN| = 2^31 must still divide correctly.
        Signedness::Signed => (1 << 31) + 1,
    }
}

fn magic_fits_pair(magic: &Magic, signedness: Signedness) -> bool {
    let max_x1 = match signedness {
        Signedness::Unsigned => 1u128 << 32,
        Signedness::Signed => (1u128 << 31) + 1,
    };
    let worst = max_x1 * u128::from(magic.a()) + u128::from(magic.r() - 1);
    worst < (1u128 << 64)
}

/// Peak number of simultaneously live chain values (including the base),
/// which is the number of multi-word register slots the evaluation needs.
fn peak_live(chain: &Chain) -> usize {
    let steps = chain.steps();
    let mut last_use = vec![0usize; steps.len() + 1];
    for (at, step) in steps.iter().enumerate() {
        let (j, k) = step.operands();
        for r in [Some(j), k].into_iter().flatten() {
            match r {
                Ref::One => last_use[0] = at,
                Ref::Step(e) => last_use[e as usize] = at,
                Ref::Zero => {}
            }
        }
    }
    last_use[steps.len()] = steps.len();
    let mut peak = 1; // the base
    for at in 0..steps.len() {
        // Elements created up to and including this step that are still read
        // strictly later, plus this step's own result slot.
        let live = (0..=at + 1)
            .filter(|&e| e == at + 1 || last_use[e] > at)
            .count();
        peak = peak.max(live);
    }
    peak
}

/// Tries several `z` exponents and keeps the cheapest chain that fits the
/// register budget.
fn choose_magic_with(
    y: u32,
    signedness: Signedness,
    slots_available: impl Fn(bool) -> usize,
) -> (Magic, Chain) {
    let need = needed_reach(signedness);
    let mut best: Option<(u64, Magic, Chain)> = None;
    let mut fallback: Option<(u64, Magic, Chain)> = None;
    let mut s = 32;
    let mut seen_valid = 0;
    while s <= 63 && seen_valid < 8 {
        if let Ok(m) = Magic::derive_for(y, s, need) {
            seen_valid += 1;
            let triple = !magic_fits_pair(&m, signedness);
            let slots = slots_available(triple);
            let mut chain = find_chain(m.a() as i64);
            if peak_live(&chain) > slots {
                // Retry without the register-hungry split rules.
                let lean = addchain::RuleConfig {
                    allow_splits: false,
                    ..addchain::RuleConfig::default()
                };
                chain = addchain::find_chain_with(m.a() as i64, &lean);
            }
            if peak_live(&chain) > slots {
                // Last resort: binary rules only (no factor method), whose
                // chains keep at most three values live — longer code, but
                // it always fits.
                let binary = addchain::RuleConfig {
                    allow_splits: false,
                    max_divisor_search: 1,
                    ..addchain::RuleConfig::default()
                };
                chain = addchain::find_chain_with(m.a() as i64, &binary);
            }
            let cost = magic_cost(&m, &chain, signedness);
            let fits = peak_live(&chain) <= slots;
            let slot = if fits { &mut best } else { &mut fallback };
            if slot.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                *slot = Some((cost, m, chain));
            }
        }
        s += 1;
    }
    let (_, m, chain) = best
        .or(fallback)
        .expect("some s in 32..=63 is always valid for odd y ≥ 3");
    (m, chain)
}

fn choose_magic(y: u32, signedness: Signedness) -> (Magic, Chain) {
    // Budget of the default configuration (the `plan` entry point has no
    // config in hand; compile paths re-choose with the real one).
    let default_cfg = DivCodegenConfig::default();
    choose_magic_with(y, signedness, |triple| {
        slots_for(&default_cfg, if triple { 3 } else { 2 })
    })
}

/// How many `width`-word slots a configuration's register pool yields.
fn slots_for(config: &DivCodegenConfig, width: usize) -> usize {
    let pool = 1 + config.temps.len().saturating_sub(2); // dest + non-scratch temps
    pool / width
}

/// Estimated dynamic cost of the derived-method body.
fn magic_cost(magic: &Magic, chain: &Chain, signedness: Signedness) -> u64 {
    let triple = !magic_fits_pair(magic, signedness);
    let (shadd, other) = if triple { (5, 3) } else { (3, 2) };
    let mut cost = 2; // init: addi + addc
    for step in chain.steps() {
        cost += match step {
            Step::ShAdd { .. } => shadd,
            Step::Add { .. } | Step::Sub { .. } | Step::Shl { .. } => other,
        };
    }
    if magic.r() > 1 {
        cost += if magic.r() - 1 <= Im11::MAX as u64 {
            2
        } else {
            4
        };
    }
    if magic.s() > 32 || triple {
        cost += 1;
    }
    cost
}

/// Compiles `dest = source / y` for an unsigned or signed dividend.
///
/// # Errors
///
/// See [`DivCodegenError`].
///
/// # Example
///
/// ```
/// use divconst::{compile_div_const, DivCodegenConfig, Signedness};
/// use pa_sim::{run_fn, ExecConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = DivCodegenConfig::default();
/// let p = compile_div_const(3, Signedness::Unsigned, &cfg)?;
/// let (m, stats) = run_fn(&p, &[(cfg.source, 100)], &ExecConfig::default());
/// assert_eq!(m.reg(cfg.dest), 33);
/// assert_eq!(stats.cycles, 17); // Figure 7's count
/// # Ok(())
/// # }
/// ```
pub fn compile_div_const(
    y: u32,
    signedness: Signedness,
    config: &DivCodegenConfig,
) -> Result<Program, DivCodegenError> {
    validate_regs(config)?;
    let mut b = ProgramBuilder::new();
    emit_div(y, signedness, config, config.source, &mut b)?;
    b.build().map_err(DivCodegenError::from)
}

/// Compiles signed division with a possibly negative constant divisor:
/// `q = trunc(x / y)`; for `y < 0` this is the `|y|` program plus a final
/// negation.
///
/// # Errors
///
/// See [`DivCodegenError`].
pub fn compile_div_const_i32(
    y: i32,
    config: &DivCodegenConfig,
) -> Result<Program, DivCodegenError> {
    validate_regs(config)?;
    let mut b = ProgramBuilder::new();
    let magnitude = y.unsigned_abs();
    emit_div(magnitude, Signedness::Signed, config, config.source, &mut b)?;
    if y < 0 {
        b.sub(Reg::R0, config.dest, config.dest);
    }
    b.build().map_err(DivCodegenError::from)
}

fn validate_regs(config: &DivCodegenConfig) -> Result<(), DivCodegenError> {
    let mut regs = vec![config.source, config.dest];
    regs.extend(config.temps.iter().copied());
    if regs.iter().any(|r| r.is_zero()) {
        return Err(DivCodegenError::RegisterConflict);
    }
    let mut sorted = regs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != regs.len() {
        return Err(DivCodegenError::RegisterConflict);
    }
    Ok(())
}

fn emit_div(
    y: u32,
    signedness: Signedness,
    config: &DivCodegenConfig,
    x: Reg,
    b: &mut ProgramBuilder,
) -> Result<(), DivCodegenError> {
    match plan(y, signedness)? {
        DivStrategy::Identity => {
            b.copy(x, config.dest);
            Ok(())
        }
        DivStrategy::PowerOfTwo { k } => {
            emit_pow2(k, signedness, config, x, b);
            Ok(())
        }
        DivStrategy::EvenSplit { k, odd } => {
            // Truncating division composes: trunc(x / 2^k·m) =
            // trunc(trunc(x / 2^k) / m).
            let t = config.temps[0];
            emit_pow2_into(k, signedness, x, t, config, b);
            let inner = DivCodegenConfig {
                source: t,
                dest: config.dest,
                temps: config.temps[1..].to_vec(),
            };
            emit_div(odd, signedness, &inner, t, b)
        }
        DivStrategy::Magic { .. } => {
            // Re-choose with the actual register budget of this config.
            let (magic, chain) = choose_magic_with(y, signedness, |triple| {
                slots_for(config, if triple { 3 } else { 2 })
            });
            match signedness {
                Signedness::Unsigned => emit_magic_unsigned(&magic, &chain, config, x, b),
                Signedness::Signed => emit_magic_signed(&magic, &chain, config, x, b),
            }
        }
    }
}

fn emit_pow2(
    k: u32,
    signedness: Signedness,
    config: &DivCodegenConfig,
    x: Reg,
    b: &mut ProgramBuilder,
) {
    emit_pow2_into(k, signedness, x, config.dest, config, b);
}

/// Division by `2^k` into `dest` (truncating toward zero when signed).
fn emit_pow2_into(
    k: u32,
    signedness: Signedness,
    x: Reg,
    dest: Reg,
    config: &DivCodegenConfig,
    b: &mut ProgramBuilder,
) {
    match signedness {
        Signedness::Unsigned => {
            b.shr(x, k, dest);
        }
        Signedness::Signed if k == 1 => {
            // Three instructions, the paper's "small powers of 2" claim:
            // q = (x + (x >>logical 31)) >>arith 1.
            b.shr(x, 31, dest);
            b.add(x, dest, dest);
            b.sar(dest, 1, dest);
        }
        Signedness::Signed if (1i64 << k) - 1 <= i64::from(Im11::MAX) => {
            // Small powers: bias fits the 11-bit immediate.
            b.addi((1 << k) - 1, x, dest); // biased value
            b.comclr(Cond::Lt, x, Reg::R0, Reg::R0); // x < 0: keep the bias
            b.addi(0, x, dest); // x ≥ 0: unbiased
            b.sar(dest, k, dest);
        }
        Signedness::Signed => {
            // Large powers: build the bias from the sign mask (four
            // instructions, as in the paper).
            let t = config.temps[0];
            b.sar(x, 31, t);
            b.shr(t, 32 - k, t);
            b.add(x, t, dest);
            b.sar(dest, k, dest);
        }
    }
}

// ---------------------------------------------------------------------------
// Derived method: multi-word chain evaluation
// ---------------------------------------------------------------------------

/// A multi-word register group. `words[0]` is the least significant;
/// missing high words read as zero (`r0`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Value {
    words: Vec<Reg>,
}

impl Value {
    fn word(&self, i: usize) -> Reg {
        self.words.get(i).copied().unwrap_or(Reg::R0)
    }
}

struct PairAlloc {
    /// Register groups available, each `width` long.
    slots: Vec<Value>,
    /// Chain element currently held by each slot (0 = the base `x+1`).
    holds: Vec<Option<u32>>,
    /// Last step index reading each element.
    last_use: Vec<usize>,
}

impl PairAlloc {
    fn slot_of(&self, element: u32) -> Option<&Value> {
        self.holds
            .iter()
            .position(|&h| h == Some(element))
            .map(|i| &self.slots[i])
    }

    fn place(
        &mut self,
        element: u32,
        at: usize,
        prefer_first: bool,
    ) -> Result<usize, DivCodegenError> {
        let dead = |h: Option<u32>| match h {
            None => true,
            Some(e) => self.last_use[e as usize] <= at,
        };
        // The final element wants slot 0, whose high word is `dest` — that
        // makes the s = 32 extraction free (Figure 7's exact count).
        if prefer_first && dead(self.holds[0]) {
            self.holds[0] = Some(element);
            return Ok(0);
        }
        let order = (0..self.slots.len()).rev(); // keep slot 0 free for the end
        for i in order {
            if dead(self.holds[i]) {
                self.holds[i] = Some(element);
                return Ok(i);
            }
        }
        Err(DivCodegenError::OutOfTemps {
            needed: (self.slots.len() + 1) * self.slots[0].words.len() + 2,
        })
    }
}

/// Emits the derived method for an unsigned dividend in `x`.
fn emit_magic_unsigned(
    magic: &Magic,
    chain: &Chain,
    config: &DivCodegenConfig,
    x: Reg,
    b: &mut ProgramBuilder,
) -> Result<(), DivCodegenError> {
    emit_magic_body(magic, chain, config, x, b, BaseInit::PlusOneWithCarry)
}

/// Emits the §7 signed wrapper: branch on sign, divide the magnitude (whose
/// `+1` can no longer carry, so the base's high word is `r0`), negate the
/// quotient on the negative path.
fn emit_magic_signed(
    magic: &Magic,
    chain: &Chain,
    config: &DivCodegenConfig,
    x: Reg,
    b: &mut ProgramBuilder,
) -> Result<(), DivCodegenError> {
    let neg = b.named_label("q_neg");
    let exit = b.named_label("q_exit");
    b.comb(Cond::Lt, x, Reg::R0, neg);
    emit_magic_body(magic, chain, config, x, b, BaseInit::PlusOneNoCarry)?;
    b.b(exit);
    b.bind(neg);
    emit_magic_body(magic, chain, config, x, b, BaseInit::OneMinusX)?;
    b.sub(Reg::R0, config.dest, config.dest);
    b.bind(exit);
    Ok(())
}

/// How the base value (`x + 1` over the magnitude) is materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseInit {
    /// Unsigned: `lo = x + 1`, `hi = carry` (2 instructions).
    PlusOneWithCarry,
    /// Signed, `x ≥ 0`: `lo = x + 1` cannot carry (1 instruction).
    PlusOneNoCarry,
    /// Signed, `x < 0`: `lo = 1 - x = |x| + 1` cannot carry (1 instruction).
    OneMinusX,
}

fn emit_magic_body(
    magic: &Magic,
    chain: &Chain,
    config: &DivCodegenConfig,
    x: Reg,
    b: &mut ProgramBuilder,
    init: BaseInit,
) -> Result<(), DivCodegenError> {
    let signedness = match init {
        BaseInit::PlusOneWithCarry => Signedness::Unsigned,
        _ => Signedness::Signed,
    };
    let triple = !magic_fits_pair(magic, signedness);
    let width = if triple { 3 } else { 2 };

    // Register budget: 2 dedicated scratch + `width`-sized slots carved from
    // dest + temps.
    if config.temps.len() < 2 + width {
        return Err(DivCodegenError::OutOfTemps {
            needed: 2 + width + 1,
        });
    }
    let scratch = [config.temps[0], config.temps[1]];
    // Slot 0 places `dest` as its most significant word so the final s = 32
    // pair extraction is free when the last chain value lands there.
    let mut pool: Vec<Reg> = match width {
        2 => vec![config.temps[2], config.dest],
        _ => vec![config.temps[2], config.temps[3], config.dest],
    };
    let tail_start = width + 1;
    pool.extend(
        config.temps[tail_start.min(config.temps.len())..]
            .iter()
            .copied(),
    );
    let slots: Vec<Value> = pool
        .chunks_exact(width)
        .map(|c| Value { words: c.to_vec() })
        .collect();
    if slots.len() < 2 {
        return Err(DivCodegenError::OutOfTemps {
            needed: 2 + 2 * width,
        });
    }

    let steps = chain.steps();
    // Liveness (element 0 = base, elements 1.. = steps).
    let mut last_use = vec![0usize; steps.len() + 1];
    for (at, step) in steps.iter().enumerate() {
        let (j, k) = step.operands();
        for r in [Some(j), k].into_iter().flatten() {
            match r {
                Ref::One => last_use[0] = at,
                Ref::Step(e) => last_use[e as usize] = at,
                Ref::Zero => {}
            }
        }
    }
    // The final element is read by the extraction "step".
    last_use[steps.len()] = steps.len();

    let mut alloc = PairAlloc {
        slots,
        holds: vec![None; 0],
        last_use,
    };
    alloc.holds = vec![None; alloc.slots.len()];

    // Base init: element 0. With no carry possible the high words stay r0
    // and the base does not consume a slot at all — it is (r0, lo).
    let base: Value = match init {
        BaseInit::PlusOneWithCarry => {
            let slot = alloc.place(0, 0, false)?;
            let v = alloc.slots[slot].clone();
            b.addi(1, x, v.word(0));
            b.addc(Reg::R0, Reg::R0, v.word(1));
            // Words beyond the pair read as r0 through Value::word.
            Value {
                words: vec![v.word(0), v.word(1)],
            }
        }
        BaseInit::PlusOneNoCarry | BaseInit::OneMinusX => {
            // |x| + 1 ≤ 2^31 + 1 fits one word; the high words are literally
            // r0. The base still claims a slot so its low register survives
            // while the chain references it.
            let slot = alloc.place(0, 0, false)?;
            let lo = alloc.slots[slot].word(0);
            match init {
                BaseInit::PlusOneNoCarry => b.addi(1, x, lo),
                _ => b.subi(1, x, lo),
            };
            Value { words: vec![lo] }
        }
    };

    // Evaluate the chain over multi-word values.
    let get = |alloc: &PairAlloc, r: Ref, base: &Value| -> Value {
        match r {
            Ref::Zero => Value { words: vec![] },
            Ref::One => base.clone(),
            Ref::Step(e) => alloc.slot_of(e).expect("chain refs resolve").clone(),
        }
    };
    for (at, step) in steps.iter().enumerate() {
        let element = (at + 1) as u32;
        let (j, k) = step.operands();
        let pj = get(&alloc, j, &base);
        let pk = k.map(|k| get(&alloc, k, &base));
        let is_final = at + 1 == steps.len() && magic.s() == 32;
        let slot = alloc.place(element, at, is_final)?;
        let dst = alloc.slots[slot].clone();
        match *step {
            Step::Add { .. } => emit_wide_add(b, &pj, pk.as_ref().expect("add"), &dst, width),
            Step::Sub { .. } => emit_wide_sub(b, &pj, pk.as_ref().expect("sub"), &dst, width),
            Step::ShAdd { sh, .. } => emit_wide_shadd(
                b,
                sh,
                &pj,
                pk.as_ref().expect("shadd"),
                &dst,
                width,
                scratch,
            ),
            Step::Shl { amount, .. } => emit_wide_shl(b, amount, &pj, &dst, width),
        }
    }

    let result = if steps.is_empty() {
        base.clone()
    } else {
        alloc
            .slot_of(steps.len() as u32)
            .expect("final element placed")
            .clone()
    };

    // Add (r - 1) when r > 1 (for r = 1 the (x+1)·a form absorbed it).
    if magic.r() > 1 {
        let delta = magic.r() - 1;
        if delta <= Im11::MAX as u64 {
            b.addi(delta as i32, result.word(0), result.word(0));
        } else {
            b.load_const(delta as u32, scratch[0]);
            b.add(scratch[0], result.word(0), result.word(0));
        }
        b.addc(Reg::R0, result.word(1), result.word(1));
        if width == 3 {
            b.addc(Reg::R0, result.word(2), result.word(2));
        }
    }

    // Extract the quotient: bits [s, s+32) of the product.
    let s = magic.s();
    if s == 32 {
        if result.word(1) != config.dest {
            b.copy(result.word(1), config.dest);
        }
    } else if triple {
        b.shd(result.word(2), result.word(1), s - 32, config.dest);
    } else {
        b.shr(result.word(1), s - 32, config.dest);
    }
    Ok(())
}

fn emit_wide_add(b: &mut ProgramBuilder, p: &Value, q: &Value, dst: &Value, width: usize) {
    b.add(p.word(0), q.word(0), dst.word(0));
    b.addc(p.word(1), q.word(1), dst.word(1));
    if width == 3 {
        b.addc(p.word(2), q.word(2), dst.word(2));
    }
}

fn emit_wide_sub(b: &mut ProgramBuilder, p: &Value, q: &Value, dst: &Value, width: usize) {
    b.sub(p.word(0), q.word(0), dst.word(0));
    b.subb(p.word(1), q.word(1), dst.word(1));
    if width == 3 {
        b.subb(p.word(2), q.word(2), dst.word(2));
    }
}

/// `(p << sh) + q` for `sh ≤ 3` — the Figure 7 workhorse: `SHD` recovers the
/// bits the pre-shifter drops, `SHxADD` produces the low word and the carry,
/// `ADDC` folds both into the high word. Three instructions in pair
/// precision, five in triple.
fn emit_wide_shadd(
    b: &mut ProgramBuilder,
    sh: u32,
    p: &Value,
    q: &Value,
    dst: &Value,
    width: usize,
    scratch: [Reg; 2],
) {
    let sh_amount = pa_isa::ShAmount::new(sh).expect("chain shadd is 1..=3");
    // High parts of p << sh, captured before any destination write can
    // clobber p's words.
    let h1 = scratch[0];
    b.shd(p.word(1), p.word(0), 32 - sh, h1);
    let h2 = scratch[1];
    if width == 3 {
        b.shd(p.word(2), p.word(1), 32 - sh, h2);
    }
    b.raw(pa_isa::Op::ShAdd {
        sh: sh_amount,
        a: p.word(0),
        b: q.word(0),
        t: dst.word(0),
        trap: false,
    });
    b.addc(h1, q.word(1), dst.word(1));
    if width == 3 {
        b.addc(h2, q.word(2), dst.word(2));
    }
}

/// `p << amount` in multi-word precision: `SHD`s from most to least
/// significant, then the low shift — the ordering makes in-place shifts
/// (`dst = p`) safe, so no scratch or copies are needed (2 instructions in
/// pair precision, 3 in triple).
fn emit_wide_shl(b: &mut ProgramBuilder, amount: u32, p: &Value, dst: &Value, width: usize) {
    debug_assert!((1..=31).contains(&amount));
    if width == 3 {
        b.shd(p.word(2), p.word(1), 32 - amount, dst.word(2));
        b.shd(p.word(1), p.word(0), 32 - amount, dst.word(1));
        b.shl(p.word(0), amount, dst.word(0));
    } else {
        b.shd(p.word(1), p.word(0), 32 - amount, dst.word(1));
        b.shl(p.word(0), amount, dst.word(0));
    }
}
