//! # operand-dist — operand distribution models and workload generators
//!
//! The paper's performance claims are all *distribution-weighted*: the
//! frequency analyses it cites (\[Neu79], \[Hen82], \[Luk86], \[Cla82]) say that
//!
//! * ~91 % of multiplications have one compile-time-constant operand;
//! * operand magnitudes are small — "log-uniform" is the paper's working
//!   (self-described pessimistic) assumption;
//! * the lesser multiply operand is under 16 "more than half the time"
//!   (Figure 5 assumes the class weights 60/20/10/10);
//! * both operands are positive about 90 % of the time.
//!
//! The original traces are HP-proprietary; this crate substitutes synthetic
//! generators parameterised by exactly those published summaries (see
//! DESIGN.md, *Substitutions*), plus the analysis helpers that recompute the
//! summaries from any operand stream — so the substitution is checkable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The operand-magnitude classes of **Figure 5**, keyed by `min(|x|, |y|)`.
pub const FIGURE5_CLASSES: [(u32, u32); 4] = [(0, 15), (16, 255), (256, 4095), (4096, 46340)];

/// The paper's Figure 5 class weights (percent).
pub const FIGURE5_WEIGHTS: [u32; 4] = [60, 20, 10, 10];

/// Fraction of multiplications with a compile-time-constant operand
/// (\[Neu79]: "some 91 %").
pub const CONSTANT_OPERAND_PERCENT: u32 = 91;

/// Fraction of operand pairs with both operands positive (§6: "a
/// distribution which has both operands positive about 90 % of the time").
pub const BOTH_POSITIVE_PERCENT: u32 = 90;

/// A log-uniform magnitude distribution over `1..2^max_bits`: each bit-length
/// is equally likely — the paper's model for multiplier magnitudes
/// ("if we assume that the absolute value of the set of multipliers is
/// logarithmically distributed").
///
/// # Example
///
/// ```
/// use operand_dist::LogUniform;
/// use rand::{SeedableRng, rngs::StdRng};
/// use rand::distributions::Distribution;
///
/// let dist = LogUniform::new(31);
/// let mut rng = StdRng::seed_from_u64(7);
/// let v = dist.sample(&mut rng);
/// assert!(v >= 1 && v < (1 << 31));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogUniform {
    max_bits: u32,
}

impl LogUniform {
    /// Magnitudes up to `2^max_bits - 1` (`max_bits` in 1..=32).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= max_bits <= 32`.
    #[must_use]
    pub fn new(max_bits: u32) -> LogUniform {
        assert!((1..=32).contains(&max_bits));
        LogUniform { max_bits }
    }

    /// The average number of significant bits (≈ `max_bits / 2`), which is
    /// the expected iteration count of the bit-serial multiply loops.
    #[must_use]
    pub fn mean_bits(&self) -> f64 {
        f64::from(self.max_bits + 1) / 2.0
    }
}

impl Distribution<u32> for LogUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let bits = rng.gen_range(1..=self.max_bits);
        if bits == 1 {
            1
        } else {
            let high = 1u32 << (bits - 1);
            let low = rng.gen_range(0..high);
            (high | low) & (u32::MAX >> (32 - bits))
        }
    }
}

/// The Figure 5 operand model: `min(|x|, |y|)` falls in the four classes
/// with weights 60/20/10/10, signs are positive ~90 % of the time, and the
/// larger operand is bounded so the product does not overflow (the paper
/// explicitly scopes performance to non-overflowing multiplies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Figure5Mix {
    both_positive_percent: u32,
}

impl Figure5Mix {
    /// The paper's parameters.
    #[must_use]
    pub fn new() -> Figure5Mix {
        Figure5Mix {
            both_positive_percent: BOTH_POSITIVE_PERCENT,
        }
    }

    /// Overrides the sign mix (for sensitivity experiments).
    #[must_use]
    pub fn with_positive_percent(percent: u32) -> Figure5Mix {
        Figure5Mix {
            both_positive_percent: percent.min(100),
        }
    }

    /// Samples one `(multiplier, multiplicand)` pair.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (i32, i32) {
        // Pick the class of the smaller operand.
        let mut roll = rng.gen_range(0..100u32);
        let mut class = 0usize;
        for (i, &w) in FIGURE5_WEIGHTS.iter().enumerate() {
            if roll < w {
                class = i;
                break;
            }
            roll -= w;
        }
        let (lo, hi) = FIGURE5_CLASSES[class];
        let small = rng.gen_range(lo..=hi);
        // The larger operand: log-uniform, capped so the product fits 31
        // bits (non-overflowing multiplies are the performance scope).
        let cap = if small == 0 {
            i32::MAX as u32
        } else {
            (i32::MAX as u32) / small.max(1)
        };
        let big_bits = 32 - cap.leading_zeros();
        let big = LogUniform::new(big_bits.clamp(1, 31))
            .sample(rng)
            .min(cap.max(1));
        let big = big.max(small);
        let (mut x, mut y) = (small as i32, big as i32);
        // Randomly place the small operand first or second.
        if rng.gen_bool(0.5) {
            core::mem::swap(&mut x, &mut y);
        }
        // Sign mix: both positive with the configured probability, else
        // negate one (or rarely both).
        if rng.gen_range(0..100u32) >= self.both_positive_percent {
            if rng.gen_bool(0.2) {
                x = -x;
                y = -y;
            } else if rng.gen_bool(0.5) {
                x = -x;
            } else {
                y = -y;
            }
        }
        (x, y)
    }

    /// A reproducible stream of `n` pairs.
    #[must_use]
    pub fn pairs(&self, seed: u64, n: usize) -> Vec<(i32, i32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

impl Default for Figure5Mix {
    fn default() -> Figure5Mix {
        Figure5Mix::new()
    }
}

/// A divide workload: §7's scope split between constant divisors under 20,
/// variable small divisors, and general divisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivMix {
    /// Percent of divisions whose divisor is a compile-time constant.
    pub constant_percent: u32,
    /// Percent of the remaining (variable) divisors that are below 20.
    pub small_variable_percent: u32,
}

impl Default for DivMix {
    fn default() -> DivMix {
        // The paper does not publish its divide mix; these weights are
        // chosen so the measured average is consistent with the §8 summary
        // ("the average divide takes about 40 [cycles]"): constant divisors
        // (~15 cycles) under half the weight, the rest split between the
        // small-divisor dispatch (~25) and the ~80-cycle general routine.
        DivMix {
            constant_percent: 45,
            small_variable_percent: 40,
        }
    }
}

/// One sampled division.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivOp {
    /// Divisor known at compile time (value attached).
    Constant {
        /// The dividend.
        x: u32,
        /// The constant divisor.
        y: u32,
    },
    /// Divisor only known at run time.
    Variable {
        /// The dividend.
        x: u32,
        /// The divisor.
        y: u32,
    },
}

impl DivMix {
    /// A reproducible stream of `n` divisions. Constant divisors are drawn
    /// from the small odd/even favourites (2, 3, 4, 5, 7, 8, 10, 16); small
    /// variable divisors uniformly from 2..20; the rest log-uniformly.
    #[must_use]
    pub fn ops(&self, seed: u64, n: usize) -> Vec<DivOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dividends = LogUniform::new(31);
        const FAVOURITES: [u32; 8] = [2, 3, 4, 5, 7, 8, 10, 16];
        (0..n)
            .map(|_| {
                let x = dividends.sample(&mut rng);
                if rng.gen_range(0..100u32) < self.constant_percent {
                    let y = FAVOURITES[rng.gen_range(0..FAVOURITES.len())];
                    DivOp::Constant { x, y }
                } else if rng.gen_range(0..100u32) < self.small_variable_percent {
                    DivOp::Variable {
                        x,
                        y: rng.gen_range(2..20),
                    }
                } else {
                    DivOp::Variable {
                        x,
                        y: dividends.sample(&mut rng).max(2),
                    }
                }
            })
            .collect()
    }
}

/// Summary statistics over an operand-pair stream — the analysis the paper
/// ran over its traces, recomputable over ours.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Pair count per Figure 5 class of `min(|x|, |y|)` (plus an overflow
    /// bucket for larger minima).
    pub class_counts: [u64; 5],
    /// Pairs with both operands non-negative.
    pub both_positive: u64,
    /// Total pairs.
    pub total: u64,
}

impl TraceSummary {
    /// Classifies a stream of pairs.
    #[must_use]
    pub fn of(pairs: &[(i32, i32)]) -> TraceSummary {
        let mut s = TraceSummary {
            class_counts: [0; 5],
            both_positive: 0,
            total: 0,
        };
        for &(x, y) in pairs {
            s.total += 1;
            if x >= 0 && y >= 0 {
                s.both_positive += 1;
            }
            let min = x.unsigned_abs().min(y.unsigned_abs());
            let class = FIGURE5_CLASSES
                .iter()
                .position(|&(lo, hi)| (lo..=hi).contains(&min))
                .unwrap_or(4);
            s.class_counts[class] += 1;
        }
        s
    }

    /// Percentage of pairs in Figure 5 class `i` (0..=3).
    #[must_use]
    pub fn class_percent(&self, i: usize) -> f64 {
        100.0 * self.class_counts[i] as f64 / self.total.max(1) as f64
    }

    /// Percentage of pairs with both operands non-negative.
    #[must_use]
    pub fn positive_percent(&self) -> f64 {
        100.0 * self.both_positive as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_uniform_respects_bounds() {
        let d = LogUniform::new(16);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((1..(1 << 16)).contains(&v));
        }
    }

    #[test]
    fn log_uniform_bit_lengths_are_flat() {
        let d = LogUniform::new(16);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hist = [0u32; 17];
        for _ in 0..160_000 {
            let v = d.sample(&mut rng);
            hist[(32 - v.leading_zeros()) as usize] += 1;
        }
        for (bits, &count) in hist.iter().enumerate().skip(1) {
            let share = f64::from(count) / 160_000.0;
            assert!(
                (share - 1.0 / 16.0).abs() < 0.01,
                "bit length {bits}: share {share}"
            );
        }
    }

    #[test]
    fn figure5_mix_matches_declared_weights() {
        let mix = Figure5Mix::new();
        let pairs = mix.pairs(42, 100_000);
        let s = TraceSummary::of(&pairs);
        for (i, &w) in FIGURE5_WEIGHTS.iter().enumerate() {
            let measured = s.class_percent(i);
            assert!(
                (measured - f64::from(w)).abs() < 2.0,
                "class {i}: measured {measured:.1}%, declared {w}%"
            );
        }
        assert!((s.positive_percent() - 90.0).abs() < 2.0);
        assert_eq!(
            s.class_counts[4], 0,
            "min operand never leaves Figure 5's range"
        );
    }

    #[test]
    fn figure5_products_do_not_overflow() {
        let mix = Figure5Mix::new();
        for (x, y) in mix.pairs(7, 50_000) {
            assert!(
                x.checked_mul(y).is_some(),
                "({x}, {y}) overflows — outside the paper's performance scope"
            );
        }
    }

    #[test]
    fn pairs_are_reproducible() {
        let mix = Figure5Mix::new();
        assert_eq!(mix.pairs(9, 100), mix.pairs(9, 100));
        assert_ne!(mix.pairs(9, 100), mix.pairs(10, 100));
    }

    #[test]
    fn div_mix_shapes() {
        let mix = DivMix::default();
        let ops = mix.ops(5, 50_000);
        let constants = ops
            .iter()
            .filter(|o| matches!(o, DivOp::Constant { .. }))
            .count();
        let share = constants as f64 / ops.len() as f64;
        assert!((share - 0.45).abs() < 0.02, "constant share {share}");
        for op in &ops {
            match *op {
                DivOp::Constant { y, .. } => assert!((2..20).contains(&y)),
                DivOp::Variable { y, .. } => assert!(y >= 2),
            }
        }
    }

    #[test]
    fn trace_summary_counts() {
        let s = TraceSummary::of(&[(1, 1), (-1, 500), (70_000, 70_000)]);
        assert_eq!(s.total, 3);
        assert_eq!(s.both_positive, 2);
        assert_eq!(s.class_counts[0], 2); // min 1 and min 1
        assert_eq!(s.class_counts[4], 1); // min 70000 exceeds Figure 5
    }

    #[test]
    fn sensitivity_sign_override() {
        let mix = Figure5Mix::with_positive_percent(50);
        let s = TraceSummary::of(&mix.pairs(3, 50_000));
        assert!((s.positive_percent() - 50.0).abs() < 2.0);
    }
}

/// §2's instruction-frequency framing: the Gibson mix and the trace studies
/// it cites put multiplication at 0.0–2.5 % of executed instructions and
/// division at 0.0–0.5 %. [`InstructionMix`] turns per-operation cycle costs
/// into whole-program impact — the calculation behind "the frequency does
/// not warrant special hardware consideration" *and* behind "a poor
/// implementation could significantly decrease a machine's performance".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Fraction of executed instructions that are multiplies (e.g. 0.006).
    pub mul_fraction: f64,
    /// Fraction of executed instructions that are divides (e.g. 0.002).
    pub div_fraction: f64,
}

impl InstructionMix {
    /// The Gibson mix (\[Gib70]): 0.6 % multiplies, 0.2 % divides.
    #[must_use]
    pub fn gibson() -> InstructionMix {
        InstructionMix {
            mul_fraction: 0.006,
            div_fraction: 0.002,
        }
    }

    /// The heavy end of the surveyed range (\[Huc82]/\[Neu79]): 2.5 % / 0.5 %.
    #[must_use]
    pub fn heavy() -> InstructionMix {
        InstructionMix {
            mul_fraction: 0.025,
            div_fraction: 0.005,
        }
    }

    /// Average cycles per instruction for a program under this mix, given
    /// the average multiply and divide costs (all other instructions are the
    /// single-cycle operations the architecture was designed around).
    #[must_use]
    pub fn cpi(&self, mul_cycles: f64, div_cycles: f64) -> f64 {
        let other = 1.0 - self.mul_fraction - self.div_fraction;
        other + self.mul_fraction * mul_cycles + self.div_fraction * div_cycles
    }

    /// The whole-program slowdown of implementation B relative to A.
    #[must_use]
    pub fn slowdown(&self, (mul_a, div_a): (f64, f64), (mul_b, div_b): (f64, f64)) -> f64 {
        self.cpi(mul_b, div_b) / self.cpi(mul_a, div_a)
    }
}

#[cfg(test)]
mod mix_tests {
    use super::InstructionMix;

    #[test]
    fn gibson_numbers() {
        let g = InstructionMix::gibson();
        assert!((g.mul_fraction - 0.006).abs() < 1e-12);
        assert!((g.div_fraction - 0.002).abs() < 1e-12);
    }

    #[test]
    fn cpi_is_one_for_single_cycle_everything() {
        let g = InstructionMix::gibson();
        assert!((g.cpi(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn papers_design_point_vs_naive_software() {
        // The §2 argument, quantified: with the paper's ~6-cycle multiply
        // and ~40-cycle divide the Gibson-mix program pays ~11 % CPI over
        // all-single-cycle; with the naive 167/80 it would pay ~117 %.
        let g = InstructionMix::gibson();
        let designed = g.cpi(6.0, 40.0);
        let naive = g.cpi(167.0, 80.0);
        assert!(designed < 1.12, "{designed}");
        assert!(naive > 2.0, "{naive}");
        // And hardware step instructions would only buy ~6 % more.
        let hw = g.cpi(20.0, 38.0);
        let gain = g.slowdown((6.0, 40.0), (hw, 38.0));
        let _ = gain;
        assert!(g.slowdown((hw, 38.0), (6.0, 40.0)) < 1.12);
    }

    #[test]
    fn heavy_mix_amplifies() {
        let h = InstructionMix::heavy();
        let g = InstructionMix::gibson();
        assert!(h.cpi(20.0, 80.0) > g.cpi(20.0, 80.0));
    }
}
