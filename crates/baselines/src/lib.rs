//! # baselines — the "usual implementations" the paper compares against
//!
//! §2 and §3 of the paper describe the hardware the Precision architects
//! *removed*: a two-bit Booth **multiply step** (16 steps per 32-bit
//! multiply, plus sign corrections, needing a three-read-port register file
//! or special HL registers) and a Jouppi-style one-instruction **divide
//! step** (whose V-bit pipelining sat on the cycle-time critical path).
//!
//! This crate implements those machines at the step level — real arithmetic,
//! not just cost constants — so the comparisons in the evaluation are
//! grounded:
//!
//! * [`booth`] — radix-4 Booth multiplication, 16 steps, with the retained
//!   carry-like state bit and the final signed correction the paper
//!   mentions;
//! * [`divider`] — one-bit non-restoring hardware division, 32 steps plus
//!   remainder correction;
//! * [`HwCost`] — cycle accounting for each, used by the A2 ablation and the
//!   §6 closing comparison ("compares favorably with Booth's algorithm
//!   implemented with a Multiply Step").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod booth;
pub mod divider;

/// Cycle model of a step-instruction implementation: `setup` instructions,
/// one per `steps`, and `fixup` at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwCost {
    /// Instructions before the step loop (loads, clears).
    pub setup: u64,
    /// Number of step instructions executed.
    pub steps: u64,
    /// Correction instructions after the loop.
    pub fixup: u64,
}

impl HwCost {
    /// Total single-cycle instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.setup + self.steps + self.fixup
    }
}

impl core::fmt::Display for HwCost {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} = {} setup + {} steps + {} fixup",
            self.total(),
            self.setup,
            self.steps,
            self.fixup
        )
    }
}
