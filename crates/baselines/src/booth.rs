//! Radix-4 (two-bit) Booth multiplication — the removed Multiply Step.
//!
//! §2: *"The modern version of this method, often called Booth encoding, is
//! usually implemented by cycling through the multiplier two bits at a time
//! and adding to the accumulating product the multiplicand times a number in
//! the digit set {-2,-1,0,1,2}. These implementations use 16 such cycles for
//! a full 32-bit multiply. A side effect of this method is that one bit of
//! state analogous to a carry must be retained between each step. A
//! correction for signed multiplies is also necessary at the end."*

use crate::HwCost;

/// One radix-4 Booth recoding digit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoothDigit {
    /// Add nothing.
    Zero,
    /// Add the multiplicand.
    PlusOne,
    /// Add twice the multiplicand.
    PlusTwo,
    /// Subtract the multiplicand.
    MinusOne,
    /// Subtract twice the multiplicand.
    MinusTwo,
}

impl BoothDigit {
    /// The multiple of the multiplicand this digit adds.
    #[must_use]
    pub fn factor(self) -> i64 {
        match self {
            BoothDigit::Zero => 0,
            BoothDigit::PlusOne => 1,
            BoothDigit::PlusTwo => 2,
            BoothDigit::MinusOne => -1,
            BoothDigit::MinusTwo => -2,
        }
    }

    /// Recode bit pair `(b1, b0)` with the retained bit `prev` (the state
    /// "analogous to a carry").
    #[must_use]
    pub fn recode(b1: bool, b0: bool, prev: bool) -> BoothDigit {
        match (b1, b0, prev) {
            (false, false, false) | (true, true, true) => BoothDigit::Zero,
            (false, false, true) | (false, true, false) => BoothDigit::PlusOne,
            (false, true, true) => BoothDigit::PlusTwo,
            (true, false, false) => BoothDigit::MinusTwo,
            (true, false, true) | (true, true, false) => BoothDigit::MinusOne,
        }
    }
}

/// The trace of one Booth multiplication: the 16 recoded digits and the
/// accumulated product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoothRun {
    /// The 16 digits, least significant first.
    pub digits: Vec<BoothDigit>,
    /// The full 64-bit signed product.
    pub product: i64,
}

/// Multiplies two signed 32-bit values with 16 radix-4 Booth steps,
/// returning the digit trace and exact product.
///
/// # Example
///
/// ```
/// let run = baselines::booth::multiply(-7, 9);
/// assert_eq!(run.product, -63);
/// assert_eq!(run.digits.len(), 16);
/// ```
#[must_use]
pub fn multiply(x: i32, y: i32) -> BoothRun {
    let mut digits = Vec::with_capacity(16);
    let mut acc: i64 = 0;
    let mut prev = false;
    let ux = x as u32;
    for step in 0..16 {
        let b0 = (ux >> (2 * step)) & 1 != 0;
        let b1 = (ux >> (2 * step + 1)) & 1 != 0;
        let digit = BoothDigit::recode(b1, b0, prev);
        acc += (digit.factor() * i64::from(y)) << (2 * step);
        prev = b1;
        digits.push(digit);
    }
    // Signed correction: the recoding above already sign-extends correctly
    // for two's-complement x because the final retained bit carries the
    // sign; no extra term is needed at 16 full steps.
    BoothRun {
        digits,
        product: acc,
    }
}

/// Cycle model for a Multiply Step implementation of a full 32-bit multiply:
/// 16 step instructions plus the operand setup and the signed/overflow
/// corrections the paper attributes to it (~4 fixed instructions). Around 20
/// cycles total — the figure the final §6 software multiply's sub-20 average
/// "compares favorably" with.
#[must_use]
pub fn cost() -> HwCost {
    HwCost {
        setup: 2,
        steps: 16,
        fixup: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products() {
        for x in -20i32..=20 {
            for y in -20i32..=20 {
                assert_eq!(
                    multiply(x, y).product,
                    i64::from(x) * i64::from(y),
                    "{x}*{y}"
                );
            }
        }
    }

    #[test]
    fn extreme_products() {
        for (x, y) in [
            (i32::MAX, i32::MAX),
            (i32::MIN, i32::MIN),
            (i32::MIN, i32::MAX),
            (i32::MIN, 1),
            (i32::MAX, -1),
            (0x4000_0000, 4),
            (-0x4000_0000, -4),
        ] {
            assert_eq!(
                multiply(x, y).product,
                i64::from(x) * i64::from(y),
                "{x}*{y}"
            );
        }
    }

    #[test]
    fn pseudo_random_products() {
        let mut state = 0x0123_4567_89ab_cdefu64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = state as i32;
            let y = (state >> 32) as i32;
            assert_eq!(
                multiply(x, y).product,
                i64::from(x) * i64::from(y),
                "{x}*{y}"
            );
        }
    }

    #[test]
    fn sixteen_steps_always() {
        assert_eq!(multiply(0, 0).digits.len(), 16);
        assert_eq!(multiply(i32::MIN, i32::MAX).digits.len(), 16);
    }

    #[test]
    fn digit_set_is_minus2_to_plus2() {
        let run = multiply(0x5A5A_5A5A_u32 as i32, 77);
        for d in run.digits {
            assert!((-2..=2).contains(&d.factor()));
        }
    }

    #[test]
    fn cost_is_about_20() {
        let c = cost();
        assert_eq!(c.steps, 16);
        assert!((18..=22).contains(&c.total()));
    }
}
