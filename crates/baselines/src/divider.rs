//! One-bit non-restoring hardware division — the step the Precision `DS`
//! instruction simplifies.
//!
//! §2: *"the shifted divisor is either subtracted from, or added to, the
//! dividend depending on whether the previous result was positive or
//! negative. The complement of the sign of the result is shifted into the
//! quotient. Logically these bits are +1 or -1 … but there is a simple
//! transformation done at the end … This algorithm requires a single
//! addition (or subtraction) for each quotient bit."*
//!
//! [`nonrestoring_divide`] runs those 32 steps literally; [`restoring_divide`]
//! is the simpler restoring variant (up to an add *and* a subtract per bit).

use crate::HwCost;

/// The outcome of a hardware division run: quotient, remainder, and how many
/// adder operations the algorithm consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DivideRun {
    /// The quotient.
    pub quotient: u32,
    /// The remainder.
    pub remainder: u32,
    /// Adder operations performed (one per step for non-restoring; up to two
    /// for restoring).
    pub adds: u64,
}

/// 32-step non-restoring division of `x` by `y` (`y` in `1..2^31`).
///
/// # Panics
///
/// Panics if `y == 0` or `y >= 2^31` (hardware handles those out of line,
/// exactly as the millicode does).
///
/// # Example
///
/// ```
/// let run = baselines::divider::nonrestoring_divide(100, 7);
/// assert_eq!((run.quotient, run.remainder), (14, 2));
/// assert_eq!(run.adds, 32);
/// ```
#[must_use]
pub fn nonrestoring_divide(x: u32, y: u32) -> DivideRun {
    assert!(y > 0 && y < (1 << 31), "divisor must be in 1..2^31");
    let mut rem: i64 = 0; // partial remainder (fits well within i64)
    let mut quotient: u32 = 0;
    let mut adds = 0u64;
    for step in (0..32).rev() {
        let bit = i64::from((x >> step) & 1);
        rem = (rem << 1) | bit;
        if rem >= 0 {
            rem -= i64::from(y);
        } else {
            rem += i64::from(y);
        }
        adds += 1;
        // The complement of the result's sign becomes the quotient bit.
        quotient = (quotient << 1) | u32::from(rem >= 0);
    }
    // Final correction: a negative partial remainder is short one divisor.
    // The quotient needs no adjustment — the complement-of-sign recording
    // already performed the +1/-1 → 0/1 transformation.
    let mut remainder = rem;
    if remainder < 0 {
        remainder += i64::from(y);
    }
    DivideRun {
        quotient,
        remainder: remainder as u32,
        adds,
    }
}

/// 32-step restoring division (§2's "one of the simplest" methods): trial
/// subtract, add back on underflow.
///
/// # Panics
///
/// Panics if `y == 0` or `y >= 2^31`.
#[must_use]
pub fn restoring_divide(x: u32, y: u32) -> DivideRun {
    assert!(y > 0 && y < (1 << 31), "divisor must be in 1..2^31");
    let mut rem: u64 = 0;
    let mut quotient: u32 = 0;
    let mut adds = 0u64;
    for step in (0..32).rev() {
        rem = (rem << 1) | u64::from((x >> step) & 1);
        adds += 1; // the trial subtraction
        if rem >= u64::from(y) {
            rem -= u64::from(y);
            quotient = (quotient << 1) | 1;
        } else {
            // Restore (counted as the extra adder operation).
            adds += 1;
            quotient <<= 1;
        }
    }
    DivideRun {
        quotient,
        remainder: rem as u32,
        adds,
    }
}

/// Cycle model for a Jouppi-style one-instruction-per-bit divide step
/// machine: 32 steps plus setup and remainder/sign corrections. The paper's
/// point is not this count (it is close to the `DS`+`ADDC` routine's ~70)
/// but the *hardware* price: the special HL register, its datapaths, and the
/// V-bit on the cycle-time critical path.
#[must_use]
pub fn jouppi_cost() -> HwCost {
    HwCost {
        setup: 3,
        steps: 32,
        fixup: 3,
    }
}

/// Cycle model for the Precision software pairing: two instructions per bit
/// (`DS` + `ADDC`) plus setup and corrections — no extra register ports, no
/// V-bit on the critical path.
#[must_use]
pub fn precision_cost() -> HwCost {
    HwCost {
        setup: 4,
        steps: 64,
        fixup: 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(x: u32, y: u32) {
        let nr = nonrestoring_divide(x, y);
        assert_eq!(
            (nr.quotient, nr.remainder),
            (x / y, x % y),
            "nonrestoring {x}/{y}"
        );
        let r = restoring_divide(x, y);
        assert_eq!(
            (r.quotient, r.remainder),
            (x / y, x % y),
            "restoring {x}/{y}"
        );
    }

    #[test]
    fn small_cases() {
        for x in 0..200u32 {
            for y in 1..20u32 {
                check(x, y);
            }
        }
    }

    #[test]
    fn boundary_cases() {
        for (x, y) in [
            (u32::MAX, 1),
            (u32::MAX, 3),
            (u32::MAX, 0x7FFF_FFFF),
            (0, 5),
            (0x8000_0000, 2),
            (0x8000_0001, 0x7FFF_FFFF),
        ] {
            check(x, y);
        }
    }

    #[test]
    fn pseudo_random_cases() {
        let mut state = 0xfeed_face_dead_beefu64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = state as u32;
            let y = ((state >> 33) as u32).clamp(1, (1 << 31) - 1);
            check(x, y);
        }
    }

    #[test]
    fn nonrestoring_uses_one_add_per_bit() {
        assert_eq!(nonrestoring_divide(12345, 7).adds, 32);
    }

    #[test]
    fn restoring_uses_up_to_two() {
        let worst = restoring_divide(0, 5); // never fits: restore every bit
        assert_eq!(worst.adds, 64);
        let best = restoring_divide(u32::MAX, 1); // always fits
        assert_eq!(best.adds, 32);
    }

    #[test]
    #[should_panic(expected = "divisor must be")]
    fn zero_divisor_panics() {
        let _ = nonrestoring_divide(1, 0);
    }

    #[test]
    fn cost_models_are_ordered() {
        // One-instruction steps are fewer cycles, two-instruction steps cost
        // ~double the loop — the paper traded those cycles for hardware.
        assert!(jouppi_cost().total() < precision_cost().total());
        assert!(precision_cost().total() <= 80);
    }
}
