//! # mulconst — multiply-by-constant code generation
//!
//! Compiles the shift-add chains of the [`addchain`] crate into executable
//! [`pa_isa`] programs, reproducing §5 of the ASPLOS'87 paper:
//!
//! * one single-cycle instruction per chain step (`ADD`, `SHxADD`, `SUB`,
//!   shift);
//! * by convention **the source register is left untouched** ("the operand is
//!   always left untouched in a multiplication by constant"), so chains that
//!   only reference the previous element and `a₀` need no scratch register;
//! * an **overflow-checking flavour** that requires a monotonic add/shift-and-add
//!   chain and emits the trapping `ADDO`/`SHxADDO` forms — the penalty Pascal
//!   pays and C does not;
//! * a small register allocator for the chains that do need temporaries
//!   (below 100, only 59, 87 and 94 have no minimal temp-free chain).
//!
//! ## Example
//!
//! ```
//! use mulconst::{compile_mul_const, CodegenConfig};
//! use pa_sim::{run_fn, ExecConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = CodegenConfig::default();
//! let p = compile_mul_const(10, &cfg)?; // the paper's 2-instruction ×10
//! assert_eq!(p.len(), 2);
//! let (m, stats) = run_fn(&p, &[(cfg.source, 7)], &ExecConfig::default());
//! assert_eq!(m.reg(cfg.dest), 70);
//! assert_eq!(stats.cycles, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use addchain::{find_chain_with, Chain, Ref, RuleConfig, Step};
use pa_isa::{IsaError, Op, Program, ProgramBuilder, Reg, ShAmount};

/// Code generation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenConfig {
    /// Register holding the multiplicand; never written (the §5 convention).
    pub source: Reg,
    /// Register receiving the product.
    pub dest: Reg,
    /// Scratch registers available for chains that need temporaries.
    pub temps: Vec<Reg>,
    /// Emit trapping instructions so the multiply detects overflow
    /// (requires a monotonic add/shift-and-add chain).
    pub check_overflow: bool,
}

impl Default for CodegenConfig {
    /// PA-RISC argument conventions: multiplicand in `r26` (`arg0`), result
    /// in `r28` (`ret0`), caller-saves as scratch. Five temporaries cover
    /// the deepest factor-method chains any 32-bit constant produces; most
    /// constants use none of them.
    fn default() -> CodegenConfig {
        CodegenConfig {
            source: Reg::R26,
            dest: Reg::R28,
            temps: vec![Reg::R1, Reg::R31, Reg::R29, Reg::R25, Reg::R24],
            check_overflow: false,
        }
    }
}

impl CodegenConfig {
    /// The same register assignment with overflow checking enabled.
    #[must_use]
    pub fn with_overflow_checking() -> CodegenConfig {
        CodegenConfig {
            check_overflow: true,
            ..CodegenConfig::default()
        }
    }
}

/// Errors from chain compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodegenError {
    /// Overflow checking was requested but the chain is not monotonic
    /// add/shift-and-add (no trapping form exists for `SUB`-free detection).
    NotOverflowSafe,
    /// The chain needs more live values than `dest` + `temps` can hold.
    OutOfTemps {
        /// How many registers would have been needed at the worst point.
        needed: usize,
    },
    /// `source`, `dest` and `temps` must all be distinct, non-`r0` registers.
    RegisterConflict,
    /// An instruction could not be constructed (e.g. shift out of range).
    Isa(IsaError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NotOverflowSafe => {
                write!(
                    f,
                    "chain cannot carry overflow checks (not monotonic add/shift-and-add)"
                )
            }
            CodegenError::OutOfTemps { needed } => {
                write!(f, "chain needs {needed} registers but fewer were provided")
            }
            CodegenError::RegisterConflict => {
                write!(
                    f,
                    "source, dest and temp registers must be distinct and non-zero"
                )
            }
            CodegenError::Isa(e) => write!(f, "instruction construction failed: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodegenError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for CodegenError {
    fn from(e: IsaError) -> CodegenError {
        CodegenError::Isa(e)
    }
}

/// Compiles multiplication by the compile-time constant `n`.
///
/// Chain search uses the rule-based generator (§5); with
/// [`CodegenConfig::check_overflow`] set it uses the restricted monotonic
/// rule set and trapping instructions, accepting the paper's bounded
/// overflow-detection penalty.
///
/// # Errors
///
/// See [`CodegenError`]; with default configs only register conflicts are
/// possible, and the defaults cannot conflict.
pub fn compile_mul_const(n: i64, config: &CodegenConfig) -> Result<Program, CodegenError> {
    let rules = if config.check_overflow {
        RuleConfig::overflow_safe()
    } else {
        RuleConfig::default()
    };
    let (target, negate) = if config.check_overflow && n < 0 {
        // Negation needs SUB; compile |n| with traps, then negate with SUBO
        // (0 - x overflows only for x = i32::MIN, which |n|·x would have
        // already trapped on unless |n| == 1).
        (-n, true)
    } else {
        (n, false)
    };
    let compile = |chain: &Chain| -> Result<Program, CodegenError> {
        let mut b = ProgramBuilder::new();
        emit_chain(chain, config, &mut b, negate)?;
        b.build().map_err(CodegenError::from)
    };
    match compile(&find_chain_with(target, &rules)) {
        Err(CodegenError::OutOfTemps { .. }) => {
            // Retry with the register-lean rule set (chains keeping at most
            // three values live), trading a step or two for pressure.
            let lean = RuleConfig {
                allow_splits: false,
                ..rules
            };
            compile(&find_chain_with(target, &lean))
        }
        other => other,
    }
}

/// Compiles a specific chain (callers wanting strategy control).
///
/// # Errors
///
/// See [`CodegenError`].
pub fn compile_chain(chain: &Chain, config: &CodegenConfig) -> Result<Program, CodegenError> {
    let mut b = ProgramBuilder::new();
    emit_chain(chain, config, &mut b, false)?;
    b.build().map_err(CodegenError::from)
}

/// The allocator state: which register holds which chain element.
struct Alloc {
    /// `holds[i]` = chain element index (1-based step result) in pool reg `i`.
    holds: Vec<Option<u32>>,
    /// Pool: `dest` first, then temps.
    pool: Vec<Reg>,
    /// For each element (1-based), the last step index that reads it.
    last_use: Vec<usize>,
}

impl Alloc {
    fn reg_of(&self, r: Ref, source: Reg) -> Option<Reg> {
        match r {
            Ref::Zero => Some(Reg::R0),
            Ref::One => Some(source),
            Ref::Step(i) => self
                .holds
                .iter()
                .position(|&h| h == Some(i))
                .map(|slot| self.pool[slot]),
        }
    }

    /// Picks a register for the result of step `at` (element `at + 1`).
    fn place(&mut self, at: usize, is_last: bool) -> Result<Reg, CodegenError> {
        let element = (at + 1) as u32;
        // The final element must land in dest.
        if is_last {
            self.holds[0] = Some(element);
            return Ok(self.pool[0]);
        }
        // Prefer a slot whose current value is dead at/after this step.
        let dead = |h: Option<u32>| match h {
            None => true,
            Some(e) => self.last_use[e as usize] <= at,
        };
        // Dest first (keeps most chains single-register), then temps.
        if let Some(slot) = (0..self.pool.len()).find(|&s| dead(self.holds[s])) {
            self.holds[slot] = Some(element);
            return Ok(self.pool[slot]);
        }
        Err(CodegenError::OutOfTemps {
            needed: self.pool.len() + 1,
        })
    }
}

fn emit_chain(
    chain: &Chain,
    config: &CodegenConfig,
    b: &mut ProgramBuilder,
    negate_result: bool,
) -> Result<(), CodegenError> {
    validate_regs(config)?;
    if config.check_overflow && !chain.is_overflow_safe() {
        return Err(CodegenError::NotOverflowSafe);
    }

    let steps = chain.steps();
    if steps.is_empty() {
        // Multiplication by one: copy.
        if negate_result {
            b.sub(Reg::R0, config.source, config.dest);
        } else {
            b.copy(config.source, config.dest);
        }
        return Ok(());
    }

    // Liveness: last step index reading each element (1-based elements).
    let mut last_use = vec![0usize; steps.len() + 1];
    for (at, step) in steps.iter().enumerate() {
        let (j, k) = step.operands();
        for r in [Some(j), k].into_iter().flatten() {
            if let Ref::Step(e) = r {
                last_use[e as usize] = at;
            }
        }
    }

    let mut pool = vec![config.dest];
    pool.extend(config.temps.iter().copied());
    let mut alloc = Alloc {
        holds: vec![None; pool.len()],
        pool,
        last_use,
    };

    let trap = config.check_overflow;
    for (at, step) in steps.iter().enumerate() {
        let is_last = at + 1 == steps.len();
        let (j, k) = step.operands();
        let rj = alloc
            .reg_of(j, config.source)
            .expect("validated chain refs resolve");
        let rk = k.map(|k| alloc.reg_of(k, config.source).expect("validated"));
        let t = alloc.place(at, is_last)?;
        match *step {
            Step::Add { .. } => {
                b.raw(Op::Add {
                    a: rj,
                    b: rk.expect("add has k"),
                    t,
                    trap,
                });
            }
            Step::ShAdd { sh, .. } => {
                let sh = ShAmount::new(sh).map_err(CodegenError::from)?;
                b.raw(Op::ShAdd {
                    sh,
                    a: rj,
                    b: rk.expect("shadd has k"),
                    t,
                    trap,
                });
            }
            Step::Sub { .. } => {
                debug_assert!(!trap, "overflow-safe chains have no SUB");
                b.raw(Op::Sub {
                    a: rj,
                    b: rk.expect("sub has k"),
                    t,
                    trap: false,
                });
            }
            Step::Shl { amount, .. } => {
                debug_assert!(!trap, "overflow-safe chains have no SHL");
                b.shl(rj, amount, t);
            }
        }
    }
    if negate_result {
        if trap {
            b.subo(Reg::R0, config.dest, config.dest);
        } else {
            b.sub(Reg::R0, config.dest, config.dest);
        }
    }
    Ok(())
}

fn validate_regs(config: &CodegenConfig) -> Result<(), CodegenError> {
    let mut regs = vec![config.source, config.dest];
    regs.extend(config.temps.iter().copied());
    if regs.iter().any(|r| r.is_zero()) {
        return Err(CodegenError::RegisterConflict);
    }
    let mut sorted = regs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != regs.len() {
        return Err(CodegenError::RegisterConflict);
    }
    Ok(())
}

/// The static instruction count of a compiled multiply — also its cycle
/// count, since constant-multiply code is straight-line.
#[must_use]
pub fn static_cost(program: &Program) -> usize {
    program.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use addchain::find_chain;
    use pa_sim::{run_fn, ExecConfig, Machine, TrapKind};

    fn cfg() -> CodegenConfig {
        CodegenConfig::default()
    }

    fn mul_on_sim(p: &Program, x: u32) -> (Machine, pa_sim::RunResult) {
        run_fn(p, &[(Reg::R26, x)], &ExecConfig::default())
    }

    #[test]
    fn paper_times_ten() {
        let p = compile_mul_const(10, &cfg()).unwrap();
        assert_eq!(p.len(), 2);
        let (m, _) = mul_on_sim(&p, 123);
        assert_eq!(m.reg(Reg::R28), 1230);
    }

    #[test]
    fn times_one_is_copy() {
        let p = compile_mul_const(1, &cfg()).unwrap();
        assert_eq!(p.len(), 1);
        let (m, _) = mul_on_sim(&p, 99);
        assert_eq!(m.reg(Reg::R28), 99);
    }

    #[test]
    fn times_zero() {
        let p = compile_mul_const(0, &cfg()).unwrap();
        let (m, _) = mul_on_sim(&p, 99);
        assert_eq!(m.reg(Reg::R28), 0);
    }

    #[test]
    fn negative_constants() {
        for n in [-1i64, -3, -10, -59, -100] {
            let p = compile_mul_const(n, &cfg()).unwrap();
            let (m, _) = mul_on_sim(&p, 7);
            assert_eq!(m.reg_i32(Reg::R28), 7 * n as i32, "n = {n}");
        }
    }

    #[test]
    fn source_is_never_clobbered() {
        for n in 0..=512i64 {
            let p = compile_mul_const(n, &cfg()).unwrap();
            assert!(
                !p.clobbered_registers().contains(&Reg::R26),
                "n = {n} writes the source:\n{p}"
            );
        }
    }

    #[test]
    fn wrapping_semantics_match_rust() {
        // Exact-integer chains compute n·x modulo 2^32 for every x.
        let xs = [0u32, 1, 2, 0xFFFF_FFFF, 0x8000_0000, 12345, 0x7FFF_FFFF];
        for n in [0i64, 1, 3, 10, 59, 87, 94, 641, 5461, 65535, -7] {
            let p = compile_mul_const(n, &cfg()).unwrap();
            for &x in &xs {
                let (m, r) = mul_on_sim(&p, x);
                assert!(r.termination.is_completed());
                assert_eq!(m.reg(Reg::R28), x.wrapping_mul(n as u32), "{n} * {x}");
            }
        }
    }

    #[test]
    fn temp_needing_chains_still_compile() {
        // 59, 87, 94: every minimal chain needs a temporary.
        for n in [59i64, 87, 94] {
            let chain = find_chain(n);
            let p = compile_chain(&chain, &cfg()).unwrap();
            let (m, _) = mul_on_sim(&p, 3);
            assert_eq!(m.reg(Reg::R28), 3 * n as u32, "n = {n}");
        }
    }

    #[test]
    fn out_of_temps_is_detected() {
        // A chain deliberately keeping many values alive.
        use addchain::{Chain, Ref, Step};
        let chain = Chain::new(
            2 + 3 + 5 + 9,
            vec![
                Step::Add {
                    j: Ref::One,
                    k: Ref::One,
                }, //  2
                Step::ShAdd {
                    sh: 1,
                    j: Ref::One,
                    k: Ref::One,
                }, //  3
                Step::ShAdd {
                    sh: 2,
                    j: Ref::One,
                    k: Ref::One,
                }, //  5
                Step::ShAdd {
                    sh: 3,
                    j: Ref::One,
                    k: Ref::One,
                }, //  9
                Step::Add {
                    j: Ref::Step(1),
                    k: Ref::Step(2),
                }, //  5
                Step::Add {
                    j: Ref::Step(3),
                    k: Ref::Step(4),
                }, // 14
                Step::Add {
                    j: Ref::Step(5),
                    k: Ref::Step(6),
                }, // 19
            ],
        )
        .unwrap();
        let narrow = CodegenConfig {
            temps: vec![Reg::R1],
            ..cfg()
        };
        assert!(matches!(
            compile_chain(&chain, &narrow),
            Err(CodegenError::OutOfTemps { .. })
        ));
        // With enough temps it compiles and computes 19x.
        let wide = CodegenConfig {
            temps: vec![Reg::R1, Reg::R31, Reg::R29],
            ..cfg()
        };
        let p = compile_chain(&chain, &wide).unwrap();
        let (m, _) = mul_on_sim(&p, 10);
        assert_eq!(m.reg(Reg::R28), 190);
    }

    #[test]
    fn overflow_checking_traps_exactly_when_rust_does() {
        let cfg = CodegenConfig::with_overflow_checking();
        let xs = [0i32, 1, -1, 1000, -1000, i32::MAX, i32::MIN, i32::MAX / 3];
        for n in [2i64, 3, 10, 15, 31, 100, 59] {
            let p = compile_mul_const(n, &cfg).unwrap();
            for &x in &xs {
                let (m, r) = run_fn(&p, &[(Reg::R26, x as u32)], &ExecConfig::default());
                match x.checked_mul(n as i32) {
                    Some(exact) => {
                        assert!(r.termination.is_completed(), "{n} * {x} trapped spuriously");
                        assert_eq!(m.reg_i32(Reg::R28), exact, "{n} * {x}");
                    }
                    None => {
                        assert_eq!(
                            r.termination.trap().map(|t| t.kind),
                            Some(TrapKind::Overflow),
                            "{n} * {x} failed to trap"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn overflow_penalty_for_31_is_one_extra() {
        // §5 Overflow: 2 steps free, 3 steps checked.
        let free = compile_mul_const(31, &cfg()).unwrap();
        let checked = compile_mul_const(31, &CodegenConfig::with_overflow_checking()).unwrap();
        assert_eq!(free.len(), 2);
        assert_eq!(checked.len(), 3);
    }

    #[test]
    fn checked_negative_multiplies() {
        let cfg = CodegenConfig::with_overflow_checking();
        let p = compile_mul_const(-5, &cfg).unwrap();
        let (m, r) = run_fn(&p, &[(Reg::R26, 100)], &ExecConfig::default());
        assert!(r.termination.is_completed());
        assert_eq!(m.reg_i32(Reg::R28), -500);
    }

    #[test]
    fn register_conflicts_rejected() {
        let bad = CodegenConfig {
            source: Reg::R28,
            ..cfg()
        };
        assert_eq!(
            compile_mul_const(5, &bad).unwrap_err(),
            CodegenError::RegisterConflict
        );
        let zero = CodegenConfig {
            dest: Reg::R0,
            ..cfg()
        };
        assert_eq!(
            compile_mul_const(5, &zero).unwrap_err(),
            CodegenError::RegisterConflict
        );
    }

    #[test]
    fn unsafe_chain_rejected_for_checking() {
        use addchain::{Chain, Ref, Step};
        let chain = Chain::new(
            15,
            vec![
                Step::Shl {
                    j: Ref::One,
                    amount: 4,
                },
                Step::Sub {
                    j: Ref::Step(1),
                    k: Ref::One,
                },
            ],
        )
        .unwrap();
        let cfg = CodegenConfig::with_overflow_checking();
        assert_eq!(
            compile_chain(&chain, &cfg).unwrap_err(),
            CodegenError::NotOverflowSafe
        );
    }

    #[test]
    fn exhaustive_small_constants_against_rust() {
        // Every constant 0..=1024, a handful of x values, straight-line and
        // exact.
        let cfg = cfg();
        let xs = [0u32, 1, 3, 0x1234_5678, 0xFFFF_FFFF];
        for n in 0..=1024i64 {
            let p = compile_mul_const(n, &cfg).unwrap();
            for &x in &xs {
                let (m, r) = mul_on_sim(&p, x);
                assert_eq!(r.cycles as usize, p.len(), "straight-line code");
                assert_eq!(m.reg(Reg::R28), x.wrapping_mul(n as u32), "{n} * {x}");
            }
        }
    }

    #[test]
    fn generally_four_or_fewer_for_small_constants() {
        // §8 bullet 1 (E14): constants programs actually use (≤ 512 here)
        // compile to four or fewer single-cycle instructions.
        let cfg = cfg();
        let mut worst = 0;
        for n in 1..=512i64 {
            let p = compile_mul_const(n, &cfg).unwrap();
            worst = worst.max(p.len());
        }
        assert!(worst <= 5, "worst static cost {worst}");
    }
}
