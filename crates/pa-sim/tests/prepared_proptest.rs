//! Property tests for the pre-decoded fast path: [`PreparedProgram`] must be
//! bit-identical to the interpreter — same final machine, same cycle,
//! executed, nullified and taken-branch counts, same termination — across
//! randomized operands for programs covering every predecoded op class.

use pa_isa::{BitSense, Cond, Program, ProgramBuilder, Reg, ShAmount};
use pa_sim::{run_fn, run_fn_prepared, ExecConfig, PreparedProgram};
use proptest::prelude::*;

fn assert_equivalent(p: &Program, inputs: &[(Reg, u32)], config: &ExecConfig) {
    let (m_slow, r_slow) = run_fn(p, inputs, config);
    let prepared = PreparedProgram::new(p, config.clone());
    let (m_fast, r_fast) = run_fn_prepared(&prepared, inputs);
    assert_eq!(m_slow, m_fast, "machine state must match");
    assert_eq!(r_slow.cycles, r_fast.cycles);
    assert_eq!(r_slow.executed, r_fast.executed);
    assert_eq!(r_slow.nullified, r_fast.nullified);
    assert_eq!(r_slow.taken_branches, r_fast.taken_branches);
    assert_eq!(r_slow.termination, r_fast.termination);
}

/// Straight-line arithmetic touching carries, borrows, shift-adds, logic
/// ops, conditional clears and extracts.
fn arith_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.add(Reg::R26, Reg::R25, Reg::R1);
    b.addc(Reg::R26, Reg::R1, Reg::R2);
    b.sub(Reg::R1, Reg::R25, Reg::R3);
    b.subb(Reg::R2, Reg::R3, Reg::R4);
    b.sh2add(Reg::R3, Reg::R4, Reg::R5);
    b.xor(Reg::R5, Reg::R26, Reg::R6);
    b.andcm(Reg::R6, Reg::R25, Reg::R7);
    b.comclr(Cond::Lt, Reg::R7, Reg::R26, Reg::R8);
    b.or(Reg::R7, Reg::R8, Reg::R9);
    b.extru(Reg::R9, 23, 16, Reg::R10);
    b.shd(Reg::R9, Reg::R10, 7, Reg::R11);
    b.sar(Reg::R9, 5, Reg::R12);
    b.comiclr(Cond::Eq, 0, Reg::R12, Reg::R13);
    b.addi(17, Reg::R13, Reg::R14);
    b.subi(100, Reg::R14, Reg::R15);
    b.build().unwrap()
}

/// The §4 DS/ADDC division loop — exercises `DS`'s V-bit state machine.
fn ds_divide_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.copy(Reg::R0, Reg::R1);
    b.add(Reg::R26, Reg::R26, Reg::R26);
    for _ in 0..32 {
        b.ds(Reg::R1, Reg::R25, Reg::R1);
        b.addc(Reg::R26, Reg::R26, Reg::R26);
    }
    b.build().unwrap()
}

/// A nibble-style loop with `EXTRU`, `BLR` dispatch, `BB` tests and `ADDIB`
/// back-edges — every control-flow op class in one program.
fn branchy_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.ldi(8, Reg::R3); // trip counter
    b.copy(Reg::R0, Reg::R28);
    let top = b.here("loop");
    b.extru(Reg::R26, 31, 3, Reg::R1); // low three bits drive the dispatch
    let table = b.named_label("table");
    b.blr(Reg::R1, table);
    b.nop();
    b.bind(table);
    // Eight two-slot table entries.
    let join = b.named_label("join");
    for i in 0..8i32 {
        b.addi(i, Reg::R28, Reg::R28);
        b.b(join);
    }
    b.bind(join);
    b.shr(Reg::R26, 3, Reg::R26);
    let skip = b.named_label("skip");
    b.bb_lsb(Reg::R25, BitSense::Clear, skip);
    b.sh1add(Reg::R28, Reg::R0, Reg::R28);
    b.bind(skip);
    b.shr(Reg::R25, 1, Reg::R25);
    b.addib(-1, Reg::R3, Cond::Ne, top);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn arith_matches(a in any::<u32>(), b in any::<u32>()) {
        let p = arith_program();
        let inputs = [(Reg::R26, a), (Reg::R25, b)];
        assert_equivalent(&p, &inputs, &ExecConfig::default());
        assert_equivalent(&p, &inputs, &ExecConfig::precise());
    }

    #[test]
    fn ds_divide_matches(x in any::<u32>(), y in 1u32..0x8000_0000) {
        let p = ds_divide_program();
        let inputs = [(Reg::R26, x), (Reg::R25, y)];
        assert_equivalent(&p, &inputs, &ExecConfig::default());
        // The fast path must also agree on the quotient itself.
        let prepared = PreparedProgram::new(&p, ExecConfig::default());
        let (m, _) = run_fn_prepared(&prepared, &inputs);
        prop_assert_eq!(m.reg(Reg::R26), x / y);
    }

    #[test]
    fn branchy_matches(a in any::<u32>(), b in any::<u32>()) {
        let p = branchy_program();
        assert_equivalent(&p, &[(Reg::R26, a), (Reg::R25, b)], &ExecConfig::default());
    }

    #[test]
    fn trapping_adds_match(a in any::<u32>(), b in any::<u32>()) {
        // ADDO/SUBO/SH3ADDO trap on signed overflow; the fast path must trap
        // at the same instruction with the same partial state.
        let mut builder = ProgramBuilder::new();
        builder.addo(Reg::R26, Reg::R25, Reg::R1);
        builder.shaddo(ShAmount::Three, Reg::R1, Reg::R26, Reg::R2);
        builder.subo(Reg::R2, Reg::R25, Reg::R3);
        let p = builder.build().unwrap();
        let inputs = [(Reg::R26, a), (Reg::R25, b)];
        assert_equivalent(&p, &inputs, &ExecConfig::default());
        assert_equivalent(&p, &inputs, &ExecConfig::precise());
    }

    #[test]
    fn cycle_limits_match(a in any::<u32>(), budget in 1u64..40) {
        // An infinite loop cut off by the watchdog must stop at the same
        // cycle with the same counters on both paths.
        let mut builder = ProgramBuilder::new();
        let top = builder.here("spin");
        builder.addi(1, Reg::R1, Reg::R1);
        builder.b(top);
        let p = builder.build().unwrap();
        let config = ExecConfig { max_cycles: budget, ..ExecConfig::default() };
        assert_equivalent(&p, &[(Reg::R1, a)], &config);
    }
}
