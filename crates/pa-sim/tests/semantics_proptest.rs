//! Property tests for the machine semantics: carry/borrow chains against
//! 64-bit reference arithmetic, the `DS`/`ADDC` pairing against hardware
//! division, and the `SHD` pair shifts.

use pa_isa::{ProgramBuilder, Reg};
use pa_sim::{run_fn, ExecConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// 64-bit addition through ADD/ADDC equals native u64 addition.
    #[test]
    fn add_addc_is_u64_addition(a in any::<u64>(), b in any::<u64>()) {
        let mut builder = ProgramBuilder::new();
        builder.add(Reg::R4, Reg::R6, Reg::R8);  // low words
        builder.addc(Reg::R5, Reg::R7, Reg::R9); // high words + carry
        let p = builder.build().unwrap();
        let (m, _) = run_fn(
            &p,
            &[
                (Reg::R4, a as u32),
                (Reg::R5, (a >> 32) as u32),
                (Reg::R6, b as u32),
                (Reg::R7, (b >> 32) as u32),
            ],
            &ExecConfig::default(),
        );
        let got = (u64::from(m.reg(Reg::R9)) << 32) | u64::from(m.reg(Reg::R8));
        prop_assert_eq!(got, a.wrapping_add(b));
    }

    /// 64-bit subtraction through SUB/SUBB equals native u64 subtraction.
    #[test]
    fn sub_subb_is_u64_subtraction(a in any::<u64>(), b in any::<u64>()) {
        let mut builder = ProgramBuilder::new();
        builder.sub(Reg::R4, Reg::R6, Reg::R8);
        builder.subb(Reg::R5, Reg::R7, Reg::R9);
        let p = builder.build().unwrap();
        let (m, _) = run_fn(
            &p,
            &[
                (Reg::R4, a as u32),
                (Reg::R5, (a >> 32) as u32),
                (Reg::R6, b as u32),
                (Reg::R7, (b >> 32) as u32),
            ],
            &ExecConfig::default(),
        );
        let got = (u64::from(m.reg(Reg::R9)) << 32) | u64::from(m.reg(Reg::R8));
        prop_assert_eq!(got, a.wrapping_sub(b));
    }

    /// The paper's §4 DS/ADDC pairing divides correctly for any divisor
    /// below 2^31 (the millicode's precondition).
    #[test]
    fn ds_addc_divides(x in any::<u32>(), y in 1u32..0x8000_0000) {
        let mut b = ProgramBuilder::new();
        let dividend = Reg::R26;
        let divisor = Reg::R25;
        let rem = Reg::R1;
        b.copy(Reg::R0, rem);
        b.add(dividend, dividend, dividend);
        for _ in 0..32 {
            b.ds(rem, divisor, rem);
            b.addc(dividend, dividend, dividend);
        }
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[(dividend, x), (divisor, y)], &ExecConfig::default());
        prop_assert_eq!(m.reg(dividend), x / y, "quotient of {} / {}", x, y);
        // Remainder needs the non-restoring correction when negative.
        let raw = m.reg(rem);
        let fixed = if (raw as i32) < 0 { raw.wrapping_add(y) } else { raw };
        prop_assert_eq!(fixed, x % y, "remainder of {} / {}", x, y);
    }

    /// SHD extracts any 32-bit window of a 64-bit pair.
    #[test]
    fn shd_is_pair_shift(hi in any::<u32>(), lo in any::<u32>(), sa in 0u32..32) {
        let mut b = ProgramBuilder::new();
        b.shd(Reg::R4, Reg::R5, sa, Reg::R6);
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[(Reg::R4, hi), (Reg::R5, lo)], &ExecConfig::default());
        let pair = (u64::from(hi) << 32) | u64::from(lo);
        prop_assert_eq!(m.reg(Reg::R6), (pair >> sa) as u32);
    }

    /// SHxADD equals the arithmetic it claims, wrapping.
    #[test]
    fn shadd_semantics(a in any::<u32>(), b2 in any::<u32>(), sh in 1u32..=3) {
        let mut builder = ProgramBuilder::new();
        builder.shadd(
            pa_isa::ShAmount::new(sh).unwrap(),
            Reg::R4,
            Reg::R5,
            Reg::R6,
        );
        let p = builder.build().unwrap();
        let (m, _) = run_fn(&p, &[(Reg::R4, a), (Reg::R5, b2)], &ExecConfig::default());
        prop_assert_eq!(m.reg(Reg::R6), a.wrapping_shl(sh).wrapping_add(b2));
    }

    /// Trapping adds trap exactly when i32 addition overflows (sh = 0 makes
    /// the cheap circuit and the precise detector coincide).
    #[test]
    fn addo_traps_iff_checked_add_fails(a in any::<i32>(), b2 in any::<i32>()) {
        let mut builder = ProgramBuilder::new();
        builder.addo(Reg::R4, Reg::R5, Reg::R6);
        let p = builder.build().unwrap();
        let (m, r) = run_fn(
            &p,
            &[(Reg::R4, a as u32), (Reg::R5, b2 as u32)],
            &ExecConfig::default(),
        );
        match a.checked_add(b2) {
            Some(sum) => {
                prop_assert!(r.termination.is_completed());
                prop_assert_eq!(m.reg_i32(Reg::R6), sum);
            }
            None => prop_assert!(r.termination.trap().is_some()),
        }
    }
}
