//! A reused [`Machine`] must be indistinguishable from a fresh one after
//! [`Machine::reset`]: identical architectural state, and — when stats are
//! enabled — a [`SimStats`] report identical between back-to-back sessions
//! with no counters leaking across the reset.

use pa_isa::{Cond, ProgramBuilder, Reg};
use pa_sim::{run, ExecConfig, Machine, RunResult, Termination};

/// A branchy, nullifying loop touching several opcode classes so the
/// per-opcode and per-region stats have structure worth comparing.
fn workload() -> pa_isa::Program {
    let mut b = ProgramBuilder::new();
    b.ldi(6, Reg::R1);
    b.ldi(0, Reg::R2);
    let top = b.here("loop");
    b.add(Reg::R1, Reg::R2, Reg::R2);
    b.comclr(Cond::Odd, Reg::R1, Reg::R0, Reg::R0);
    b.sh1add(Reg::R2, Reg::R0, Reg::R2); // nullified on odd counts
    b.addib(-1, Reg::R1, Cond::Ne, top);
    b.ldi(1, Reg::R3);
    b.build().unwrap()
}

fn run_session(m: &mut Machine) -> RunResult {
    let r = run(&workload(), m, &ExecConfig::default().with_stats());
    assert_eq!(r.termination, Termination::Completed);
    r
}

#[test]
fn reset_returns_the_machine_to_its_initial_state() {
    let mut m = Machine::new();
    run_session(&mut m);
    assert_ne!(m, Machine::new(), "the workload must actually dirty state");
    m.reset();
    assert_eq!(m, Machine::new());
}

#[test]
fn stats_are_identical_between_sessions_on_a_reset_machine() {
    let mut fresh = Machine::new();
    let first = run_session(&mut fresh);
    let first_stats = first.stats.as_deref().expect("stats enabled");
    let end_state = fresh.clone();

    // Session two reuses the same machine after reset.
    fresh.reset();
    let second = run_session(&mut fresh);
    let second_stats = second.stats.as_deref().expect("stats enabled");

    assert_eq!(first_stats, second_stats, "SimStats must not drift");
    assert_eq!(first.cycles, second.cycles);
    assert_eq!(first.executed, second.executed);
    assert_eq!(first.nullified, second.nullified);
    assert_eq!(first.taken_branches, second.taken_branches);
    assert_eq!(fresh, end_state, "same program, same final state");
}

#[test]
fn reset_clears_contamination_from_unrelated_state() {
    // Baseline on a fresh machine.
    let mut clean = Machine::new();
    let baseline = run_session(&mut clean);

    // Deliberately contaminate every input the workload reads (and some it
    // does not) before resetting; the reset must erase all of it.
    let mut dirty = Machine::new();
    for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R26, Reg::R25, Reg::R31] {
        dirty.set_reg(r, 0xDEAD_BEEF);
    }
    run_session(&mut dirty);
    dirty.reset();
    assert_eq!(dirty, Machine::new());

    let replay = run_session(&mut dirty);
    assert_eq!(
        baseline.stats.as_deref().unwrap(),
        replay.stats.as_deref().unwrap()
    );
    assert_eq!(dirty, clean);
}

#[test]
fn stats_runs_do_not_perturb_the_machine_relative_to_plain_runs() {
    // A reset machine driven with stats off must land in the same state as
    // one driven with stats on — instrumentation is observational only.
    let mut m = Machine::new();
    run_session(&mut m);
    let with_stats = m.clone();
    m.reset();
    let r = run(&workload(), &mut m, &ExecConfig::default());
    assert!(r.stats.is_none(), "stats default off");
    assert_eq!(m, with_stats);
}
