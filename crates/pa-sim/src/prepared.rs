//! Pre-decoded programs for hot-path execution.
//!
//! [`run`](crate::run) walks the boxed [`pa_isa::Insn`] stream and
//! re-evaluates every immediate field (`Im11::value`, `Im21::shifted`,
//! shift-amount bit extraction, the `31 - pos` EXTRU arithmetic) on each
//! fetch. That is the right trade-off for a debugger, but replaying a
//! paper workload executes the same few dozen instructions millions of
//! times. [`PreparedProgram`] pays the decode cost once: immediates are
//! folded to plain integers, EXTRU becomes a shift-and-mask pair, LDIL
//! becomes a pre-shifted constant load, and the watchdog/overflow
//! configuration is baked in at preparation time.
//!
//! The prepared executor is **bit-identical** to the interpreter: same
//! architectural results, same cycle/executed/nullified/taken-branch
//! accounting, same terminations. Runs that ask for instrumentation
//! (profile, trace or stats) are delegated to the interpreter wholesale so
//! the instrumented paths cannot drift.
//!
//! # Example
//!
//! ```
//! use pa_isa::{ProgramBuilder, Reg};
//! use pa_sim::{execute_prepared, run, ExecConfig, Machine, PreparedProgram};
//!
//! let mut b = ProgramBuilder::new();
//! b.sh2add(Reg::R26, Reg::R26, Reg::R28);
//! b.add(Reg::R28, Reg::R28, Reg::R28);
//! let p = b.build()?;
//!
//! let prepared = PreparedProgram::new(&p, ExecConfig::default());
//! let mut m = Machine::with_regs(&[(Reg::R26, 7)]);
//! let fast = execute_prepared(&prepared, &mut m);
//! assert_eq!(m.reg(Reg::R28), 70);
//!
//! let mut m2 = Machine::with_regs(&[(Reg::R26, 7)]);
//! let slow = run(&p, &mut m2, &ExecConfig::default());
//! assert_eq!(fast.cycles, slow.cycles);
//! assert_eq!(m, m2);
//! # Ok::<(), pa_isa::IsaError>(())
//! ```

use std::sync::Arc;

use pa_isa::{BitSense, Cond, Op, Program, Reg};

use crate::exec::{run, ExecConfig, Fault, RunResult, Termination, Trap, TrapKind};
use crate::overflow::{cheap_circuit_overflow, precise_overflow, OverflowModel};
use crate::Machine;

/// One pre-decoded instruction. Immediate fields are folded to the integer
/// the interpreter would compute from them, so the executor loop touches no
/// accessor methods.
#[derive(Debug, Clone, Copy)]
enum PreparedOp {
    Add {
        a: Reg,
        b: Reg,
        t: Reg,
        trap: bool,
    },
    Addc {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    Sub {
        a: Reg,
        b: Reg,
        t: Reg,
        trap: bool,
    },
    Subb {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    ShAdd {
        bits: u32,
        a: Reg,
        b: Reg,
        t: Reg,
        trap: bool,
    },
    Ds {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    Or {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    And {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    Xor {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    AndCm {
        a: Reg,
        b: Reg,
        t: Reg,
    },
    Comclr {
        cond: Cond,
        a: Reg,
        b: Reg,
        t: Reg,
    },
    Comiclr {
        cond: Cond,
        i: i32,
        b: Reg,
        t: Reg,
    },
    Addi {
        i: i32,
        b: Reg,
        t: Reg,
        trap: bool,
    },
    Subi {
        i: i32,
        b: Reg,
        t: Reg,
    },
    Ldo {
        d: u32,
        b: Reg,
        t: Reg,
    },
    LoadHigh {
        value: u32,
        t: Reg,
    },
    Shl {
        s: Reg,
        sa: u32,
        t: Reg,
    },
    ShrU {
        s: Reg,
        sa: u32,
        t: Reg,
    },
    ShrS {
        s: Reg,
        sa: u32,
        t: Reg,
    },
    Shd {
        hi: Reg,
        lo: Reg,
        sa: u32,
        t: Reg,
    },
    Extru {
        s: Reg,
        shr: u32,
        mask: u32,
        t: Reg,
    },
    B {
        target: usize,
    },
    Comb {
        cond: Cond,
        a: Reg,
        b: Reg,
        target: usize,
    },
    Combi {
        cond: Cond,
        i: i32,
        b: Reg,
        target: usize,
    },
    Addib {
        i: u32,
        b: Reg,
        cond: Cond,
        target: usize,
    },
    Bb {
        s: Reg,
        shr: u32,
        expect: u32,
        target: usize,
    },
    Blr {
        x: Reg,
        base: usize,
    },
    Nop,
    Break {
        code: u16,
    },
}

fn predecode(op: &Op) -> PreparedOp {
    match *op {
        Op::Add { a, b, t, trap } => PreparedOp::Add { a, b, t, trap },
        Op::Addc { a, b, t } => PreparedOp::Addc { a, b, t },
        Op::Sub { a, b, t, trap } => PreparedOp::Sub { a, b, t, trap },
        Op::Subb { a, b, t } => PreparedOp::Subb { a, b, t },
        Op::ShAdd { sh, a, b, t, trap } => PreparedOp::ShAdd {
            bits: sh.bits(),
            a,
            b,
            t,
            trap,
        },
        Op::Ds { a, b, t } => PreparedOp::Ds { a, b, t },
        Op::Or { a, b, t } => PreparedOp::Or { a, b, t },
        Op::And { a, b, t } => PreparedOp::And { a, b, t },
        Op::Xor { a, b, t } => PreparedOp::Xor { a, b, t },
        Op::AndCm { a, b, t } => PreparedOp::AndCm { a, b, t },
        Op::Comclr { cond, a, b, t } => PreparedOp::Comclr { cond, a, b, t },
        Op::Comiclr { cond, i, b, t } => PreparedOp::Comiclr {
            cond,
            i: i.value(),
            b,
            t,
        },
        Op::Addi { i, b, t, trap } => PreparedOp::Addi {
            i: i.value(),
            b,
            t,
            trap,
        },
        Op::Subi { i, b, t } => PreparedOp::Subi { i: i.value(), b, t },
        Op::Ldo { b, d, t } => PreparedOp::Ldo {
            d: d.value() as u32,
            b,
            t,
        },
        Op::Ldil { i, t } => PreparedOp::LoadHigh {
            value: i.shifted(),
            t,
        },
        Op::Shl { s, sa, t } => PreparedOp::Shl {
            s,
            sa: sa.bits(),
            t,
        },
        Op::ShrU { s, sa, t } => PreparedOp::ShrU {
            s,
            sa: sa.bits(),
            t,
        },
        Op::ShrS { s, sa, t } => PreparedOp::ShrS {
            s,
            sa: sa.bits(),
            t,
        },
        Op::Shd { hi, lo, sa, t } => PreparedOp::Shd {
            hi,
            lo,
            sa: sa.bits(),
            t,
        },
        Op::Extru { s, pos, len, t } => PreparedOp::Extru {
            s,
            shr: 31 - u32::from(pos),
            mask: if len == 32 {
                u32::MAX
            } else {
                (1u32 << len) - 1
            },
            t,
        },
        Op::B { target } => PreparedOp::B { target },
        Op::Comb { cond, a, b, target } => PreparedOp::Comb { cond, a, b, target },
        Op::Combi { cond, i, b, target } => PreparedOp::Combi {
            cond,
            i: i.value(),
            b,
            target,
        },
        Op::Addib { i, b, cond, target } => PreparedOp::Addib {
            i: i.value() as u32,
            b,
            cond,
            target,
        },
        Op::Bb {
            s,
            bit,
            sense,
            target,
        } => PreparedOp::Bb {
            s,
            shr: 31 - u32::from(bit),
            expect: match sense {
                BitSense::Set => 1,
                BitSense::Clear => 0,
            },
            target,
        },
        Op::Blr { x, base } => PreparedOp::Blr { x, base },
        Op::Nop => PreparedOp::Nop,
        Op::Break { code } => PreparedOp::Break { code },
        _ => unreachable!("pa-sim handles every pa-isa op"),
    }
}

/// A program decoded once for repeated execution: labels already resolved
/// (they were at build time), immediates folded, and the execution
/// configuration (overflow model, watchdog, instrumentation switches)
/// baked in.
///
/// Construct with [`PreparedProgram::new`], execute with
/// [`PreparedProgram::run`] or the free function [`execute_prepared`].
/// The original [`Program`] is retained for listings, label lookups and
/// instrumented (stats/trace/profile) runs, which delegate to the
/// interpreter verbatim.
///
/// The source program and the decoded stream sit behind [`Arc`]s, so
/// cloning a prepared program is a pair of reference-count bumps:
/// `PreparedProgram` is `Send + Sync` and clones can be handed to worker
/// threads without re-decoding or copying code.
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    program: Arc<Program>,
    code: Arc<[PreparedOp]>,
    config: ExecConfig,
}

impl PreparedProgram {
    /// Pre-decodes `program` under `config`.
    #[must_use]
    pub fn new(program: &Program, config: ExecConfig) -> PreparedProgram {
        let _span =
            telemetry::span::enter_with("prepare", || format!("{} instructions", program.len()));
        let code = program.iter().map(|insn| predecode(&insn.op)).collect();
        PreparedProgram {
            program: Arc::new(program.clone()),
            code,
            config,
        }
    }

    /// The source program (labels intact).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The execution configuration baked in at preparation time.
    #[must_use]
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Executes the prepared program on `machine`.
    ///
    /// Identical observable behaviour to `run(self.program(), machine,
    /// self.config())` — same registers, PSW bits, cycle counts and
    /// termination. When the configuration requests instrumentation
    /// (profile, trace or stats) the interpreter runs instead, so
    /// instrumented results are the interpreter's by construction.
    pub fn run(&self, machine: &mut Machine) -> RunResult {
        if self.config.profile || self.config.trace || self.config.stats {
            return run(&self.program, machine, &self.config);
        }
        self.run_fast(machine)
    }

    fn run_fast(&self, m: &mut Machine) -> RunResult {
        let code = &self.code;
        let len = code.len();
        let max_cycles = self.config.max_cycles;
        let precise = self.config.overflow == OverflowModel::Precise;

        let mut result = RunResult {
            cycles: 0,
            executed: 0,
            nullified: 0,
            taken_branches: 0,
            termination: Termination::Completed,
            profile: Vec::new(),
            trace: Vec::new(),
            stats: None,
        };
        let mut pc = 0usize;
        let mut nullify_next = false;

        let overflows = |a: i32, sh: u32, b: i32| -> bool {
            if precise {
                precise_overflow(a, sh, b)
            } else {
                cheap_circuit_overflow(a, sh, b)
            }
        };

        'fetch: while pc < len {
            if result.cycles >= max_cycles {
                result.termination = Termination::CycleLimit;
                break 'fetch;
            }
            result.cycles += 1;

            if nullify_next {
                nullify_next = false;
                result.nullified += 1;
                pc += 1;
                continue;
            }
            result.executed += 1;

            match code[pc] {
                PreparedOp::Add { a, b, t, trap } => {
                    let (av, bv) = (m.reg(a), m.reg(b));
                    if trap && overflows(av as i32, 0, bv as i32) {
                        result.termination = Termination::Trapped(Trap {
                            kind: TrapKind::Overflow,
                            at: pc,
                        });
                        break 'fetch;
                    }
                    let (sum, c) = add_with_carry(av, bv, false);
                    m.set_reg(t, sum);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Addc { a, b, t } => {
                    let (sum, c) = add_with_carry(m.reg(a), m.reg(b), m.carry());
                    m.set_reg(t, sum);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Sub { a, b, t, trap } => {
                    let (av, bv) = (m.reg(a), m.reg(b));
                    if trap {
                        let full = i64::from(av as i32) - i64::from(bv as i32);
                        if i32::try_from(full).is_err() {
                            result.termination = Termination::Trapped(Trap {
                                kind: TrapKind::Overflow,
                                at: pc,
                            });
                            break 'fetch;
                        }
                    }
                    let (diff, c) = add_with_carry(av, !bv, true);
                    m.set_reg(t, diff);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Subb { a, b, t } => {
                    let (diff, c) = add_with_carry(m.reg(a), !m.reg(b), m.carry());
                    m.set_reg(t, diff);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::ShAdd {
                    bits,
                    a,
                    b,
                    t,
                    trap,
                } => {
                    let (av, bv) = (m.reg(a), m.reg(b));
                    if trap && overflows(av as i32, bits, bv as i32) {
                        result.termination = Termination::Trapped(Trap {
                            kind: TrapKind::Overflow,
                            at: pc,
                        });
                        break 'fetch;
                    }
                    let shifted = av.wrapping_shl(bits);
                    let (sum, c) = add_with_carry(shifted, bv, false);
                    m.set_reg(t, sum);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Ds { a, b, t } => {
                    let shifted = m.reg(a).wrapping_shl(1) | u32::from(m.carry());
                    let bv = m.reg(b);
                    let (res, c) = if m.v_bit() {
                        add_with_carry(shifted, bv, false)
                    } else {
                        add_with_carry(shifted, !bv, true)
                    };
                    m.set_reg(t, res);
                    m.set_carry(c);
                    m.set_v_bit(!c);
                    pc += 1;
                }
                PreparedOp::Or { a, b, t } => {
                    m.set_reg(t, m.reg(a) | m.reg(b));
                    pc += 1;
                }
                PreparedOp::And { a, b, t } => {
                    m.set_reg(t, m.reg(a) & m.reg(b));
                    pc += 1;
                }
                PreparedOp::Xor { a, b, t } => {
                    m.set_reg(t, m.reg(a) ^ m.reg(b));
                    pc += 1;
                }
                PreparedOp::AndCm { a, b, t } => {
                    m.set_reg(t, m.reg(a) & !m.reg(b));
                    pc += 1;
                }
                PreparedOp::Comclr { cond, a, b, t } => {
                    let taken = cond.eval(m.reg_i32(a), m.reg_i32(b));
                    m.set_reg(t, 0);
                    nullify_next = taken;
                    pc += 1;
                }
                PreparedOp::Comiclr { cond, i, b, t } => {
                    let taken = cond.eval(i, m.reg_i32(b));
                    m.set_reg(t, 0);
                    nullify_next = taken;
                    pc += 1;
                }
                PreparedOp::Addi { i, b, t, trap } => {
                    let bv = m.reg(b);
                    if trap && overflows(i, 0, bv as i32) {
                        result.termination = Termination::Trapped(Trap {
                            kind: TrapKind::Overflow,
                            at: pc,
                        });
                        break 'fetch;
                    }
                    let (sum, c) = add_with_carry(i as u32, bv, false);
                    m.set_reg(t, sum);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Subi { i, b, t } => {
                    let (diff, c) = add_with_carry(i as u32, !m.reg(b), true);
                    m.set_reg(t, diff);
                    m.set_carry(c);
                    pc += 1;
                }
                PreparedOp::Ldo { d, b, t } => {
                    m.set_reg(t, m.reg(b).wrapping_add(d));
                    pc += 1;
                }
                PreparedOp::LoadHigh { value, t } => {
                    m.set_reg(t, value);
                    pc += 1;
                }
                PreparedOp::Shl { s, sa, t } => {
                    m.set_reg(t, m.reg(s).wrapping_shl(sa));
                    pc += 1;
                }
                PreparedOp::ShrU { s, sa, t } => {
                    m.set_reg(t, m.reg(s) >> sa);
                    pc += 1;
                }
                PreparedOp::ShrS { s, sa, t } => {
                    m.set_reg(t, (m.reg_i32(s) >> sa) as u32);
                    pc += 1;
                }
                PreparedOp::Shd { hi, lo, sa, t } => {
                    let pair = (u64::from(m.reg(hi)) << 32) | u64::from(m.reg(lo));
                    m.set_reg(t, (pair >> sa) as u32);
                    pc += 1;
                }
                PreparedOp::Extru { s, shr, mask, t } => {
                    m.set_reg(t, (m.reg(s) >> shr) & mask);
                    pc += 1;
                }
                PreparedOp::B { target } => {
                    result.taken_branches += 1;
                    pc = target;
                }
                PreparedOp::Comb { cond, a, b, target } => {
                    if cond.eval(m.reg_i32(a), m.reg_i32(b)) {
                        result.taken_branches += 1;
                        pc = target;
                    } else {
                        pc += 1;
                    }
                }
                PreparedOp::Combi { cond, i, b, target } => {
                    if cond.eval(i, m.reg_i32(b)) {
                        result.taken_branches += 1;
                        pc = target;
                    } else {
                        pc += 1;
                    }
                }
                PreparedOp::Addib { i, b, cond, target } => {
                    let updated = m.reg(b).wrapping_add(i);
                    m.set_reg(b, updated);
                    if cond.eval(updated as i32, 0) {
                        result.taken_branches += 1;
                        pc = target;
                    } else {
                        pc += 1;
                    }
                }
                PreparedOp::Bb {
                    s,
                    shr,
                    expect,
                    target,
                } => {
                    if (m.reg(s) >> shr) & 1 == expect {
                        result.taken_branches += 1;
                        pc = target;
                    } else {
                        pc += 1;
                    }
                }
                PreparedOp::Blr { x, base } => {
                    let target = base as u64 + 2 * u64::from(m.reg(x));
                    if target > len as u64 {
                        result.termination = Termination::Faulted(Fault { at: pc, target });
                        break 'fetch;
                    }
                    result.taken_branches += 1;
                    pc = target as usize;
                }
                PreparedOp::Nop => pc += 1,
                PreparedOp::Break { code } => {
                    result.termination = Termination::Trapped(Trap {
                        kind: TrapKind::Break(code),
                        at: pc,
                    });
                    break 'fetch;
                }
            }
        }
        result
    }
}

/// Adds `x + y + cin` and returns `(sum, carry_out)`.
fn add_with_carry(x: u32, y: u32, cin: bool) -> (u32, bool) {
    let wide = u64::from(x) + u64::from(y) + u64::from(cin);
    (wide as u32, wide >> 32 != 0)
}

/// Executes a [`PreparedProgram`] on `machine` — free-function spelling of
/// [`PreparedProgram::run`].
pub fn execute_prepared(prepared: &PreparedProgram, machine: &mut Machine) -> RunResult {
    prepared.run(machine)
}

/// Convenience wrapper mirroring [`crate::run_fn`]: preload registers into a
/// fresh machine, execute the prepared program, return both.
pub fn run_fn_prepared(prepared: &PreparedProgram, inputs: &[(Reg, u32)]) -> (Machine, RunResult) {
    let mut machine = Machine::with_regs(inputs);
    let result = prepared.run(&mut machine);
    (machine, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_fn;
    use pa_isa::{Cond, ProgramBuilder};

    fn assert_equivalent(p: &Program, inputs: &[(Reg, u32)], config: &ExecConfig) {
        let (m_slow, r_slow) = run_fn(p, inputs, config);
        let prepared = PreparedProgram::new(p, config.clone());
        let (m_fast, r_fast) = run_fn_prepared(&prepared, inputs);
        assert_eq!(m_slow, m_fast, "machine state must match");
        assert_eq!(r_slow.cycles, r_fast.cycles);
        assert_eq!(r_slow.executed, r_fast.executed);
        assert_eq!(r_slow.nullified, r_fast.nullified);
        assert_eq!(r_slow.taken_branches, r_fast.taken_branches);
        assert_eq!(r_slow.termination, r_fast.termination);
    }

    #[test]
    fn prepared_matches_interpreter_on_branchy_loop() {
        let mut b = ProgramBuilder::new();
        b.ldi(6, Reg::R1);
        b.ldi(0, Reg::R2);
        let top = b.here("loop");
        b.add(Reg::R1, Reg::R2, Reg::R2);
        b.comclr(Cond::Odd, Reg::R1, Reg::R0, Reg::R0);
        b.sh1add(Reg::R2, Reg::R0, Reg::R2);
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let p = b.build().unwrap();
        assert_equivalent(&p, &[], &ExecConfig::default());
    }

    #[test]
    fn prepared_matches_interpreter_on_traps() {
        let mut b = ProgramBuilder::new();
        b.load_const(0x7FFF_FFFF, Reg::R1);
        b.addio(1, Reg::R1, Reg::R2);
        let p = b.build().unwrap();
        assert_equivalent(&p, &[], &ExecConfig::default());
        assert_equivalent(&p, &[], &ExecConfig::precise());
    }

    #[test]
    fn prepared_matches_interpreter_on_faults() {
        let mut b = ProgramBuilder::new();
        let table = b.named_label("table");
        b.blr(Reg::R1, table);
        b.bind(table);
        b.nop();
        let p = b.build().unwrap();
        assert_equivalent(&p, &[(Reg::R1, 500)], &ExecConfig::default());
    }

    #[test]
    fn prepared_matches_interpreter_on_cycle_limit() {
        let mut b = ProgramBuilder::new();
        let top = b.here("spin");
        b.b(top);
        let p = b.build().unwrap();
        let cfg = ExecConfig {
            max_cycles: 100,
            ..ExecConfig::default()
        };
        assert_equivalent(&p, &[], &cfg);
    }

    #[test]
    fn instrumented_runs_delegate_to_the_interpreter() {
        let mut b = ProgramBuilder::new();
        b.ldi(3, Reg::R1);
        let top = b.here("top");
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let p = b.build().unwrap();
        let prepared = PreparedProgram::new(&p, ExecConfig::default().with_stats().with_profile());
        let mut m = Machine::new();
        let r = prepared.run(&mut m);
        assert!(r.stats.is_some(), "delegated run must carry stats");
        assert_eq!(r.profile, vec![1, 3]);
    }

    #[test]
    fn prepared_programs_share_code_across_clones_and_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PreparedProgram>();

        let mut b = ProgramBuilder::new();
        b.sh2add(Reg::R26, Reg::R26, Reg::R28);
        let p = b.build().unwrap();
        let prepared = PreparedProgram::new(&p, ExecConfig::default());
        let clone = prepared.clone();
        // Clones are reference-count bumps, not re-decodes.
        assert!(Arc::ptr_eq(&prepared.code, &clone.code));
        assert!(Arc::ptr_eq(&prepared.program, &clone.program));
        // And a clone runs fine on another thread.
        let handle = std::thread::spawn(move || {
            let mut m = Machine::with_regs(&[(Reg::R26, 7)]);
            clone.run(&mut m);
            m.reg(Reg::R28)
        });
        assert_eq!(handle.join().unwrap(), 35);
    }

    #[test]
    fn accessors_expose_source_and_config() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let prepared = PreparedProgram::new(&p, ExecConfig::precise());
        assert_eq!(prepared.len(), 1);
        assert!(!prepared.is_empty());
        assert_eq!(prepared.program().len(), 1);
        assert_eq!(prepared.config().overflow, OverflowModel::Precise);
    }
}
