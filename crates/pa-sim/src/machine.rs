//! Architectural state: general registers and the PSW bits.

use core::fmt;

use pa_isa::Reg;

/// The architectural state visible to programs: 32 general registers and the
/// two PSW bits the multiply/divide millicode relies on.
///
/// `r0` is hardwired to zero — [`Machine::set_reg`] discards writes to it.
///
/// # Example
///
/// ```
/// use pa_isa::Reg;
/// use pa_sim::Machine;
///
/// let mut m = Machine::new();
/// m.set_reg(Reg::R5, 0xFFFF_FFFF);
/// assert_eq!(m.reg(Reg::R5), 0xFFFF_FFFF);
/// assert_eq!(m.reg_i32(Reg::R5), -1);
/// m.set_reg(Reg::R0, 99);
/// assert_eq!(m.reg(Reg::R0), 0); // hardwired zero
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    regs: [u32; pa_isa::NUM_REGS],
    carry: bool,
    v: bool,
}

impl Machine {
    /// A machine with all registers and PSW bits zeroed.
    #[must_use]
    pub fn new() -> Machine {
        Machine {
            regs: [0; pa_isa::NUM_REGS],
            carry: false,
            v: false,
        }
    }

    /// A machine with the given `(register, value)` pairs preloaded.
    ///
    /// # Example
    ///
    /// ```
    /// use pa_isa::Reg;
    /// use pa_sim::Machine;
    ///
    /// let m = Machine::with_regs(&[(Reg::R26, 7), (Reg::R25, 9)]);
    /// assert_eq!(m.reg(Reg::R25), 9);
    /// ```
    #[must_use]
    pub fn with_regs(values: &[(Reg, u32)]) -> Machine {
        let mut m = Machine::new();
        for &(r, v) in values {
            m.set_reg(r, v);
        }
        m
    }

    /// Reads a register (always 0 for `r0`).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Reads a register as a signed value.
    #[must_use]
    pub fn reg_i32(&self, r: Reg) -> i32 {
        self.regs[r.index()] as i32
    }

    /// Writes a register; writes to `r0` are discarded.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Writes a register with a signed value.
    pub fn set_reg_i32(&mut self, r: Reg, value: i32) {
        self.set_reg(r, value as u32);
    }

    /// The PSW carry/borrow bit.
    #[must_use]
    pub fn carry(&self) -> bool {
        self.carry
    }

    /// Sets the PSW carry/borrow bit.
    pub fn set_carry(&mut self, carry: bool) {
        self.carry = carry;
    }

    /// The PSW V bit (divide-step state).
    #[must_use]
    pub fn v_bit(&self) -> bool {
        self.v
    }

    /// Sets the PSW V bit.
    pub fn set_v_bit(&mut self, v: bool) {
        self.v = v;
    }

    /// A snapshot of all 32 registers, indexable by register number.
    #[must_use]
    pub fn regs(&self) -> [u32; pa_isa::NUM_REGS] {
        self.regs
    }

    /// Zeroes every register and both PSW bits, restoring the state of a
    /// fresh [`Machine::new`] without reallocating. Batch executors reuse
    /// one machine across calls; a reset machine is bit-identical to a new
    /// one, so results cannot depend on reuse.
    ///
    /// # Example
    ///
    /// ```
    /// use pa_isa::Reg;
    /// use pa_sim::Machine;
    ///
    /// let mut m = Machine::with_regs(&[(Reg::R5, 7)]);
    /// m.set_carry(true);
    /// m.reset();
    /// assert_eq!(m, Machine::new());
    /// ```
    pub fn reset(&mut self) {
        self.regs = [0; pa_isa::NUM_REGS];
        self.carry = false;
        self.v = false;
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "psw: c={} v={}", u8::from(self.carry), u8::from(self.v))?;
        for (i, chunk) in self.regs.chunks(4).enumerate() {
            let base = i * 4;
            for (j, v) in chunk.iter().enumerate() {
                write!(f, "r{:<2} {v:08x}  ", base + j)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired() {
        let mut m = Machine::new();
        m.set_reg(Reg::R0, 1234);
        assert_eq!(m.reg(Reg::R0), 0);
        m.set_reg_i32(Reg::R0, -5);
        assert_eq!(m.reg_i32(Reg::R0), 0);
    }

    #[test]
    fn signed_views() {
        let mut m = Machine::new();
        m.set_reg_i32(Reg::R3, i32::MIN);
        assert_eq!(m.reg(Reg::R3), 0x8000_0000);
        assert_eq!(m.reg_i32(Reg::R3), i32::MIN);
    }

    #[test]
    fn psw_bits() {
        let mut m = Machine::new();
        assert!(!m.carry() && !m.v_bit());
        m.set_carry(true);
        m.set_v_bit(true);
        assert!(m.carry() && m.v_bit());
    }

    #[test]
    fn with_regs_preloads() {
        let m = Machine::with_regs(&[(Reg::R1, 10), (Reg::R2, 20), (Reg::R0, 30)]);
        assert_eq!(m.reg(Reg::R1), 10);
        assert_eq!(m.reg(Reg::R2), 20);
        assert_eq!(m.reg(Reg::R0), 0);
    }

    #[test]
    fn display_mentions_psw_and_regs() {
        let m = Machine::new();
        let text = m.to_string();
        assert!(text.contains("psw:"));
        assert!(text.contains("r31"));
    }
}
