//! Overflow detection models for the trapping arithmetic instructions.
//!
//! The paper (§4, *Shift and Add Instructions*) explains the hardware
//! trade-off this module reproduces:
//!
//! > One might suspect that proper overflow detection requires a full 35-bit
//! > addition to be performed — an expensive proposition especially in a
//! > discrete implementation. Instead, a normal 32-bit addition is performed
//! > and overflow is detected by a circuit that compares the sign bits of the
//! > operands with the shifted out sign bits and the sign bit of the result.
//! > Although this does not allow for proper overflow detection if the
//! > operands are of different signs, this case hardly ever arises and, in
//! > practice, can easily be avoided.
//!
//! [`precise_overflow`] is the full-width reference; [`cheap_circuit_overflow`]
//! is the sign-comparison circuit. The circuit is **conservative**: it never
//! misses a true overflow, but may report a spurious one when the pre-shift
//! overflows and an opposite-signed addend brings the sum back into range
//! (ablation A1 measures how often).

use core::fmt;

/// Which overflow detector the simulator applies to `ADDO`, `SUBO`,
/// `ADDIO` and the `SHxADDO` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowModel {
    /// The paper's cheap sign-comparison circuit (the architecture's actual
    /// behaviour) — conservative for mixed-sign shift-and-add operands.
    #[default]
    CheapCircuit,
    /// A full-width (35-bit) reference adder: traps iff the mathematical
    /// result does not fit in 32 signed bits.
    Precise,
}

impl fmt::Display for OverflowModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OverflowModel::CheapCircuit => "cheap-circuit",
            OverflowModel::Precise => "precise",
        })
    }
}

/// Precise signed-overflow test for `(a << sh) + b` (use `sh = 0` for plain
/// addition). Subtraction is tested as `a + (-b)` at full width, so
/// `a - i32::MIN` overflows for non-negative `a`, as on real hardware.
#[must_use]
pub fn precise_overflow(a: i32, sh: u32, b: i32) -> bool {
    debug_assert!(sh <= 3);
    let full = (i64::from(a) << sh) + i64::from(b);
    i32::try_from(full).is_err()
}

/// The paper's cheap sign-comparison circuit for `(a << sh) + b`.
///
/// The circuit looks at the sign bit of `a`, the `sh` bits shifted out, the
/// sign of the shifted value and a conventional add-overflow check on the
/// 32-bit sum:
///
/// * the pre-shift is flagged when the shifted-out bits and the resulting
///   sign are not all copies of `a`'s sign;
/// * the addition is flagged by the usual same-sign/different-result rule.
///
/// For `sh = 0` this degenerates to exact add-overflow detection.
#[must_use]
pub fn cheap_circuit_overflow(a: i32, sh: u32, b: i32) -> bool {
    debug_assert!(sh <= 3);
    let shifted = a.wrapping_shl(sh);
    // Bits of `a` at positions 31, 30, …, 31-sh must all match: they are the
    // sign, the shifted-out bits and the post-shift sign bit.
    let top = (a >> (31 - sh)) as i64; // arithmetic: sign-extends bit 31
    let shift_ovf = top != 0 && top != -1;
    let sum = shifted.wrapping_add(b);
    let add_ovf = (shifted >= 0) == (b >= 0) && (sum >= 0) != (shifted >= 0);
    shift_ovf || add_ovf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_matches_checked_ops() {
        let samples = [
            0,
            1,
            -1,
            2,
            100,
            -100,
            i32::MAX,
            i32::MIN,
            0x3FFF_FFFF,
            -0x4000_0000,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    precise_overflow(a, 0, b),
                    a.checked_add(b).is_none(),
                    "add {a} {b}"
                );
                for sh in 1..=3u32 {
                    let expected = (i64::from(a) << sh) + i64::from(b);
                    assert_eq!(
                        precise_overflow(a, sh, b),
                        i32::try_from(expected).is_err(),
                        "shadd {a} << {sh} + {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cheap_equals_precise_for_plain_add() {
        let samples = [
            0,
            1,
            -1,
            i32::MAX,
            i32::MIN,
            12345,
            -98765,
            i32::MAX / 2 + 1,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    cheap_circuit_overflow(a, 0, b),
                    precise_overflow(a, 0, b),
                    "{a} + {b}"
                );
            }
        }
    }

    #[test]
    fn cheap_is_exact_for_same_sign_operands() {
        // The paper's claim: with same-sign operands the circuit is correct.
        let mut rng: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng as u32
        };
        for _ in 0..20_000 {
            let a = (next() & 0x7FFF_FFFF) as i32;
            let b = (next() & 0x7FFF_FFFF) as i32;
            for sh in 0..=3u32 {
                // both non-negative
                assert_eq!(
                    cheap_circuit_overflow(a, sh, b),
                    precise_overflow(a, sh, b),
                    "pos {a} << {sh} + {b}"
                );
                // both negative
                let (na, nb) = (-1 - a, -1 - b);
                assert_eq!(
                    cheap_circuit_overflow(na, sh, nb),
                    precise_overflow(na, sh, nb),
                    "neg {na} << {sh} + {nb}"
                );
            }
        }
    }

    #[test]
    fn cheap_never_misses_a_true_overflow() {
        let mut rng: u64 = 0xdead_beef_cafe_f00d;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng as u32
        };
        for _ in 0..50_000 {
            let a = next() as i32;
            let b = next() as i32;
            for sh in 0..=3u32 {
                if precise_overflow(a, sh, b) {
                    assert!(
                        cheap_circuit_overflow(a, sh, b),
                        "missed overflow: {a} << {sh} + {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cheap_false_positive_example() {
        // 2 * 2^30 overflows the pre-shift, but adding -2^30 lands back in
        // range; the circuit still traps — the mixed-sign case the paper
        // tells compilers to avoid.
        let a = 1 << 30;
        let b = -(1 << 30);
        assert!(!precise_overflow(a, 1, b));
        assert!(cheap_circuit_overflow(a, 1, b));
    }
}
