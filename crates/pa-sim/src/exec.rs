//! The interpreter: instruction semantics, cycle accounting, traps.

use core::fmt;

use pa_isa::{BitSense, Op, Program, Reg};

use crate::overflow::{cheap_circuit_overflow, precise_overflow, OverflowModel};
use crate::stats::{SimStats, StatsRecorder};
use crate::Machine;

/// Execution configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Overflow detector applied to trapping instructions.
    pub overflow: OverflowModel,
    /// Cycle budget; execution stops with [`Termination::CycleLimit`] when
    /// exceeded (a watchdog against mis-built loops).
    pub max_cycles: u64,
    /// Collect a per-instruction execution profile (`RunResult::profile`).
    pub profile: bool,
    /// Record the executed instruction stream (`RunResult::trace`); entries
    /// are capped at `max_cycles`, so bound it for long runs.
    pub trace: bool,
    /// Collect per-opcode histograms and per-label cycle attribution
    /// (`RunResult::stats`). Off by default: the zero-instrumentation path
    /// costs one never-taken branch per slot and cycle counts are identical
    /// either way.
    pub stats: bool,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            overflow: OverflowModel::default(),
            max_cycles: 1_000_000,
            profile: false,
            trace: false,
            stats: false,
        }
    }
}

impl ExecConfig {
    /// A configuration using the precise full-width overflow detector.
    #[must_use]
    pub fn precise() -> ExecConfig {
        ExecConfig {
            overflow: OverflowModel::Precise,
            ..ExecConfig::default()
        }
    }

    /// Returns the configuration with profiling enabled.
    #[must_use]
    pub fn with_profile(mut self) -> ExecConfig {
        self.profile = true;
        self
    }

    /// Returns the configuration with instruction tracing enabled.
    #[must_use]
    pub fn with_trace(mut self) -> ExecConfig {
        self.trace = true;
        self
    }

    /// Returns the configuration with statistics collection enabled.
    #[must_use]
    pub fn with_stats(mut self) -> ExecConfig {
        self.stats = true;
        self
    }
}

/// One entry of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEntry {
    /// The instruction index fetched this cycle.
    pub pc: usize,
    /// Whether the slot was nullified by a preceding `COMCLR`/`COMICLR`.
    pub nullified: bool,
}

/// Renders a trace against its program as an assembler-style listing, one
/// fetched slot per line: the running cycle count, the instruction index,
/// the instruction, and a `[nullified]` mark for annulled slots.
///
/// Each distinct instruction is rendered once and the listing buffer is
/// pre-sized, so formatting long loop traces does not re-stringify the loop
/// body every iteration.
///
/// # Example
///
/// ```
/// use pa_isa::{ProgramBuilder, Reg, Cond};
/// use pa_sim::{format_trace, run, ExecConfig, Machine};
///
/// let mut b = ProgramBuilder::new();
/// b.comclr(Cond::Eq, Reg::R0, Reg::R0, Reg::R0);
/// b.ldi(1, Reg::R5);
/// let p = b.build()?;
/// let mut m = Machine::new();
/// let r = run(&p, &mut m, &ExecConfig::default().with_trace());
/// let text = format_trace(&p, &r.trace);
/// assert!(text.contains("[nullified]"));
/// # Ok::<(), pa_isa::IsaError>(())
/// ```
#[must_use]
pub fn format_trace(program: &Program, trace: &[TraceEntry]) -> String {
    use core::fmt::Write as _;
    // Loop traces revisit the same few pcs thousands of times; render each
    // instruction once up front instead of per trace entry.
    let mut rendered: Vec<Option<String>> = vec![None; program.len()];
    let mut width = 0usize;
    for entry in trace {
        if let Some(slot) = rendered.get_mut(entry.pc) {
            let text =
                slot.get_or_insert_with(|| program.get(entry.pc).expect("pc < len").to_string());
            width = width.max(text.len());
        }
    }
    const OUT_OF_RANGE: &str = "<out of range>";
    // cycle (6) + gap (2) + pc (5) + ": " + insn + mark (13) + newline.
    let per_line = 6 + 2 + 5 + 2 + width.max(OUT_OF_RANGE.len()) + 13 + 1;
    let mut out = String::with_capacity(trace.len() * per_line);
    for (i, entry) in trace.iter().enumerate() {
        let insn = rendered
            .get(entry.pc)
            .and_then(|slot| slot.as_deref())
            .unwrap_or(OUT_OF_RANGE);
        let mark = if entry.nullified { "  [nullified]" } else { "" };
        let cycle = i as u64 + 1;
        let _ = writeln!(out, "{cycle:>6}  {:>5}: {insn}{mark}", entry.pc);
    }
    out
}

/// Why a trap was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Signed overflow in a trapping arithmetic instruction.
    Overflow,
    /// An explicit `BREAK` with its diagnostic code.
    Break(u16),
}

/// A trap: what happened and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Trap {
    /// Trap cause.
    pub kind: TrapKind,
    /// Index of the trapping instruction.
    pub at: usize,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TrapKind::Overflow => write!(f, "overflow trap at instruction {}", self.at),
            TrapKind::Break(code) => {
                write!(f, "break trap (code {code}) at instruction {}", self.at)
            }
        }
    }
}

/// A structural fault — the program computed a control transfer outside
/// itself (only possible through `BLR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Index of the faulting `BLR`.
    pub at: usize,
    /// The computed, out-of-range target.
    pub target: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vectored branch at instruction {} computed wild target {}",
            self.at, self.target
        )
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Termination {
    /// Control reached the fall-through exit.
    Completed,
    /// A trap fired (overflow or `BREAK`).
    Trapped(Trap),
    /// The [`ExecConfig::max_cycles`] watchdog fired.
    CycleLimit,
    /// A wild vectored branch.
    Faulted(Fault),
}

impl Termination {
    /// Whether the program ran to its fall-through exit.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, Termination::Completed)
    }

    /// The trap, if execution trapped.
    #[must_use]
    pub fn trap(&self) -> Option<Trap> {
        match self {
            Termination::Trapped(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Completed => write!(f, "completed"),
            Termination::Trapped(t) => write!(f, "{t}"),
            Termination::CycleLimit => write!(f, "cycle limit exceeded"),
            Termination::Faulted(fault) => write!(f, "{fault}"),
        }
    }
}

/// Statistics from one run.
///
/// `cycles` is the paper's unit of account: every fetched slot — including
/// nullified ones — costs one cycle. `executed` counts instructions whose
/// effects actually happened (`cycles = executed + nullified`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Instructions that executed (not nullified).
    pub executed: u64,
    /// Nullified slots.
    pub nullified: u64,
    /// Branches that were taken.
    pub taken_branches: u64,
    /// How the run ended.
    pub termination: Termination,
    /// Per-instruction execution counts (empty unless
    /// [`ExecConfig::profile`] was set). Nullified slots are not counted.
    pub profile: Vec<u64>,
    /// The fetched instruction stream (empty unless [`ExecConfig::trace`]
    /// was set); render with [`format_trace`].
    pub trace: Vec<TraceEntry>,
    /// Per-opcode histograms and per-label cycle attribution (`None` unless
    /// [`ExecConfig::stats`] was set).
    pub stats: Option<Box<SimStats>>,
}

/// Executes `program` on `machine` from instruction 0 until it exits, traps,
/// faults or exhausts the cycle budget.
///
/// # Example
///
/// ```
/// use pa_isa::{ProgramBuilder, Reg};
/// use pa_sim::{run, ExecConfig, Machine};
///
/// let mut b = ProgramBuilder::new();
/// b.addi(5, Reg::R1, Reg::R2);
/// let p = b.build()?;
/// let mut m = Machine::with_regs(&[(Reg::R1, 37)]);
/// let r = run(&p, &mut m, &ExecConfig::default());
/// assert_eq!(m.reg(Reg::R2), 42);
/// assert_eq!(r.cycles, 1);
/// # Ok::<(), pa_isa::IsaError>(())
/// ```
pub fn run(program: &Program, machine: &mut Machine, config: &ExecConfig) -> RunResult {
    // Inert (one thread-local check) unless a span::trace scope is active;
    // the prepared fast path (`PreparedProgram::run_fast`) stays unspanned.
    let mut span = telemetry::span::enter("execute");
    let len = program.len();
    let mut result = RunResult {
        cycles: 0,
        executed: 0,
        nullified: 0,
        taken_branches: 0,
        termination: Termination::Completed,
        profile: if config.profile {
            vec![0; len]
        } else {
            Vec::new()
        },
        trace: Vec::new(),
        stats: None,
    };
    let mut recorder = if config.stats {
        Some(StatsRecorder::new(program))
    } else {
        None
    };
    let mut pc = 0usize;
    let mut nullify_next = false;

    'fetch: while pc < len {
        if result.cycles >= config.max_cycles {
            result.termination = Termination::CycleLimit;
            break 'fetch;
        }
        result.cycles += 1;

        if config.trace {
            result.trace.push(TraceEntry {
                pc,
                nullified: nullify_next,
            });
        }
        if nullify_next {
            nullify_next = false;
            result.nullified += 1;
            if let Some(rec) = &mut recorder {
                let insn = program.get(pc).expect("pc < len");
                rec.record(insn.op.opcode_index(), pc, true);
            }
            pc += 1;
            continue;
        }

        let insn = program.get(pc).expect("pc < len");
        result.executed += 1;
        if config.profile {
            result.profile[pc] += 1;
        }
        if let Some(rec) = &mut recorder {
            rec.record(insn.op.opcode_index(), pc, false);
        }

        match step(&insn.op, machine, len, config.overflow) {
            StepOutcome::Next => pc += 1,
            StepOutcome::NullifyNext => {
                nullify_next = true;
                pc += 1;
            }
            StepOutcome::Branch(target) => {
                result.taken_branches += 1;
                if let Some(rec) = &mut recorder {
                    // `pc` still indexes the branch instruction here.
                    rec.record_branch(pc);
                }
                pc = target;
            }
            StepOutcome::Trap(kind) => {
                if let Some(rec) = &mut recorder {
                    rec.record_trap();
                }
                result.termination = Termination::Trapped(Trap { kind, at: pc });
                break 'fetch;
            }
            StepOutcome::Fault(target) => {
                if let Some(rec) = &mut recorder {
                    rec.record_fault();
                }
                result.termination = Termination::Faulted(Fault { at: pc, target });
                break 'fetch;
            }
        }
    }
    result.stats = recorder.map(|rec| Box::new(rec.finish()));
    span.add_cycles(result.cycles);
    result
}

/// Convenience wrapper: preload registers, run, and return the machine
/// together with the statistics.
///
/// # Example
///
/// ```
/// use pa_isa::{ProgramBuilder, Reg};
/// use pa_sim::{run_fn, ExecConfig};
///
/// let mut b = ProgramBuilder::new();
/// b.sh3add(Reg::R26, Reg::R26, Reg::R28); // r28 = 9 * r26
/// let p = b.build()?;
/// let (m, stats) = run_fn(&p, &[(Reg::R26, 5)], &ExecConfig::default());
/// assert_eq!(m.reg(Reg::R28), 45);
/// assert!(stats.termination.is_completed());
/// # Ok::<(), pa_isa::IsaError>(())
/// ```
pub fn run_fn(
    program: &Program,
    inputs: &[(Reg, u32)],
    config: &ExecConfig,
) -> (Machine, RunResult) {
    let mut machine = Machine::with_regs(inputs);
    let result = run(program, &mut machine, config);
    (machine, result)
}

enum StepOutcome {
    Next,
    NullifyNext,
    Branch(usize),
    Trap(TrapKind),
    Fault(u64),
}

/// Adds `x + y + cin` and returns `(sum, carry_out)`.
fn add_with_carry(x: u32, y: u32, cin: bool) -> (u32, bool) {
    let wide = u64::from(x) + u64::from(y) + u64::from(cin);
    (wide as u32, wide >> 32 != 0)
}

fn step(op: &Op, m: &mut Machine, len: usize, ovf: OverflowModel) -> StepOutcome {
    use StepOutcome::{Branch, Fault, Next, NullifyNext, Trap};

    let overflows = |a: i32, sh: u32, b: i32| -> bool {
        match ovf {
            OverflowModel::Precise => precise_overflow(a, sh, b),
            OverflowModel::CheapCircuit => cheap_circuit_overflow(a, sh, b),
        }
    };

    match *op {
        Op::Add { a, b, t, trap } => {
            let (av, bv) = (m.reg(a), m.reg(b));
            if trap && overflows(av as i32, 0, bv as i32) {
                return Trap(TrapKind::Overflow);
            }
            let (sum, c) = add_with_carry(av, bv, false);
            m.set_reg(t, sum);
            m.set_carry(c);
            Next
        }
        Op::Addc { a, b, t } => {
            let (sum, c) = add_with_carry(m.reg(a), m.reg(b), m.carry());
            m.set_reg(t, sum);
            m.set_carry(c);
            Next
        }
        Op::Sub { a, b, t, trap } => {
            let (av, bv) = (m.reg(a), m.reg(b));
            if trap {
                let full = i64::from(av as i32) - i64::from(bv as i32);
                if i32::try_from(full).is_err() {
                    return Trap(TrapKind::Overflow);
                }
            }
            let (diff, c) = add_with_carry(av, !bv, true);
            m.set_reg(t, diff);
            m.set_carry(c); // carry set ⇔ no borrow (a >= b unsigned)
            Next
        }
        Op::Subb { a, b, t } => {
            let (diff, c) = add_with_carry(m.reg(a), !m.reg(b), m.carry());
            m.set_reg(t, diff);
            m.set_carry(c);
            Next
        }
        Op::ShAdd { sh, a, b, t, trap } => {
            let (av, bv) = (m.reg(a), m.reg(b));
            let bits = sh.bits();
            if trap && overflows(av as i32, bits, bv as i32) {
                return Trap(TrapKind::Overflow);
            }
            let shifted = av.wrapping_shl(bits);
            let (sum, c) = add_with_carry(shifted, bv, false);
            m.set_reg(t, sum);
            m.set_carry(c);
            Next
        }
        Op::Ds { a, b, t } => {
            // One non-restoring divide step (§4 of the paper): shift the
            // partial remainder left bringing in the carry (the next dividend
            // bit, exported by the preceding ADDC), then add or subtract the
            // divisor according to the V bit. The carry out is the quotient
            // bit (collected by the next ADDC); its complement is the new V.
            let shifted = m.reg(a).wrapping_shl(1) | u32::from(m.carry());
            let bv = m.reg(b);
            let (res, c) = if m.v_bit() {
                add_with_carry(shifted, bv, false)
            } else {
                add_with_carry(shifted, !bv, true)
            };
            m.set_reg(t, res);
            m.set_carry(c);
            m.set_v_bit(!c);
            Next
        }
        Op::Or { a, b, t } => {
            m.set_reg(t, m.reg(a) | m.reg(b));
            Next
        }
        Op::And { a, b, t } => {
            m.set_reg(t, m.reg(a) & m.reg(b));
            Next
        }
        Op::Xor { a, b, t } => {
            m.set_reg(t, m.reg(a) ^ m.reg(b));
            Next
        }
        Op::AndCm { a, b, t } => {
            m.set_reg(t, m.reg(a) & !m.reg(b));
            Next
        }
        Op::Comclr { cond, a, b, t } => {
            let taken = cond.eval(m.reg_i32(a), m.reg_i32(b));
            m.set_reg(t, 0);
            if taken {
                NullifyNext
            } else {
                Next
            }
        }
        Op::Comiclr { cond, i, b, t } => {
            let taken = cond.eval(i.value(), m.reg_i32(b));
            m.set_reg(t, 0);
            if taken {
                NullifyNext
            } else {
                Next
            }
        }
        Op::Addi { i, b, t, trap } => {
            let (iv, bv) = (i.value(), m.reg(b));
            if trap && overflows(iv, 0, bv as i32) {
                return Trap(TrapKind::Overflow);
            }
            let (sum, c) = add_with_carry(iv as u32, bv, false);
            m.set_reg(t, sum);
            m.set_carry(c);
            Next
        }
        Op::Subi { i, b, t } => {
            let (diff, c) = add_with_carry(i.value() as u32, !m.reg(b), true);
            m.set_reg(t, diff);
            m.set_carry(c);
            Next
        }
        Op::Ldo { b, d, t } => {
            m.set_reg(t, m.reg(b).wrapping_add(d.value() as u32));
            Next
        }
        Op::Ldil { i, t } => {
            m.set_reg(t, i.shifted());
            Next
        }
        Op::Shl { s, sa, t } => {
            m.set_reg(t, m.reg(s).wrapping_shl(sa.bits()));
            Next
        }
        Op::ShrU { s, sa, t } => {
            m.set_reg(t, m.reg(s) >> sa.bits());
            Next
        }
        Op::ShrS { s, sa, t } => {
            m.set_reg(t, (m.reg_i32(s) >> sa.bits()) as u32);
            Next
        }
        Op::Shd { hi, lo, sa, t } => {
            let pair = (u64::from(m.reg(hi)) << 32) | u64::from(m.reg(lo));
            m.set_reg(t, (pair >> sa.bits()) as u32);
            Next
        }
        Op::Extru {
            s,
            pos,
            len: flen,
            t,
        } => {
            let shifted = m.reg(s) >> (31 - u32::from(pos));
            let value = if flen == 32 {
                shifted
            } else {
                shifted & ((1u32 << flen) - 1)
            };
            m.set_reg(t, value);
            Next
        }
        Op::B { target } => Branch(target),
        Op::Comb { cond, a, b, target } => {
            if cond.eval(m.reg_i32(a), m.reg_i32(b)) {
                Branch(target)
            } else {
                Next
            }
        }
        Op::Combi { cond, i, b, target } => {
            if cond.eval(i.value(), m.reg_i32(b)) {
                Branch(target)
            } else {
                Next
            }
        }
        Op::Addib { i, b, cond, target } => {
            let updated = m.reg(b).wrapping_add(i.value() as u32);
            m.set_reg(b, updated);
            if cond.eval(updated as i32, 0) {
                Branch(target)
            } else {
                Next
            }
        }
        Op::Bb {
            s,
            bit,
            sense,
            target,
        } => {
            let value = (m.reg(s) >> (31 - u32::from(bit))) & 1;
            let taken = match sense {
                BitSense::Set => value == 1,
                BitSense::Clear => value == 0,
            };
            if taken {
                Branch(target)
            } else {
                Next
            }
        }
        Op::Blr { x, base } => {
            let target = base as u64 + 2 * u64::from(m.reg(x));
            if target > len as u64 {
                Fault(target)
            } else {
                Branch(target as usize)
            }
        }
        Op::Nop => Next,
        Op::Break { code } => Trap(TrapKind::Break(code)),
        _ => unreachable!("pa-sim handles every pa-isa op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_isa::{Cond, ProgramBuilder};

    fn exec(build: impl FnOnce(&mut ProgramBuilder)) -> (Machine, RunResult) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        let p = b.build().unwrap();
        let mut m = Machine::new();
        let r = run(&p, &mut m, &ExecConfig::default());
        (m, r)
    }

    #[test]
    fn add_sets_carry() {
        let (m, _) = exec(|b| {
            b.load_const(0xFFFF_FFFF, Reg::R1);
            b.addi(1, Reg::R1, Reg::R2);
            b.addc(Reg::R0, Reg::R0, Reg::R3); // capture carry
        });
        assert_eq!(m.reg(Reg::R2), 0);
        assert_eq!(m.reg(Reg::R3), 1);
    }

    #[test]
    fn sub_carry_means_no_borrow() {
        let (m, _) = exec(|b| {
            b.ldi(5, Reg::R1);
            b.ldi(3, Reg::R2);
            b.sub(Reg::R1, Reg::R2, Reg::R3); // 5-3: no borrow, carry=1
            b.addc(Reg::R0, Reg::R0, Reg::R4);
            b.sub(Reg::R2, Reg::R1, Reg::R5); // 3-5: borrow, carry=0
            b.addc(Reg::R0, Reg::R0, Reg::R6);
        });
        assert_eq!(m.reg(Reg::R3), 2);
        assert_eq!(m.reg(Reg::R4), 1);
        assert_eq!(m.reg(Reg::R5), -2i32 as u32);
        assert_eq!(m.reg(Reg::R6), 0);
    }

    #[test]
    fn subb_chains_borrow() {
        // 64-bit subtraction (0x1_00000000 - 1) via sub/subb.
        let (m, _) = exec(|b| {
            b.ldi(0, Reg::R1); // lo of minuend
            b.ldi(1, Reg::R2); // hi of minuend
            b.ldi(1, Reg::R3); // lo of subtrahend
            b.sub(Reg::R1, Reg::R3, Reg::R4);
            b.subb(Reg::R2, Reg::R0, Reg::R5);
        });
        assert_eq!(m.reg(Reg::R4), 0xFFFF_FFFF);
        assert_eq!(m.reg(Reg::R5), 0);
    }

    #[test]
    fn shadd_factors() {
        let (m, _) = exec(|b| {
            b.ldi(10, Reg::R1);
            b.ldi(3, Reg::R2);
            b.sh1add(Reg::R1, Reg::R2, Reg::R3);
            b.sh2add(Reg::R1, Reg::R2, Reg::R4);
            b.sh3add(Reg::R1, Reg::R2, Reg::R5);
        });
        assert_eq!(m.reg(Reg::R3), 23);
        assert_eq!(m.reg(Reg::R4), 43);
        assert_eq!(m.reg(Reg::R5), 83);
    }

    #[test]
    fn shadd_carry_feeds_pair_arithmetic() {
        // 3 * 0xC0000000: the pre-shifter drops the bit shifted out of the
        // low word (SHD recovers it), and the ALU carry of the truncated add
        // is exactly the carry pair arithmetic needs.
        let (m, _) = exec(|b| {
            b.load_const(0xC000_0000, Reg::R1);
            b.sh1add(Reg::R1, Reg::R1, Reg::R2);
            b.addc(Reg::R0, Reg::R0, Reg::R3);
        });
        assert_eq!(m.reg(Reg::R2), 0x4000_0000); // low word of 0x2_4000_0000
        assert_eq!(m.reg(Reg::R3), 1, "ALU carry out of truncated add");
    }

    #[test]
    fn overflow_traps() {
        let mut b = ProgramBuilder::new();
        b.load_const(0x7FFF_FFFF, Reg::R1);
        b.addio(1, Reg::R1, Reg::R2);
        let p = b.build().unwrap();
        let mut m = Machine::new();
        let r = run(&p, &mut m, &ExecConfig::default());
        assert_eq!(
            r.termination.trap().map(|t| t.kind),
            Some(TrapKind::Overflow)
        );
        assert_eq!(m.reg(Reg::R2), 0, "trapping instruction must not write");
    }

    #[test]
    fn non_trapping_add_wraps() {
        let (m, r) = exec(|b| {
            b.load_const(0x7FFF_FFFF, Reg::R1);
            b.addi(1, Reg::R1, Reg::R2);
        });
        assert!(r.termination.is_completed());
        assert_eq!(m.reg(Reg::R2), 0x8000_0000);
    }

    #[test]
    fn comclr_nullifies_and_costs_a_cycle() {
        let (m, r) = exec(|b| {
            b.ldi(1, Reg::R1);
            b.comclr(Cond::Eq, Reg::R1, Reg::R1, Reg::R0); // true: skip next
            b.ldi(99, Reg::R2);
            b.ldi(7, Reg::R3);
        });
        assert_eq!(m.reg(Reg::R2), 0, "nullified write must not land");
        assert_eq!(m.reg(Reg::R3), 7);
        assert_eq!(r.nullified, 1);
        assert_eq!(r.cycles, 4); // the nullified slot still costs its cycle
        assert_eq!(r.executed, 3);
    }

    #[test]
    fn comclr_false_does_not_nullify() {
        let (m, r) = exec(|b| {
            b.ldi(1, Reg::R1);
            b.comclr(Cond::Ne, Reg::R1, Reg::R1, Reg::R0);
            b.ldi(99, Reg::R2);
        });
        assert_eq!(m.reg(Reg::R2), 99);
        assert_eq!(r.nullified, 0);
    }

    #[test]
    fn comiclr_immediate_is_left_operand() {
        let (m, _) = exec(|b| {
            b.ldi(10, Reg::R1);
            b.comiclr(Cond::Lt, 5, Reg::R1, Reg::R0); // 5 < 10: nullify
            b.ldi(99, Reg::R2);
        });
        assert_eq!(m.reg(Reg::R2), 0);
    }

    #[test]
    fn nullified_branch_does_not_branch() {
        let mut b = ProgramBuilder::new();
        let out = b.named_label("out");
        b.comclr(Cond::Eq, Reg::R0, Reg::R0, Reg::R0);
        b.b(out); // nullified
        b.ldi(42, Reg::R1);
        b.bind(out);
        let p = b.build().unwrap();
        let (m, r) = run_fn(&p, &[], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R1), 42);
        assert_eq!(r.taken_branches, 0);
    }

    #[test]
    fn shifts() {
        let (m, _) = exec(|b| {
            b.load_const(0x8000_0010, Reg::R1);
            b.shl(Reg::R1, 4, Reg::R2);
            b.shr(Reg::R1, 4, Reg::R3);
            b.sar(Reg::R1, 4, Reg::R4);
        });
        assert_eq!(m.reg(Reg::R2), 0x0000_0100);
        assert_eq!(m.reg(Reg::R3), 0x0800_0001);
        assert_eq!(m.reg(Reg::R4), 0xF800_0001);
    }

    #[test]
    fn shd_extracts_from_pair() {
        let (m, _) = exec(|b| {
            b.load_const(0x1234_5678, Reg::R1); // hi
            b.load_const(0x9ABC_DEF0, Reg::R2); // lo
            b.shd(Reg::R1, Reg::R2, 16, Reg::R3);
            b.shd(Reg::R1, Reg::R2, 0, Reg::R4);
        });
        assert_eq!(m.reg(Reg::R3), 0x5678_9ABC);
        assert_eq!(m.reg(Reg::R4), 0x9ABC_DEF0);
    }

    #[test]
    fn extru_fields() {
        let (m, _) = exec(|b| {
            b.load_const(0xABCD_1234, Reg::R1);
            b.extru(Reg::R1, 31, 4, Reg::R2); // low nibble
            b.extru(Reg::R1, 15, 8, Reg::R3); // rightmost bit = PA bit 15 (LSB bit 16)
            b.extru(Reg::R1, 31, 32, Reg::R4); // whole word
        });
        assert_eq!(m.reg(Reg::R2), 0x4);
        assert_eq!(m.reg(Reg::R3), 0xCD);
        assert_eq!(m.reg(Reg::R4), 0xABCD_1234);
    }

    #[test]
    fn branches_and_loops() {
        // Sum 1..=5 with an ADDIB counted loop.
        let mut b = ProgramBuilder::new();
        b.ldi(5, Reg::R1);
        b.ldi(0, Reg::R2);
        let top = b.here("top");
        b.add(Reg::R1, Reg::R2, Reg::R2);
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let p = b.build().unwrap();
        let (m, r) = run_fn(&p, &[], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R2), 15);
        assert_eq!(r.taken_branches, 4);
        assert_eq!(r.cycles, 2 + 2 * 5);
    }

    #[test]
    fn bb_tests_bits_msb_numbering() {
        let mut b = ProgramBuilder::new();
        let hit = b.named_label("hit");
        b.ldi(1, Reg::R1);
        b.bb_lsb(Reg::R1, BitSense::Set, hit);
        b.ldi(99, Reg::R2);
        b.bind(hit);
        b.ldi(7, Reg::R3);
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R2), 0);
        assert_eq!(m.reg(Reg::R3), 7);
    }

    #[test]
    fn blr_dispatches_two_instruction_entries() {
        // Table of two 2-instruction entries; select entry 1.
        let mut b = ProgramBuilder::new();
        let table = b.named_label("table");
        let out = b.named_label("out");
        b.ldi(1, Reg::R1);
        b.blr(Reg::R1, table);
        b.bind(table);
        b.ldi(100, Reg::R2); // entry 0
        b.b(out);
        b.ldi(200, Reg::R2); // entry 1
        b.b(out);
        b.bind(out);
        let p = b.build().unwrap();
        let (m, r) = run_fn(&p, &[], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R2), 200);
        assert!(r.termination.is_completed());
    }

    #[test]
    fn blr_wild_target_faults() {
        let mut b = ProgramBuilder::new();
        let table = b.named_label("table");
        b.ldi(500, Reg::R1);
        b.blr(Reg::R1, table);
        b.bind(table);
        b.nop();
        let p = b.build().unwrap();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default());
        assert!(matches!(r.termination, Termination::Faulted(_)));
    }

    #[test]
    fn break_traps_with_code() {
        let (_, r) = exec(|b| {
            b.brk(42);
        });
        assert_eq!(
            r.termination.trap().map(|t| t.kind),
            Some(TrapKind::Break(42))
        );
    }

    #[test]
    fn cycle_limit_watchdog() {
        let mut b = ProgramBuilder::new();
        let top = b.here("spin");
        b.b(top);
        let p = b.build().unwrap();
        let mut m = Machine::new();
        let cfg = ExecConfig {
            max_cycles: 100,
            ..ExecConfig::default()
        };
        let r = run(&p, &mut m, &cfg);
        assert_eq!(r.termination, Termination::CycleLimit);
        assert_eq!(r.cycles, 100);
    }

    #[test]
    fn profile_counts_executions() {
        let mut b = ProgramBuilder::new();
        b.ldi(3, Reg::R1);
        let top = b.here("top");
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let p = b.build().unwrap();
        let mut m = Machine::new();
        let r = run(&p, &mut m, &ExecConfig::default().with_profile());
        assert_eq!(r.profile, vec![1, 3]);
    }

    fn stats_workload() -> Program {
        // A branchy, nullifying loop exercising several opcode classes.
        let mut b = ProgramBuilder::new();
        b.ldi(6, Reg::R1);
        b.ldi(0, Reg::R2);
        let top = b.here("loop");
        b.add(Reg::R1, Reg::R2, Reg::R2);
        b.comclr(Cond::Odd, Reg::R1, Reg::R0, Reg::R0);
        b.sh1add(Reg::R2, Reg::R0, Reg::R2); // nullified on odd counts
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let done = b.named_label("done");
        b.bind(done);
        b.ldi(1, Reg::R3);
        b.build().unwrap()
    }

    #[test]
    fn stats_per_opcode_counts_sum_to_executed() {
        let p = stats_workload();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let stats = r.stats.as_deref().expect("stats enabled");
        assert_eq!(stats.executed_total(), r.executed);
        assert_eq!(stats.nullified_total(), r.nullified);
        assert_eq!(
            stats.per_opcode().values().sum::<u64>(),
            r.executed,
            "named histogram must cover every executed instruction"
        );
        assert!(r.nullified > 0, "workload must exercise nullification");
        assert_eq!(
            stats.nullified_per_opcode().get("sh1add"),
            Some(&r.nullified)
        );
    }

    #[test]
    fn stats_cycles_are_executed_plus_nullified() {
        let p = stats_workload();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        assert_eq!(r.cycles, r.executed + r.nullified);
        let stats = r.stats.as_deref().unwrap();
        assert_eq!(r.cycles, stats.executed_total() + stats.nullified_total());
        // Region attribution partitions the same total.
        let region_cycles: u64 = stats.regions.iter().map(|reg| reg.cycles).sum();
        assert_eq!(region_cycles, r.cycles);
    }

    #[test]
    fn stats_regions_attribute_to_labels() {
        let p = stats_workload();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let stats = r.stats.as_deref().unwrap();
        let labels: Vec<&str> = stats.regions.iter().map(|reg| reg.label.as_str()).collect();
        assert_eq!(labels, vec!["<entry>", "loop", "done"]);
        let entry = &stats.regions[0];
        assert_eq!((entry.cycles, entry.executed, entry.nullified), (2, 2, 0));
        let done = &stats.regions[2];
        assert_eq!(done.executed, 1);
        let body = &stats.regions[1];
        assert_eq!(body.cycles, r.cycles - 3);
    }

    #[test]
    fn stats_regions_track_taken_branches() {
        let p = stats_workload();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let stats = r.stats.as_deref().unwrap();
        let region_branches: u64 = stats.regions.iter().map(|reg| reg.taken_branches).sum();
        assert_eq!(
            region_branches, r.taken_branches,
            "per-region branch counts must partition the run total"
        );
        // The only branch is the ADDIB at the loop tail.
        let body = stats
            .regions
            .iter()
            .find(|reg| reg.label == "loop")
            .unwrap();
        assert_eq!(body.taken_branches, r.taken_branches);
        assert!(body.taken_branches <= body.executed);
        for region in &stats.regions {
            if region.label != "loop" {
                assert_eq!(region.taken_branches, 0, "{}", region.label);
            }
        }
    }

    #[test]
    fn run_records_an_execute_span_when_traced() {
        let p = stats_workload();
        let ((_, r), spans) = telemetry::span::trace(|| run_fn(&p, &[], &ExecConfig::default()));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "execute");
        assert_eq!(spans[0].cycles, r.cycles);
    }

    #[test]
    fn disabled_stats_runs_are_identical() {
        let p = stats_workload();
        let (m_plain, r_plain) = run_fn(&p, &[], &ExecConfig::default());
        let (m_stats, r_stats) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        assert_eq!(m_plain, m_stats, "instrumentation must not perturb state");
        assert_eq!(r_plain.cycles, r_stats.cycles);
        assert_eq!(r_plain.executed, r_stats.executed);
        assert_eq!(r_plain.nullified, r_stats.nullified);
        assert_eq!(r_plain.taken_branches, r_stats.taken_branches);
        assert_eq!(r_plain.termination, r_stats.termination);
        assert!(r_plain.stats.is_none());
        assert!(r_stats.stats.is_some());
    }

    #[test]
    fn stats_count_traps() {
        let mut b = ProgramBuilder::new();
        b.brk(9);
        let p = b.build().unwrap();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let stats = r.stats.as_deref().unwrap();
        assert_eq!(stats.traps, 1);
        assert_eq!(stats.per_opcode().get("break"), Some(&1));
    }

    #[test]
    fn stats_merge_sums_histograms_and_regions() {
        let p = stats_workload();
        let (_, r1) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let (_, r2) = run_fn(&p, &[], &ExecConfig::default().with_stats());
        let mut merged = r1.stats.as_deref().unwrap().clone();
        merged.merge(r2.stats.as_deref().unwrap());
        assert_eq!(merged.executed_total(), 2 * r1.executed);
        let total: u64 = merged.regions.iter().map(|reg| reg.cycles).sum();
        assert_eq!(total, 2 * r1.cycles);
    }

    #[test]
    fn format_trace_annotates_running_cycles() {
        let p = stats_workload();
        let (_, r) = run_fn(&p, &[], &ExecConfig::default().with_trace());
        let text = format_trace(&p, &r.trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, r.cycles);
        assert!(lines[0].trim_start().starts_with("1 "), "{:?}", lines[0]);
        let last = lines.last().unwrap().trim_start();
        assert!(
            last.starts_with(&r.cycles.to_string()),
            "last line must carry the final cycle count: {last:?}"
        );
        assert!(text.contains("[nullified]"));
    }

    #[test]
    fn ds_single_step_subtracts_when_v_clear() {
        // carry=0, v=0: t = (a<<1) - b.
        let mut b = ProgramBuilder::new();
        b.ds(Reg::R1, Reg::R2, Reg::R3);
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[(Reg::R1, 10), (Reg::R2, 3)], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R3), 17);
        assert!(m.carry(), "20-3 does not borrow");
        assert!(!m.v_bit());
    }

    #[test]
    fn ds_adds_after_negative_partial_remainder() {
        // First step: (0<<1) - 3 borrows → V set. Second step adds.
        let mut b = ProgramBuilder::new();
        b.ds(Reg::R1, Reg::R2, Reg::R3);
        b.ds(Reg::R3, Reg::R2, Reg::R4);
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[(Reg::R1, 0), (Reg::R2, 3)], &ExecConfig::default());
        assert_eq!(m.reg(Reg::R3), -3i32 as u32);
        // second step: ((-3)<<1 | 0) + 3 = -3
        assert_eq!(m.reg(Reg::R4), -3i32 as u32);
        assert!(m.v_bit());
    }

    #[test]
    fn ds_addc_pair_divides_16_by_3() {
        // The paper's §4 pairing, unrolled 32 times: 16 / 3 = 5 rem 1.
        let mut b = ProgramBuilder::new();
        let dividend = Reg::R26;
        let divisor = Reg::R25;
        let rem = Reg::R1;
        b.ldi(0, rem);
        b.add(dividend, dividend, dividend); // carry = msb, dividend <<= 1
        for _ in 0..32 {
            b.ds(rem, divisor, rem);
            b.addc(dividend, dividend, dividend);
        }
        // Non-restoring correction: if V set the remainder is off by +divisor.
        let done = b.named_label("done");
        b.comclr(Cond::Eq, Reg::R0, Reg::R0, Reg::R0); // placeholder: always skip
        b.bind(done);
        let p = b.build().unwrap();
        let (m, _) = run_fn(&p, &[(dividend, 16), (divisor, 3)], &ExecConfig::default());
        assert_eq!(m.reg(dividend), 5, "quotient");
        // remainder may need correction; if V set, rem + divisor is the true one
        let rem_v = m.reg(rem);
        let fixed = if m.v_bit() {
            rem_v.wrapping_add(3)
        } else {
            rem_v
        };
        assert_eq!(fixed, 1, "remainder");
    }
}

/// What one [`Stepper::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The instruction at `pc` executed; control moved to `next_pc`.
    Executed {
        /// The instruction that ran.
        pc: usize,
        /// Where control went.
        next_pc: usize,
    },
    /// The slot at `pc` was nullified by the preceding compare-and-clear.
    Nullified {
        /// The skipped slot.
        pc: usize,
    },
    /// Execution has ended (fall-through exit, trap or fault).
    Done(Termination),
}

/// A resumable, instruction-at-a-time executor — the debugger-style
/// counterpart of [`run`], with identical semantics and cycle accounting.
///
/// # Example
///
/// ```
/// use pa_isa::{ProgramBuilder, Reg};
/// use pa_sim::{Machine, OverflowModel, StepStatus, Stepper};
///
/// let mut b = ProgramBuilder::new();
/// b.sh2add(Reg::R26, Reg::R26, Reg::R28);
/// b.add(Reg::R28, Reg::R28, Reg::R28);
/// let p = b.build()?;
///
/// let mut s = Stepper::new(&p, Machine::with_regs(&[(Reg::R26, 7)]));
/// assert!(matches!(s.step(), StepStatus::Executed { pc: 0, next_pc: 1 }));
/// assert_eq!(s.machine().reg(Reg::R28), 35); // after the first instruction
/// s.step();
/// assert!(matches!(s.step(), StepStatus::Done(_)));
/// assert_eq!(s.machine().reg(Reg::R28), 70);
/// assert_eq!(s.cycles(), 2);
/// # Ok::<(), pa_isa::IsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Stepper<'p> {
    program: &'p Program,
    machine: Machine,
    overflow: OverflowModel,
    pc: usize,
    nullify_next: bool,
    cycles: u64,
    finished: Option<Termination>,
}

impl<'p> Stepper<'p> {
    /// Starts at instruction 0 with the given machine state and the default
    /// (cheap-circuit) overflow model.
    #[must_use]
    pub fn new(program: &'p Program, machine: Machine) -> Stepper<'p> {
        Stepper::with_overflow(program, machine, OverflowModel::default())
    }

    /// Starts with an explicit overflow model.
    #[must_use]
    pub fn with_overflow(
        program: &'p Program,
        machine: Machine,
        overflow: OverflowModel,
    ) -> Stepper<'p> {
        Stepper {
            program,
            machine,
            overflow,
            pc: 0,
            nullify_next: false,
            cycles: 0,
            finished: None,
        }
    }

    /// The next instruction index to execute.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The machine state.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine state (poke registers mid-run, debugger style).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// How execution ended, once it has.
    #[must_use]
    pub fn termination(&self) -> Option<Termination> {
        self.finished
    }

    /// Executes one slot.
    pub fn step(&mut self) -> StepStatus {
        if let Some(t) = self.finished {
            return StepStatus::Done(t);
        }
        if self.pc >= self.program.len() {
            self.finished = Some(Termination::Completed);
            return StepStatus::Done(Termination::Completed);
        }
        self.cycles += 1;
        let pc = self.pc;
        if self.nullify_next {
            self.nullify_next = false;
            self.pc += 1;
            return StepStatus::Nullified { pc };
        }
        let insn = self.program.get(pc).expect("pc < len");
        match step(
            &insn.op,
            &mut self.machine,
            self.program.len(),
            self.overflow,
        ) {
            StepOutcome::Next => self.pc += 1,
            StepOutcome::NullifyNext => {
                self.nullify_next = true;
                self.pc += 1;
            }
            StepOutcome::Branch(target) => self.pc = target,
            StepOutcome::Trap(kind) => {
                let t = Termination::Trapped(Trap { kind, at: pc });
                self.finished = Some(t);
                return StepStatus::Done(t);
            }
            StepOutcome::Fault(target) => {
                let t = Termination::Faulted(Fault { at: pc, target });
                self.finished = Some(t);
                return StepStatus::Done(t);
            }
        }
        StepStatus::Executed {
            pc,
            next_pc: self.pc,
        }
    }

    /// Runs until completion (or `max_cycles`), returning the termination.
    pub fn run_to_end(&mut self, max_cycles: u64) -> Termination {
        while self.finished.is_none() && self.cycles < max_cycles {
            self.step();
        }
        self.finished.unwrap_or(Termination::CycleLimit)
    }
}

#[cfg(test)]
mod stepper_tests {
    use super::*;
    use pa_isa::{Cond, ProgramBuilder};

    #[test]
    fn stepper_matches_run() {
        // A branchy program: both executors must agree on state and cycles.
        let mut b = ProgramBuilder::new();
        b.ldi(5, Reg::R1);
        b.copy(Reg::R0, Reg::R2);
        let top = b.here("top");
        b.add(Reg::R1, Reg::R2, Reg::R2);
        b.comclr(Cond::Odd, Reg::R1, Reg::R0, Reg::R0);
        b.addi(10, Reg::R2, Reg::R2);
        b.addib(-1, Reg::R1, Cond::Ne, top);
        let p = b.build().unwrap();

        let mut m1 = Machine::new();
        let batch = run(&p, &mut m1, &ExecConfig::default());

        let mut s = Stepper::new(&p, Machine::new());
        let t = s.run_to_end(1_000_000);
        assert_eq!(t, batch.termination);
        assert_eq!(s.cycles(), batch.cycles);
        assert_eq!(s.machine(), &m1);
    }

    #[test]
    fn stepper_reports_nullification() {
        let mut b = ProgramBuilder::new();
        b.comclr(Cond::Eq, Reg::R0, Reg::R0, Reg::R0);
        b.ldi(9, Reg::R1);
        let p = b.build().unwrap();
        let mut s = Stepper::new(&p, Machine::new());
        assert!(matches!(s.step(), StepStatus::Executed { pc: 0, .. }));
        assert!(matches!(s.step(), StepStatus::Nullified { pc: 1 }));
        assert!(matches!(s.step(), StepStatus::Done(Termination::Completed)));
        assert_eq!(s.machine().reg(Reg::R1), 0);
    }

    #[test]
    fn stepper_surfaces_traps_and_stays_done() {
        let mut b = ProgramBuilder::new();
        b.brk(3);
        let p = b.build().unwrap();
        let mut s = Stepper::new(&p, Machine::new());
        let first = s.step();
        assert!(matches!(
            first,
            StepStatus::Done(Termination::Trapped(Trap {
                kind: TrapKind::Break(3),
                at: 0
            }))
        ));
        // Idempotent after completion.
        assert_eq!(s.step(), first);
        assert_eq!(s.cycles(), 1);
    }

    #[test]
    fn stepper_allows_poking_registers() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::R1, Reg::R2, Reg::R3);
        let p = b.build().unwrap();
        let mut s = Stepper::new(&p, Machine::new());
        s.machine_mut().set_reg(Reg::R1, 40);
        s.machine_mut().set_reg(Reg::R2, 2);
        s.step();
        assert_eq!(s.machine().reg(Reg::R3), 42);
    }
}
