//! # pa-sim — cycle-accounting simulator for the `pa-isa` instruction set
//!
//! Executes [`pa_isa::Program`]s on a model of the HP Precision Architecture
//! core that the ASPLOS'87 multiply/divide paper assumes:
//!
//! * 32 general registers with `r0` hardwired to zero;
//! * a PSW **carry/borrow** bit (set by adds and subtracts, consumed by
//!   `ADDC`/`SUBB` and `DS`) and the **V bit** driven by the divide step;
//! * **conditional nullification**: `COMCLR`/`COMICLR` skip the following
//!   instruction (the skipped slot still costs its cycle, as on the real
//!   pipeline);
//! * **traps** on signed overflow for the `O`-suffixed instructions, with a
//!   choice between a precise 35-bit reference model and the paper's *cheap
//!   sign-comparison circuit* (see [`OverflowModel`]);
//! * every instruction costs one cycle — the paper's unit of account.
//!
//! The simulator reports rich [`RunResult`] statistics (dynamic instruction
//! count, nullified slots, taken branches, a per-instruction execution
//! profile) so the paper's dynamic-path figures can be regenerated exactly.
//!
//! ## Example
//!
//! ```
//! use pa_isa::{ProgramBuilder, Reg};
//! use pa_sim::{ExecConfig, Machine, run};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // r28 = 10 * r26 via the paper's two-instruction chain.
//! let mut b = ProgramBuilder::new();
//! b.sh2add(Reg::R26, Reg::R26, Reg::R28);
//! b.add(Reg::R28, Reg::R28, Reg::R28);
//! let p = b.build()?;
//!
//! let mut m = Machine::new();
//! m.set_reg(Reg::R26, 7);
//! let result = run(&p, &mut m, &ExecConfig::default());
//! assert!(result.termination.is_completed());
//! assert_eq!(m.reg(Reg::R28), 70);
//! assert_eq!(result.cycles, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod machine;
mod overflow;
mod prepared;
mod stats;

pub use exec::{
    format_trace, run, run_fn, ExecConfig, Fault, RunResult, StepStatus, Stepper, Termination,
    TraceEntry, Trap, TrapKind,
};
pub use machine::Machine;
pub use overflow::{cheap_circuit_overflow, precise_overflow, OverflowModel};
pub use prepared::{execute_prepared, run_fn_prepared, PreparedProgram};
pub use stats::{RegionCycles, SimStats};
