//! Always-cheap run statistics: per-opcode histograms and per-label cycle
//! attribution.
//!
//! Collection is opt-in via [`ExecConfig::stats`](crate::ExecConfig); when it
//! is off the interpreter's hot loop takes a single never-taken branch per
//! slot and allocates nothing, so the zero-instrumentation cycle counts are
//! bit-identical with and without the feature compiled in.

use std::collections::BTreeMap;

use pa_isa::{Program, OPCODE_COUNT, OPCODE_NAMES};

/// Cycle attribution for one labelled region of a program.
///
/// A region covers the instructions from its label up to (but excluding) the
/// next label; instructions before the first label belong to the synthetic
/// `"<entry>"` region. Millicode routines label every loop head and shared
/// tail, so this recovers the paper's per-phase cycle breakdown (prologue
/// vs. nibble loop vs. correction tail) directly from a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionCycles {
    /// The label opening the region (`"<entry>"` for the unlabelled prefix).
    pub label: String,
    /// Cycles spent in the region (executed + nullified slots).
    pub cycles: u64,
    /// Instructions executed in the region.
    pub executed: u64,
    /// Slots nullified in the region.
    pub nullified: u64,
    /// Taken branches whose branch instruction sits in the region (a subset
    /// of `executed`; millicode returns through `Blr`/`Bv` count here too).
    pub taken_branches: u64,
}

/// Per-opcode and per-region statistics from one run (see
/// [`RunResult::stats`](crate::RunResult)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Executed-instruction count per opcode class, indexed by
    /// [`pa_isa::Op::opcode_index`].
    pub executed_by_op: [u64; OPCODE_COUNT],
    /// Nullified-slot count per opcode class (the opcode that *would have*
    /// executed in the annulled slot).
    pub nullified_by_op: [u64; OPCODE_COUNT],
    /// Traps raised (overflow or `BREAK`); at most 1 per run.
    pub traps: u64,
    /// Wild vectored-branch faults; at most 1 per run.
    pub faults: u64,
    /// Per-label cycle attribution, in program order; regions never entered
    /// are omitted.
    pub regions: Vec<RegionCycles>,
}

impl Default for SimStats {
    fn default() -> SimStats {
        SimStats::new()
    }
}

impl SimStats {
    fn new() -> SimStats {
        SimStats {
            executed_by_op: [0; OPCODE_COUNT],
            nullified_by_op: [0; OPCODE_COUNT],
            traps: 0,
            faults: 0,
            regions: Vec::new(),
        }
    }

    /// Total executed instructions (equals `RunResult::executed`).
    #[must_use]
    pub fn executed_total(&self) -> u64 {
        self.executed_by_op.iter().sum()
    }

    /// Total nullified slots (equals `RunResult::nullified`).
    #[must_use]
    pub fn nullified_total(&self) -> u64 {
        self.nullified_by_op.iter().sum()
    }

    /// Executed counts as a `mnemonic → count` map (zero entries omitted).
    #[must_use]
    pub fn per_opcode(&self) -> BTreeMap<&'static str, u64> {
        Self::named(&self.executed_by_op)
    }

    /// Nullified counts as a `mnemonic → count` map (zero entries omitted).
    #[must_use]
    pub fn nullified_per_opcode(&self) -> BTreeMap<&'static str, u64> {
        Self::named(&self.nullified_by_op)
    }

    fn named(counts: &[u64; OPCODE_COUNT]) -> BTreeMap<&'static str, u64> {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (OPCODE_NAMES[i], n))
            .collect()
    }

    /// Merges another run's statistics into this one (summing histograms;
    /// regions are matched by label and appended when new).
    pub fn merge(&mut self, other: &SimStats) {
        for (dst, src) in self.executed_by_op.iter_mut().zip(&other.executed_by_op) {
            *dst += src;
        }
        for (dst, src) in self.nullified_by_op.iter_mut().zip(&other.nullified_by_op) {
            *dst += src;
        }
        self.traps += other.traps;
        self.faults += other.faults;
        for region in &other.regions {
            match self.regions.iter_mut().find(|r| r.label == region.label) {
                Some(mine) => {
                    mine.cycles += region.cycles;
                    mine.executed += region.executed;
                    mine.nullified += region.nullified;
                    mine.taken_branches += region.taken_branches;
                }
                None => self.regions.push(region.clone()),
            }
        }
    }
}

/// The in-loop collector: owns the stats being built plus the `pc → region`
/// map precomputed from the program's label table.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    stats: SimStats,
    region_of: Vec<u32>,
    region_scratch: Vec<RegionCycles>,
}

impl StatsRecorder {
    pub(crate) fn new(program: &Program) -> StatsRecorder {
        let len = program.len();
        let labels: Vec<(usize, &str)> = program.names().filter(|&(idx, _)| idx < len).collect();
        let mut regions = Vec::with_capacity(labels.len() + 1);
        regions.push(RegionCycles {
            label: "<entry>".to_string(),
            cycles: 0,
            executed: 0,
            nullified: 0,
            taken_branches: 0,
        });
        let mut region_of = vec![0u32; len];
        let mut next_label = 0usize;
        let mut current = 0u32;
        for (pc, slot) in region_of.iter_mut().enumerate() {
            while next_label < labels.len() && labels[next_label].0 == pc {
                regions.push(RegionCycles {
                    label: labels[next_label].1.to_string(),
                    cycles: 0,
                    executed: 0,
                    nullified: 0,
                    taken_branches: 0,
                });
                current = (regions.len() - 1) as u32;
                next_label += 1;
            }
            *slot = current;
        }
        StatsRecorder {
            stats: SimStats::new(),
            region_of,
            region_scratch: regions,
        }
    }

    /// Accounts one fetched slot.
    pub(crate) fn record(&mut self, opcode_index: usize, pc: usize, nullified: bool) {
        if nullified {
            self.stats.nullified_by_op[opcode_index] += 1;
        } else {
            self.stats.executed_by_op[opcode_index] += 1;
        }
        if let Some(&rid) = self.region_of.get(pc) {
            let region = &mut self.region_scratch[rid as usize];
            region.cycles += 1;
            if nullified {
                region.nullified += 1;
            } else {
                region.executed += 1;
            }
        }
    }

    /// Accounts one taken branch, attributed to the region holding the
    /// branch instruction at `pc` (called after [`Self::record`] for the
    /// same slot, so the instruction is already in `executed`).
    pub(crate) fn record_branch(&mut self, pc: usize) {
        if let Some(&rid) = self.region_of.get(pc) {
            self.region_scratch[rid as usize].taken_branches += 1;
        }
    }

    pub(crate) fn record_trap(&mut self) {
        self.stats.traps += 1;
    }

    pub(crate) fn record_fault(&mut self) {
        self.stats.faults += 1;
    }

    /// Finalises: regions that never ran are dropped, the rest keep program
    /// order.
    pub(crate) fn finish(mut self) -> SimStats {
        self.stats.regions = self
            .region_scratch
            .into_iter()
            .filter(|r| r.cycles > 0)
            .collect();
        self.stats
    }
}
