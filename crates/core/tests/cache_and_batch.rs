//! Property tests for the compile cache and the batch APIs: a cache hit
//! must hand back code identical to a cold compile, and batching must be
//! indistinguishable (results and cycles) from singular calls across every
//! strategy tier.

use hppa_muldiv::{Compiler, Runtime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cached CompiledOp is the same program as a cold compile of the
    /// same kind — same instructions, same cycles, same results.
    #[test]
    fn cached_equals_cold(n in -10_000i64..10_000, x in any::<i32>()) {
        let warm = Compiler::new();
        let first = warm.mul_const(n).unwrap();
        let second = warm.mul_const(n).unwrap(); // cache hit
        let cold = Compiler::builder().cache_capacity(0).build();
        let fresh = cold.mul_const(n).unwrap(); // always recompiled
        prop_assert_eq!(first.program().insns(), second.program().insns());
        prop_assert_eq!(second.program().insns(), fresh.program().insns());
        prop_assert_eq!(second.run_i32(x).unwrap(), fresh.run_i32(x).unwrap());
        prop_assert_eq!(second.cycles_for(x as u32), fresh.cycles_for(x as u32));
    }

    /// Divide flavours: the cache key separates kinds that share a constant.
    #[test]
    fn divide_kinds_cache_independently(y in 2u32..5_000) {
        let c = Compiler::new();
        let udiv = c.udiv_const(y).unwrap();
        let urem = c.urem_const(y).unwrap();
        let sdiv = c.sdiv_const(y as i32).unwrap();
        prop_assert_eq!(c.cached_ops(), 3);
        // Hits return each kind's own program.
        prop_assert_eq!(
            c.udiv_const(y).unwrap().program().insns(),
            udiv.program().insns()
        );
        prop_assert_eq!(
            c.urem_const(y).unwrap().program().insns(),
            urem.program().insns()
        );
        prop_assert_eq!(
            c.sdiv_const(y as i32).unwrap().program().insns(),
            sdiv.program().insns()
        );
        prop_assert_eq!(c.cached_ops(), 3);
    }

    /// CompiledOp batches equal singular runs, input by input.
    #[test]
    fn compiled_batches_equal_singular(y in 1u32..10_000, xs in proptest::collection::vec(any::<u32>(), 8)) {
        let c = Compiler::new();
        let op = c.udiv_const(y).unwrap();
        let batch = op.run_batch_u32(&xs).unwrap();
        let mut cycles = 0u64;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(batch.values[i], op.run_u32(x).unwrap());
            prop_assert_eq!(batch.values[i], x / y);
            cycles += op.cycles_for(x);
        }
        prop_assert_eq!(batch.cycles, cycles);
    }
}

/// Session batches must agree with per-call Runtime methods on operands
/// picked to land in every strategy tier of the switched multiply and both
/// divide tiers of the dispatch.
#[test]
fn session_batches_cover_every_strategy_tier() {
    let rt = Runtime::new().unwrap();
    let mut session = rt.session();

    // Multiply tiers: zero-exit, one-exit, nibble-x1, nibble-x2, swap, full.
    let mul_pairs: Vec<(i32, i32)> = vec![
        (0, 123),
        (1, -99),
        (5, 60_000),
        (300, 60_000),
        (60_000, 5),
        (-46_341, 46_341),
        (i32::MIN, -1),
    ];
    let batch = session.mul_batch(&mul_pairs).unwrap();
    let mut cycles = 0u64;
    for (i, &(x, y)) in mul_pairs.iter().enumerate() {
        let one = rt.mul(x, y).unwrap();
        assert_eq!(batch.values[i], one.value, "{x} * {y}");
        assert_eq!(batch.values[i], x.wrapping_mul(y), "{x} * {y}");
        cycles += one.cycles;
    }
    assert_eq!(batch.cycles, cycles);

    // Divide tiers: inlined bodies (y < 20), the general fallback, and the
    // remainder-carrying general routine.
    let div_pairs: Vec<(u32, u32)> = vec![
        (1_000_000, 3),
        (u32::MAX, 19),
        (12_345, 20),
        (u32::MAX, 65_537),
        (7, 0x8000_0000),
    ];
    let batch = session.div_dispatch_batch(&div_pairs).unwrap();
    let mut cycles = 0u64;
    for (i, &(x, y)) in div_pairs.iter().enumerate() {
        let one = rt.div_dispatch(x, y).unwrap();
        assert_eq!(batch.values[i], one.value, "{x} / {y}");
        assert_eq!(batch.values[i], x / y, "{x} / {y}");
        cycles += one.cycles;
    }
    assert_eq!(batch.cycles, cycles);

    let batch = session.div_unsigned_batch(&div_pairs).unwrap();
    let rems = batch.rems.as_ref().expect("udiv yields remainders");
    for (i, &(x, y)) in div_pairs.iter().enumerate() {
        assert_eq!(batch.values[i], x / y);
        assert_eq!(rems[i], x % y);
    }
}

/// The cache keeps compiled programs across unrelated compiles up to its
/// capacity, and eviction never changes results.
#[test]
fn eviction_preserves_correctness() {
    let c = Compiler::builder().cache_capacity(4).build();
    for n in 2..40i64 {
        let op = c.mul_const(n).unwrap();
        assert_eq!(op.run_i32(7).unwrap(), 7 * n as i32);
        assert!(c.cached_ops() <= 4);
    }
    // Re-compiling an evicted constant still works (cold path again).
    let op = c.mul_const(2).unwrap();
    assert_eq!(op.run_i32(-9).unwrap(), -18);
}

/// Interleaved multiply and divide compiles share one recency list: the
/// telemetry hit/miss stream shows recently touched entries of either
/// family surviving while the stale one — whatever its family — evicts.
/// One shard pins down the exact global LRU order (with several shards,
/// eviction order depends on how keys hash across them).
#[test]
fn interleaved_mul_div_eviction_is_lru_across_families() {
    let c = Compiler::builder()
        .cache_capacity(4)
        .cache_shards(1)
        .build();
    // Fill: mul 3, udiv 3, urem 3, sdiv 3 — four distinct keys, one
    // constant, recency order oldest→newest as listed.
    c.mul_const(3).unwrap();
    c.udiv_const(3).unwrap();
    c.urem_const(3).unwrap();
    c.sdiv_const(3).unwrap();
    assert_eq!(c.cached_ops(), 4);
    // Refresh the multiply, then insert a fifth key: the unsigned divide
    // (now LRU) must be the one to go.
    c.mul_const(3).unwrap();
    c.mul_const(5).unwrap();
    assert_eq!(c.cached_ops(), 4);
    let (_, events) = telemetry::collect(|| {
        c.mul_const(3).unwrap(); // hit
        c.urem_const(3).unwrap(); // hit
        c.sdiv_const(3).unwrap(); // hit
        c.mul_const(5).unwrap(); // hit
    });
    let hist = telemetry::strategy_histogram(&events);
    assert_eq!(hist.get("cache/hit"), Some(&4), "{hist:?}");
    assert_eq!(hist.get("cache/miss"), None, "{hist:?}");
    let (op, events) = telemetry::collect(|| c.udiv_const(3).unwrap());
    let hist = telemetry::strategy_histogram(&events);
    assert_eq!(hist.get("cache/miss"), Some(&1), "udiv 3 was evicted");
    // The recompiled entry still divides correctly.
    assert_eq!(op.run_u32(10).unwrap(), 3);
    assert_eq!(c.cached_ops(), 4);
}

/// A mul/div interleave wider than the capacity churns the cache without
/// ever corrupting results, and the occupancy bound holds throughout.
#[test]
fn interleaved_churn_stays_bounded_and_correct() {
    let c = Compiler::builder().cache_capacity(3).build();
    for n in 2..32u32 {
        let mul = c.mul_const(i64::from(n)).unwrap();
        assert_eq!(mul.run_i32(7).unwrap(), 7 * n as i32, "7 * {n}");
        let udiv = c.udiv_const(n).unwrap();
        assert_eq!(udiv.run_u32(1_000_000).unwrap(), 1_000_000 / n);
        let srem = c.srem_const(n as i32).unwrap();
        assert_eq!(srem.run_i32(-1_000_001).unwrap(), -1_000_001 % n as i32);
        assert!(c.cached_ops() <= 3, "capacity bound violated");
    }
}
