//! Parallel-vs-serial equivalence: the worker-pool engine must be
//! indistinguishable from the serial batch methods — identical values,
//! remainders, checksums, summed simulated cycles, and telemetry strategy
//! histograms — at 1, 2, 4, and 8 worker threads, on an oracle-checked
//! fuzz corpus drawn from the PR 3 structured generator at a fixed seed.
//!
//! Also hosts the loom-free contention smoke test: eight threads hammering
//! a single cache shard must never corrupt the LRU or return wrong code.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use hppa_muldiv::{Compiler, Error, ParallelExecutor, Runtime, Session};
use oracle::fuzz::CaseGen;
use oracle::reference;
use oracle::Case;

const SEED: u64 = 0xA5;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runtime construction assembles and prepares five millicode routines —
/// expensive in debug builds — so every test shares one, and engines for
/// each worker count are cheap [`ParallelExecutor::with_workers`]
/// derivations sharing its routines and cache.
fn runtime() -> &'static Runtime {
    static RT: OnceLock<Runtime> = OnceLock::new();
    RT.get_or_init(|| Runtime::new().unwrap())
}

/// Harvests the millicode-facing pairs from the structured generator:
/// signed multiplies, dispatch divides, and general unsigned divides.
/// Zero divisors (the generator's trap probes) are filtered out here —
/// batch calls stop at the first error, and error-identity has its own
/// test below.
struct Corpus {
    mul: Vec<(i32, i32)>,
    dispatch: Vec<(u32, u32)>,
    udiv: Vec<(u32, u32)>,
}

fn fuzz_corpus(cases: usize) -> Corpus {
    let mut gen = CaseGen::new(SEED);
    let mut mul = Vec::new();
    let mut dispatch = Vec::new();
    let mut udiv = Vec::new();
    for _ in 0..cases {
        match gen.next_case() {
            Case::MulVar { x, y } => mul.push((x, y)),
            Case::DivDispatch { x, y } if y != 0 => dispatch.push((x, y)),
            Case::DivVar { x, y } if y != 0 => udiv.push((x, y)),
            _ => {}
        }
    }
    assert!(mul.len() > 12, "corpus too small: {} multiplies", mul.len());
    assert!(
        dispatch.len() > 6,
        "corpus too small: {} dispatches",
        dispatch.len()
    );
    assert!(udiv.len() > 6, "corpus too small: {} divides", udiv.len());
    Corpus {
        mul,
        dispatch,
        udiv,
    }
}

fn engine_for(workers: usize) -> ParallelExecutor {
    static ENGINE: OnceLock<ParallelExecutor> = OnceLock::new();
    ENGINE
        .get_or_init(|| runtime().engine())
        .with_workers(workers)
        .unwrap()
}

#[test]
fn runtime_is_send_sync_and_session_is_send() {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    assert_send_sync::<Runtime>();
    assert_send_sync::<Compiler>();
    assert_send_sync::<ParallelExecutor>();
    assert_send::<Session>();
}

#[test]
fn mul_batches_are_identical_across_worker_counts() {
    let mul = fuzz_corpus(300).mul;
    let rt = runtime();
    let (serial, serial_events) = telemetry::collect(|| rt.mul_batch(&mul).unwrap());
    // Oracle check: every product agrees with the independent bit-serial
    // reference multiplier.
    for (i, &(x, y)) in mul.iter().enumerate() {
        assert_eq!(
            serial.values[i],
            reference::mul_wrapping_i32(x, y),
            "{x} * {y}"
        );
    }
    let serial_hist = telemetry::strategy_histogram(&serial_events);
    for workers in WORKER_COUNTS {
        let engine = engine_for(workers);
        let (parallel, events) = telemetry::collect(|| engine.mul_batch(&mul).unwrap());
        assert_eq!(parallel.values, serial.values, "{workers} workers: values");
        assert_eq!(parallel.rems, serial.rems, "{workers} workers: rems");
        assert_eq!(parallel.cycles, serial.cycles, "{workers} workers: cycles");
        assert_eq!(
            parallel.checksum(),
            serial.checksum(),
            "{workers} workers: checksum"
        );
        assert_eq!(
            telemetry::strategy_histogram(&events),
            serial_hist,
            "{workers} workers: strategy histogram"
        );
    }
}

#[test]
fn dispatch_batches_are_identical_across_worker_counts() {
    let dispatch = fuzz_corpus(300).dispatch;
    let rt = runtime();
    let (serial, serial_events) = telemetry::collect(|| rt.div_dispatch_batch(&dispatch).unwrap());
    for (i, &(x, y)) in dispatch.iter().enumerate() {
        assert_eq!(
            serial.values[i],
            reference::udiv(x, y).unwrap(),
            "{x} / {y}"
        );
    }
    let serial_hist = telemetry::strategy_histogram(&serial_events);
    for workers in WORKER_COUNTS {
        let engine = engine_for(workers);
        let (parallel, events) =
            telemetry::collect(|| engine.div_dispatch_batch(&dispatch).unwrap());
        assert_eq!(parallel, serial, "{workers} workers: full outcome");
        assert_eq!(parallel.checksum(), serial.checksum(), "{workers} workers");
        assert_eq!(
            telemetry::strategy_histogram(&events),
            serial_hist,
            "{workers} workers: strategy histogram"
        );
    }
}

#[test]
fn unsigned_divide_batches_are_identical_across_worker_counts() {
    let udiv = fuzz_corpus(300).udiv;
    let rt = runtime();
    let (serial, serial_events) =
        telemetry::collect(|| rt.session().div_unsigned_batch(&udiv).unwrap());
    let rems = serial.rems.as_ref().expect("udiv yields remainders");
    for (i, &(x, y)) in udiv.iter().enumerate() {
        let (q, r) = reference::div_restoring(x, y).unwrap();
        assert_eq!((serial.values[i], rems[i]), (q, r), "{x} / {y}");
    }
    let serial_hist = telemetry::strategy_histogram(&serial_events);
    for workers in WORKER_COUNTS {
        let engine = engine_for(workers);
        let (parallel, events) = telemetry::collect(|| engine.div_unsigned_batch(&udiv).unwrap());
        assert_eq!(parallel, serial, "{workers} workers: full outcome");
        assert_eq!(parallel.checksum(), serial.checksum(), "{workers} workers");
        assert_eq!(
            telemetry::strategy_histogram(&events),
            serial_hist,
            "{workers} workers: strategy histogram"
        );
    }
}

#[test]
fn error_identity_matches_serial_for_any_worker_count() {
    // Plant one zero divisor mid-corpus: every worker count must surface
    // exactly the serial error.
    let mut dispatch = fuzz_corpus(300).dispatch;
    let mid = dispatch.len() / 2;
    dispatch[mid].1 = 0;
    let rt = runtime();
    let serial = rt.div_dispatch_batch(&dispatch);
    assert_eq!(serial, Err(Error::DivideByZero));
    for workers in WORKER_COUNTS {
        let engine = engine_for(workers);
        assert_eq!(
            engine.div_dispatch_batch(&dispatch),
            serial,
            "{workers} workers"
        );
    }
}

#[test]
fn const_batches_are_identical_across_worker_counts() {
    // Constant traffic exercises the sharded compile cache under the pool.
    let inputs: Vec<i32> = CaseGenInputs::new(SEED).take(64).collect();
    let divisors = [3u32, 7, 1000];
    let serial = Compiler::new();
    for workers in WORKER_COUNTS {
        let engine = engine_for(workers);
        for &y in &divisors {
            let op = serial.udiv_const(y).unwrap();
            let uin: Vec<u32> = inputs.iter().map(|&v| v as u32).collect();
            let direct = op.run_batch_u32(&uin).unwrap();
            let pooled = engine.udiv_const_batch(y, &uin).unwrap();
            assert_eq!(pooled, direct, "{workers} workers, /{y}");
        }
        let op = serial.mul_const(10).unwrap();
        let direct = op.run_batch_i32(&inputs).unwrap();
        let pooled = engine.mul_const_batch(10, &inputs).unwrap();
        assert_eq!(pooled, direct, "{workers} workers, *10");
    }
}

/// A tiny deterministic input stream for the const-batch test, built on
/// the oracle's splitmix generator.
struct CaseGenInputs(oracle::fuzz::Rng);

impl CaseGenInputs {
    fn new(seed: u64) -> CaseGenInputs {
        CaseGenInputs(oracle::fuzz::Rng::new(seed))
    }
}

impl Iterator for CaseGenInputs {
    type Item = i32;
    fn next(&mut self) -> Option<i32> {
        Some(self.0.next_u32() as i32)
    }
}

#[test]
fn contention_smoke_one_shard_eight_threads() {
    // One shard means every compile takes the same lock: the worst case
    // for contention. Eight threads compile a rotating set of constants
    // far beyond the capacity, forcing constant eviction churn, while
    // checking every answer. No loom here — this is a liveness/correctness
    // smoke, and the types forbid unsafe code.
    let compiler = Compiler::builder()
        .cache_capacity(4)
        .cache_shards(1)
        .build();
    assert_eq!(compiler.cache_shard_count(), 1);
    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let compiler = compiler.clone(); // clones share the cache
            scope.spawn(move || {
                for round in 0..20u32 {
                    let n = i64::from((t + round) % 12 + 2);
                    let op = compiler.mul_const(n).unwrap();
                    let x = i32::try_from(round).unwrap() - 30;
                    assert_eq!(op.run_i32(x).unwrap(), x * i32::try_from(n).unwrap());
                    // A second, disjoint constant family doubles the key
                    // space, so the four-entry cache churns constantly.
                    let m = i64::from((t + round) % 9 + 2) * 257;
                    let op = compiler.mul_const(m).unwrap();
                    assert_eq!(op.run_i32(11).unwrap(), 11 * i32::try_from(m).unwrap());
                }
            });
        }
    });
    let stats = compiler.cache_stats();
    assert_eq!(stats.len(), 1);
    assert!(stats[0].entries <= 4, "{stats:?}");
    let traffic = stats[0].hits + stats[0].misses;
    assert_eq!(traffic, 8 * 20 * 2, "every lookup was counted: {stats:?}");
    assert!(stats[0].evictions > 0, "churn must evict: {stats:?}");
}

#[test]
fn per_worker_cycle_attribution_sums_to_serial_total() {
    // Strategy histograms aggregate counts; this pins the *cycle* totals
    // per routine tier too, via the per-event cycle payloads.
    let mul = fuzz_corpus(200).mul;
    let rt = runtime();
    let (_, serial_events) = telemetry::collect(|| rt.mul_batch(&mul).unwrap());
    let engine = engine_for(4);
    let (_, parallel_events) = telemetry::collect(|| engine.mul_batch(&mul).unwrap());
    let cycles_by_tier = |events: &[telemetry::Event]| {
        let mut map: BTreeMap<String, u64> = BTreeMap::new();
        for e in events {
            if let telemetry::Event::MulStrategy { tier, cycles, .. } = e {
                *map.entry((*tier).to_string()).or_default() += cycles.unwrap_or(0);
            }
        }
        map
    };
    assert_eq!(
        cycles_by_tier(&serial_events),
        cycles_by_tier(&parallel_events)
    );
}
