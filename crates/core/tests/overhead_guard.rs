//! Overhead guard: the prepared fast path must stay observability-free.
//!
//! The span/metrics layer is strictly opt-in — spans record only inside a
//! `telemetry::span::trace` scope, events only inside `telemetry::collect`.
//! The pre-decoded fast path is deliberately uninstrumented (the "prepare"
//! span fires at preparation time, the "execute" span only in the stats
//! interpreter), so running it under fully armed scopes must produce zero
//! records and its wall-clock cost must not move by more than noise.

use std::time::{Duration, Instant};

use hppa_muldiv::{isa, sim, telemetry, Compiler};
use isa::{Cond, Reg};

/// A ×10-and-count-down loop: long enough to dominate per-run setup, small
/// enough to iterate tens of thousands of times in a test.
fn sample_program() -> isa::Program {
    let mut b = isa::ProgramBuilder::new();
    b.ldi(40, Reg::R1);
    let top = b.here("loop");
    b.sh2add(Reg::R26, Reg::R26, Reg::R28);
    b.add(Reg::R28, Reg::R28, Reg::R28);
    b.addib(-1, Reg::R1, Cond::Ne, top);
    b.build().unwrap()
}

fn run_loop(prepared: &sim::PreparedProgram, iterations: u32) -> (u32, u64) {
    let mut machine = sim::Machine::new();
    let mut last = 0;
    let mut cycles = 0;
    for i in 0..iterations {
        machine.reset();
        machine.set_reg(Reg::R26, i % 97);
        let r = prepared.run(&mut machine);
        assert!(matches!(r.termination, sim::Termination::Completed));
        last = machine.reg(Reg::R28);
        cycles = r.cycles;
    }
    (last, cycles)
}

#[test]
fn armed_scopes_see_nothing_from_the_prepared_fast_path() {
    // Prepare outside any scope so the one legitimate span ("prepare") has
    // already come and gone.
    let program = sample_program();
    let prepared = sim::PreparedProgram::new(&program, sim::ExecConfig::default());

    let ((result, events), spans) =
        telemetry::span::trace(|| telemetry::collect(|| run_loop(&prepared, 2_000)));
    let (value, cycles) = result;
    assert!(cycles > 0);
    assert!(value > 0);
    assert!(
        events.is_empty(),
        "fast path must emit zero telemetry events, got {events:?}"
    );
    assert!(
        spans.is_empty(),
        "fast path must record zero spans, got {spans:?}"
    );

    // Positive control: the same scopes DO observe instrumented work, so
    // the empty vectors above are meaningful rather than a broken tracer.
    let (_, control_spans) = telemetry::span::trace(|| {
        let compiler = Compiler::builder().cache_capacity(0).build();
        compiler.mul_const(10).unwrap();
    });
    assert!(
        control_spans.iter().any(|s| s.name == "compile"),
        "tracer failed to see a compile span: {control_spans:?}"
    );
}

#[test]
fn scoping_changes_neither_results_nor_cycles() {
    let program = sample_program();
    let prepared = sim::PreparedProgram::new(&program, sim::ExecConfig::default());
    let bare = run_loop(&prepared, 50);
    let ((scoped, _), _) =
        telemetry::span::trace(|| telemetry::collect(|| run_loop(&prepared, 50)));
    assert_eq!(bare, scoped, "armed scopes must not perturb execution");
}

#[test]
fn armed_scopes_cost_at_most_a_small_wall_clock_factor() {
    let program = sample_program();
    let prepared = sim::PreparedProgram::new(&program, sim::ExecConfig::default());
    const ITERS: u32 = 20_000;
    // Warm up caches and the allocator before timing anything.
    run_loop(&prepared, ITERS / 4);

    // Best-of-three on each side squeezes out scheduler noise; the bound is
    // deliberately loose (the real expectation is a ratio of ~1.0) so only
    // an accidentally instrumented fast path can trip it.
    let best = |f: &dyn Fn() -> (u32, u64)| -> Duration {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .min()
            .unwrap()
    };
    let bare = best(&|| run_loop(&prepared, ITERS));
    let scoped = best(&|| {
        telemetry::span::trace(|| telemetry::collect(|| run_loop(&prepared, ITERS)))
            .0
             .0
    });
    let limit = bare.saturating_mul(10) + Duration::from_millis(50);
    assert!(
        scoped <= limit,
        "fast path under armed scopes took {scoped:?}, bare took {bare:?} — \
         telemetry has leaked into the prepared fast path"
    );
}
