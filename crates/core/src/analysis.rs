//! Distribution-weighted cycle summaries — the §8 numbers.
//!
//! *"By examining the distribution of operands, over a large class of
//! programs, we can conclude that, on the Precision architecture, the
//! average multiply requires about six cycles and the average divide takes
//! about 40."*
//!
//! [`multiply_summary`] and [`divide_summary`] recompute those averages by
//! actually compiling/running every sampled operation on the simulator,
//! weighting by the published operand statistics (91 % constant-operand
//! multiplies, the Figure 5 magnitude mix, the §7 divide scope).

use operand_dist::{DivMix, DivOp, Figure5Mix, CONSTANT_OPERAND_PERCENT};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Compiler, Runtime};

/// The measured average-cycle report for multiplication.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplySummary {
    /// Average cycles across the whole mix (the paper: ≈6).
    pub average: f64,
    /// Average cycles of the constant-operand share (§8: ≤4).
    pub constant_average: f64,
    /// Average cycles of the variable-operand share (§8: <20).
    pub variable_average: f64,
    /// Operations sampled.
    pub samples: usize,
}

/// The measured average-cycle report for division.
#[derive(Debug, Clone, PartialEq)]
pub struct DivideSummary {
    /// Average cycles across the whole mix (the paper: ≈40).
    pub average: f64,
    /// Average cycles of constant-divisor operations.
    pub constant_average: f64,
    /// Average cycles of variable-divisor operations (dispatch + general).
    pub variable_average: f64,
    /// Operations sampled.
    pub samples: usize,
}

/// Samples `n` multiplications from the paper's mix and measures them.
///
/// Constant-operand multiplies (91 %) compile through the §5 chains with the
/// constant drawn from the Figure 5 magnitude model; the rest run the §6
/// switched millicode.
///
/// # Panics
///
/// Panics only on internal codegen failures (a bug).
#[must_use]
pub fn multiply_summary(seed: u64, n: usize) -> MultiplySummary {
    let compiler = Compiler::new();
    let runtime = Runtime::new().expect("routines build");
    let mut session = runtime.session();
    let mix = Figure5Mix::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut const_cycles = 0u64;
    let mut const_count = 0usize;
    let mut var_cycles = 0u64;
    let mut var_count = 0usize;

    for _ in 0..n {
        let (x, y) = mix.sample(&mut rng);
        if rng.gen_range(0..100u32) < CONSTANT_OPERAND_PERCENT {
            // The smaller operand plays the compile-time constant, the other
            // the run-time value.
            let (c, v) = if x.unsigned_abs() <= y.unsigned_abs() {
                (x, y)
            } else {
                (y, x)
            };
            let op = compiler.mul_const(i64::from(c)).expect("mul codegen");
            const_cycles += op.cycles_for(v as u32);
            const_count += 1;
        } else {
            let out = session.mul(x, y).expect("mul millicode");
            var_cycles += out.cycles;
            var_count += 1;
        }
    }

    let avg = |c: u64, n: usize| if n == 0 { 0.0 } else { c as f64 / n as f64 };
    MultiplySummary {
        average: avg(const_cycles + var_cycles, const_count + var_count),
        constant_average: avg(const_cycles, const_count),
        variable_average: avg(var_cycles, var_count),
        samples: n,
    }
}

/// Samples `n` divisions from the §7 mix and measures them: constant
/// divisors through the derived-method code, small variable divisors through
/// the `BLR` dispatch, the rest through the general routine.
///
/// # Panics
///
/// Panics only on internal codegen failures (a bug).
#[must_use]
pub fn divide_summary(seed: u64, n: usize) -> DivideSummary {
    let compiler = Compiler::new();
    let runtime = Runtime::new().expect("routines build");
    let mut session = runtime.session();
    let ops = DivMix::default().ops(seed, n);

    let mut const_cycles = 0u64;
    let mut const_count = 0usize;
    let mut var_cycles = 0u64;
    let mut var_count = 0usize;

    for op in ops {
        match op {
            DivOp::Constant { x, y } => {
                let compiled = compiler.udiv_const(y).expect("div codegen");
                const_cycles += compiled.cycles_for(x);
                const_count += 1;
            }
            DivOp::Variable { x, y } => {
                let out = session.div_dispatch(x, y).expect("div millicode");
                var_cycles += out.cycles;
                var_count += 1;
            }
        }
    }

    let avg = |c: u64, n: usize| if n == 0 { 0.0 } else { c as f64 / n as f64 };
    DivideSummary {
        average: avg(const_cycles + var_cycles, const_count + var_count),
        constant_average: avg(const_cycles, const_count),
        variable_average: avg(var_cycles, var_count),
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_average_is_about_six() {
        let s = multiply_summary(1, 2_000);
        assert!(
            (3.0..=9.0).contains(&s.average),
            "average multiply {:.2} cycles, paper says ≈6",
            s.average
        );
        assert!(
            s.constant_average <= 5.0,
            "constant avg {:.2}",
            s.constant_average
        );
        // Paper: "<20"; our switched routine measures ≈26 because branch
        // slots cost full cycles in this model (no delay-slot filling).
        assert!(
            s.variable_average < 28.0,
            "variable avg {:.2}",
            s.variable_average
        );
    }

    #[test]
    fn divide_average_is_about_forty() {
        let s = divide_summary(2, 2_000);
        assert!(
            (20.0..=55.0).contains(&s.average),
            "average divide {:.2} cycles, paper says ≈40",
            s.average
        );
        assert!(s.constant_average < s.variable_average);
    }

    #[test]
    fn summaries_are_reproducible() {
        assert_eq!(multiply_summary(7, 300), multiply_summary(7, 300));
        assert_eq!(divide_summary(7, 300), divide_summary(7, 300));
    }
}
