//! The strategy-keyed compilation cache.
//!
//! Chain search and magic-number derivation dominate the cost of
//! [`Compiler`](crate::Compiler) calls; workloads replay the same few
//! constants thousands of times. The cache memoises whole
//! [`CompiledOp`](crate::CompiledOp)s keyed by `(OpKind, overflow model)` —
//! the operation kind already carries the constant and the trap flavor, and
//! the overflow model is baked into the prepared program, so two compilers
//! that would generate different executables never share an entry.
//!
//! Since 0.3 the cache is thread-safe: a [`ShardedCache`] hashes each key
//! to one of N independent LRU shards, each behind its own `Mutex`, so
//! worker threads compiling different constants rarely contend on the same
//! lock while still paying each chain search / magic derivation only once
//! process-wide.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use pa_sim::OverflowModel;

use crate::compiler::{CompiledOp, OpKind};

/// The full identity of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub kind: OpKind,
    pub overflow: OverflowModel,
}

/// A bounded most-recently-used cache. Entries are kept in recency order
/// (most recent at the back); capacity is small enough that the linear key
/// scan is cheaper than hashing would be.
#[derive(Debug, Clone)]
pub(crate) struct CompileCache {
    capacity: usize,
    entries: Vec<(CacheKey, CompiledOp)>,
    evictions: u64,
}

impl CompileCache {
    /// The default entry bound — comfortably above any paper workload's
    /// distinct-constant count.
    pub const DEFAULT_CAPACITY: usize = 128;

    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity,
            entries: Vec::new(),
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<CompiledOp> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let op = entry.1.clone();
        self.entries.push(entry);
        Some(op)
    }

    /// Inserts `op` under `key`, evicting the least-recently-used entry when
    /// over capacity. A capacity of zero disables caching entirely.
    pub fn insert(&mut self, key: CacheKey, op: CompiledOp) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|(k, _)| k != &key);
        self.entries.push((key, op));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
    }
}

/// Per-shard occupancy and traffic counters, for telemetry gauges and the
/// `hppa metrics` exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Which shard (0-based).
    pub shard: usize,
    /// Entries currently resident in this shard.
    pub entries: usize,
    /// Lookups that found their key here.
    pub hits: u64,
    /// Lookups that missed here (each is followed by a cold compile).
    pub misses: u64,
    /// Entries pushed out by the shard's LRU bound.
    pub evictions: u64,
}

/// One lockable shard: its LRU plus hit/miss counters. Eviction counting
/// lives inside [`CompileCache`] itself so the single-shard unit tests see
/// it too.
#[derive(Debug)]
struct Shard {
    cache: CompileCache,
    hits: u64,
    misses: u64,
}

/// A thread-safe compile cache: `shards` independent LRUs, each behind its
/// own `Mutex`, with keys routed by hash. Shared by every clone of a
/// [`Compiler`](crate::Compiler) (behind an `Arc`), so a pool of worker
/// threads pays each distinct compile once while contending only when two
/// keys land in the same shard.
#[derive(Debug)]
pub(crate) struct ShardedCache {
    shards: Box<[Mutex<Shard>]>,
}

impl ShardedCache {
    /// Default shard count — small enough that per-shard capacity stays
    /// useful, large enough that an 8-worker pool rarely collides.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Builds a cache holding at most `capacity` entries in total, spread
    /// over `shards` locks. The capacity is distributed exactly (the first
    /// `capacity % shards` shards get one extra slot), so the total bound
    /// is never exceeded; to keep every shard useful, the shard count is
    /// clamped to `1..=capacity`. A capacity of zero disables caching.
    ///
    /// Eviction is LRU *per shard*: with more than one shard, which entry
    /// evicts depends on how keys hash. Callers that need the exact global
    /// LRU order of the pre-0.3 cache should ask for one shard.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shards = shards.clamp(1, capacity.max(1));
        let (base, extra) = (capacity / shards, capacity % shards);
        let shards = (0..shards)
            .map(|i| {
                Mutex::new(Shard {
                    cache: CompileCache::new(base + usize::from(i < extra)),
                    hits: 0,
                    misses: 0,
                })
            })
            .collect();
        ShardedCache { shards }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `key` routes to.
    pub fn shard_for(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn lock(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        // A poisoned shard only means another thread panicked mid-compile;
        // the LRU itself is never left half-updated.
        self.shards[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `key` in its shard, refreshing recency and counting the
    /// hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<CompiledOp> {
        let mut shard = self.lock(self.shard_for(key));
        let found = shard.cache.lookup(key);
        if found.is_some() {
            shard.hits += 1;
        } else {
            shard.misses += 1;
        }
        found
    }

    /// Inserts `op` into `key`'s shard.
    pub fn insert(&self, key: CacheKey, op: CompiledOp) {
        let mut shard = self.lock(self.shard_for(&key));
        shard.cache.insert(key, op);
    }

    /// Entries resident across all shards.
    pub fn entries(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).cache.len())
            .sum()
    }

    /// A stats snapshot per shard, in shard order.
    pub fn stats(&self) -> Vec<CacheShardStats> {
        (0..self.shards.len())
            .map(|i| {
                let shard = self.lock(i);
                CacheShardStats {
                    shard: i,
                    entries: shard.cache.len(),
                    hits: shard.hits,
                    misses: shard.misses,
                    evictions: shard.cache.evictions,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;

    fn key(n: i64) -> CacheKey {
        CacheKey {
            kind: OpKind::MulConst { n, checked: false },
            overflow: OverflowModel::default(),
        }
    }

    fn op(n: i64) -> CompiledOp {
        Compiler::new().mul_const(n).unwrap()
    }

    #[test]
    fn lookup_returns_inserted_entries() {
        let mut cache = CompileCache::new(4);
        assert!(cache.lookup(&key(10)).is_none());
        cache.insert(key(10), op(10));
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(&key(10)).expect("hit");
        assert_eq!(
            hit.kind(),
            OpKind::MulConst {
                n: 10,
                checked: false
            }
        );
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = CompileCache::new(2);
        cache.insert(key(2), op(2));
        cache.insert(key(3), op(3));
        cache.lookup(&key(2)); // refresh 2 → 3 is now LRU
        cache.insert(key(5), op(5));
        assert!(cache.lookup(&key(3)).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&key(2)).is_some());
        assert!(cache.lookup(&key(5)).is_some());
    }

    #[test]
    fn interleaved_mul_and_div_keys_evict_in_strict_lru_order() {
        let ukey = |y: u32| CacheKey {
            kind: OpKind::UdivConst { y },
            overflow: OverflowModel::default(),
        };
        let uop = |y: u32| Compiler::new().udiv_const(y).unwrap();
        // Mul and div entries share one recency list, not per-family lists:
        // a hot multiply must be able to evict a stale divide and vice versa.
        let mut cache = CompileCache::new(3);
        cache.insert(key(3), op(3));
        cache.insert(ukey(3), uop(3));
        cache.insert(key(5), op(5));
        assert_eq!(cache.len(), 3);
        // Refresh the divide: the oldest *multiply* is now LRU.
        assert!(cache.lookup(&ukey(3)).is_some());
        cache.insert(ukey(7), uop(7));
        assert!(cache.lookup(&key(3)).is_none(), "mul 3 was LRU");
        assert!(cache.lookup(&ukey(3)).is_some(), "refreshed div survived");
        // And the other way around: refresh a multiply, evict a divide.
        assert!(cache.lookup(&key(5)).is_some());
        cache.insert(key(9), op(9));
        assert!(cache.lookup(&ukey(7)).is_none(), "div 7 was LRU");
        assert!(cache.lookup(&key(5)).is_some());
        assert!(cache.lookup(&key(9)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn mul_and_div_keys_with_equal_constants_are_distinct() {
        let mut cache = CompileCache::new(4);
        cache.insert(key(3), op(3));
        let div3 = CacheKey {
            kind: OpKind::UdivConst { y: 3 },
            overflow: OverflowModel::default(),
        };
        assert!(cache.lookup(&div3).is_none(), "udiv 3 must not alias mul 3");
        cache.insert(div3, Compiler::new().udiv_const(3).unwrap());
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup(&key(3)).unwrap().kind(),
            OpKind::MulConst {
                n: 3,
                checked: false
            }
        );
        assert_eq!(
            cache.lookup(&div3).unwrap().kind(),
            OpKind::UdivConst { y: 3 }
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0);
        cache.insert(key(10), op(10));
        assert_eq!(cache.len(), 0);
        assert!(cache.lookup(&key(10)).is_none());
    }

    #[test]
    fn overflow_model_separates_entries() {
        let mut cache = CompileCache::new(4);
        cache.insert(key(10), op(10));
        let precise = CacheKey {
            kind: OpKind::MulConst {
                n: 10,
                checked: false,
            },
            overflow: OverflowModel::Precise,
        };
        assert!(cache.lookup(&precise).is_none());
    }

    #[test]
    fn sharded_cache_routes_hits_and_misses_per_shard() {
        let cache = ShardedCache::new(64, 4);
        assert_eq!(cache.shard_count(), 4);
        assert!(cache.lookup(&key(10)).is_none(), "cold lookup misses");
        cache.insert(key(10), op(10));
        assert!(cache.lookup(&key(10)).is_some());
        assert_eq!(cache.entries(), 1);
        let stats = cache.stats();
        let shard = cache.shard_for(&key(10));
        assert_eq!(stats[shard].hits, 1);
        assert_eq!(stats[shard].misses, 1);
        assert_eq!(stats[shard].entries, 1);
        let elsewhere: u64 = stats
            .iter()
            .filter(|s| s.shard != shard)
            .map(|s| s.hits + s.misses)
            .sum();
        assert_eq!(elsewhere, 0, "traffic lands only on the key's shard");
    }

    #[test]
    fn sharded_cache_keys_route_deterministically() {
        let cache = ShardedCache::new(64, 8);
        for n in 0..50 {
            assert_eq!(cache.shard_for(&key(n)), cache.shard_for(&key(n)));
        }
    }

    #[test]
    fn sharded_cache_zero_capacity_disables_caching() {
        let cache = ShardedCache::new(0, 4);
        cache.insert(key(10), op(10));
        assert_eq!(cache.entries(), 0);
        assert!(cache.lookup(&key(10)).is_none());
    }

    #[test]
    fn sharded_cache_counts_evictions() {
        // One shard, capacity 2: the third distinct key must evict.
        let cache = ShardedCache::new(2, 1);
        for n in [2i64, 3, 5, 7] {
            cache.insert(key(n), op(n));
        }
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.stats()[0].evictions, 2);
    }

    #[test]
    fn sharded_cache_is_shareable_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(64, 4));
        let seeded = op(7);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let seeded = seeded.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        if cache.lookup(&key(7)).is_none() {
                            cache.insert(key(7), seeded.clone());
                        }
                    }
                });
            }
        });
        assert_eq!(cache.entries(), 1, "all threads converged on one entry");
        let stats = cache.stats();
        let total: u64 = stats.iter().map(|s| s.hits + s.misses).sum();
        assert_eq!(total, 400);
    }
}
