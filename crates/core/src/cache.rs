//! The strategy-keyed compilation cache.
//!
//! Chain search and magic-number derivation dominate the cost of
//! [`Compiler`](crate::Compiler) calls; workloads replay the same few
//! constants thousands of times. The cache memoises whole
//! [`CompiledOp`](crate::CompiledOp)s keyed by `(OpKind, overflow model)` —
//! the operation kind already carries the constant and the trap flavor, and
//! the overflow model is baked into the prepared program, so two compilers
//! that would generate different executables never share an entry.

use pa_sim::OverflowModel;

use crate::compiler::{CompiledOp, OpKind};

/// The full identity of a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub kind: OpKind,
    pub overflow: OverflowModel,
}

/// A bounded most-recently-used cache. Entries are kept in recency order
/// (most recent at the back); capacity is small enough that the linear key
/// scan is cheaper than hashing would be.
#[derive(Debug, Clone)]
pub(crate) struct CompileCache {
    capacity: usize,
    entries: Vec<(CacheKey, CompiledOp)>,
}

impl CompileCache {
    /// The default entry bound — comfortably above any paper workload's
    /// distinct-constant count.
    pub const DEFAULT_CAPACITY: usize = 128;

    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            capacity,
            entries: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<CompiledOp> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let op = entry.1.clone();
        self.entries.push(entry);
        Some(op)
    }

    /// Inserts `op` under `key`, evicting the least-recently-used entry when
    /// over capacity. A capacity of zero disables caching entirely.
    pub fn insert(&mut self, key: CacheKey, op: CompiledOp) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|(k, _)| k != &key);
        self.entries.push((key, op));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;

    fn key(n: i64) -> CacheKey {
        CacheKey {
            kind: OpKind::MulConst { n, checked: false },
            overflow: OverflowModel::default(),
        }
    }

    fn op(n: i64) -> CompiledOp {
        Compiler::new().mul_const(n).unwrap()
    }

    #[test]
    fn lookup_returns_inserted_entries() {
        let mut cache = CompileCache::new(4);
        assert!(cache.lookup(&key(10)).is_none());
        cache.insert(key(10), op(10));
        assert_eq!(cache.len(), 1);
        let hit = cache.lookup(&key(10)).expect("hit");
        assert_eq!(
            hit.kind(),
            OpKind::MulConst {
                n: 10,
                checked: false
            }
        );
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut cache = CompileCache::new(2);
        cache.insert(key(2), op(2));
        cache.insert(key(3), op(3));
        cache.lookup(&key(2)); // refresh 2 → 3 is now LRU
        cache.insert(key(5), op(5));
        assert!(cache.lookup(&key(3)).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&key(2)).is_some());
        assert!(cache.lookup(&key(5)).is_some());
    }

    #[test]
    fn interleaved_mul_and_div_keys_evict_in_strict_lru_order() {
        let ukey = |y: u32| CacheKey {
            kind: OpKind::UdivConst { y },
            overflow: OverflowModel::default(),
        };
        let uop = |y: u32| Compiler::new().udiv_const(y).unwrap();
        // Mul and div entries share one recency list, not per-family lists:
        // a hot multiply must be able to evict a stale divide and vice versa.
        let mut cache = CompileCache::new(3);
        cache.insert(key(3), op(3));
        cache.insert(ukey(3), uop(3));
        cache.insert(key(5), op(5));
        assert_eq!(cache.len(), 3);
        // Refresh the divide: the oldest *multiply* is now LRU.
        assert!(cache.lookup(&ukey(3)).is_some());
        cache.insert(ukey(7), uop(7));
        assert!(cache.lookup(&key(3)).is_none(), "mul 3 was LRU");
        assert!(cache.lookup(&ukey(3)).is_some(), "refreshed div survived");
        // And the other way around: refresh a multiply, evict a divide.
        assert!(cache.lookup(&key(5)).is_some());
        cache.insert(key(9), op(9));
        assert!(cache.lookup(&ukey(7)).is_none(), "div 7 was LRU");
        assert!(cache.lookup(&key(5)).is_some());
        assert!(cache.lookup(&key(9)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn mul_and_div_keys_with_equal_constants_are_distinct() {
        let mut cache = CompileCache::new(4);
        cache.insert(key(3), op(3));
        let div3 = CacheKey {
            kind: OpKind::UdivConst { y: 3 },
            overflow: OverflowModel::default(),
        };
        assert!(cache.lookup(&div3).is_none(), "udiv 3 must not alias mul 3");
        cache.insert(div3, Compiler::new().udiv_const(3).unwrap());
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.lookup(&key(3)).unwrap().kind(),
            OpKind::MulConst {
                n: 3,
                checked: false
            }
        );
        assert_eq!(
            cache.lookup(&div3).unwrap().kind(),
            OpKind::UdivConst { y: 3 }
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = CompileCache::new(0);
        cache.insert(key(10), op(10));
        assert_eq!(cache.len(), 0);
        assert!(cache.lookup(&key(10)).is_none());
    }

    #[test]
    fn overflow_model_separates_entries() {
        let mut cache = CompileCache::new(4);
        cache.insert(key(10), op(10));
        let precise = CacheKey {
            kind: OpKind::MulConst {
                n: 10,
                checked: false,
            },
            overflow: OverflowModel::Precise,
        };
        assert!(cache.lookup(&precise).is_none());
    }
}
