//! The compile-time facade: constants into straight-line code.

use core::fmt;
use std::sync::Arc;

use divconst::{DivCodegenConfig, DivCodegenError, Signedness};
use mulconst::{CodegenConfig, CodegenError};
use pa_isa::{Program, Reg};
use pa_sim::{ExecConfig, Machine, OverflowModel, PreparedProgram, Termination, TrapKind};

use crate::cache::{CacheKey, CacheShardStats, CompileCache, ShardedCache};
use crate::session::BatchOutcome;
use crate::{Error, Result};

/// What a [`CompiledOp`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dest = source * constant` (wrapping or trapping).
    MulConst {
        /// The constant.
        n: i64,
        /// Whether overflow traps.
        checked: bool,
    },
    /// `dest = source / constant`, unsigned.
    UdivConst {
        /// The divisor.
        y: u32,
    },
    /// `dest = trunc(source / constant)`, signed.
    SdivConst {
        /// The divisor.
        y: i32,
    },
    /// `dest = source % constant`, unsigned.
    UremConst {
        /// The divisor.
        y: u32,
    },
    /// `dest = source % constant`, signed (remainder keeps the dividend's
    /// sign, as in C).
    SremConst {
        /// The divisor.
        y: i32,
    },
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::MulConst { n, checked: false } => write!(f, "x * {n}"),
            OpKind::MulConst { n, checked: true } => write!(f, "x * {n} (checked)"),
            OpKind::UdivConst { y } => write!(f, "x / {y}u"),
            OpKind::SdivConst { y } => write!(f, "x / {y}"),
            OpKind::UremConst { y } => write!(f, "x % {y}u"),
            OpKind::SremConst { y } => write!(f, "x % {y}"),
        }
    }
}

/// Legacy error type of the pre-0.2 [`Compiler`] API. New code should match
/// on [`crate::Error`], which every façade method now returns; this enum
/// remains for callers migrating off the old signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompilerError {
    /// Multiplication codegen failed.
    Mul(CodegenError),
    /// Division codegen failed.
    Div(DivCodegenError),
    /// The compiled code trapped when executed (overflow, divide by zero).
    Trapped(TrapKind),
    /// The compiled code did not run to completion.
    DidNotComplete,
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::Mul(e) => write!(f, "multiply codegen: {e}"),
            CompilerError::Div(e) => write!(f, "divide codegen: {e}"),
            CompilerError::Trapped(TrapKind::Overflow) => write!(f, "overflow trap"),
            CompilerError::Trapped(TrapKind::Break(code)) => {
                write!(f, "break trap (code {code})")
            }
            CompilerError::DidNotComplete => write!(f, "execution did not complete"),
        }
    }
}

impl std::error::Error for CompilerError {}

impl From<CodegenError> for CompilerError {
    fn from(e: CodegenError) -> CompilerError {
        CompilerError::Mul(e)
    }
}

impl From<DivCodegenError> for CompilerError {
    fn from(e: DivCodegenError) -> CompilerError {
        CompilerError::Div(e)
    }
}

/// A compiled constant operation: the pre-decoded program, its registers,
/// and execution helpers backed by the simulator's prepared fast path.
#[derive(Debug, Clone)]
pub struct CompiledOp {
    kind: OpKind,
    prepared: PreparedProgram,
    source: Reg,
    dest: Reg,
}

impl CompiledOp {
    /// What this code computes.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The generated instructions.
    #[must_use]
    pub fn program(&self) -> &Program {
        self.prepared.program()
    }

    /// The pre-decoded executable form.
    #[must_use]
    pub fn prepared(&self) -> &PreparedProgram {
        &self.prepared
    }

    /// Static instruction count. For the straight-line multiply/divide
    /// bodies this equals the cycle count; branchy signed divisions may run
    /// slightly below it.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// Whether the program is empty (never true for real operations).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }

    /// Cycles consumed for a representative input (for straight-line code,
    /// any input).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles_for(1)
    }

    /// Cycles consumed for a specific input value.
    #[must_use]
    pub fn cycles_for(&self, x: u32) -> u64 {
        let mut m = Machine::with_regs(&[(self.source, x)]);
        self.prepared.run(&mut m).cycles
    }

    fn run_on(&self, machine: &mut Machine, x: u32) -> Result<(u32, u64)> {
        machine.reset();
        machine.set_reg(self.source, x);
        let r = self.prepared.run(machine);
        match r.termination {
            Termination::Completed => Ok((machine.reg(self.dest), r.cycles)),
            Termination::Trapped(t) => Err(Error::Trapped(t.kind)),
            _ => Err(Error::DidNotComplete),
        }
    }

    /// Runs on an unsigned input.
    ///
    /// # Errors
    ///
    /// [`Error::Trapped`] when the code traps (checked overflow).
    pub fn run_u32(&self, x: u32) -> Result<u32> {
        let mut m = Machine::new();
        self.run_on(&mut m, x).map(|(v, _)| v)
    }

    /// Runs on a signed input.
    ///
    /// # Errors
    ///
    /// [`Error::Trapped`] when the code traps (checked overflow).
    pub fn run_i32(&self, x: i32) -> Result<i32> {
        self.run_u32(x as u32).map(|v| v as i32)
    }

    /// Runs the whole batch through one reused machine, returning every
    /// result plus the total simulated cycles. The machine is reset between
    /// inputs, so results are identical to per-call [`run_u32`].
    ///
    /// # Errors
    ///
    /// Fails on the first input that traps or does not complete.
    ///
    /// [`run_u32`]: CompiledOp::run_u32
    pub fn run_batch_u32(&self, inputs: &[u32]) -> Result<BatchOutcome<u32>> {
        let mut machine = Machine::new();
        let mut values = Vec::with_capacity(inputs.len());
        let mut cycles = 0u64;
        for &x in inputs {
            let (v, c) = self.run_on(&mut machine, x)?;
            values.push(v);
            cycles += c;
        }
        Ok(BatchOutcome {
            values,
            rems: None,
            cycles,
        })
    }

    /// Signed spelling of [`CompiledOp::run_batch_u32`].
    ///
    /// # Errors
    ///
    /// Fails on the first input that traps or does not complete.
    pub fn run_batch_i32(&self, inputs: &[i32]) -> Result<BatchOutcome<i32>> {
        let mut machine = Machine::new();
        let mut values = Vec::with_capacity(inputs.len());
        let mut cycles = 0u64;
        for &x in inputs {
            let (v, c) = self.run_on(&mut machine, x as u32)?;
            values.push(v as i32);
            cycles += c;
        }
        Ok(BatchOutcome {
            values,
            rems: None,
            cycles,
        })
    }
}

impl fmt::Display for CompiledOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {}", self.kind)?;
        write!(f, "{}", self.program())
    }
}

/// Configures a [`Compiler`] — the scattered knobs in one place.
///
/// # Example
///
/// ```
/// use hppa_muldiv::{Compiler, sim::OverflowModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = Compiler::builder()
///     .overflow(OverflowModel::Precise)
///     .cache_capacity(64)
///     .build();
/// assert_eq!(c.mul_const(10)?.cycles(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompilerBuilder {
    overflow: OverflowModel,
    trapping_mul: bool,
    max_cycles: u64,
    stats: bool,
    cache_capacity: usize,
    cache_shards: usize,
}

impl CompilerBuilder {
    fn new() -> CompilerBuilder {
        CompilerBuilder {
            overflow: OverflowModel::default(),
            trapping_mul: false,
            max_cycles: ExecConfig::default().max_cycles,
            stats: false,
            cache_capacity: CompileCache::DEFAULT_CAPACITY,
            cache_shards: ShardedCache::DEFAULT_SHARDS,
        }
    }

    /// Overflow detector baked into the compiled programs' execution.
    #[must_use]
    pub fn overflow(mut self, model: OverflowModel) -> CompilerBuilder {
        self.overflow = model;
        self
    }

    /// Makes [`Compiler::mul_const`] emit trapping (Pascal-flavor) chains by
    /// default, as if every call were [`Compiler::mul_const_checked`].
    #[must_use]
    pub fn trapping_mul(mut self, trapping: bool) -> CompilerBuilder {
        self.trapping_mul = trapping;
        self
    }

    /// Watchdog budget for executing compiled programs.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> CompilerBuilder {
        self.max_cycles = max_cycles;
        self
    }

    /// Collect simulator statistics when compiled programs run (delegates
    /// execution to the instrumented interpreter).
    #[must_use]
    pub fn stats(mut self, stats: bool) -> CompilerBuilder {
        self.stats = stats;
        self
    }

    /// Bound on cached compiled programs; zero disables the cache.
    #[must_use]
    pub fn cache_capacity(mut self, capacity: usize) -> CompilerBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Number of independent lock shards the cache is split into (clamped
    /// to at least one). More shards means less contention when many worker
    /// threads compile concurrently; strict validation lives on
    /// [`RuntimeBuilder::cache_shards`](crate::RuntimeBuilder::cache_shards),
    /// whose `build` can report errors.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> CompilerBuilder {
        self.cache_shards = shards;
        self
    }

    /// Builds the compiler.
    #[must_use]
    pub fn build(self) -> Compiler {
        let exec = ExecConfig {
            overflow: self.overflow,
            max_cycles: self.max_cycles,
            profile: false,
            trace: false,
            stats: self.stats,
        };
        Compiler {
            mul_cfg: CodegenConfig::default(),
            div_cfg: DivCodegenConfig::default(),
            exec,
            trapping_mul: self.trapping_mul,
            cache: Arc::new(ShardedCache::new(self.cache_capacity, self.cache_shards)),
        }
    }
}

/// Compiles constant multiplications and divisions the way the Precision
/// compilers' code generator does. Compiled programs are memoised in a
/// bounded, strategy-keyed cache: compiling the same constant twice does
/// the chain search / magic derivation once.
///
/// The cache is sharded and thread-safe, and it sits behind an `Arc`:
/// `Compiler` is `Send + Sync`, `&Compiler` can be used from many threads
/// at once, and **clones share the same cache**, so a worker pool holding
/// one clone each still pays every distinct compile exactly once.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Compiler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = Compiler::new();
/// let op = c.mul_const(1000)?;
/// assert!(op.cycles() <= 4); // §8: "generally four or fewer"
/// assert_eq!(op.run_i32(-3)?, -3000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    mul_cfg: CodegenConfig,
    div_cfg: DivCodegenConfig,
    exec: ExecConfig,
    trapping_mul: bool,
    cache: Arc<ShardedCache>,
}

impl Compiler {
    /// A compiler with the PA-RISC argument-register conventions and
    /// default knobs.
    #[must_use]
    pub fn new() -> Compiler {
        Compiler::builder().build()
    }

    /// Starts configuring a compiler.
    #[must_use]
    pub fn builder() -> CompilerBuilder {
        CompilerBuilder::new()
    }

    /// Compiles `x * n`; wrapping (C semantics) unless the builder asked
    /// for trapping multiplies.
    ///
    /// # Errors
    ///
    /// See [`Error`].
    pub fn mul_const(&self, n: i64) -> Result<CompiledOp> {
        self.compile(OpKind::MulConst {
            n,
            checked: self.trapping_mul,
        })
    }

    /// Compiles `x * n` with overflow trapping (Pascal semantics); the chain
    /// is restricted to the monotonic trapping-capable form (§5 *Overflow*).
    ///
    /// # Errors
    ///
    /// See [`Error`].
    pub fn mul_const_checked(&self, n: i64) -> Result<CompiledOp> {
        self.compile(OpKind::MulConst { n, checked: true })
    }

    /// Compiles unsigned `x / y`.
    ///
    /// # Errors
    ///
    /// See [`Error`]; `y = 0` reports [`Error::DivideByZero`].
    pub fn udiv_const(&self, y: u32) -> Result<CompiledOp> {
        self.compile(OpKind::UdivConst { y })
    }

    /// Compiles signed `trunc(x / y)` (y may be negative).
    ///
    /// # Errors
    ///
    /// See [`Error`].
    pub fn sdiv_const(&self, y: i32) -> Result<CompiledOp> {
        self.compile(OpKind::SdivConst { y })
    }

    /// Compiles unsigned `x % y` — an extension composed from the paper's
    /// pieces: `x - (x / y) * y`, with the multiply-back going through the
    /// §5 constant-multiply chains.
    ///
    /// # Errors
    ///
    /// See [`Error`].
    pub fn urem_const(&self, y: u32) -> Result<CompiledOp> {
        self.compile(OpKind::UremConst { y })
    }

    /// Compiles signed `x % y` (C semantics: the remainder takes the
    /// dividend's sign) — composed as `x - trunc(x / y) * y`.
    ///
    /// # Errors
    ///
    /// See [`Error`].
    pub fn srem_const(&self, y: i32) -> Result<CompiledOp> {
        self.compile(OpKind::SremConst { y })
    }

    /// Cached programs currently resident (summed across shards).
    #[must_use]
    pub fn cached_ops(&self) -> usize {
        self.cache.entries()
    }

    /// Per-shard occupancy and hit/miss/eviction counters, in shard order.
    /// Counters are cumulative over the cache's lifetime and shared with
    /// every clone of this compiler.
    #[must_use]
    pub fn cache_stats(&self) -> Vec<CacheShardStats> {
        self.cache.stats()
    }

    /// Lock shards the cache is split into (after clamping to the
    /// capacity, so every shard holds at least one entry).
    #[must_use]
    pub fn cache_shard_count(&self) -> usize {
        self.cache.shard_count()
    }

    fn compile(&self, kind: OpKind) -> Result<CompiledOp> {
        let _span = telemetry::span::enter_with("compile", || kind.to_string());
        let key = CacheKey {
            kind,
            overflow: self.exec.overflow,
        };
        let cached = {
            let _lookup = telemetry::span::enter("cache_lookup");
            self.cache.lookup(&key)
        };
        if let Some(op) = cached {
            telemetry::emit(|| telemetry::Event::CacheLookup {
                op: kind.to_string(),
                hit: true,
                entries: self.cache.entries(),
            });
            return Ok(op);
        }
        let op = self.compile_cold(kind)?;
        self.cache.insert(key, op.clone());
        telemetry::emit(|| telemetry::Event::CacheLookup {
            op: kind.to_string(),
            hit: false,
            entries: self.cache.entries(),
        });
        Ok(op)
    }

    fn compile_cold(&self, kind: OpKind) -> Result<CompiledOp> {
        let _span = telemetry::span::enter_with("compile_cold", || kind.to_string());
        match kind {
            OpKind::MulConst { n, checked } => {
                let cfg = CodegenConfig {
                    check_overflow: checked,
                    ..self.mul_cfg.clone()
                };
                let program = mulconst::compile_mul_const(n, &cfg)?;
                Ok(self.wrap(kind, program, cfg.source))
            }
            OpKind::UdivConst { y } => {
                let program = divconst::compile_div_const(y, Signedness::Unsigned, &self.div_cfg)?;
                Ok(self.wrap(kind, program, self.div_cfg.source))
            }
            OpKind::SdivConst { y } => {
                let program = divconst::compile_div_const_i32(y, &self.div_cfg)?;
                Ok(self.wrap(kind, program, self.div_cfg.source))
            }
            OpKind::UremConst { y } => {
                let div = divconst::compile_div_const(y, Signedness::Unsigned, &self.div_cfg)?;
                let combined = self.compose_rem(div, i64::from(y))?;
                Ok(self.wrap(kind, combined, self.div_cfg.source))
            }
            OpKind::SremConst { y } => {
                let div = divconst::compile_div_const_i32(y, &self.div_cfg)?;
                let combined = self.compose_rem(div, i64::from(y))?;
                Ok(self.wrap(kind, combined, self.div_cfg.source))
            }
        }
    }

    /// Appends the multiply-back and subtract that turn a quotient program
    /// into a remainder program.
    fn compose_rem(&self, div: Program, y: i64) -> Result<Program> {
        let quotient = self.div_cfg.dest;
        let product = self.div_cfg.temps[0];
        let mul_cfg = CodegenConfig {
            source: quotient,
            dest: product,
            temps: self.div_cfg.temps[1..6].to_vec(),
            check_overflow: false,
        };
        let mul = mulconst::compile_mul_const(y, &mul_cfg)?;
        let mut combined = div.concat(&mul, "_mulback");
        let mut b = pa_isa::ProgramBuilder::new();
        b.sub(self.div_cfg.source, product, quotient);
        let sub = b.build().expect("single sub builds");
        combined = combined.concat(&sub, "_rem");
        Ok(combined)
    }

    fn wrap(&self, kind: OpKind, program: Program, source: Reg) -> CompiledOp {
        let prepared = PreparedProgram::new(&program, self.exec.clone());
        telemetry::emit(|| telemetry::Event::Prepare {
            label: kind.to_string(),
            len: prepared.len(),
        });
        CompiledOp {
            kind,
            prepared,
            source,
            dest: self.div_cfg.dest,
        }
    }
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_const_examples() {
        let c = Compiler::new();
        for (n, x, expect) in [(10i64, 7i32, 70i32), (-3, 9, -27), (0, 5, 0), (1, -4, -4)] {
            let op = c.mul_const(n).unwrap();
            assert_eq!(op.run_i32(x).unwrap(), expect, "{n} * {x}");
        }
    }

    #[test]
    fn checked_mul_traps() {
        let c = Compiler::new();
        let op = c.mul_const_checked(3).unwrap();
        assert_eq!(op.run_i32(10).unwrap(), 30);
        assert_eq!(
            op.run_i32(i32::MAX / 2),
            Err(Error::Trapped(TrapKind::Overflow))
        );
    }

    #[test]
    fn udiv_figure7() {
        let c = Compiler::new();
        let op = c.udiv_const(3).unwrap();
        assert_eq!(op.cycles(), 17);
        assert_eq!(op.run_u32(u32::MAX).unwrap(), u32::MAX / 3);
    }

    #[test]
    fn sdiv_negative_divisor() {
        let c = Compiler::new();
        let op = c.sdiv_const(-7).unwrap();
        assert_eq!(op.run_i32(100).unwrap(), -14);
        assert_eq!(op.run_i32(-100).unwrap(), 14);
    }

    #[test]
    fn urem_composition() {
        let c = Compiler::new();
        for y in [2u32, 3, 7, 10, 12, 100] {
            let op = c.urem_const(y).unwrap();
            for x in [0u32, 1, 99, 12345, u32::MAX] {
                assert_eq!(op.run_u32(x).unwrap(), x % y, "{x} % {y}");
            }
        }
    }

    #[test]
    fn srem_composition() {
        let c = Compiler::new();
        for y in [2i32, 3, -3, 7, -10, 12] {
            let op = c.srem_const(y).unwrap();
            for x in [0i32, 1, -1, 99, -99, 12345, -12345, i32::MAX, i32::MIN + 1] {
                let expect = (i64::from(x) % i64::from(y)) as i32;
                assert_eq!(op.run_i32(x).unwrap(), expect, "{x} % {y}");
            }
        }
    }

    #[test]
    fn display_shows_kind_and_listing() {
        let c = Compiler::new();
        let op = c.mul_const(10).unwrap();
        let text = op.to_string();
        assert!(text.contains("; x * 10"));
        assert!(text.contains("sh2add"));
    }

    #[test]
    fn cycle_accounting() {
        let c = Compiler::new();
        let op = c.mul_const(10).unwrap();
        assert_eq!(op.cycles(), 2);
        assert_eq!(op.len(), 2);
        assert!(!op.is_empty());
        assert_eq!(
            op.kind(),
            OpKind::MulConst {
                n: 10,
                checked: false
            }
        );
    }

    #[test]
    fn repeated_compiles_hit_the_cache() {
        let c = Compiler::new();
        let (ops, events) = telemetry::collect(|| {
            let first = c.mul_const(10).unwrap();
            let second = c.mul_const(10).unwrap();
            (first, second)
        });
        assert_eq!(ops.0.program().insns(), ops.1.program().insns());
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("cache/miss"), Some(&1));
        assert_eq!(hist.get("cache/hit"), Some(&1));
        assert_eq!(hist.get("prepare/program"), Some(&1), "compiled once");
        assert_eq!(c.cached_ops(), 1);
    }

    #[test]
    fn checked_and_unchecked_do_not_share_cache_entries() {
        let c = Compiler::new();
        let plain = c.mul_const(3).unwrap();
        let checked = c.mul_const_checked(3).unwrap();
        assert_ne!(plain.kind(), checked.kind());
        assert_eq!(c.cached_ops(), 2);
    }

    #[test]
    fn builder_trapping_mul_makes_mul_const_checked() {
        let c = Compiler::builder().trapping_mul(true).build();
        let op = c.mul_const(3).unwrap();
        assert_eq!(
            op.kind(),
            OpKind::MulConst {
                n: 3,
                checked: true
            }
        );
        assert!(matches!(
            op.run_i32(i32::MAX / 2),
            Err(Error::Trapped(TrapKind::Overflow))
        ));
    }

    #[test]
    fn builder_zero_capacity_disables_cache() {
        let c = Compiler::builder().cache_capacity(0).build();
        c.mul_const(10).unwrap();
        c.mul_const(10).unwrap();
        assert_eq!(c.cached_ops(), 0);
    }

    #[test]
    fn batch_matches_singular_runs() {
        let c = Compiler::new();
        let op = c.udiv_const(7).unwrap();
        let inputs = [0u32, 1, 6, 7, 1000, u32::MAX];
        let batch = op.run_batch_u32(&inputs).unwrap();
        let mut cycles = 0;
        for (i, &x) in inputs.iter().enumerate() {
            assert_eq!(batch.values[i], op.run_u32(x).unwrap());
            cycles += op.cycles_for(x);
        }
        assert_eq!(batch.cycles, cycles);
        assert_eq!(batch.ops(), inputs.len());
        assert!(batch.rems.is_none());
    }
}
