//! The compile-time facade: constants into straight-line code.

use core::fmt;

use divconst::{DivCodegenConfig, DivCodegenError, Signedness};
use mulconst::{CodegenConfig, CodegenError};
use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, TrapKind};

/// What a [`CompiledOp`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dest = source * constant` (wrapping or trapping).
    MulConst {
        /// The constant.
        n: i64,
        /// Whether overflow traps.
        checked: bool,
    },
    /// `dest = source / constant`, unsigned.
    UdivConst {
        /// The divisor.
        y: u32,
    },
    /// `dest = trunc(source / constant)`, signed.
    SdivConst {
        /// The divisor.
        y: i32,
    },
    /// `dest = source % constant`, unsigned.
    UremConst {
        /// The divisor.
        y: u32,
    },
    /// `dest = source % constant`, signed (remainder keeps the dividend's
    /// sign, as in C).
    SremConst {
        /// The divisor.
        y: i32,
    },
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::MulConst { n, checked: false } => write!(f, "x * {n}"),
            OpKind::MulConst { n, checked: true } => write!(f, "x * {n} (checked)"),
            OpKind::UdivConst { y } => write!(f, "x / {y}u"),
            OpKind::SdivConst { y } => write!(f, "x / {y}"),
            OpKind::UremConst { y } => write!(f, "x % {y}u"),
            OpKind::SremConst { y } => write!(f, "x % {y}"),
        }
    }
}

/// Errors from the [`Compiler`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompilerError {
    /// Multiplication codegen failed.
    Mul(CodegenError),
    /// Division codegen failed.
    Div(DivCodegenError),
    /// The compiled code trapped when executed (overflow, divide by zero).
    Trapped(TrapKind),
    /// The compiled code did not run to completion.
    DidNotComplete,
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::Mul(e) => write!(f, "multiply codegen: {e}"),
            CompilerError::Div(e) => write!(f, "divide codegen: {e}"),
            CompilerError::Trapped(TrapKind::Overflow) => write!(f, "overflow trap"),
            CompilerError::Trapped(TrapKind::Break(code)) => {
                write!(f, "break trap (code {code})")
            }
            CompilerError::DidNotComplete => write!(f, "execution did not complete"),
        }
    }
}

impl std::error::Error for CompilerError {}

impl From<CodegenError> for CompilerError {
    fn from(e: CodegenError) -> CompilerError {
        CompilerError::Mul(e)
    }
}

impl From<DivCodegenError> for CompilerError {
    fn from(e: DivCodegenError) -> CompilerError {
        CompilerError::Div(e)
    }
}

/// A compiled constant operation: the program, its registers, and execution
/// helpers backed by the simulator.
#[derive(Debug, Clone)]
pub struct CompiledOp {
    kind: OpKind,
    program: Program,
    source: Reg,
    dest: Reg,
}

impl CompiledOp {
    /// What this code computes.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The generated instructions.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Static instruction count. For the straight-line multiply/divide
    /// bodies this equals the cycle count; branchy signed divisions may run
    /// slightly below it.
    #[must_use]
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// Whether the program is empty (never true for real operations).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// Cycles consumed for a representative input (for straight-line code,
    /// any input).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles_for(1)
    }

    /// Cycles consumed for a specific input value.
    #[must_use]
    pub fn cycles_for(&self, x: u32) -> u64 {
        let (_, stats) = run_fn(&self.program, &[(self.source, x)], &ExecConfig::default());
        stats.cycles
    }

    /// Runs on an unsigned input.
    ///
    /// # Errors
    ///
    /// [`CompilerError::Trapped`] when the code traps (checked overflow).
    pub fn run_u32(&self, x: u32) -> Result<u32, CompilerError> {
        let (m, stats) = run_fn(&self.program, &[(self.source, x)], &ExecConfig::default());
        match stats.termination {
            pa_sim::Termination::Completed => Ok(m.reg(self.dest)),
            pa_sim::Termination::Trapped(t) => Err(CompilerError::Trapped(t.kind)),
            _ => Err(CompilerError::DidNotComplete),
        }
    }

    /// Runs on a signed input.
    ///
    /// # Errors
    ///
    /// [`CompilerError::Trapped`] when the code traps (checked overflow).
    pub fn run_i32(&self, x: i32) -> Result<i32, CompilerError> {
        self.run_u32(x as u32).map(|v| v as i32)
    }
}

impl fmt::Display for CompiledOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; {}", self.kind)?;
        write!(f, "{}", self.program)
    }
}

/// Compiles constant multiplications and divisions the way the Precision
/// compilers' code generator does.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Compiler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = Compiler::new();
/// let op = c.mul_const(1000)?;
/// assert!(op.cycles() <= 4); // §8: "generally four or fewer"
/// assert_eq!(op.run_i32(-3)?, -3000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    mul_cfg: CodegenConfig,
    div_cfg: DivCodegenConfig,
}

impl Compiler {
    /// A compiler with the PA-RISC argument-register conventions.
    #[must_use]
    pub fn new() -> Compiler {
        Compiler {
            mul_cfg: CodegenConfig::default(),
            div_cfg: DivCodegenConfig::default(),
        }
    }

    /// Compiles `x * n`, wrapping on overflow (C semantics).
    ///
    /// # Errors
    ///
    /// See [`CompilerError`].
    pub fn mul_const(&self, n: i64) -> Result<CompiledOp, CompilerError> {
        let program = mulconst::compile_mul_const(n, &self.mul_cfg)?;
        Ok(self.wrap(
            OpKind::MulConst { n, checked: false },
            program,
            self.mul_cfg.source,
        ))
    }

    /// Compiles `x * n` with overflow trapping (Pascal semantics); the chain
    /// is restricted to the monotonic trapping-capable form (§5 *Overflow*).
    ///
    /// # Errors
    ///
    /// See [`CompilerError`].
    pub fn mul_const_checked(&self, n: i64) -> Result<CompiledOp, CompilerError> {
        let cfg = CodegenConfig {
            check_overflow: true,
            ..self.mul_cfg.clone()
        };
        let program = mulconst::compile_mul_const(n, &cfg)?;
        Ok(self.wrap(OpKind::MulConst { n, checked: true }, program, cfg.source))
    }

    /// Compiles unsigned `x / y`.
    ///
    /// # Errors
    ///
    /// See [`CompilerError`]; `y = 0` reports a divide codegen error.
    pub fn udiv_const(&self, y: u32) -> Result<CompiledOp, CompilerError> {
        let program = divconst::compile_div_const(y, Signedness::Unsigned, &self.div_cfg)?;
        Ok(self.wrap(OpKind::UdivConst { y }, program, self.div_cfg.source))
    }

    /// Compiles signed `trunc(x / y)` (y may be negative).
    ///
    /// # Errors
    ///
    /// See [`CompilerError`].
    pub fn sdiv_const(&self, y: i32) -> Result<CompiledOp, CompilerError> {
        let program = divconst::compile_div_const_i32(y, &self.div_cfg)?;
        Ok(self.wrap(OpKind::SdivConst { y }, program, self.div_cfg.source))
    }

    /// Compiles unsigned `x % y` — an extension composed from the paper's
    /// pieces: `x - (x / y) * y`, with the multiply-back going through the
    /// §5 constant-multiply chains.
    ///
    /// # Errors
    ///
    /// See [`CompilerError`].
    pub fn urem_const(&self, y: u32) -> Result<CompiledOp, CompilerError> {
        let div = divconst::compile_div_const(y, Signedness::Unsigned, &self.div_cfg)?;
        // Multiply the quotient (in dest) by y into a temp, then subtract.
        let quotient = self.div_cfg.dest;
        let product = self.div_cfg.temps[0];
        let mul_cfg = CodegenConfig {
            source: quotient,
            dest: product,
            temps: self.div_cfg.temps[1..6].to_vec(),
            check_overflow: false,
        };
        let mul = mulconst::compile_mul_const(i64::from(y), &mul_cfg)?;
        let mut combined = div.concat(&mul, "_mulback");
        let mut b = pa_isa::ProgramBuilder::new();
        b.sub(self.div_cfg.source, product, quotient);
        let sub = b.build().expect("single sub builds");
        combined = combined.concat(&sub, "_rem");
        Ok(self.wrap(OpKind::UremConst { y }, combined, self.div_cfg.source))
    }

    /// Compiles signed `x % y` (C semantics: the remainder takes the
    /// dividend's sign) — composed as `x - trunc(x / y) * y`.
    ///
    /// # Errors
    ///
    /// See [`CompilerError`].
    pub fn srem_const(&self, y: i32) -> Result<CompiledOp, CompilerError> {
        let div = divconst::compile_div_const_i32(y, &self.div_cfg)?;
        let quotient = self.div_cfg.dest;
        let product = self.div_cfg.temps[0];
        let mul_cfg = CodegenConfig {
            source: quotient,
            dest: product,
            temps: self.div_cfg.temps[1..6].to_vec(),
            check_overflow: false,
        };
        let mul = mulconst::compile_mul_const(i64::from(y), &mul_cfg)?;
        let mut combined = div.concat(&mul, "_mulback");
        let mut b = pa_isa::ProgramBuilder::new();
        b.sub(self.div_cfg.source, product, quotient);
        let sub = b.build().expect("single sub builds");
        combined = combined.concat(&sub, "_rem");
        Ok(self.wrap(OpKind::SremConst { y }, combined, self.div_cfg.source))
    }

    fn wrap(&self, kind: OpKind, program: Program, source: Reg) -> CompiledOp {
        CompiledOp {
            kind,
            program,
            source,
            dest: self.div_cfg.dest,
        }
    }
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_const_examples() {
        let c = Compiler::new();
        for (n, x, expect) in [(10i64, 7i32, 70i32), (-3, 9, -27), (0, 5, 0), (1, -4, -4)] {
            let op = c.mul_const(n).unwrap();
            assert_eq!(op.run_i32(x).unwrap(), expect, "{n} * {x}");
        }
    }

    #[test]
    fn checked_mul_traps() {
        let c = Compiler::new();
        let op = c.mul_const_checked(3).unwrap();
        assert_eq!(op.run_i32(10).unwrap(), 30);
        assert_eq!(
            op.run_i32(i32::MAX / 2),
            Err(CompilerError::Trapped(TrapKind::Overflow))
        );
    }

    #[test]
    fn udiv_figure7() {
        let c = Compiler::new();
        let op = c.udiv_const(3).unwrap();
        assert_eq!(op.cycles(), 17);
        assert_eq!(op.run_u32(u32::MAX).unwrap(), u32::MAX / 3);
    }

    #[test]
    fn sdiv_negative_divisor() {
        let c = Compiler::new();
        let op = c.sdiv_const(-7).unwrap();
        assert_eq!(op.run_i32(100).unwrap(), -14);
        assert_eq!(op.run_i32(-100).unwrap(), 14);
    }

    #[test]
    fn urem_composition() {
        let c = Compiler::new();
        for y in [2u32, 3, 7, 10, 12, 100] {
            let op = c.urem_const(y).unwrap();
            for x in [0u32, 1, 99, 12345, u32::MAX] {
                assert_eq!(op.run_u32(x).unwrap(), x % y, "{x} % {y}");
            }
        }
    }

    #[test]
    fn srem_composition() {
        let c = Compiler::new();
        for y in [2i32, 3, -3, 7, -10, 12] {
            let op = c.srem_const(y).unwrap();
            for x in [0i32, 1, -1, 99, -99, 12345, -12345, i32::MAX, i32::MIN + 1] {
                let expect = (i64::from(x) % i64::from(y)) as i32;
                assert_eq!(op.run_i32(x).unwrap(), expect, "{x} % {y}");
            }
        }
    }

    #[test]
    fn display_shows_kind_and_listing() {
        let c = Compiler::new();
        let op = c.mul_const(10).unwrap();
        let text = op.to_string();
        assert!(text.contains("; x * 10"));
        assert!(text.contains("sh2add"));
    }

    #[test]
    fn cycle_accounting() {
        let c = Compiler::new();
        let op = c.mul_const(10).unwrap();
        assert_eq!(op.cycles(), 2);
        assert_eq!(op.len(), 2);
        assert!(!op.is_empty());
        assert_eq!(
            op.kind(),
            OpKind::MulConst {
                n: 10,
                checked: false
            }
        );
    }
}
