//! §2's compiler discussion, made executable: **strength reduction**.
//!
//! *"Strength reduction is the practice of replacing multiplications by
//! additions and additions by increments wherever possible, since they are
//! less costly than multiplications."* The paper's example:
//!
//! ```c
//! for (i = 0; i < 10; i = i + 1)
//!     j = j + i * 15;
//! ```
//!
//! [`compare`] builds both versions of such a loop as real machine code —
//! the naive one re-multiplying the induction variable each trip through a
//! §5 constant-multiply chain, the reduced one adding a running multiple —
//! runs them on the simulator and reports the cycle difference. It also
//! demonstrates the paper's remark that optimisation *increases* the share
//! of time spent in the divisions it cannot remove.

use core::fmt;

use mulconst::{compile_mul_const, CodegenConfig};
use pa_isa::{Cond, Program, ProgramBuilder, Reg};
use pa_sim::{run_fn, ExecConfig};

use crate::Result;

/// The loop being compiled: `for i in 1..=trips { acc += i * factor }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSpec {
    /// Trip count (≥ 1).
    pub trips: u32,
    /// The loop-invariant multiplier.
    pub factor: i64,
}

/// The measured outcome of compiling [`LoopSpec`] both ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparison {
    /// The accumulated value (identical for both versions, checked).
    pub result: i32,
    /// Cycles with the multiply re-done every iteration.
    pub naive_cycles: u64,
    /// Cycles with the multiplication strength-reduced to an addition.
    pub reduced_cycles: u64,
}

impl Comparison {
    /// The §2 payoff: cycles saved per loop trip.
    #[must_use]
    pub fn saved_per_trip(&self, trips: u32) -> f64 {
        (self.naive_cycles.saturating_sub(self.reduced_cycles)) as f64 / f64::from(trips.max(1))
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "naive {} cycles, strength-reduced {} cycles (result {})",
            self.naive_cycles, self.reduced_cycles, self.result
        )
    }
}

// Register plan: i in r3, accumulator in r28, multiply scratch r4/r1/r31,
// running multiple in r5.
const IVAR: Reg = Reg::R3;
const ACC: Reg = Reg::R28;
const PRODUCT: Reg = Reg::R4;
const RUNNING: Reg = Reg::R5;

/// Builds the unoptimised loop: each trip multiplies the induction variable
/// by `factor` through the §5 chain code.
///
/// # Errors
///
/// Propagates multiply-codegen failures.
pub fn naive_loop(spec: LoopSpec) -> Result<Program> {
    let mul_cfg = CodegenConfig {
        source: IVAR,
        dest: PRODUCT,
        temps: vec![Reg::R1, Reg::R31, Reg::R29, Reg::R25, Reg::R24],
        check_overflow: false,
    };
    let body = compile_mul_const(spec.factor, &mul_cfg)?;

    let mut b = ProgramBuilder::new();
    b.ldi(1, IVAR);
    b.copy(Reg::R0, ACC);
    let top = b.here("loop");
    for insn in body.insns() {
        b.raw(insn.op);
    }
    b.add(PRODUCT, ACC, ACC);
    b.addi(1, IVAR, IVAR);
    let limit = i32::try_from(spec.trips).unwrap_or(i32::MAX);
    b.comiclr(Cond::Lt, limit, IVAR, Reg::R0); // trips < i → exit
    b.b(top);
    Ok(b.build()?)
}

/// Builds the strength-reduced loop: the multiplication results form an
/// arithmetic progression, so each trip adds `factor` to a running multiple.
///
/// # Errors
///
/// Propagates multiply-codegen failures (only the loop-invariant setup
/// multiplies).
pub fn reduced_loop(spec: LoopSpec) -> Result<Program> {
    let mut b = ProgramBuilder::new();
    b.ldi(1, IVAR);
    b.copy(Reg::R0, ACC);
    // running = 1 * factor, computed once before the loop.
    let mul_cfg = CodegenConfig {
        source: IVAR,
        dest: RUNNING,
        temps: vec![Reg::R1, Reg::R31, Reg::R29, Reg::R25, Reg::R24],
        check_overflow: false,
    };
    let setup = compile_mul_const(spec.factor, &mul_cfg)?;
    for insn in setup.insns() {
        b.raw(insn.op);
    }
    // The per-trip increment also needs `factor` in a register.
    let step = Reg::R6;
    let step_cfg = CodegenConfig {
        dest: step,
        ..mul_cfg
    };
    let step_code = compile_mul_const(spec.factor, &step_cfg)?;
    for insn in step_code.insns() {
        b.raw(insn.op);
    }
    let top = b.here("loop");
    b.add(RUNNING, ACC, ACC);
    b.add(step, RUNNING, RUNNING);
    b.addi(1, IVAR, IVAR);
    let limit = i32::try_from(spec.trips).unwrap_or(i32::MAX);
    b.comiclr(Cond::Lt, limit, IVAR, Reg::R0);
    b.b(top);
    Ok(b.build()?)
}

/// Compiles and runs both versions, checking they agree.
///
/// # Errors
///
/// Propagates codegen failures; simulation mismatches panic (they would be
/// a bug in this crate).
///
/// # Panics
///
/// Panics if the two versions disagree — a correctness bug.
///
/// # Example
///
/// ```
/// use hppa_muldiv::strength::{compare, LoopSpec};
///
/// // The paper's loop: i*15 summed over ten trips.
/// let cmp = compare(LoopSpec { trips: 10, factor: 15 })?;
/// assert_eq!(cmp.result, 15 * (1..=10).sum::<i32>());
/// assert!(cmp.reduced_cycles < cmp.naive_cycles);
/// # Ok::<(), hppa_muldiv::Error>(())
/// ```
pub fn compare(spec: LoopSpec) -> Result<Comparison> {
    let naive = naive_loop(spec)?;
    let reduced = reduced_loop(spec)?;
    let cfg = ExecConfig {
        max_cycles: 100_000_000,
        ..ExecConfig::default()
    };
    let (m1, s1) = run_fn(&naive, &[], &cfg);
    let (m2, s2) = run_fn(&reduced, &[], &cfg);
    assert!(s1.termination.is_completed() && s2.termination.is_completed());
    assert_eq!(
        m1.reg(ACC),
        m2.reg(ACC),
        "strength reduction changed the result"
    );
    Ok(Comparison {
        result: m1.reg_i32(ACC),
        naive_cycles: s1.cycles,
        reduced_cycles: s2.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_i_times_15() {
        let cmp = compare(LoopSpec {
            trips: 10,
            factor: 15,
        })
        .unwrap();
        assert_eq!(cmp.result, 15 * 55);
        assert!(cmp.reduced_cycles < cmp.naive_cycles, "{cmp}");
    }

    #[test]
    fn bigger_factors_save_more() {
        let cheap = compare(LoopSpec {
            trips: 100,
            factor: 2,
        })
        .unwrap();
        let costly = compare(LoopSpec {
            trips: 100,
            factor: 1979,
        })
        .unwrap();
        assert!(
            costly.saved_per_trip(100) > cheap.saved_per_trip(100),
            "longer chains must make reduction more valuable"
        );
    }

    #[test]
    fn results_match_closed_form() {
        for (trips, factor) in [(1u32, 7i64), (2, -3), (50, 123), (10, 0)] {
            let cmp = compare(LoopSpec { trips, factor }).unwrap();
            let expect: i64 = (1..=i64::from(trips)).map(|i| i * factor).sum();
            assert_eq!(
                i64::from(cmp.result),
                expect as i32 as i64,
                "{trips}×{factor}"
            );
        }
    }

    #[test]
    fn single_trip_overhead_can_favour_naive() {
        // With one trip the reduced version pays two setup multiplies.
        let cmp = compare(LoopSpec {
            trips: 1,
            factor: 15,
        })
        .unwrap();
        assert!(cmp.reduced_cycles >= cmp.naive_cycles);
    }
}
