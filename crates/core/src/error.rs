//! One error type for the whole façade.
//!
//! Each substrate crate keeps its own precise error enum (`IsaError`,
//! `ChainError`, `CodegenError`, …), but the façade methods all return
//! [`crate::Result`] so callers handle a single type. `From` impls lift
//! every substrate error — and the legacy [`CompilerError`] shim type —
//! into [`Error`].
//!
//! [`CompilerError`]: crate::CompilerError

use core::fmt;

use addchain::ChainError;
use divconst::{DivCodegenError, MagicError};
use mulconst::CodegenError;
use pa_isa::IsaError;
use pa_sim::TrapKind;

/// `Result` with the façade's unified [`Error`].
pub type Result<T> = core::result::Result<T, Error>;

/// Any failure the `hppa_muldiv` façade can report.
///
/// # Example
///
/// ```
/// use hppa_muldiv::{Compiler, Error};
///
/// let c = Compiler::new();
/// assert!(matches!(c.udiv_const(0), Err(Error::DivideByZero)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Program construction failed in `pa-isa`.
    Isa(IsaError),
    /// An addition chain failed validation.
    Chain(ChainError),
    /// Constant-multiply codegen failed.
    MulCodegen(CodegenError),
    /// Constant-divide codegen failed (other than a zero divisor).
    DivCodegen(DivCodegenError),
    /// Magic-number derivation failed.
    Magic(MagicError),
    /// Division by zero — at compile time (`udiv_const(0)`) or at run time
    /// (the millicode `BREAK`).
    DivideByZero,
    /// The simulated code trapped (overflow or an unexpected `BREAK`).
    Trapped(TrapKind),
    /// The simulated code did not run to completion (watchdog).
    DidNotComplete,
    /// A builder was given an invalid knob value (for example
    /// `RuntimeBuilder::workers(0)`); the message names the knob.
    InvalidConfig(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Isa(e) => write!(f, "isa: {e}"),
            Error::Chain(e) => write!(f, "addition chain: {e}"),
            Error::MulCodegen(e) => write!(f, "multiply codegen: {e}"),
            Error::DivCodegen(e) => write!(f, "divide codegen: {e}"),
            Error::Magic(e) => write!(f, "magic derivation: {e}"),
            Error::DivideByZero => write!(f, "division by zero"),
            Error::Trapped(TrapKind::Overflow) => write!(f, "overflow trap"),
            Error::Trapped(TrapKind::Break(code)) => write!(f, "break trap (code {code})"),
            Error::DidNotComplete => write!(f, "execution did not complete"),
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Isa(e) => Some(e),
            Error::Chain(e) => Some(e),
            Error::MulCodegen(e) => Some(e),
            Error::DivCodegen(e) => Some(e),
            Error::Magic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IsaError> for Error {
    fn from(e: IsaError) -> Error {
        Error::Isa(e)
    }
}

impl From<ChainError> for Error {
    fn from(e: ChainError) -> Error {
        Error::Chain(e)
    }
}

impl From<CodegenError> for Error {
    fn from(e: CodegenError) -> Error {
        Error::MulCodegen(e)
    }
}

impl From<DivCodegenError> for Error {
    fn from(e: DivCodegenError) -> Error {
        // A zero divisor is the caller-facing condition, not a codegen
        // internals detail; fold it into the unified variant.
        match e {
            DivCodegenError::ZeroDivisor => Error::DivideByZero,
            other => Error::DivCodegen(other),
        }
    }
}

impl From<MagicError> for Error {
    fn from(e: MagicError) -> Error {
        Error::Magic(e)
    }
}

impl From<crate::CompilerError> for Error {
    fn from(e: crate::CompilerError) -> Error {
        match e {
            crate::CompilerError::Mul(inner) => inner.into(),
            crate::CompilerError::Div(inner) => inner.into(),
            crate::CompilerError::Trapped(kind) => Error::Trapped(kind),
            crate::CompilerError::DidNotComplete => Error::DidNotComplete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_divisor_folds_into_divide_by_zero() {
        let e: Error = DivCodegenError::ZeroDivisor.into();
        assert_eq!(e, Error::DivideByZero);
        let e: Error = DivCodegenError::RegisterConflict.into();
        assert!(matches!(e, Error::DivCodegen(_)));
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(Error::DivideByZero.to_string(), "division by zero");
        assert_eq!(
            Error::Trapped(TrapKind::Overflow).to_string(),
            "overflow trap"
        );
        let e: Error = CodegenError::NotOverflowSafe.into();
        assert!(e.to_string().starts_with("multiply codegen:"));
        assert_eq!(
            Error::InvalidConfig("workers must be non-zero").to_string(),
            "invalid configuration: workers must be non-zero"
        );
    }

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e: Error = CodegenError::NotOverflowSafe.into();
        assert!(e.source().is_some());
        assert!(Error::DivideByZero.source().is_none());
    }
}
