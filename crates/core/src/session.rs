//! Reusable execution sessions and structured call outcomes.

use std::sync::Arc;

use millicode::{divvar, mulvar};
use pa_isa::Reg;
use pa_sim::{Machine, PreparedProgram, Termination, TrapKind};

use crate::runtime::Routines;
use crate::{Error, Result};

/// The outcome of one runtime or compiled-op call.
///
/// Replaces the old positional tuples (`(i32, u64)`, `(u32, u32, u64)`):
/// `value` is the product or quotient, `rem` the remainder when the routine
/// produces one, and `cycles` the simulated cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome<T> {
    /// The product or quotient.
    pub value: T,
    /// The remainder, for divide routines that compute one.
    pub rem: Option<T>,
    /// Simulated cycles consumed.
    pub cycles: u64,
}

/// The outcome of a batch call: per-input results plus total simulated
/// cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome<T> {
    /// Per-input products or quotients, in input order.
    pub values: Vec<T>,
    /// Per-input remainders, when the routine produces them.
    pub rems: Option<Vec<T>>,
    /// Total simulated cycles across the batch.
    pub cycles: u64,
}

impl<T> BatchOutcome<T> {
    /// Number of operations in the batch.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.values.len()
    }
}

/// Order-sensitive FNV-1a over 32-bit words: equal checksums mean equal
/// word sequences for practical purposes, and a reordering changes the sum.
fn fnv1a(words: impl IntoIterator<Item = u32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl BatchOutcome<u32> {
    /// An order-sensitive checksum over values then remainders, for cheap
    /// parallel-vs-serial equivalence checks.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        fnv1a(
            self.values
                .iter()
                .copied()
                .chain(self.rems.iter().flatten().copied()),
        )
    }
}

impl BatchOutcome<i32> {
    /// An order-sensitive checksum over values then remainders, for cheap
    /// parallel-vs-serial equivalence checks.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        fnv1a(
            self.values
                .iter()
                .chain(self.rems.iter().flatten())
                .map(|&v| v as u32),
        )
    }
}

/// A call session that owns one reusable [`Machine`], avoiding a fresh
/// register-file allocation per call. The machine is reset before every
/// call, so results and cycle counts are identical to the per-call
/// [`Runtime`](crate::Runtime) methods.
///
/// Sessions hold the runtime's routines by `Arc`, not by borrow: they are
/// `Send`, [`Runtime::session`](crate::Runtime::session) can be called any
/// number of times concurrently, and a session outlives the runtime handle
/// it came from.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::new()?;
/// let mut s = rt.session();
/// let out = s.div(-1000, 7)?;
/// assert_eq!(out.value, -142);
/// assert_eq!(out.rem, Some(-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    routines: Arc<Routines>,
    machine: Machine,
}

impl Session {
    pub(crate) fn new(routines: Arc<Routines>) -> Session {
        Session {
            routines,
            machine: Machine::new(),
        }
    }

    /// Runs `p` on `machine` with the millicode argument conventions.
    /// A free function over the machine field (not `&mut self`) so the
    /// routine reference can borrow `self.routines` disjointly.
    fn call(m: &mut Machine, p: &PreparedProgram, a: u32, b: u32) -> Result<(u32, u32, u64)> {
        m.reset();
        m.set_reg(Reg::R26, a);
        m.set_reg(Reg::R25, b);
        let r = p.run(m);
        match r.termination {
            Termination::Completed => Ok((m.reg(Reg::R28), m.reg(Reg::R29), r.cycles)),
            Termination::Trapped(t) if t.kind == TrapKind::Break(divvar::DIV_ZERO_BREAK) => {
                Err(Error::DivideByZero)
            }
            Termination::Trapped(t) => Err(Error::Trapped(t.kind)),
            _ => Err(Error::DidNotComplete),
        }
    }

    /// Signed multiply via the §6 switched algorithm (wrapping, like C on
    /// the real machine).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul(&mut self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        let (v, _, cycles) = Session::call(
            &mut self.machine,
            &self.routines.mul_signed,
            x as u32,
            y as u32,
        )?;
        telemetry::emit(|| {
            let (tier, driver) = mulvar::tier_for(true, x as u32, y as u32);
            telemetry::Event::MulStrategy {
                routine: "switched",
                tier,
                operand: i64::from(driver),
                cycles: Some(cycles),
            }
        });
        Ok(RunOutcome {
            value: v as i32,
            rem: None,
            cycles,
        })
    }

    /// Unsigned multiply (wrapping).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul_unsigned(&mut self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        let (v, _, cycles) = Session::call(&mut self.machine, &self.routines.mul_unsigned, x, y)?;
        telemetry::emit(|| {
            let (tier, driver) = mulvar::tier_for(false, x, y);
            telemetry::Event::MulStrategy {
                routine: "switched",
                tier,
                operand: i64::from(driver),
                cycles: Some(cycles),
            }
        });
        Ok(RunOutcome {
            value: v,
            rem: None,
            cycles,
        })
    }

    /// Signed divide, truncating toward zero; `rem` carries the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div(&mut self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        let (q, r, cycles) =
            Session::call(&mut self.machine, &self.routines.sdiv, x as u32, y as u32)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "sdiv",
            tier: divvar::general_tier(true, y as u32),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok(RunOutcome {
            value: q as i32,
            rem: Some(r as i32),
            cycles,
        })
    }

    /// Unsigned divide via the general `DS`/`ADDC` routine; `rem` carries
    /// the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_unsigned(&mut self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        let (q, r, cycles) = Session::call(&mut self.machine, &self.routines.udiv, x, y)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "udiv",
            tier: divvar::general_tier(false, y),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok(RunOutcome {
            value: q,
            rem: Some(r),
            cycles,
        })
    }

    /// Unsigned divide through the §7 small-divisor dispatch (quotient
    /// only): divisors below the dispatch limit hit the inlined
    /// derived-method bodies.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_dispatch(&mut self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        let (q, _, cycles) = Session::call(&mut self.machine, &self.routines.dispatch, x, y)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "small_dispatch",
            tier: divvar::dispatch_tier(self.routines.dispatch_limit, y),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok(RunOutcome {
            value: q,
            rem: None,
            cycles,
        })
    }

    /// Multiplies every pair through the reused machine.
    ///
    /// # Errors
    ///
    /// Fails on the first pair that faults.
    pub fn mul_batch(&mut self, pairs: &[(i32, i32)]) -> Result<BatchOutcome<i32>> {
        let mut span =
            telemetry::span::enter_with("mul_batch", || format!("{} pairs", pairs.len()));
        let mut values = Vec::with_capacity(pairs.len());
        let mut cycles = 0u64;
        for &(x, y) in pairs {
            let out = self.mul(x, y)?;
            values.push(out.value);
            cycles += out.cycles;
        }
        span.add_cycles(cycles);
        Ok(BatchOutcome {
            values,
            rems: None,
            cycles,
        })
    }

    /// Divides every pair through the small-divisor dispatch.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor.
    pub fn div_dispatch_batch(&mut self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        let mut span =
            telemetry::span::enter_with("div_dispatch_batch", || format!("{} pairs", pairs.len()));
        let mut values = Vec::with_capacity(pairs.len());
        let mut cycles = 0u64;
        for &(x, y) in pairs {
            let out = self.div_dispatch(x, y)?;
            values.push(out.value);
            cycles += out.cycles;
        }
        span.add_cycles(cycles);
        Ok(BatchOutcome {
            values,
            rems: None,
            cycles,
        })
    }

    /// Unsigned-divides every pair through the general routine, collecting
    /// remainders too.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor.
    pub fn div_unsigned_batch(&mut self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        let mut span =
            telemetry::span::enter_with("div_unsigned_batch", || format!("{} pairs", pairs.len()));
        let mut values = Vec::with_capacity(pairs.len());
        let mut rems = Vec::with_capacity(pairs.len());
        let mut cycles = 0u64;
        for &(x, y) in pairs {
            let out = self.div_unsigned(x, y)?;
            values.push(out.value);
            rems.push(out.rem.expect("udiv yields a remainder"));
            cycles += out.cycles;
        }
        span.add_cycles(cycles);
        Ok(BatchOutcome {
            values,
            rems: Some(rems),
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn session_matches_runtime_methods() {
        let rt = Runtime::new().unwrap();
        let mut s = rt.session();
        for (x, y) in [(3i32, 4i32), (-123, 456), (0, 9), (i32::MIN, -1)] {
            let fresh = rt.mul(x, y).unwrap();
            let reused = s.mul(x, y).unwrap();
            assert_eq!(fresh, reused, "{x} * {y}");
        }
        for (x, y) in [(1000u32, 7u32), (0, 3), (u32::MAX, 1)] {
            assert_eq!(
                rt.div_unsigned(x, y).unwrap(),
                s.div_unsigned(x, y).unwrap()
            );
            assert_eq!(
                rt.div_dispatch(x, y).unwrap(),
                s.div_dispatch(x, y).unwrap()
            );
        }
    }

    #[test]
    fn batches_accumulate_cycles() {
        let rt = Runtime::new().unwrap();
        let mut s = rt.session();
        let pairs = [(3i32, 4i32), (-5, 6), (1000, -1000)];
        let batch = s.mul_batch(&pairs).unwrap();
        assert_eq!(batch.ops(), 3);
        let mut total = 0;
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let out = s.mul(x, y).unwrap();
            assert_eq!(batch.values[i], out.value);
            assert_eq!(batch.values[i], x.wrapping_mul(y));
            total += out.cycles;
        }
        assert_eq!(batch.cycles, total);
    }

    #[test]
    fn division_by_zero_reports_in_batches() {
        let rt = Runtime::new().unwrap();
        let mut s = rt.session();
        assert_eq!(
            s.div_dispatch_batch(&[(5, 1), (5, 0)]),
            Err(Error::DivideByZero)
        );
    }
}
