//! The parallel execution service: a worker pool over the millicode
//! routines and the sharded compile cache.
//!
//! [`ParallelExecutor`] partitions a batch into contiguous chunks, one per
//! worker thread. Each worker owns its own [`pa_sim::Machine`] (via a
//! private [`Session`]) and shares the runtime's prepared routines and the
//! compiler's sharded cache by `Arc`, so the expensive work — chain search,
//! magic derivation, pre-decoding — is paid once process-wide no matter
//! how many threads run.
//!
//! # Determinism
//!
//! Results are **bit-identical to the serial batch methods for any worker
//! count**:
//!
//! * chunks are contiguous and merged back in chunk order, so `values`,
//!   `rems` and the summed `cycles` equal a serial run exactly;
//! * every worker's telemetry events are captured and re-emitted on the
//!   calling thread in chunk order, so strategy histograms are identical
//!   to serial no matter how the OS schedules the workers;
//! * on failure, the error reported is the one the serial run would have
//!   hit first: chunks partition the input in order, so the lowest-index
//!   failing chunk contains the globally first failing pair, and within a
//!   chunk the session stops at its first failure.
//!
//! Each simulated machine is reset before every call, so per-pair cycle
//! counts cannot depend on which worker ran the pair.

use std::num::NonZeroUsize;
use std::sync::Arc;

use crate::cache::CacheShardStats;
use crate::compiler::Compiler;
use crate::runtime::Routines;
use crate::session::{BatchOutcome, Session};
use crate::Result;

/// A worker-pool batch executor sharing one runtime's routines and one
/// sharded compile cache across `workers` threads.
///
/// Obtain one from [`Runtime::engine`](crate::Runtime::engine); configure
/// the pool with [`RuntimeBuilder::workers`](crate::RuntimeBuilder::workers)
/// and [`RuntimeBuilder::cache_shards`](crate::RuntimeBuilder::cache_shards).
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::builder().workers(4).build()?;
/// let engine = rt.engine();
/// let pairs: Vec<(i32, i32)> = (1..100).map(|i| (i, i + 7)).collect();
/// let parallel = engine.mul_batch(&pairs)?;
/// let serial = rt.mul_batch(&pairs)?;
/// assert_eq!(parallel, serial); // values, rems, and cycles all match
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ParallelExecutor {
    routines: Arc<Routines>,
    workers: NonZeroUsize,
    compiler: Compiler,
}

impl ParallelExecutor {
    pub(crate) fn new(
        routines: Arc<Routines>,
        workers: NonZeroUsize,
        cache_shards: NonZeroUsize,
    ) -> ParallelExecutor {
        let compiler = Compiler::builder()
            .overflow(routines.exec.overflow)
            .max_cycles(routines.exec.max_cycles)
            .stats(routines.exec.stats)
            .cache_shards(cache_shards.get())
            .build();
        ParallelExecutor {
            routines,
            workers,
            compiler,
        }
    }

    /// Worker threads batches are partitioned across.
    #[must_use]
    pub fn workers(&self) -> NonZeroUsize {
        self.workers
    }

    /// A new executor over the **same** routines and the **same** sharded
    /// compile cache, but a different pool width. Cheap — nothing is
    /// recompiled or re-prepared — so it is the natural way to measure
    /// scaling across thread counts.
    ///
    /// # Errors
    ///
    /// [`crate::Error::InvalidConfig`] when `workers` is zero.
    pub fn with_workers(&self, workers: usize) -> Result<ParallelExecutor> {
        let workers = NonZeroUsize::new(workers)
            .ok_or(crate::Error::InvalidConfig("workers must be non-zero"))?;
        Ok(ParallelExecutor {
            routines: Arc::clone(&self.routines),
            workers,
            compiler: self.compiler.clone(),
        })
    }

    /// The compiler whose sharded cache this engine's constant-operation
    /// batches go through. Clones of it share the same cache.
    #[must_use]
    pub fn compiler(&self) -> &Compiler {
        &self.compiler
    }

    /// Per-shard hit/miss/eviction statistics of the shared compile cache.
    #[must_use]
    pub fn cache_stats(&self) -> Vec<CacheShardStats> {
        self.compiler.cache_stats()
    }

    /// Multiplies every pair via the §6 switched routine, partitioned
    /// across the worker pool.
    ///
    /// # Errors
    ///
    /// Fails like the serial batch: on the first pair that faults.
    pub fn mul_batch(&self, pairs: &[(i32, i32)]) -> Result<BatchOutcome<i32>> {
        self.fan_out("parallel_mul_batch", pairs, |routines, chunk| {
            Session::new(routines).mul_batch(chunk)
        })
    }

    /// Divides every pair through the §7 small-divisor dispatch,
    /// partitioned across the worker pool.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor (the one a serial run hits first).
    pub fn div_dispatch_batch(&self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        self.fan_out("parallel_div_dispatch_batch", pairs, |routines, chunk| {
            Session::new(routines).div_dispatch_batch(chunk)
        })
    }

    /// Divides every pair through the general `DS`/`ADDC` routine,
    /// collecting remainders, partitioned across the worker pool.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor (the one a serial run hits first).
    pub fn div_unsigned_batch(&self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        self.fan_out("parallel_div_unsigned_batch", pairs, |routines, chunk| {
            Session::new(routines).div_unsigned_batch(chunk)
        })
    }

    /// Compiles `x * n` once (through the shared sharded cache) and runs
    /// the inputs through it, partitioned across the worker pool.
    ///
    /// # Errors
    ///
    /// Compile errors, or the first input that traps.
    pub fn mul_const_batch(&self, n: i64, inputs: &[i32]) -> Result<BatchOutcome<i32>> {
        // Compile on the calling thread so cache hit/miss telemetry does
        // not depend on which worker wins the race.
        let op = self.compiler.mul_const(n)?;
        self.fan_out("parallel_mul_const_batch", inputs, move |_, chunk| {
            op.run_batch_i32(chunk)
        })
    }

    /// Compiles unsigned `x / y` once (through the shared sharded cache)
    /// and runs the inputs through it, partitioned across the worker pool.
    ///
    /// # Errors
    ///
    /// Compile errors ([`crate::Error::DivideByZero`] for `y = 0`), or the
    /// first input that traps.
    pub fn udiv_const_batch(&self, y: u32, inputs: &[u32]) -> Result<BatchOutcome<u32>> {
        let op = self.compiler.udiv_const(y)?;
        self.fan_out("parallel_udiv_const_batch", inputs, move |_, chunk| {
            op.run_batch_u32(chunk)
        })
    }

    /// The partition/execute/merge core. `run` executes one contiguous
    /// chunk and must be pure per chunk (every closure we pass resets its
    /// machine per call), which is what makes the merge deterministic.
    fn fan_out<P, T, F>(&self, label: &'static str, items: &[P], run: F) -> Result<BatchOutcome<T>>
    where
        P: Sync,
        T: Send,
        F: Fn(Arc<Routines>, &[P]) -> Result<BatchOutcome<T>> + Sync,
    {
        let mut span = telemetry::span::enter_with(label, || {
            format!("{} ops / {} workers", items.len(), self.workers)
        });
        if items.is_empty() || self.workers.get() == 1 {
            // Inline: events flow straight to the caller's collector,
            // exactly as a serial batch would emit them.
            let out = run(Arc::clone(&self.routines), items)?;
            span.add_cycles(out.cycles);
            return Ok(out);
        }

        let chunk_len = items.len().div_ceil(self.workers.get());
        let chunks: Vec<(Vec<telemetry::Event>, Result<BatchOutcome<T>>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = items
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(index, chunk)| {
                        let run = &run;
                        let routines = Arc::clone(&self.routines);
                        scope.spawn(move || {
                            let mut worker_span =
                                telemetry::span::enter_with("engine_worker", || {
                                    format!("worker {index}: {} ops", chunk.len())
                                });
                            let (result, events) = telemetry::collect(|| run(routines, chunk));
                            if let Ok(out) = &result {
                                worker_span.add_cycles(out.cycles);
                            }
                            (events, result)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("engine worker panicked"))
                    .collect()
            });

        let mut values = Vec::with_capacity(items.len());
        let mut rems: Option<Vec<T>> = None;
        let mut cycles = 0u64;
        for (events, result) in chunks {
            // Re-emit this chunk's events on the calling thread before
            // surfacing its error, mirroring a serial run that emits for
            // every pair up to the first failure.
            for event in events {
                telemetry::emit(move || event);
            }
            let out = result?;
            values.extend(out.values);
            if let Some(r) = out.rems {
                rems.get_or_insert_with(Vec::new).extend(r);
            }
            cycles += out.cycles;
        }
        span.add_cycles(cycles);
        Ok(BatchOutcome {
            values,
            rems,
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use super::*;
    use crate::{Error, Runtime};

    /// Runtime construction assembles and prepares five millicode
    /// routines — expensive in debug builds — so every test shares one.
    fn runtime() -> &'static Runtime {
        static RT: OnceLock<Runtime> = OnceLock::new();
        RT.get_or_init(|| Runtime::new().unwrap())
    }

    fn engine_with(workers: usize) -> ParallelExecutor {
        static ENGINE: OnceLock<ParallelExecutor> = OnceLock::new();
        ENGINE
            .get_or_init(|| runtime().engine())
            .with_workers(workers)
            .unwrap()
    }

    #[test]
    fn executor_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParallelExecutor>();
    }

    #[test]
    fn parallel_batches_match_serial_for_every_worker_count() {
        let pairs: Vec<(i32, i32)> = (0..53).map(|i| (i * 7919 - 1000, 3 - i * 101)).collect();
        let div_pairs: Vec<(u32, u32)> = (0..53)
            .map(|i| (u32::MAX - i * 1_000_003, 1 + i % 25))
            .collect();
        let serial_rt = runtime();
        let mul_serial = serial_rt.mul_batch(&pairs).unwrap();
        let dispatch_serial = serial_rt.div_dispatch_batch(&div_pairs).unwrap();
        let udiv_serial = serial_rt.session().div_unsigned_batch(&div_pairs).unwrap();
        for workers in [1, 2, 4, 8] {
            let engine = engine_with(workers);
            assert_eq!(
                engine.mul_batch(&pairs).unwrap(),
                mul_serial,
                "{workers} workers"
            );
            assert_eq!(
                engine.div_dispatch_batch(&div_pairs).unwrap(),
                dispatch_serial,
                "{workers} workers"
            );
            assert_eq!(
                engine.div_unsigned_batch(&div_pairs).unwrap(),
                udiv_serial,
                "{workers} workers"
            );
        }
    }

    #[test]
    fn empty_batches_work() {
        let engine = engine_with(4);
        let out = engine.mul_batch(&[]).unwrap();
        assert_eq!(out.ops(), 0);
        assert_eq!(out.cycles, 0);
    }

    #[test]
    fn const_batches_share_the_cache_and_match_direct_runs() {
        let engine = engine_with(4);
        let inputs: Vec<i32> = (-500..500).collect();
        let out = engine.mul_const_batch(129, &inputs).unwrap();
        for (i, &x) in inputs.iter().enumerate() {
            assert_eq!(out.values[i], x * 129);
        }
        // Second run of the same constant is a cache hit.
        engine.mul_const_batch(129, &inputs).unwrap();
        let stats = engine.cache_stats();
        let hits: u64 = stats.iter().map(|s| s.hits).sum();
        assert!(hits >= 1, "{stats:?}");
        let uin: Vec<u32> = (0..1000).collect();
        let udiv = engine.udiv_const_batch(7, &uin).unwrap();
        for (i, &x) in uin.iter().enumerate() {
            assert_eq!(udiv.values[i], x / 7);
        }
        assert_eq!(engine.udiv_const_batch(0, &uin), Err(Error::DivideByZero));
    }

    #[test]
    fn first_error_matches_serial_semantics() {
        // Zero divisor in the middle: every worker count must report the
        // same error a serial run hits, and nothing else.
        let mut pairs: Vec<(u32, u32)> = (0..40).map(|i| (1000 + i, 1 + i % 9)).collect();
        pairs[17].1 = 0;
        for workers in [1, 2, 4, 8] {
            let engine = engine_with(workers);
            assert_eq!(
                engine.div_dispatch_batch(&pairs),
                Err(Error::DivideByZero),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn parallel_events_equal_serial_events_in_order() {
        let pairs: Vec<(i32, i32)> = (0..37).map(|i| (i * 31, 5 - i)).collect();
        let serial_rt = runtime();
        let (_, serial_events) = telemetry::collect(|| serial_rt.mul_batch(&pairs).unwrap());
        let engine = engine_with(4);
        let (_, parallel_events) = telemetry::collect(|| engine.mul_batch(&pairs).unwrap());
        assert_eq!(
            format!("{serial_events:?}"),
            format!("{parallel_events:?}"),
            "event streams must be identical, not just histogram-equal"
        );
    }
}
