//! # hppa-muldiv — integer multiplication and division on the HP Precision
//! Architecture
//!
//! A full reproduction of Magenheimer, Peters, Pettis & Zuras, *"Integer
//! Multiplication and Division on the HP Precision Architecture"*
//! (ASPLOS 1987), as a usable Rust library:
//!
//! * [`Compiler`] — what the compiler back end does: turn `x * c`, `x / c`
//!   and `x % c` into straight-line shift-and-add / derived-method code
//!   (§5, §7), with optional overflow trapping. Compiled programs are
//!   pre-decoded for the simulator's fast path and memoised in a bounded,
//!   strategy-keyed cache: compiling the same constant twice searches once;
//! * [`Runtime`] — what the millicode library does: multiply and divide
//!   values unknown until run time (§6's switched algorithm, §4's
//!   `DS`/`ADDC` divide), reporting exact cycle counts from the bundled
//!   simulator. Open a [`Session`] to replay operand batches through one
//!   reusable machine, or a [`ParallelExecutor`] ([`Runtime::engine`]) to
//!   partition batches across a worker pool with bit-identical results;
//! * [`analysis`] — the distribution-weighted summaries of §8 ("the average
//!   multiply requires about six cycles and the average divide takes about
//!   40");
//! * one [`Error`] type (and [`Result`] alias) across the whole façade;
//! * re-exports of every substrate crate (`isa`, `sim`, `chains`, …) for
//!   users who want the pieces.
//!
//! ## Quickstart
//!
//! ```
//! use hppa_muldiv::{Compiler, Runtime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiler = Compiler::new();
//! let times10 = compiler.mul_const(10)?;
//! assert_eq!(times10.cycles(), 2); // the paper's §5 example
//! assert_eq!(times10.run_i32(7)?, 70);
//! // Batches reuse one machine; compiling 10 again is a cache hit.
//! let batch = compiler.mul_const(10)?.run_batch_u32(&[1, 2, 3])?;
//! assert_eq!(batch.values, vec![10, 20, 30]);
//!
//! let div3 = compiler.udiv_const(3)?;
//! assert_eq!(div3.cycles(), 17); // Figure 7
//! assert_eq!(div3.run_u32(100)?, 33);
//!
//! let rt = Runtime::new()?;
//! let out = rt.mul(-123, 456)?;
//! assert_eq!(out.value, -56088);
//! assert!(out.cycles < 40);
//! let division = rt.div_unsigned(1000, 7)?;
//! assert_eq!((division.value, division.rem), (142, Some(6)));
//!
//! // Hot loops: a session owns one reusable machine.
//! let mut session = rt.session();
//! let products = session.mul_batch(&[(3, 4), (-5, 6)])?;
//! assert_eq!(products.values, vec![12, -30]);
//!
//! // Multi-core: an engine partitions batches across worker threads.
//! // Results are bit-identical to the serial batch for any worker count.
//! let engine = rt.engine();
//! let parallel = engine.mul_batch(&[(3, 4), (-5, 6)])?;
//! assert_eq!(parallel, products);
//! # Ok(())
//! # }
//! ```
//!
//! ## Configuration
//!
//! The scattered knobs live on builders:
//!
//! ```
//! use hppa_muldiv::{Compiler, Runtime, sim::OverflowModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiler = Compiler::builder()
//!     .overflow(OverflowModel::Precise)
//!     .trapping_mul(true)     // mul_const compiles Pascal-flavor chains
//!     .cache_capacity(64)
//!     .build();
//! assert!(compiler.mul_const(5)?.run_i32(i32::MAX).is_err()); // traps
//!
//! let rt = Runtime::builder()
//!     .dispatch_limit(12)
//!     .workers(4)        // ParallelExecutor pool size
//!     .cache_shards(8)   // compile-cache lock shards
//!     .build()?;
//! assert_eq!(rt.div_dispatch(100, 7)?.value, 14);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cache;
mod compiler;
mod engine;
mod error;
mod runtime;
mod session;
pub mod strength;

pub use cache::CacheShardStats;
pub use compiler::{CompiledOp, Compiler, CompilerBuilder, CompilerError, OpKind};
pub use divconst::Signedness;
pub use engine::ParallelExecutor;
pub use error::{Error, Result};
pub use runtime::{Runtime, RuntimeBuilder, DISPATCH_LIMIT};
pub use session::{BatchOutcome, RunOutcome, Session};

// The substrate crates, re-exported under stable names.
pub use addchain as chains;
pub use baselines;
pub use divconst;
pub use millicode;
pub use mulconst;
pub use operand_dist;
pub use pa_isa as isa;
pub use pa_sim as sim;
pub use telemetry;
