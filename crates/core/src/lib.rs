//! # hppa-muldiv — integer multiplication and division on the HP Precision
//! Architecture
//!
//! A full reproduction of Magenheimer, Peters, Pettis & Zuras, *"Integer
//! Multiplication and Division on the HP Precision Architecture"*
//! (ASPLOS 1987), as a usable Rust library:
//!
//! * [`Compiler`] — what the compiler back end does: turn `x * c`, `x / c`
//!   and `x % c` into straight-line shift-and-add / derived-method code
//!   (§5, §7), with optional overflow trapping;
//! * [`Runtime`] — what the millicode library does: multiply and divide
//!   values unknown until run time (§6's switched algorithm, §4's
//!   `DS`/`ADDC` divide), reporting exact cycle counts from the bundled
//!   simulator;
//! * [`analysis`] — the distribution-weighted summaries of §8 ("the average
//!   multiply requires about six cycles and the average divide takes about
//!   40");
//! * re-exports of every substrate crate (`isa`, `sim`, `chains`, …) for
//!   users who want the pieces.
//!
//! ## Quickstart
//!
//! ```
//! use hppa_muldiv::{Compiler, Runtime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let compiler = Compiler::new();
//! let times10 = compiler.mul_const(10)?;
//! assert_eq!(times10.cycles(), 2); // the paper's §5 example
//! assert_eq!(times10.run_i32(7)?, 70);
//!
//! let div3 = compiler.udiv_const(3)?;
//! assert_eq!(div3.cycles(), 17); // Figure 7
//! assert_eq!(div3.run_u32(100)?, 33);
//!
//! let rt = Runtime::new()?;
//! let (product, cycles) = rt.mul_i32(-123, 456)?;
//! assert_eq!(product, -56088);
//! assert!(cycles < 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod compiler;
mod runtime;
pub mod strength;

pub use compiler::{CompiledOp, Compiler, CompilerError, OpKind};
pub use divconst::Signedness;
pub use runtime::{Runtime, RuntimeError, DISPATCH_LIMIT};

// The substrate crates, re-exported under stable names.
pub use addchain as chains;
pub use baselines;
pub use divconst;
pub use millicode;
pub use mulconst;
pub use operand_dist;
pub use pa_isa as isa;
pub use pa_sim as sim;
pub use telemetry;
