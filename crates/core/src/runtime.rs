//! The run-time facade: millicode calls with cycle accounting.

use core::fmt;

use millicode::{divvar, mulvar};
use pa_isa::Program;
use pa_sim::{ExecConfig, OverflowModel, PreparedProgram, TrapKind};

use crate::session::{BatchOutcome, RunOutcome, Session};
use crate::{Error, Result};

/// The divisor cutoff the runtime's §7 small-divisor dispatch is built with
/// by default (override with [`RuntimeBuilder::dispatch_limit`]).
pub const DISPATCH_LIMIT: u32 = 20;

/// Legacy error type of the pre-0.2 [`Runtime`] API, still returned by the
/// deprecated tuple-style methods. New code should match on
/// [`crate::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Division by zero (the millicode `BREAK`).
    DivideByZero,
    /// The routine trapped unexpectedly.
    Trapped(TrapKind),
    /// The routine did not complete (simulator watchdog).
    DidNotComplete,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::Trapped(TrapKind::Overflow) => write!(f, "overflow trap"),
            RuntimeError::Trapped(TrapKind::Break(code)) => {
                write!(f, "break trap (code {code})")
            }
            RuntimeError::DidNotComplete => write!(f, "execution did not complete"),
        }
    }
}

impl std::error::Error for RuntimeError {}

fn legacy(e: Error) -> RuntimeError {
    match e {
        Error::DivideByZero => RuntimeError::DivideByZero,
        Error::Trapped(kind) => RuntimeError::Trapped(kind),
        _ => RuntimeError::DidNotComplete,
    }
}

/// Configures a [`Runtime`].
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::builder().dispatch_limit(12).build()?;
/// assert_eq!(rt.div_dispatch(100, 7)?.value, 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    overflow: OverflowModel,
    max_cycles: u64,
    stats: bool,
    dispatch_limit: u32,
}

impl RuntimeBuilder {
    fn new() -> RuntimeBuilder {
        RuntimeBuilder {
            overflow: OverflowModel::default(),
            max_cycles: ExecConfig::default().max_cycles,
            stats: false,
            dispatch_limit: DISPATCH_LIMIT,
        }
    }

    /// Overflow detector used when routines execute.
    #[must_use]
    pub fn overflow(mut self, model: OverflowModel) -> RuntimeBuilder {
        self.overflow = model;
        self
    }

    /// Watchdog budget per call.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> RuntimeBuilder {
        self.max_cycles = max_cycles;
        self
    }

    /// Collect simulator statistics on every call (delegates execution to
    /// the instrumented interpreter).
    #[must_use]
    pub fn stats(mut self, stats: bool) -> RuntimeBuilder {
        self.stats = stats;
        self
    }

    /// Divisor cutoff for the §7 small-divisor dispatch table.
    #[must_use]
    pub fn dispatch_limit(mut self, limit: u32) -> RuntimeBuilder {
        self.dispatch_limit = limit;
        self
    }

    /// Builds all routines and pre-decodes them for the fast path.
    ///
    /// # Errors
    ///
    /// Propagates `pa_isa` construction errors (a bug if it ever fires).
    pub fn build(self) -> Result<Runtime> {
        let _span = telemetry::span::enter("build_routines");
        let config = ExecConfig {
            overflow: self.overflow,
            max_cycles: self.max_cycles,
            profile: false,
            trace: false,
            stats: self.stats,
        };
        let prepare = |p: Program, label: &str| {
            let prepared = PreparedProgram::new(&p, config.clone());
            telemetry::emit(|| telemetry::Event::Prepare {
                label: label.to_string(),
                len: prepared.len(),
            });
            prepared
        };
        Ok(Runtime {
            mul_signed: prepare(mulvar::switched(true)?, "mul_signed"),
            mul_unsigned: prepare(mulvar::switched(false)?, "mul_unsigned"),
            udiv: prepare(divvar::udiv()?, "udiv"),
            sdiv: prepare(divvar::sdiv()?, "sdiv"),
            dispatch: prepare(
                divvar::small_dispatch(self.dispatch_limit)?,
                "udiv_dispatch",
            ),
            dispatch_limit: self.dispatch_limit,
        })
    }
}

/// The millicode library: multiply and divide run-time values on the
/// simulated machine, returning exact cycle counts.
///
/// Construction builds the routines once ([`mulvar::switched`],
/// [`divvar::udiv`], [`divvar::sdiv`], [`divvar::small_dispatch`]) and
/// pre-decodes each into a [`PreparedProgram`]; calls are then cheap
/// simulator runs. For call-heavy workloads, open a [`Session`]
/// ([`Runtime::session`]) to also reuse one machine across calls.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::new()?;
/// let out = rt.div_unsigned(1000, 7)?;
/// assert_eq!((out.value, out.rem), (142, Some(6)));
/// assert!((68..=85).contains(&out.cycles)); // the paper's ≈80-cycle routine
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    mul_signed: PreparedProgram,
    mul_unsigned: PreparedProgram,
    udiv: PreparedProgram,
    sdiv: PreparedProgram,
    dispatch: PreparedProgram,
    dispatch_limit: u32,
}

impl Runtime {
    /// Builds all routines with default knobs.
    ///
    /// # Errors
    ///
    /// Propagates `pa_isa` construction errors (a bug if it ever fires).
    pub fn new() -> Result<Runtime> {
        Runtime::builder().build()
    }

    /// Starts configuring a runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Opens a call session owning one reusable machine.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// The dispatch-table divisor cutoff this runtime was built with.
    #[must_use]
    pub fn dispatch_limit(&self) -> u32 {
        self.dispatch_limit
    }

    pub(crate) fn prepared_mul_signed(&self) -> &PreparedProgram {
        &self.mul_signed
    }

    pub(crate) fn prepared_mul_unsigned(&self) -> &PreparedProgram {
        &self.mul_unsigned
    }

    pub(crate) fn prepared_udiv(&self) -> &PreparedProgram {
        &self.udiv
    }

    pub(crate) fn prepared_sdiv(&self) -> &PreparedProgram {
        &self.sdiv
    }

    pub(crate) fn prepared_dispatch(&self) -> &PreparedProgram {
        &self.dispatch
    }

    /// Signed multiply via the §6 switched algorithm (wrapping, like C on
    /// the real machine).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul(&self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        self.session().mul(x, y)
    }

    /// Unsigned multiply (wrapping).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul_unsigned(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().mul_unsigned(x, y)
    }

    /// Signed divide, truncating toward zero; `rem` carries the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div(&self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        self.session().div(x, y)
    }

    /// Unsigned divide via the general `DS`/`ADDC` routine; `rem` carries
    /// the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_unsigned(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().div_unsigned(x, y)
    }

    /// Unsigned divide through the §7 small-divisor dispatch (quotient
    /// only).
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_dispatch(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().div_dispatch(x, y)
    }

    /// Multiplies every pair through one reused machine.
    ///
    /// # Errors
    ///
    /// Fails on the first pair that faults.
    pub fn mul_batch(&self, pairs: &[(i32, i32)]) -> Result<BatchOutcome<i32>> {
        self.session().mul_batch(pairs)
    }

    /// Divides every pair through the small-divisor dispatch with one
    /// reused machine.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor.
    pub fn div_dispatch_batch(&self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        self.session().div_dispatch_batch(pairs)
    }

    /// Signed multiply: `(product, cycles)`.
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    #[deprecated(since = "0.2.0", note = "use `mul`, which returns a `RunOutcome`")]
    pub fn mul_i32(&self, x: i32, y: i32) -> core::result::Result<(i32, u64), RuntimeError> {
        let out = self.mul(x, y).map_err(legacy)?;
        Ok((out.value, out.cycles))
    }

    /// Unsigned multiply: `(product, cycles)`.
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    #[deprecated(
        since = "0.2.0",
        note = "use `mul_unsigned`, which returns a `RunOutcome`"
    )]
    pub fn mul_u32(&self, x: u32, y: u32) -> core::result::Result<(u32, u64), RuntimeError> {
        let out = self.mul_unsigned(x, y).map_err(legacy)?;
        Ok((out.value, out.cycles))
    }

    /// Unsigned divide: `(quotient, remainder, cycles)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    #[deprecated(
        since = "0.2.0",
        note = "use `div_unsigned`, which returns a `RunOutcome`"
    )]
    pub fn udiv(&self, x: u32, y: u32) -> core::result::Result<(u32, u32, u64), RuntimeError> {
        let out = self.div_unsigned(x, y).map_err(legacy)?;
        Ok((
            out.value,
            out.rem.expect("udiv yields a remainder"),
            out.cycles,
        ))
    }

    /// Signed divide: `(quotient, remainder, cycles)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    #[deprecated(since = "0.2.0", note = "use `div`, which returns a `RunOutcome`")]
    pub fn sdiv(&self, x: i32, y: i32) -> core::result::Result<(i32, i32, u64), RuntimeError> {
        let out = self.div(x, y).map_err(legacy)?;
        Ok((
            out.value,
            out.rem.expect("sdiv yields a remainder"),
            out.cycles,
        ))
    }

    /// Dispatch-table unsigned divide: `(quotient, cycles)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    #[deprecated(
        since = "0.2.0",
        note = "use `div_dispatch`, which returns a `RunOutcome`"
    )]
    pub fn udiv_dispatch(&self, x: u32, y: u32) -> core::result::Result<(u32, u64), RuntimeError> {
        let out = self.div_dispatch(x, y).map_err(legacy)?;
        Ok((out.value, out.cycles))
    }

    /// The underlying routines, for inspection or disassembly.
    #[must_use]
    pub fn programs(&self) -> [(&'static str, &Program); 5] {
        [
            ("mul_signed", self.mul_signed.program()),
            ("mul_unsigned", self.mul_unsigned.program()),
            ("udiv", self.udiv.program()),
            ("sdiv", self.sdiv.program()),
            ("udiv_dispatch", self.dispatch.program()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_and_count() {
        let rt = Runtime::new().unwrap();
        let out = rt.mul(-123, 456).unwrap();
        assert_eq!(out.value, -56088);
        assert!(out.rem.is_none());
        assert!(out.cycles < 45, "{} cycles", out.cycles);
        let out = rt.mul_unsigned(0xFFFF_FFFF, 2).unwrap();
        assert_eq!(out.value, 0xFFFF_FFFEu32);
    }

    #[test]
    fn divide_and_count() {
        let rt = Runtime::new().unwrap();
        let out = rt.div_unsigned(1000, 7).unwrap();
        assert_eq!((out.value, out.rem), (142, Some(6)));
        assert!((60..=90).contains(&out.cycles));
        let out = rt.div(-1000, 7).unwrap();
        assert_eq!((out.value, out.rem), (-142, Some(-6)));
    }

    #[test]
    fn dispatch_is_faster_for_small_divisors() {
        let rt = Runtime::new().unwrap();
        let fast = rt.div_dispatch(123_456, 7).unwrap();
        assert_eq!(fast.value, 123_456 / 7);
        let slow = rt.div_unsigned(123_456, 7).unwrap();
        assert!(
            fast.cycles < slow.cycles / 2,
            "dispatch {} vs general {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn zero_divisor_reports() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.div_unsigned(5, 0), Err(Error::DivideByZero));
        assert_eq!(rt.div(5, 0), Err(Error::DivideByZero));
        assert_eq!(rt.div_dispatch(5, 0), Err(Error::DivideByZero));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_tuple_shims_still_work() {
        let rt = Runtime::new().unwrap();
        let (p, c) = rt.mul_i32(-123, 456).unwrap();
        assert_eq!(p, -56088);
        assert!(c > 0);
        let (p, _) = rt.mul_u32(7, 9).unwrap();
        assert_eq!(p, 63);
        let (q, r, _) = rt.udiv(1000, 7).unwrap();
        assert_eq!((q, r), (142, 6));
        let (q, r, _) = rt.sdiv(-1000, 7).unwrap();
        assert_eq!((q, r), (-142, -6));
        let (q, _) = rt.udiv_dispatch(100, 7).unwrap();
        assert_eq!(q, 14);
        assert_eq!(rt.udiv(5, 0), Err(RuntimeError::DivideByZero));
        assert_eq!(rt.sdiv(5, 0), Err(RuntimeError::DivideByZero));
        assert_eq!(rt.udiv_dispatch(5, 0), Err(RuntimeError::DivideByZero));
    }

    #[test]
    fn runtime_calls_emit_strategy_events() {
        let rt = Runtime::new().unwrap();
        let ((), events) = telemetry::collect(|| {
            rt.mul(-123, 456).unwrap();
            rt.mul_unsigned(7, 9).unwrap();
            rt.div_unsigned(1000, 7).unwrap();
            rt.div(-1000, 7).unwrap();
            rt.div_dispatch(100, 7).unwrap();
            let _ = rt.div_unsigned(5, 0); // failed calls record nothing
        });
        assert_eq!(events.len(), 5);
        for e in &events {
            let cycles = match e {
                telemetry::Event::MulStrategy { cycles, .. }
                | telemetry::Event::DivDispatch { cycles, .. } => *cycles,
                other => panic!("unexpected event {other:?}"),
            };
            assert!(cycles.unwrap() > 0);
        }
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("mul/nibble-x2"), Some(&1)); // |−123| drives
        assert_eq!(hist.get("mul/nibble-x1"), Some(&1)); // 7 drives
        assert_eq!(hist.get("divvar/general"), Some(&2));
        assert_eq!(hist.get("divvar/inlined-body"), Some(&1));
    }

    #[test]
    fn builder_dispatch_limit_is_respected() {
        let rt = Runtime::builder().dispatch_limit(5).build().unwrap();
        assert_eq!(rt.dispatch_limit(), 5);
        assert_eq!(rt.div_dispatch(100, 3).unwrap().value, 33);
        // Divisors beyond the table fall to the general path but still
        // produce the right quotient.
        assert_eq!(rt.div_dispatch(100, 9).unwrap().value, 11);
    }

    #[test]
    fn construction_emits_prepare_events() {
        let (rt, events) = telemetry::collect(|| Runtime::new().unwrap());
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("prepare/program"), Some(&5));
        drop(rt);
    }

    #[test]
    fn programs_are_inspectable() {
        let rt = Runtime::new().unwrap();
        for (name, p) in rt.programs() {
            assert!(!p.is_empty(), "{name}");
        }
    }
}
