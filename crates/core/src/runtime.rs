//! The run-time facade: millicode calls with cycle accounting.

use core::fmt;

use millicode::{divvar, mulvar};
use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, Termination, TrapKind};

/// The divisor cutoff the runtime's §7 small-divisor dispatch is built with.
pub const DISPATCH_LIMIT: u32 = 20;

/// Errors from [`Runtime`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Division by zero (the millicode `BREAK`).
    DivideByZero,
    /// The routine trapped unexpectedly.
    Trapped(TrapKind),
    /// The routine did not complete (simulator watchdog).
    DidNotComplete,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivideByZero => write!(f, "division by zero"),
            RuntimeError::Trapped(TrapKind::Overflow) => write!(f, "overflow trap"),
            RuntimeError::Trapped(TrapKind::Break(code)) => {
                write!(f, "break trap (code {code})")
            }
            RuntimeError::DidNotComplete => write!(f, "execution did not complete"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The millicode library: multiply and divide run-time values on the
/// simulated machine, returning exact cycle counts.
///
/// Construction builds the four routines once ([`mulvar::switched`],
/// [`divvar::udiv`], [`divvar::sdiv`], [`divvar::small_dispatch`]); calls
/// are then cheap simulator runs.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::new()?;
/// let (q, r, cycles) = rt.udiv(1000, 7)?;
/// assert_eq!((q, r), (142, 6));
/// assert!((68..=85).contains(&cycles)); // the paper's ≈80-cycle routine
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    mul_signed: Program,
    mul_unsigned: Program,
    udiv: Program,
    sdiv: Program,
    dispatch: Program,
}

impl Runtime {
    /// Builds all routines.
    ///
    /// # Errors
    ///
    /// Propagates `pa_isa` construction errors (a bug if it ever fires).
    pub fn new() -> Result<Runtime, pa_isa::IsaError> {
        Ok(Runtime {
            mul_signed: mulvar::switched(true)?,
            mul_unsigned: mulvar::switched(false)?,
            udiv: divvar::udiv()?,
            sdiv: divvar::sdiv()?,
            dispatch: divvar::small_dispatch(DISPATCH_LIMIT)?,
        })
    }

    fn call(&self, p: &Program, a: u32, b: u32) -> Result<(pa_sim::Machine, u64), RuntimeError> {
        let (m, stats) = run_fn(p, &[(Reg::R26, a), (Reg::R25, b)], &ExecConfig::default());
        match stats.termination {
            Termination::Completed => Ok((m, stats.cycles)),
            Termination::Trapped(t) if t.kind == TrapKind::Break(divvar::DIV_ZERO_BREAK) => {
                Err(RuntimeError::DivideByZero)
            }
            Termination::Trapped(t) => Err(RuntimeError::Trapped(t.kind)),
            _ => Err(RuntimeError::DidNotComplete),
        }
    }

    /// Signed multiply via the §6 switched algorithm: `(product, cycles)`.
    /// Wrapping semantics, like C on the real machine.
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul_i32(&self, x: i32, y: i32) -> Result<(i32, u64), RuntimeError> {
        let (m, cycles) = self.call(&self.mul_signed, x as u32, y as u32)?;
        telemetry::emit(|| {
            let (tier, driver) = mulvar::tier_for(true, x as u32, y as u32);
            telemetry::Event::MulStrategy {
                routine: "switched",
                tier,
                operand: i64::from(driver),
                cycles: Some(cycles),
            }
        });
        Ok((m.reg_i32(Reg::R28), cycles))
    }

    /// Unsigned multiply (wrapping): `(product, cycles)`.
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul_u32(&self, x: u32, y: u32) -> Result<(u32, u64), RuntimeError> {
        let (m, cycles) = self.call(&self.mul_unsigned, x, y)?;
        telemetry::emit(|| {
            let (tier, driver) = mulvar::tier_for(false, x, y);
            telemetry::Event::MulStrategy {
                routine: "switched",
                tier,
                operand: i64::from(driver),
                cycles: Some(cycles),
            }
        });
        Ok((m.reg(Reg::R28), cycles))
    }

    /// Unsigned divide via the general `DS`/`ADDC` routine:
    /// `(quotient, remainder, cycles)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    pub fn udiv(&self, x: u32, y: u32) -> Result<(u32, u32, u64), RuntimeError> {
        let (m, cycles) = self.call(&self.udiv, x, y)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "udiv",
            tier: divvar::general_tier(false, y),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok((m.reg(Reg::R28), m.reg(Reg::R29), cycles))
    }

    /// Signed divide, truncating toward zero: `(quotient, remainder, cycles)`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    pub fn sdiv(&self, x: i32, y: i32) -> Result<(i32, i32, u64), RuntimeError> {
        let (m, cycles) = self.call(&self.sdiv, x as u32, y as u32)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "sdiv",
            tier: divvar::general_tier(true, y as u32),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok((m.reg_i32(Reg::R28), m.reg_i32(Reg::R29), cycles))
    }

    /// Unsigned divide through the §7 small-divisor dispatch (quotient
    /// only): divisors below 20 hit the inlined derived-method bodies.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::DivideByZero`] for `y = 0`.
    pub fn udiv_dispatch(&self, x: u32, y: u32) -> Result<(u32, u64), RuntimeError> {
        let (m, cycles) = self.call(&self.dispatch, x, y)?;
        telemetry::emit(|| telemetry::Event::DivDispatch {
            routine: "small_dispatch",
            tier: divvar::dispatch_tier(DISPATCH_LIMIT, y),
            divisor: i64::from(y),
            cycles: Some(cycles),
        });
        Ok((m.reg(Reg::R28), cycles))
    }

    /// The underlying routines, for inspection or disassembly.
    #[must_use]
    pub fn programs(&self) -> [(&'static str, &Program); 5] {
        [
            ("mul_signed", &self.mul_signed),
            ("mul_unsigned", &self.mul_unsigned),
            ("udiv", &self.udiv),
            ("sdiv", &self.sdiv),
            ("udiv_dispatch", &self.dispatch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_and_count() {
        let rt = Runtime::new().unwrap();
        let (p, c) = rt.mul_i32(-123, 456).unwrap();
        assert_eq!(p, -56088);
        assert!(c < 45, "{c} cycles");
        let (p, _) = rt.mul_u32(0xFFFF_FFFF, 2).unwrap();
        assert_eq!(p, 0xFFFF_FFFEu32);
    }

    #[test]
    fn divide_and_count() {
        let rt = Runtime::new().unwrap();
        let (q, r, c) = rt.udiv(1000, 7).unwrap();
        assert_eq!((q, r), (142, 6));
        assert!((60..=90).contains(&c));
        let (q, r, _) = rt.sdiv(-1000, 7).unwrap();
        assert_eq!((q, r), (-142, -6));
    }

    #[test]
    fn dispatch_is_faster_for_small_divisors() {
        let rt = Runtime::new().unwrap();
        let (q, fast) = rt.udiv_dispatch(123_456, 7).unwrap();
        assert_eq!(q, 123_456 / 7);
        let (_, _, slow) = rt.udiv(123_456, 7).unwrap();
        assert!(fast < slow / 2, "dispatch {fast} vs general {slow}");
    }

    #[test]
    fn zero_divisor_reports() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.udiv(5, 0), Err(RuntimeError::DivideByZero));
        assert_eq!(rt.sdiv(5, 0), Err(RuntimeError::DivideByZero));
        assert_eq!(rt.udiv_dispatch(5, 0), Err(RuntimeError::DivideByZero));
    }

    #[test]
    fn runtime_calls_emit_strategy_events() {
        let rt = Runtime::new().unwrap();
        let ((), events) = telemetry::collect(|| {
            rt.mul_i32(-123, 456).unwrap();
            rt.mul_u32(7, 9).unwrap();
            rt.udiv(1000, 7).unwrap();
            rt.sdiv(-1000, 7).unwrap();
            rt.udiv_dispatch(100, 7).unwrap();
            let _ = rt.udiv(5, 0); // failed calls record nothing
        });
        assert_eq!(events.len(), 5);
        for e in &events {
            let cycles = match e {
                telemetry::Event::MulStrategy { cycles, .. }
                | telemetry::Event::DivDispatch { cycles, .. } => *cycles,
                other => panic!("unexpected event {other:?}"),
            };
            assert!(cycles.unwrap() > 0);
        }
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("mul/nibble-x2"), Some(&1)); // |−123| drives
        assert_eq!(hist.get("mul/nibble-x1"), Some(&1)); // 7 drives
        assert_eq!(hist.get("divvar/general"), Some(&2));
        assert_eq!(hist.get("divvar/inlined-body"), Some(&1));
    }

    #[test]
    fn programs_are_inspectable() {
        let rt = Runtime::new().unwrap();
        for (name, p) in rt.programs() {
            assert!(!p.is_empty(), "{name}");
        }
    }
}
