//! The run-time facade: millicode calls with cycle accounting.

use std::num::NonZeroUsize;
use std::sync::Arc;

use millicode::{divvar, mulvar};
use pa_isa::Program;
use pa_sim::{ExecConfig, OverflowModel, PreparedProgram};

use crate::engine::ParallelExecutor;
use crate::session::{BatchOutcome, RunOutcome, Session};
use crate::{Error, Result};

/// The divisor cutoff the runtime's §7 small-divisor dispatch is built with
/// by default (override with [`RuntimeBuilder::dispatch_limit`]).
pub const DISPATCH_LIMIT: u32 = 20;

/// The prepared routines a runtime executes, plus the execution
/// configuration they were prepared under. One `Routines` is built per
/// runtime and shared behind an `Arc` by the runtime itself, every
/// [`Session`], and every [`ParallelExecutor`] worker — handing a session
/// to another thread is a reference-count bump.
#[derive(Debug)]
pub(crate) struct Routines {
    pub mul_signed: PreparedProgram,
    pub mul_unsigned: PreparedProgram,
    pub udiv: PreparedProgram,
    pub sdiv: PreparedProgram,
    pub dispatch: PreparedProgram,
    pub dispatch_limit: u32,
    pub exec: ExecConfig,
}

/// Configures a [`Runtime`].
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::builder().dispatch_limit(12).workers(4).build()?;
/// assert_eq!(rt.div_dispatch(100, 7)?.value, 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    overflow: OverflowModel,
    max_cycles: u64,
    stats: bool,
    dispatch_limit: u32,
    workers: usize,
    cache_shards: usize,
}

impl RuntimeBuilder {
    fn new() -> RuntimeBuilder {
        RuntimeBuilder {
            overflow: OverflowModel::default(),
            max_cycles: ExecConfig::default().max_cycles,
            stats: false,
            dispatch_limit: DISPATCH_LIMIT,
            workers: std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            cache_shards: crate::cache::ShardedCache::DEFAULT_SHARDS,
        }
    }

    /// Overflow detector used when routines execute.
    #[must_use]
    pub fn overflow(mut self, model: OverflowModel) -> RuntimeBuilder {
        self.overflow = model;
        self
    }

    /// Watchdog budget per call.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> RuntimeBuilder {
        self.max_cycles = max_cycles;
        self
    }

    /// Collect simulator statistics on every call (delegates execution to
    /// the instrumented interpreter).
    #[must_use]
    pub fn stats(mut self, stats: bool) -> RuntimeBuilder {
        self.stats = stats;
        self
    }

    /// Divisor cutoff for the §7 small-divisor dispatch table.
    #[must_use]
    pub fn dispatch_limit(mut self, limit: u32) -> RuntimeBuilder {
        self.dispatch_limit = limit;
        self
    }

    /// Worker threads the [`ParallelExecutor`] from [`Runtime::engine`]
    /// partitions batches across. Defaults to the host's available
    /// parallelism. Zero is rejected by [`build`](RuntimeBuilder::build)
    /// with [`Error::InvalidConfig`].
    #[must_use]
    pub fn workers(mut self, workers: usize) -> RuntimeBuilder {
        self.workers = workers;
        self
    }

    /// Lock shards for the engine's shared compile cache. More shards
    /// means less contention between workers compiling concurrently. Zero
    /// is rejected by [`build`](RuntimeBuilder::build) with
    /// [`Error::InvalidConfig`].
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> RuntimeBuilder {
        self.cache_shards = shards;
        self
    }

    /// Builds all routines and pre-decodes them for the fast path.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `workers` or `cache_shards` is zero;
    /// otherwise propagates `pa_isa` construction errors (a bug if it ever
    /// fires).
    pub fn build(self) -> Result<Runtime> {
        let workers = NonZeroUsize::new(self.workers)
            .ok_or(Error::InvalidConfig("workers must be non-zero"))?;
        let cache_shards = NonZeroUsize::new(self.cache_shards)
            .ok_or(Error::InvalidConfig("cache_shards must be non-zero"))?;
        let _span = telemetry::span::enter("build_routines");
        let config = ExecConfig {
            overflow: self.overflow,
            max_cycles: self.max_cycles,
            profile: false,
            trace: false,
            stats: self.stats,
        };
        let prepare = |p: Program, label: &str| {
            let prepared = PreparedProgram::new(&p, config.clone());
            telemetry::emit(|| telemetry::Event::Prepare {
                label: label.to_string(),
                len: prepared.len(),
            });
            prepared
        };
        let routines = Routines {
            mul_signed: prepare(mulvar::switched(true)?, "mul_signed"),
            mul_unsigned: prepare(mulvar::switched(false)?, "mul_unsigned"),
            udiv: prepare(divvar::udiv()?, "udiv"),
            sdiv: prepare(divvar::sdiv()?, "sdiv"),
            dispatch: prepare(
                divvar::small_dispatch(self.dispatch_limit)?,
                "udiv_dispatch",
            ),
            dispatch_limit: self.dispatch_limit,
            exec: config,
        };
        Ok(Runtime {
            routines: Arc::new(routines),
            workers,
            cache_shards,
        })
    }
}

/// The millicode library: multiply and divide run-time values on the
/// simulated machine, returning exact cycle counts.
///
/// Construction builds the routines once ([`mulvar::switched`],
/// [`divvar::udiv`], [`divvar::sdiv`], [`divvar::small_dispatch`]) and
/// pre-decodes each into a [`PreparedProgram`]; calls are then cheap
/// simulator runs. For call-heavy workloads, open a [`Session`]
/// ([`Runtime::session`]) to also reuse one machine across calls; for
/// multi-core workloads, ask for a [`ParallelExecutor`]
/// ([`Runtime::engine`]).
///
/// `Runtime` is `Send + Sync` and cloning is cheap (the routines sit
/// behind an `Arc`), so one runtime can serve any number of threads, each
/// with its own session.
///
/// # Example
///
/// ```
/// use hppa_muldiv::Runtime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rt = Runtime::new()?;
/// let out = rt.div_unsigned(1000, 7)?;
/// assert_eq!((out.value, out.rem), (142, Some(6)));
/// assert!((68..=85).contains(&out.cycles)); // the paper's ≈80-cycle routine
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    routines: Arc<Routines>,
    workers: NonZeroUsize,
    cache_shards: NonZeroUsize,
}

impl Runtime {
    /// Builds all routines with default knobs.
    ///
    /// # Errors
    ///
    /// Propagates `pa_isa` construction errors (a bug if it ever fires).
    pub fn new() -> Result<Runtime> {
        Runtime::builder().build()
    }

    /// Starts configuring a runtime.
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::new()
    }

    /// Opens a call session owning one reusable machine. Sessions share
    /// the runtime's routines by reference count, so they are `Send` and
    /// any number can be open at once — one per worker thread, say.
    #[must_use]
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.routines))
    }

    /// Builds a worker-pool executor over this runtime's routines, using
    /// the builder-configured [`workers`](RuntimeBuilder::workers) and
    /// [`cache_shards`](RuntimeBuilder::cache_shards).
    #[must_use]
    pub fn engine(&self) -> ParallelExecutor {
        ParallelExecutor::new(Arc::clone(&self.routines), self.workers, self.cache_shards)
    }

    /// The dispatch-table divisor cutoff this runtime was built with.
    #[must_use]
    pub fn dispatch_limit(&self) -> u32 {
        self.routines.dispatch_limit
    }

    /// Worker threads [`Runtime::engine`] will use.
    #[must_use]
    pub fn workers(&self) -> NonZeroUsize {
        self.workers
    }

    /// Compile-cache lock shards [`Runtime::engine`] will use.
    #[must_use]
    pub fn cache_shards(&self) -> NonZeroUsize {
        self.cache_shards
    }

    /// Signed multiply via the §6 switched algorithm (wrapping, like C on
    /// the real machine).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul(&self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        self.session().mul(x, y)
    }

    /// Unsigned multiply (wrapping).
    ///
    /// # Errors
    ///
    /// Only simulator faults (never expected).
    pub fn mul_unsigned(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().mul_unsigned(x, y)
    }

    /// Signed divide, truncating toward zero; `rem` carries the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div(&self, x: i32, y: i32) -> Result<RunOutcome<i32>> {
        self.session().div(x, y)
    }

    /// Unsigned divide via the general `DS`/`ADDC` routine; `rem` carries
    /// the remainder.
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_unsigned(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().div_unsigned(x, y)
    }

    /// Unsigned divide through the §7 small-divisor dispatch (quotient
    /// only).
    ///
    /// # Errors
    ///
    /// [`Error::DivideByZero`] for `y = 0`.
    pub fn div_dispatch(&self, x: u32, y: u32) -> Result<RunOutcome<u32>> {
        self.session().div_dispatch(x, y)
    }

    /// Multiplies every pair through one reused machine.
    ///
    /// # Errors
    ///
    /// Fails on the first pair that faults.
    pub fn mul_batch(&self, pairs: &[(i32, i32)]) -> Result<BatchOutcome<i32>> {
        self.session().mul_batch(pairs)
    }

    /// Divides every pair through the small-divisor dispatch with one
    /// reused machine.
    ///
    /// # Errors
    ///
    /// Fails on the first zero divisor.
    pub fn div_dispatch_batch(&self, pairs: &[(u32, u32)]) -> Result<BatchOutcome<u32>> {
        self.session().div_dispatch_batch(pairs)
    }

    /// The underlying routines, for inspection or disassembly.
    #[must_use]
    pub fn programs(&self) -> [(&'static str, &Program); 5] {
        [
            ("mul_signed", self.routines.mul_signed.program()),
            ("mul_unsigned", self.routines.mul_unsigned.program()),
            ("udiv", self.routines.udiv.program()),
            ("sdiv", self.routines.sdiv.program()),
            ("udiv_dispatch", self.routines.dispatch.program()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_and_count() {
        let rt = Runtime::new().unwrap();
        let out = rt.mul(-123, 456).unwrap();
        assert_eq!(out.value, -56088);
        assert!(out.rem.is_none());
        assert!(out.cycles < 45, "{} cycles", out.cycles);
        let out = rt.mul_unsigned(0xFFFF_FFFF, 2).unwrap();
        assert_eq!(out.value, 0xFFFF_FFFEu32);
    }

    #[test]
    fn divide_and_count() {
        let rt = Runtime::new().unwrap();
        let out = rt.div_unsigned(1000, 7).unwrap();
        assert_eq!((out.value, out.rem), (142, Some(6)));
        assert!((60..=90).contains(&out.cycles));
        let out = rt.div(-1000, 7).unwrap();
        assert_eq!((out.value, out.rem), (-142, Some(-6)));
    }

    #[test]
    fn dispatch_is_faster_for_small_divisors() {
        let rt = Runtime::new().unwrap();
        let fast = rt.div_dispatch(123_456, 7).unwrap();
        assert_eq!(fast.value, 123_456 / 7);
        let slow = rt.div_unsigned(123_456, 7).unwrap();
        assert!(
            fast.cycles < slow.cycles / 2,
            "dispatch {} vs general {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn zero_divisor_reports() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.div_unsigned(5, 0), Err(Error::DivideByZero));
        assert_eq!(rt.div(5, 0), Err(Error::DivideByZero));
        assert_eq!(rt.div_dispatch(5, 0), Err(Error::DivideByZero));
    }

    #[test]
    fn runtime_calls_emit_strategy_events() {
        let rt = Runtime::new().unwrap();
        let ((), events) = telemetry::collect(|| {
            rt.mul(-123, 456).unwrap();
            rt.mul_unsigned(7, 9).unwrap();
            rt.div_unsigned(1000, 7).unwrap();
            rt.div(-1000, 7).unwrap();
            rt.div_dispatch(100, 7).unwrap();
            let _ = rt.div_unsigned(5, 0); // failed calls record nothing
        });
        assert_eq!(events.len(), 5);
        for e in &events {
            let cycles = match e {
                telemetry::Event::MulStrategy { cycles, .. }
                | telemetry::Event::DivDispatch { cycles, .. } => *cycles,
                other => panic!("unexpected event {other:?}"),
            };
            assert!(cycles.unwrap() > 0);
        }
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("mul/nibble-x2"), Some(&1)); // |−123| drives
        assert_eq!(hist.get("mul/nibble-x1"), Some(&1)); // 7 drives
        assert_eq!(hist.get("divvar/general"), Some(&2));
        assert_eq!(hist.get("divvar/inlined-body"), Some(&1));
    }

    #[test]
    fn builder_dispatch_limit_is_respected() {
        let rt = Runtime::builder().dispatch_limit(5).build().unwrap();
        assert_eq!(rt.dispatch_limit(), 5);
        assert_eq!(rt.div_dispatch(100, 3).unwrap().value, 33);
        // Divisors beyond the table fall to the general path but still
        // produce the right quotient.
        assert_eq!(rt.div_dispatch(100, 9).unwrap().value, 11);
    }

    #[test]
    fn builder_rejects_zero_workers_and_shards() {
        assert_eq!(
            Runtime::builder().workers(0).build().unwrap_err(),
            Error::InvalidConfig("workers must be non-zero")
        );
        assert_eq!(
            Runtime::builder().cache_shards(0).build().unwrap_err(),
            Error::InvalidConfig("cache_shards must be non-zero")
        );
        let rt = Runtime::builder()
            .workers(3)
            .cache_shards(5)
            .build()
            .unwrap();
        assert_eq!(rt.workers().get(), 3);
        assert_eq!(rt.cache_shards().get(), 5);
    }

    #[test]
    fn runtime_and_session_cross_thread_contracts_hold() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Runtime>();
        assert_send::<crate::Session>();

        // Sessions opened from one shared runtime really do run on other
        // threads, concurrently, with per-call results intact.
        let rt = Runtime::new().unwrap();
        let serial = rt.mul(-123, 456).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut session = rt.session();
                scope.spawn(move || {
                    assert_eq!(session.mul(-123, 456).unwrap(), serial);
                });
            }
        });
    }

    #[test]
    fn construction_emits_prepare_events() {
        let (rt, events) = telemetry::collect(|| Runtime::new().unwrap());
        let hist = telemetry::strategy_histogram(&events);
        assert_eq!(hist.get("prepare/program"), Some(&5));
        drop(rt);
    }

    #[test]
    fn programs_are_inspectable() {
        let rt = Runtime::new().unwrap();
        for (name, p) in rt.programs() {
            assert!(!p.is_empty(), "{name}");
        }
    }
}
