//! Property test: arbitrary well-formed programs survive a
//! `Display → parse_program` round trip bit-for-bit.

use pa_isa::parse::parse_program;
use pa_isa::{BitSense, Cond, Im11, Im14, Im21, Im5, Insn, Op, Program, Reg, ShAmount, ShiftPos};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::all().to_vec())
}

fn shamount() -> impl Strategy<Value = ShAmount> {
    (1u32..=3).prop_map(|n| ShAmount::new(n).unwrap())
}

fn shiftpos() -> impl Strategy<Value = ShiftPos> {
    (0u32..32).prop_map(|n| ShiftPos::new(n).unwrap())
}

fn im5() -> impl Strategy<Value = Im5> {
    (Im5::MIN..=Im5::MAX).prop_map(|v| Im5::new(v).unwrap())
}

fn im11() -> impl Strategy<Value = Im11> {
    (Im11::MIN..=Im11::MAX).prop_map(|v| Im11::new(v).unwrap())
}

fn im14() -> impl Strategy<Value = Im14> {
    (Im14::MIN..=Im14::MAX).prop_map(|v| Im14::new(v).unwrap())
}

fn im21() -> impl Strategy<Value = Im21> {
    (0u32..=Im21::MAX).prop_map(|v| Im21::new(v).unwrap())
}

/// One op with branch targets in `0..=len`.
fn op(len: usize) -> impl Strategy<Value = Op> {
    let target = 0..=len;
    prop_oneof![
        (reg(), reg(), reg(), any::<bool>()).prop_map(|(a, b, t, trap)| Op::Add { a, b, t, trap }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::Addc { a, b, t }),
        (reg(), reg(), reg(), any::<bool>()).prop_map(|(a, b, t, trap)| Op::Sub { a, b, t, trap }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::Subb { a, b, t }),
        (shamount(), reg(), reg(), reg(), any::<bool>())
            .prop_map(|(sh, a, b, t, trap)| Op::ShAdd { sh, a, b, t, trap }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::Ds { a, b, t }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::Or { a, b, t }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::And { a, b, t }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::Xor { a, b, t }),
        (reg(), reg(), reg()).prop_map(|(a, b, t)| Op::AndCm { a, b, t }),
        (cond(), reg(), reg(), reg()).prop_map(|(cond, a, b, t)| Op::Comclr { cond, a, b, t }),
        (cond(), im11(), reg(), reg()).prop_map(|(cond, i, b, t)| Op::Comiclr { cond, i, b, t }),
        (im11(), reg(), reg(), any::<bool>()).prop_map(|(i, b, t, trap)| Op::Addi {
            i,
            b,
            t,
            trap
        }),
        (im11(), reg(), reg()).prop_map(|(i, b, t)| Op::Subi { i, b, t }),
        (reg(), im14(), reg()).prop_map(|(b, d, t)| Op::Ldo { b, d, t }),
        (im21(), reg()).prop_map(|(i, t)| Op::Ldil { i, t }),
        (reg(), shiftpos(), reg()).prop_map(|(s, sa, t)| Op::Shl { s, sa, t }),
        (reg(), shiftpos(), reg()).prop_map(|(s, sa, t)| Op::ShrU { s, sa, t }),
        (reg(), shiftpos(), reg()).prop_map(|(s, sa, t)| Op::ShrS { s, sa, t }),
        (reg(), reg(), shiftpos(), reg()).prop_map(|(hi, lo, sa, t)| Op::Shd { hi, lo, sa, t }),
        (reg(), 0u8..32, reg()).prop_flat_map(|(s, pos, t)| {
            (1u8..=pos + 1).prop_map(move |len| Op::Extru { s, pos, len, t })
        }),
        target.clone().prop_map(|target| Op::B { target }),
        (cond(), reg(), reg(), target.clone()).prop_map(|(cond, a, b, target)| Op::Comb {
            cond,
            a,
            b,
            target
        }),
        (cond(), im5(), reg(), target.clone()).prop_map(|(cond, i, b, target)| Op::Combi {
            cond,
            i,
            b,
            target
        }),
        (im5(), reg(), cond(), target.clone()).prop_map(|(i, b, cond, target)| Op::Addib {
            i,
            b,
            cond,
            target
        }),
        (
            reg(),
            0u8..32,
            prop_oneof![Just(BitSense::Set), Just(BitSense::Clear)],
            target.clone()
        )
            .prop_map(|(s, bit, sense, target)| Op::Bb {
                s,
                bit,
                sense,
                target
            }),
        (reg(), target).prop_map(|(x, base)| Op::Blr { x, base }),
        Just(Op::Nop),
        any::<u16>().prop_map(|code| Op::Break { code }),
    ]
}

fn program() -> impl Strategy<Value = Program> {
    (1usize..40).prop_flat_map(|len| {
        prop::collection::vec(op(len), len).prop_map(|ops| {
            Program::new(ops.into_iter().map(Insn::new).collect())
                .expect("targets within 0..=len are valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_programs_round_trip(p in program()) {
        let text = p.to_string();
        let back = parse_program(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(back, p);
    }
}
