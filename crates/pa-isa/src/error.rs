//! Error type for the ISA crate.

use core::fmt;

/// Errors produced while constructing, assembling or parsing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register number outside `0..=31`.
    RegisterOutOfRange(u8),
    /// An immediate that does not fit its instruction field.
    ImmediateOutOfRange {
        /// The offending value.
        value: i64,
        /// The field width it had to fit.
        bits: u32,
    },
    /// A shift amount outside the encodable range of the instruction.
    ShiftAmountOutOfRange(u32),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A branch target index that lies outside the program.
    ///
    /// Targets may point one past the last instruction (a branch to the
    /// procedure's fall-through exit), but no further.
    TargetOutOfRange {
        /// The instruction index of the branch.
        at: usize,
        /// The out-of-range target index.
        target: usize,
        /// The program length.
        len: usize,
    },
    /// A failure while parsing an assembly listing.
    Parse {
        /// One-based source line (0 when unknown).
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RegisterOutOfRange(n) => {
                write!(f, "register number {n} is out of range (0..=31)")
            }
            IsaError::ImmediateOutOfRange { value, bits } => {
                write!(
                    f,
                    "immediate {value} does not fit a signed {bits}-bit field"
                )
            }
            IsaError::ShiftAmountOutOfRange(n) => {
                write!(f, "shift amount {n} is not encodable")
            }
            IsaError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            IsaError::DuplicateLabel(name) => write!(f, "duplicate label `{name}`"),
            IsaError::TargetOutOfRange { at, target, len } => write!(
                f,
                "branch at instruction {at} targets {target}, outside program of length {len}"
            ),
            IsaError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples: Vec<IsaError> = vec![
            IsaError::RegisterOutOfRange(40),
            IsaError::ImmediateOutOfRange {
                value: 1 << 20,
                bits: 11,
            },
            IsaError::ShiftAmountOutOfRange(99),
            IsaError::UndefinedLabel("loop".into()),
            IsaError::DuplicateLabel("loop".into()),
            IsaError::TargetOutOfRange {
                at: 3,
                target: 17,
                len: 5,
            },
            IsaError::Parse {
                line: 2,
                message: "bad mnemonic".into(),
            },
        ];
        for e in samples {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase() || text.starts_with('`'));
        }
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<IsaError>();
    }
}
