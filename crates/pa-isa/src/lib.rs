//! # pa-isa — a PA-RISC-like instruction set for integer multiply/divide study
//!
//! This crate defines the subset of the HP Precision Architecture (PA-RISC)
//! instruction set that the ASPLOS'87 paper *"Integer Multiplication and
//! Division on the HP Precision Architecture"* builds its multiply and divide
//! support from:
//!
//! * three-register arithmetic (`ADD`, `SUB`, carry/borrow variants) with
//!   optional trap-on-overflow,
//! * the **shift and add** family (`SH1ADD`, `SH2ADD`, `SH3ADD` and their
//!   trapping variants) fed by the pre-shifter datapath,
//! * the simplified **divide step** (`DS`) that pairs with `ADDC`,
//! * conditional-nullification compares (`COMCLR`, `COMICLR`),
//! * compare-and-branch (`COMB`, `COMIB`, `ADDIB`), branch-on-bit (`BB`) and
//!   the **branch vectored** (`BLR`) instruction used for switch tables,
//! * single and double-word shifts (`SHD` is the pair-precision workhorse of
//!   the derived division method).
//!
//! The crate is purely *symbolic*: it models the semantics-relevant
//! instruction fields (register numbers, PA-RISC immediate field widths,
//! conditions) and provides a [`Program`] container, a [`ProgramBuilder`] with
//! labels, an assembler-style [`core::fmt::Display`] listing, and a text
//! [`parser`](crate::parse) that round-trips listings. Execution lives in the
//! companion `pa-sim` crate.
//!
//! ## Example
//!
//! ```
//! use pa_isa::{ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), pa_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! let (x, r) = (Reg::R26, Reg::R28);
//! // r = 10 * x  (the paper's two-step chain: r = 4x + x; r = r + r)
//! b.sh2add(x, x, r);
//! b.add(r, r, r);
//! let program = b.build()?;
//! assert_eq!(program.len(), 2);
//! println!("{program}");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cond;
mod error;
mod imm;
mod insn;
pub mod parse;
mod program;
mod reg;

pub use builder::ProgramBuilder;
pub use cond::Cond;
pub use error::IsaError;
pub use imm::{Im11, Im14, Im21, Im5, ShAmount, ShiftPos};
pub use insn::{BitSense, Insn, Op, OPCODE_COUNT, OPCODE_NAMES};
pub use program::{Label, Program};
pub use reg::Reg;

/// The number of general registers in the architecture (`r0`..`r31`).
pub const NUM_REGS: usize = 32;

/// Width, in bits, of a machine word.
pub const WORD_BITS: u32 = 32;
