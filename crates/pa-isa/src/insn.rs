//! Instruction definitions.

use core::fmt;

use crate::{Cond, Im11, Im14, Im21, Im5, Reg, ShAmount, ShiftPos};

/// Which state of a bit a `BB` branch tests for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitSense {
    /// Branch when the bit is 1.
    Set,
    /// Branch when the bit is 0.
    Clear,
}

impl fmt::Display for BitSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BitSense::Set => "set",
            BitSense::Clear => "clear",
        })
    }
}

/// A single machine operation.
///
/// Branch targets are **resolved instruction indices** into the containing
/// [`Program`](crate::Program); a target equal to the program length is a
/// branch to the fall-through exit. Use [`ProgramBuilder`](crate::ProgramBuilder)
/// to write programs with symbolic labels.
///
/// Registers named `a`/`b` are sources, `t` is the target. The shift-and-add
/// family computes `t = (a << sh) + b` — note that it is the *first* operand
/// that is pre-shifted, matching `SHxADD a,b,t` on the real machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Op {
    /// `t = a + b`; sets the carry bit. Traps on signed overflow when `trap`.
    Add {
        /// First addend.
        a: Reg,
        /// Second addend.
        b: Reg,
        /// Destination.
        t: Reg,
        /// Trap on signed overflow (`ADDO`).
        trap: bool,
    },
    /// `t = a + b + carry`; sets the carry bit (`ADDC`).
    Addc {
        /// First addend.
        a: Reg,
        /// Second addend.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = a - b`; sets the carry/borrow bit. Traps on signed overflow when `trap`.
    Sub {
        /// Minuend.
        a: Reg,
        /// Subtrahend.
        b: Reg,
        /// Destination.
        t: Reg,
        /// Trap on signed overflow (`SUBO`).
        trap: bool,
    },
    /// `t = a - b - borrow`; sets the carry/borrow bit (`SUBB`).
    Subb {
        /// Minuend.
        a: Reg,
        /// Subtrahend.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = (a << sh) + b` — the shift-and-add family (`SH1ADD`..`SH3ADD`).
    ///
    /// When `trap` is set this is the `SHxADDO` variant whose overflow
    /// behaviour depends on the simulator's overflow model (the paper's cheap
    /// sign-comparison circuit or a precise 35-bit reference).
    ShAdd {
        /// Pre-shift applied to `a`: 1, 2 or 3 bits.
        sh: ShAmount,
        /// The operand routed through the pre-shifter.
        a: Reg,
        /// The unshifted addend.
        b: Reg,
        /// Destination.
        t: Reg,
        /// Trap on signed overflow (`SHxADDO`).
        trap: bool,
    },
    /// One step of non-restoring division (`DS`), the paper's §4 instruction.
    ///
    /// Using the PSW carry and V bits:
    /// `shifted = (a << 1) | carry`; then `t = shifted - b` if `V = 0` else
    /// `t = shifted + b`. The carry out of the 33-bit operation becomes both
    /// the new carry (the quotient bit collected by a following `ADDC`) and,
    /// complemented, the new V bit.
    Ds {
        /// Low word of the partial dividend / partial remainder.
        a: Reg,
        /// Divisor.
        b: Reg,
        /// Destination (partial remainder).
        t: Reg,
    },
    /// `t = a | b`. (`COPY s,t` is the `OR s,r0,t` idiom.)
    Or {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = a & b`.
    And {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = a ^ b`.
    Xor {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = a & !b` (`ANDCM`).
    AndCm {
        /// First operand.
        a: Reg,
        /// Complemented operand.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// Compare and clear: `t = 0`, and **nullify the next instruction** when
    /// `cond(a, b)` holds (`COMCLR`). With `t = r0` this is a pure
    /// conditional skip — PA-RISC's conditional execution primitive.
    Comclr {
        /// Condition evaluated between `a` and `b`.
        cond: Cond,
        /// Left comparison operand.
        a: Reg,
        /// Right comparison operand.
        b: Reg,
        /// Destination cleared to zero.
        t: Reg,
    },
    /// Immediate compare and clear: `t = 0`, nullify next when `cond(i, b)`
    /// (`COMICLR`). The immediate is the *left* operand, as on PA-RISC.
    Comiclr {
        /// Condition evaluated between `i` and `b`.
        cond: Cond,
        /// Left comparison operand (11-bit immediate).
        i: Im11,
        /// Right comparison operand.
        b: Reg,
        /// Destination cleared to zero.
        t: Reg,
    },
    /// `t = i + b`; sets carry. Traps on signed overflow when `trap` (`ADDIO`).
    Addi {
        /// 11-bit immediate addend.
        i: Im11,
        /// Register addend.
        b: Reg,
        /// Destination.
        t: Reg,
        /// Trap on signed overflow.
        trap: bool,
    },
    /// `t = i - b` (`SUBI`); sets carry/borrow.
    Subi {
        /// 11-bit immediate minuend.
        i: Im11,
        /// Register subtrahend.
        b: Reg,
        /// Destination.
        t: Reg,
    },
    /// `t = b + d` (`LDO d(b),t`); `LDI i,t` is `LDO i(r0),t`.
    Ldo {
        /// Base register.
        b: Reg,
        /// 14-bit displacement.
        d: Im14,
        /// Destination.
        t: Reg,
    },
    /// `t = i << 11` (`LDIL`), the high-part half of a 32-bit constant load.
    Ldil {
        /// 21-bit immediate.
        i: Im21,
        /// Destination.
        t: Reg,
    },
    /// `t = s << sa` (logical left shift; the `ZDEP` idiom).
    Shl {
        /// Source.
        s: Reg,
        /// Shift distance, `0..=31`.
        sa: ShiftPos,
        /// Destination.
        t: Reg,
    },
    /// `t = s >> sa` logical (the `EXTRU` shift idiom).
    ShrU {
        /// Source.
        s: Reg,
        /// Shift distance, `0..=31`.
        sa: ShiftPos,
        /// Destination.
        t: Reg,
    },
    /// `t = s >> sa` arithmetic (the `EXTRS` shift idiom).
    ShrS {
        /// Source.
        s: Reg,
        /// Shift distance, `0..=31`.
        sa: ShiftPos,
        /// Destination.
        t: Reg,
    },
    /// Double-word shift (`SHD`): `t = low32((hi:lo) >> sa)`.
    ///
    /// This is the instruction that makes the two-word-precision shift-add
    /// pairs of the derived division method cost 4 cycles instead of 6.
    Shd {
        /// High word of the 64-bit pair.
        hi: Reg,
        /// Low word of the 64-bit pair.
        lo: Reg,
        /// Right-shift distance, `0..=31` (0 simply selects `lo`).
        sa: ShiftPos,
        /// Destination.
        t: Reg,
    },
    /// Extract an unsigned field (`EXTRU s,pos,len,t`): the `len`-bit field
    /// of `s` whose **rightmost** bit is PA-RISC bit `pos` (bit 0 = MSB),
    /// right-justified and zero-extended.
    Extru {
        /// Source.
        s: Reg,
        /// PA-RISC bit position of the field's rightmost bit (0 = MSB, 31 = LSB).
        pos: u8,
        /// Field length in bits, `1..=32`.
        len: u8,
        /// Destination.
        t: Reg,
    },
    /// Unconditional branch.
    B {
        /// Resolved target instruction index.
        target: usize,
    },
    /// Compare and branch (`COMB,cond a,b,target`).
    Comb {
        /// Condition evaluated between `a` and `b`.
        cond: Cond,
        /// Left comparison operand.
        a: Reg,
        /// Right comparison operand.
        b: Reg,
        /// Resolved target instruction index.
        target: usize,
    },
    /// Compare immediate and branch (`COMIB,cond i,b,target`); the immediate
    /// is the left operand.
    Combi {
        /// Condition evaluated between `i` and `b`.
        cond: Cond,
        /// Left comparison operand (5-bit immediate).
        i: Im5,
        /// Right comparison operand.
        b: Reg,
        /// Resolved target instruction index.
        target: usize,
    },
    /// Add immediate and branch (`ADDIB,cond i,b,target`):
    /// `b += i`, then branch when `cond(b, 0)` holds on the new value.
    Addib {
        /// 5-bit immediate added to `b`.
        i: Im5,
        /// Register updated in place (loop counter).
        b: Reg,
        /// Condition evaluated between the updated `b` and zero.
        cond: Cond,
        /// Resolved target instruction index.
        target: usize,
    },
    /// Branch on bit (`BB`): tests bit `bit` of `s` (PA-RISC numbering,
    /// 0 = MSB, 31 = LSB) and branches when it matches `sense`.
    Bb {
        /// Register holding the tested bit.
        s: Reg,
        /// PA-RISC bit position, 0 = MSB through 31 = LSB.
        bit: u8,
        /// Branch on set or on clear.
        sense: BitSense,
        /// Resolved target instruction index.
        target: usize,
    },
    /// Branch vectored (`BLR x,base`): `pc = base + 2 * GR[x]`.
    ///
    /// On the real machine `BLR` indexes two-word table entries; the paper's
    /// final multiply routine dispatches its 16-case switch through one of
    /// these, which is why every table entry is "reduced to two instructions".
    Blr {
        /// Register holding the table index.
        x: Reg,
        /// Resolved instruction index of the table base.
        base: usize,
    },
    /// No operation.
    Nop,
    /// Unconditional trap (`BREAK`), used to signal impossible paths.
    Break {
        /// Diagnostic code reported by the trap.
        code: u16,
    },
}

/// Number of distinct opcode classes (see [`Op::opcode_index`]).
///
/// Sized so fixed-array opcode histograms (`[u64; OPCODE_COUNT]`) can be
/// indexed without hashing in the simulator's hot loop.
pub const OPCODE_COUNT: usize = 37;

/// Mnemonics in [`Op::opcode_index`] order: `OPCODE_NAMES[op.opcode_index()]`
/// is `op.mnemonic()`.
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "add", "addo", "addc", "sub", "subo", "subb", "sh1add", "sh2add", "sh3add", "sh1addo",
    "sh2addo", "sh3addo", "ds", "or", "and", "xor", "andcm", "comclr", "comiclr", "addi", "addio",
    "subi", "ldo", "ldil", "shl", "shr", "sar", "shd", "extru", "b", "comb", "comib", "addib",
    "bb", "blr", "nop", "break",
];

impl Op {
    /// A dense index in `0..OPCODE_COUNT` identifying the opcode class.
    ///
    /// Trapping variants and the three shift-and-add distances count as
    /// distinct classes, matching the mnemonic split (`add` vs `addo`,
    /// `sh1add` vs `sh3addo`, …).
    #[must_use]
    pub fn opcode_index(&self) -> usize {
        match self {
            Op::Add { trap: false, .. } => 0,
            Op::Add { trap: true, .. } => 1,
            Op::Addc { .. } => 2,
            Op::Sub { trap: false, .. } => 3,
            Op::Sub { trap: true, .. } => 4,
            Op::Subb { .. } => 5,
            Op::ShAdd {
                sh: ShAmount::One,
                trap: false,
                ..
            } => 6,
            Op::ShAdd {
                sh: ShAmount::Two,
                trap: false,
                ..
            } => 7,
            Op::ShAdd {
                sh: ShAmount::Three,
                trap: false,
                ..
            } => 8,
            Op::ShAdd {
                sh: ShAmount::One,
                trap: true,
                ..
            } => 9,
            Op::ShAdd {
                sh: ShAmount::Two,
                trap: true,
                ..
            } => 10,
            Op::ShAdd {
                sh: ShAmount::Three,
                trap: true,
                ..
            } => 11,
            Op::Ds { .. } => 12,
            Op::Or { .. } => 13,
            Op::And { .. } => 14,
            Op::Xor { .. } => 15,
            Op::AndCm { .. } => 16,
            Op::Comclr { .. } => 17,
            Op::Comiclr { .. } => 18,
            Op::Addi { trap: false, .. } => 19,
            Op::Addi { trap: true, .. } => 20,
            Op::Subi { .. } => 21,
            Op::Ldo { .. } => 22,
            Op::Ldil { .. } => 23,
            Op::Shl { .. } => 24,
            Op::ShrU { .. } => 25,
            Op::ShrS { .. } => 26,
            Op::Shd { .. } => 27,
            Op::Extru { .. } => 28,
            Op::B { .. } => 29,
            Op::Comb { .. } => 30,
            Op::Combi { .. } => 31,
            Op::Addib { .. } => 32,
            Op::Bb { .. } => 33,
            Op::Blr { .. } => 34,
            Op::Nop => 35,
            Op::Break { .. } => 36,
        }
    }

    /// The assembler mnemonic (without condition completers).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        OPCODE_NAMES[self.opcode_index()]
    }

    /// The register written by this operation, if any.
    #[must_use]
    pub fn def(&self) -> Option<Reg> {
        let t = match *self {
            Op::Add { t, .. }
            | Op::Addc { t, .. }
            | Op::Sub { t, .. }
            | Op::Subb { t, .. }
            | Op::ShAdd { t, .. }
            | Op::Ds { t, .. }
            | Op::Or { t, .. }
            | Op::And { t, .. }
            | Op::Xor { t, .. }
            | Op::AndCm { t, .. }
            | Op::Comclr { t, .. }
            | Op::Comiclr { t, .. }
            | Op::Addi { t, .. }
            | Op::Subi { t, .. }
            | Op::Ldo { t, .. }
            | Op::Ldil { t, .. }
            | Op::Shl { t, .. }
            | Op::ShrU { t, .. }
            | Op::ShrS { t, .. }
            | Op::Shd { t, .. }
            | Op::Extru { t, .. } => t,
            Op::Addib { b, .. } => b,
            Op::B { .. }
            | Op::Comb { .. }
            | Op::Combi { .. }
            | Op::Bb { .. }
            | Op::Blr { .. }
            | Op::Nop
            | Op::Break { .. } => return None,
        };
        Some(t)
    }

    /// The registers read by this operation (duplicates removed, `r0` kept).
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = match *self {
            Op::Add { a, b, .. }
            | Op::Addc { a, b, .. }
            | Op::Sub { a, b, .. }
            | Op::Subb { a, b, .. }
            | Op::ShAdd { a, b, .. }
            | Op::Ds { a, b, .. }
            | Op::Or { a, b, .. }
            | Op::And { a, b, .. }
            | Op::Xor { a, b, .. }
            | Op::AndCm { a, b, .. }
            | Op::Comclr { a, b, .. }
            | Op::Comb { a, b, .. } => vec![a, b],
            Op::Comiclr { b, .. }
            | Op::Addi { b, .. }
            | Op::Subi { b, .. }
            | Op::Ldo { b, .. }
            | Op::Combi { b, .. }
            | Op::Addib { b, .. } => vec![b],
            Op::Shl { s, .. }
            | Op::ShrU { s, .. }
            | Op::ShrS { s, .. }
            | Op::Extru { s, .. }
            | Op::Bb { s, .. } => vec![s],
            Op::Shd { hi, lo, .. } => vec![hi, lo],
            Op::Blr { x, .. } => vec![x],
            Op::Ldil { .. } | Op::B { .. } | Op::Nop | Op::Break { .. } => vec![],
        };
        v.dedup();
        v
    }

    /// The static branch target, for ordinary branches.
    ///
    /// `BLR` is data-dependent and reports its table `base` here.
    #[must_use]
    pub fn branch_target(&self) -> Option<usize> {
        match *self {
            Op::B { target }
            | Op::Comb { target, .. }
            | Op::Combi { target, .. }
            | Op::Addib { target, .. }
            | Op::Bb { target, .. } => Some(target),
            Op::Blr { base, .. } => Some(base),
            _ => None,
        }
    }

    /// Rewrites the branch target (no-op for non-branches).
    pub(crate) fn set_branch_target(&mut self, new: usize) {
        match self {
            Op::B { target }
            | Op::Comb { target, .. }
            | Op::Combi { target, .. }
            | Op::Addib { target, .. }
            | Op::Bb { target, .. } => *target = new,
            Op::Blr { base, .. } => *base = new,
            _ => {}
        }
    }

    /// Whether this operation can transfer control.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Op::B { .. }
                | Op::Comb { .. }
                | Op::Combi { .. }
                | Op::Addib { .. }
                | Op::Bb { .. }
                | Op::Blr { .. }
        )
    }

    /// Whether this operation may raise a trap.
    #[must_use]
    pub fn can_trap(&self) -> bool {
        matches!(
            self,
            Op::Add { trap: true, .. }
                | Op::Sub { trap: true, .. }
                | Op::ShAdd { trap: true, .. }
                | Op::Addi { trap: true, .. }
                | Op::Break { .. }
        )
    }

    /// Whether this operation may nullify its successor (`COMCLR`/`COMICLR`).
    #[must_use]
    pub fn can_nullify(&self) -> bool {
        matches!(self, Op::Comclr { .. } | Op::Comiclr { .. })
    }
}

/// An instruction: an [`Op`] (kept separate so per-instruction metadata can
/// grow without touching every constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Insn {
    /// The operation performed.
    pub op: Op,
}

impl Insn {
    /// Wraps an operation.
    #[must_use]
    pub fn new(op: Op) -> Insn {
        Insn { op }
    }
}

impl From<Op> for Insn {
    fn from(op: Op) -> Insn {
        Insn::new(op)
    }
}

/// Formats the operands in listing syntax; target indices print as `@N`
/// (the [`Program`](crate::Program) display substitutes label names).
pub(crate) fn format_op(op: &Op, f: &mut fmt::Formatter<'_>, target_name: &str) -> fmt::Result {
    let m = op.mnemonic();
    match *op {
        Op::Add { a, b, t, .. }
        | Op::Addc { a, b, t }
        | Op::Sub { a, b, t, .. }
        | Op::Subb { a, b, t }
        | Op::ShAdd { a, b, t, .. }
        | Op::Ds { a, b, t }
        | Op::Or { a, b, t }
        | Op::And { a, b, t }
        | Op::Xor { a, b, t }
        | Op::AndCm { a, b, t } => write!(f, "{m} {a},{b},{t}"),
        Op::Comclr { cond, a, b, t } => write!(f, "{m},{cond} {a},{b},{t}"),
        Op::Comiclr { cond, i, b, t } => write!(f, "{m},{cond} {i},{b},{t}"),
        Op::Addi { i, b, t, .. } => write!(f, "{m} {i},{b},{t}"),
        Op::Subi { i, b, t } => write!(f, "{m} {i},{b},{t}"),
        Op::Ldo { b, d, t } => write!(f, "{m} {d}({b}),{t}"),
        Op::Ldil { i, t } => write!(f, "{m} {i},{t}"),
        Op::Shl { s, sa, t } | Op::ShrU { s, sa, t } | Op::ShrS { s, sa, t } => {
            write!(f, "{m} {s},{sa},{t}")
        }
        Op::Shd { hi, lo, sa, t } => write!(f, "{m} {hi},{lo},{sa},{t}"),
        Op::Extru { s, pos, len, t } => write!(f, "{m} {s},{pos},{len},{t}"),
        Op::B { .. } => write!(f, "{m} {target_name}"),
        Op::Comb { cond, a, b, .. } => write!(f, "{m},{cond} {a},{b},{target_name}"),
        Op::Combi { cond, i, b, .. } => write!(f, "{m},{cond} {i},{b},{target_name}"),
        Op::Addib { i, b, cond, .. } => write!(f, "{m},{cond} {i},{b},{target_name}"),
        Op::Bb { s, bit, sense, .. } => write!(f, "{m},{sense} {s},{bit},{target_name}"),
        Op::Blr { x, .. } => write!(f, "{m} {x},{target_name}"),
        Op::Nop => write!(f, "{m}"),
        Op::Break { code } => write!(f, "{m} {code}"),
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self
            .op
            .branch_target()
            .map(|t| format!("@{t}"))
            .unwrap_or_default();
        format_op(&self.op, f, &name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Add {
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R3,
                trap: false,
            },
            Op::Add {
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R3,
                trap: true,
            },
            Op::Addc {
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R3,
            },
            Op::Sub {
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R3,
                trap: false,
            },
            Op::Subb {
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R3,
            },
            Op::ShAdd {
                sh: ShAmount::Two,
                a: Reg::R4,
                b: Reg::R5,
                t: Reg::R6,
                trap: true,
            },
            Op::Ds {
                a: Reg::R9,
                b: Reg::R10,
                t: Reg::R9,
            },
            Op::Comclr {
                cond: Cond::Ult,
                a: Reg::R1,
                b: Reg::R2,
                t: Reg::R0,
            },
            Op::Comiclr {
                cond: Cond::Eq,
                i: Im11::new(5).unwrap(),
                b: Reg::R2,
                t: Reg::R0,
            },
            Op::Addi {
                i: Im11::new(-1).unwrap(),
                b: Reg::R7,
                t: Reg::R7,
                trap: false,
            },
            Op::Ldo {
                b: Reg::R0,
                d: Im14::new(42).unwrap(),
                t: Reg::R3,
            },
            Op::Ldil {
                i: Im21::new(77).unwrap(),
                t: Reg::R3,
            },
            Op::Shl {
                s: Reg::R1,
                sa: ShiftPos::new(4).unwrap(),
                t: Reg::R2,
            },
            Op::Shd {
                hi: Reg::R1,
                lo: Reg::R2,
                sa: ShiftPos::new(30).unwrap(),
                t: Reg::R3,
            },
            Op::Extru {
                s: Reg::R1,
                pos: 31,
                len: 4,
                t: Reg::R2,
            },
            Op::B { target: 7 },
            Op::Comb {
                cond: Cond::Lt,
                a: Reg::R1,
                b: Reg::R2,
                target: 3,
            },
            Op::Addib {
                i: Im5::new(-1).unwrap(),
                b: Reg::R5,
                cond: Cond::Ne,
                target: 0,
            },
            Op::Bb {
                s: Reg::R1,
                bit: 31,
                sense: BitSense::Set,
                target: 2,
            },
            Op::Blr {
                x: Reg::R8,
                base: 12,
            },
            Op::Nop,
            Op::Break { code: 1 },
        ]
    }

    #[test]
    fn opcode_indices_are_dense_and_match_names() {
        for op in sample_ops() {
            let idx = op.opcode_index();
            assert!(idx < OPCODE_COUNT, "{op:?}");
            assert_eq!(OPCODE_NAMES[idx], op.mnemonic(), "{op:?}");
        }
        // The name table itself has no duplicates.
        let mut names = OPCODE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OPCODE_COUNT);
    }

    #[test]
    fn mnemonics_are_distinctive() {
        assert_eq!(
            Op::ShAdd {
                sh: ShAmount::One,
                a: Reg::R1,
                b: Reg::R1,
                t: Reg::R1,
                trap: false
            }
            .mnemonic(),
            "sh1add"
        );
        assert_eq!(
            Op::Add {
                a: Reg::R1,
                b: Reg::R1,
                t: Reg::R1,
                trap: true
            }
            .mnemonic(),
            "addo"
        );
    }

    #[test]
    fn defs_and_uses() {
        let op = Op::ShAdd {
            sh: ShAmount::Three,
            a: Reg::R4,
            b: Reg::R5,
            t: Reg::R6,
            trap: false,
        };
        assert_eq!(op.def(), Some(Reg::R6));
        assert_eq!(op.uses(), vec![Reg::R4, Reg::R5]);

        let addib = Op::Addib {
            i: Im5::new(-1).unwrap(),
            b: Reg::R5,
            cond: Cond::Gt,
            target: 0,
        };
        assert_eq!(addib.def(), Some(Reg::R5));
        assert_eq!(addib.uses(), vec![Reg::R5]);

        assert_eq!(Op::Nop.def(), None);
        assert!(Op::Nop.uses().is_empty());
    }

    #[test]
    fn duplicate_uses_are_deduped() {
        let op = Op::Add {
            a: Reg::R2,
            b: Reg::R2,
            t: Reg::R2,
            trap: false,
        };
        assert_eq!(op.uses(), vec![Reg::R2]);
    }

    #[test]
    fn branch_classification() {
        for op in sample_ops() {
            assert_eq!(op.is_branch(), op.branch_target().is_some(), "{op:?}");
        }
    }

    #[test]
    fn trap_classification() {
        assert!(Op::Break { code: 0 }.can_trap());
        assert!(Op::Add {
            a: Reg::R1,
            b: Reg::R1,
            t: Reg::R1,
            trap: true
        }
        .can_trap());
        assert!(!Op::Addc {
            a: Reg::R1,
            b: Reg::R1,
            t: Reg::R1
        }
        .can_trap());
    }

    #[test]
    fn retargeting() {
        let mut op = Op::B { target: 5 };
        op.set_branch_target(9);
        assert_eq!(op.branch_target(), Some(9));
        let mut nop = Op::Nop;
        nop.set_branch_target(9); // silently ignored
        assert_eq!(nop.branch_target(), None);
    }

    #[test]
    fn display_every_op() {
        for op in sample_ops() {
            let text = Insn::new(op).to_string();
            assert!(!text.is_empty());
            assert!(text.starts_with(op.mnemonic()), "{text}");
        }
    }
}
