//! Programs: validated instruction sequences with display labels.

use core::fmt;
use std::collections::BTreeMap;

use crate::insn::format_op;
use crate::{Insn, IsaError, Op};

/// An opaque label handle issued by [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) usize);

/// A validated, fully resolved instruction sequence.
///
/// All branch targets are instruction indices within `0..=len()` (a target of
/// exactly `len()` is a branch to the fall-through exit). Construct programs
/// through [`ProgramBuilder`](crate::ProgramBuilder) or
/// [`parse::parse_program`](crate::parse::parse_program).
///
/// The [`Display`](core::fmt::Display) implementation prints an assembler
/// listing that [`parse::parse_program`](crate::parse::parse_program) accepts
/// back (round-trip property, tested).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insns: Vec<Insn>,
    /// Display names for instruction indices (exit label allowed at `len()`).
    names: BTreeMap<usize, String>,
}

impl Program {
    /// Builds a program from raw instructions, validating every branch target.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::TargetOutOfRange`] if any branch targets an index
    /// greater than `insns.len()`.
    pub fn new(insns: Vec<Insn>) -> Result<Program, IsaError> {
        Program::with_names(insns, BTreeMap::new())
    }

    /// Builds a program with display names attached to instruction indices.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::TargetOutOfRange`] for an out-of-range branch, or
    /// [`IsaError::UndefinedLabel`] if a name maps past the exit index.
    pub fn with_names(
        insns: Vec<Insn>,
        names: BTreeMap<usize, String>,
    ) -> Result<Program, IsaError> {
        let len = insns.len();
        for (at, insn) in insns.iter().enumerate() {
            if let Some(target) = insn.op.branch_target() {
                if target > len {
                    return Err(IsaError::TargetOutOfRange { at, target, len });
                }
            }
        }
        if let Some((&idx, name)) = names.iter().find(|&(&idx, _)| idx > len) {
            let _ = idx;
            return Err(IsaError::UndefinedLabel(name.clone()));
        }
        Ok(Program { insns, names })
    }

    /// The number of instructions (static size, as the paper counts it).
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// The instruction at `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Insn> {
        self.insns.get(index)
    }

    /// All instructions, in order.
    #[must_use]
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> impl Iterator<Item = &Insn> {
        self.insns.iter()
    }

    /// The display name attached to instruction index `idx`, if any.
    #[must_use]
    pub fn name_at(&self, idx: usize) -> Option<&str> {
        self.names.get(&idx).map(String::as_str)
    }

    /// The instruction index a display name refers to.
    #[must_use]
    pub fn resolve_name(&self, name: &str) -> Option<usize> {
        self.names
            .iter()
            .find_map(|(&idx, n)| (n == name).then_some(idx))
    }

    /// All `(index, name)` pairs in index order.
    pub fn names(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().map(|(&i, n)| (i, n.as_str()))
    }

    /// The set of registers written anywhere in the program.
    #[must_use]
    pub fn clobbered_registers(&self) -> Vec<crate::Reg> {
        let mut regs: Vec<crate::Reg> = self
            .insns
            .iter()
            .filter_map(|i| i.op.def())
            .filter(|r| !r.is_zero())
            .collect();
        regs.sort_unstable();
        regs.dedup();
        regs
    }

    /// Concatenates another program after this one, shifting its branch
    /// targets and renaming colliding labels with a `suffix`.
    ///
    /// Useful for composing millicode fragments into one routine.
    #[must_use]
    pub fn concat(&self, other: &Program, suffix: &str) -> Program {
        let offset = self.insns.len();
        let mut insns = self.insns.clone();
        for insn in &other.insns {
            let mut op = insn.op;
            if let Some(t) = op.branch_target() {
                op.set_branch_target(t + offset);
            }
            insns.push(Insn::new(op));
        }
        let mut names = self.names.clone();
        for (&idx, name) in &other.names {
            let mut candidate = name.clone();
            if names.values().any(|n| *n == candidate) {
                candidate = format!("{name}{suffix}");
                let mut k = 2;
                while names.values().any(|n| *n == candidate) {
                    candidate = format!("{name}{suffix}{k}");
                    k += 1;
                }
            }
            names.insert(idx + offset, candidate);
        }
        Program { insns, names }
    }

    fn target_name(&self, target: usize) -> String {
        match self.names.get(&target) {
            Some(name) => name.clone(),
            None => format!("@{target}"),
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct OpLine<'a>(&'a Program, &'a Op);
        impl fmt::Display for OpLine<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let name = self
                    .1
                    .branch_target()
                    .map(|t| self.0.target_name(t))
                    .unwrap_or_default();
                format_op(self.1, f, &name)
            }
        }
        for (idx, insn) in self.insns.iter().enumerate() {
            if let Some(name) = self.names.get(&idx) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "    {}", OpLine(self, &insn.op))?;
        }
        if let Some(name) = self.names.get(&self.insns.len()) {
            writeln!(f, "{name}:")?;
        }
        Ok(())
    }
}

impl IntoIterator for Program {
    type Item = Insn;
    type IntoIter = std::vec::IntoIter<Insn>;

    fn into_iter(self) -> Self::IntoIter {
        self.insns.into_iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Insn;
    type IntoIter = std::slice::Iter<'a, Insn>;

    fn into_iter(self) -> Self::IntoIter {
        self.insns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg};

    fn add(t: Reg) -> Insn {
        Insn::new(Op::Add {
            a: Reg::R1,
            b: Reg::R2,
            t,
            trap: false,
        })
    }

    #[test]
    fn target_validation() {
        let insns = vec![Insn::new(Op::B { target: 2 }), add(Reg::R3)];
        assert!(Program::new(insns).is_ok()); // exit target allowed

        let insns = vec![Insn::new(Op::B { target: 3 }), add(Reg::R3)];
        match Program::new(insns) {
            Err(IsaError::TargetOutOfRange { at, target, len }) => {
                assert_eq!((at, target, len), (0, 3, 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_uses_label_names() {
        let mut names = BTreeMap::new();
        names.insert(0usize, "loop".to_string());
        let insns = vec![Insn::new(Op::Comb {
            cond: Cond::Lt,
            a: Reg::R1,
            b: Reg::R2,
            target: 0,
        })];
        let p = Program::with_names(insns, names).unwrap();
        let listing = p.to_string();
        assert!(listing.contains("loop:"), "{listing}");
        assert!(listing.contains("comb,< r1,r2,loop"), "{listing}");
    }

    #[test]
    fn display_falls_back_to_index() {
        let insns = vec![Insn::new(Op::B { target: 1 }), add(Reg::R3)];
        let p = Program::new(insns).unwrap();
        assert!(p.to_string().contains("b @1"));
    }

    #[test]
    fn clobbered_registers_sorted_unique() {
        let insns = vec![add(Reg::R5), add(Reg::R3), add(Reg::R5), add(Reg::R0)];
        let p = Program::new(insns).unwrap();
        assert_eq!(p.clobbered_registers(), vec![Reg::R3, Reg::R5]);
    }

    #[test]
    fn concat_shifts_targets_and_renames() {
        let mut names = BTreeMap::new();
        names.insert(0usize, "start".to_string());
        let a = Program::with_names(vec![add(Reg::R3)], names.clone()).unwrap();
        let b = Program::with_names(vec![Insn::new(Op::B { target: 0 })], names).unwrap();
        let joined = a.concat(&b, "_x");
        assert_eq!(joined.len(), 2);
        assert_eq!(joined.get(1).unwrap().op.branch_target(), Some(1));
        assert_eq!(joined.name_at(0), Some("start"));
        assert_eq!(joined.name_at(1), Some("start_x"));
    }

    #[test]
    fn exit_label_is_printed() {
        let mut names = BTreeMap::new();
        names.insert(1usize, "done".to_string());
        let p = Program::with_names(vec![add(Reg::R3)], names).unwrap();
        assert!(p.to_string().ends_with("done:\n"));
    }

    #[test]
    fn name_resolution() {
        let mut names = BTreeMap::new();
        names.insert(1usize, "out".to_string());
        let p = Program::with_names(vec![add(Reg::R3)], names).unwrap();
        assert_eq!(p.resolve_name("out"), Some(1));
        assert_eq!(p.resolve_name("nope"), None);
        assert_eq!(p.names().collect::<Vec<_>>(), vec![(1, "out")]);
    }
}
