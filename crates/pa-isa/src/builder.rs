//! A builder for writing programs with symbolic labels.

use std::collections::BTreeMap;

use crate::{
    BitSense, Cond, Im11, Im14, Im21, Im5, Insn, IsaError, Label, Op, Program, Reg, ShAmount,
    ShiftPos,
};

#[derive(Debug, Clone)]
struct LabelState {
    pos: Option<usize>,
    name: Option<String>,
}

/// Incrementally constructs a [`Program`], resolving forward label references.
///
/// Emitter methods are infallible at the call site for chaining comfort;
/// range errors (immediates, shift amounts) and label problems are recorded
/// and reported by [`ProgramBuilder::build`]. This keeps millicode sources
/// readable while still refusing to produce an invalid [`Program`].
///
/// # Example
///
/// ```
/// use pa_isa::{ProgramBuilder, Reg, Cond};
///
/// # fn main() -> Result<(), pa_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let top = b.named_label("loop");
/// b.bind(top);
/// b.add(Reg::R3, Reg::R4, Reg::R4);
/// b.addib(-1, Reg::R5, Cond::Ne, top); // decrement and loop
/// let p = b.build()?;
/// assert_eq!(p.len(), 2);
/// assert!(p.to_string().contains("addib,<> -1,r5,loop"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<Insn>,
    labels: Vec<LabelState>,
    /// Branch fixups: instruction index → label id.
    fixups: Vec<(usize, Label)>,
    error: Option<IsaError>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// The index the next emitted instruction will occupy.
    #[must_use]
    pub fn next_index(&self) -> usize {
        self.insns.len()
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether nothing has been emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Creates a fresh unbound, unnamed label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(LabelState {
            pos: None,
            name: None,
        });
        Label(self.labels.len() - 1)
    }

    /// Creates a fresh unbound label with a display name.
    pub fn named_label(&mut self, name: &str) -> Label {
        self.labels.push(LabelState {
            pos: None,
            name: Some(name.to_string()),
        });
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// Binding the same label twice records a
    /// [`IsaError::DuplicateLabel`] reported at [`build`](Self::build) time.
    pub fn bind(&mut self, label: Label) {
        let here = self.insns.len();
        let state = &mut self.labels[label.0];
        if state.pos.is_some() {
            let name = state
                .name
                .clone()
                .unwrap_or_else(|| format!("L{}", label.0));
            self.record(IsaError::DuplicateLabel(name));
            return;
        }
        state.pos = Some(here);
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.named_label(name);
        self.bind(l);
        l
    }

    fn record(&mut self, err: IsaError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    fn push(&mut self, op: Op) -> &mut Self {
        self.insns.push(Insn::new(op));
        self
    }

    fn push_branch(&mut self, op: Op, label: Label) -> &mut Self {
        self.fixups.push((self.insns.len(), label));
        self.insns.push(Insn::new(op));
        self
    }

    fn im5(&mut self, v: i32) -> Im5 {
        match Im5::new(v) {
            Ok(i) => i,
            Err(e) => {
                self.record(e);
                Im5::new(0).expect("0 fits")
            }
        }
    }

    fn im11(&mut self, v: i32) -> Im11 {
        match Im11::new(v) {
            Ok(i) => i,
            Err(e) => {
                self.record(e);
                Im11::new(0).expect("0 fits")
            }
        }
    }

    fn im14(&mut self, v: i32) -> Im14 {
        match Im14::new(v) {
            Ok(i) => i,
            Err(e) => {
                self.record(e);
                Im14::new(0).expect("0 fits")
            }
        }
    }

    fn shpos(&mut self, v: u32) -> ShiftPos {
        match ShiftPos::new(v) {
            Ok(i) => i,
            Err(e) => {
                self.record(e);
                ShiftPos::new(0).expect("0 fits")
            }
        }
    }

    // ---- three-register arithmetic -------------------------------------

    /// `t = a + b` (sets carry).
    pub fn add(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Add {
            a,
            b,
            t,
            trap: false,
        })
    }

    /// `t = a + b`, trapping on signed overflow (`ADDO`).
    pub fn addo(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Add {
            a,
            b,
            t,
            trap: true,
        })
    }

    /// `t = a + b + carry` (`ADDC`).
    pub fn addc(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Addc { a, b, t })
    }

    /// `t = a - b` (sets carry/borrow).
    pub fn sub(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Sub {
            a,
            b,
            t,
            trap: false,
        })
    }

    /// `t = a - b`, trapping on signed overflow (`SUBO`).
    pub fn subo(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Sub {
            a,
            b,
            t,
            trap: true,
        })
    }

    /// `t = a - b - borrow` (`SUBB`).
    pub fn subb(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Subb { a, b, t })
    }

    /// `t = (a << sh) + b` for `sh` in 1..=3.
    pub fn shadd(&mut self, sh: ShAmount, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::ShAdd {
            sh,
            a,
            b,
            t,
            trap: false,
        })
    }

    /// `t = (a << sh) + b`, trapping on signed overflow.
    pub fn shaddo(&mut self, sh: ShAmount, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::ShAdd {
            sh,
            a,
            b,
            t,
            trap: true,
        })
    }

    /// `t = 2a + b` (`SH1ADD`).
    pub fn sh1add(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.shadd(ShAmount::One, a, b, t)
    }

    /// `t = 4a + b` (`SH2ADD`).
    pub fn sh2add(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.shadd(ShAmount::Two, a, b, t)
    }

    /// `t = 8a + b` (`SH3ADD`).
    pub fn sh3add(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.shadd(ShAmount::Three, a, b, t)
    }

    /// Divide step (`DS`).
    pub fn ds(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Ds { a, b, t })
    }

    /// `t = a | b`.
    pub fn or(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Or { a, b, t })
    }

    /// `t = a & b`.
    pub fn and(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::And { a, b, t })
    }

    /// `t = a ^ b`.
    pub fn xor(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Xor { a, b, t })
    }

    /// `t = a & !b` (`ANDCM`).
    pub fn andcm(&mut self, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::AndCm { a, b, t })
    }

    /// `t = s` — the `OR s,r0,t` idiom.
    pub fn copy(&mut self, s: Reg, t: Reg) -> &mut Self {
        self.or(s, Reg::R0, t)
    }

    /// Compare and clear; nullifies the next instruction when `cond(a, b)`.
    pub fn comclr(&mut self, cond: Cond, a: Reg, b: Reg, t: Reg) -> &mut Self {
        self.push(Op::Comclr { cond, a, b, t })
    }

    /// Immediate compare and clear; nullifies next when `cond(i, b)`.
    pub fn comiclr(&mut self, cond: Cond, i: i32, b: Reg, t: Reg) -> &mut Self {
        let i = self.im11(i);
        self.push(Op::Comiclr { cond, i, b, t })
    }

    // ---- immediates ----------------------------------------------------

    /// `t = i + b` for an 11-bit immediate.
    pub fn addi(&mut self, i: i32, b: Reg, t: Reg) -> &mut Self {
        let i = self.im11(i);
        self.push(Op::Addi {
            i,
            b,
            t,
            trap: false,
        })
    }

    /// `t = i + b`, trapping on signed overflow (`ADDIO`).
    pub fn addio(&mut self, i: i32, b: Reg, t: Reg) -> &mut Self {
        let i = self.im11(i);
        self.push(Op::Addi {
            i,
            b,
            t,
            trap: true,
        })
    }

    /// `t = i - b` (`SUBI`).
    pub fn subi(&mut self, i: i32, b: Reg, t: Reg) -> &mut Self {
        let i = self.im11(i);
        self.push(Op::Subi { i, b, t })
    }

    /// `t = b + d` (`LDO`).
    pub fn ldo(&mut self, d: i32, b: Reg, t: Reg) -> &mut Self {
        let d = self.im14(d);
        self.push(Op::Ldo { b, d, t })
    }

    /// `t = i` for a 14-bit immediate (the `LDI` idiom, `LDO i(r0),t`).
    pub fn ldi(&mut self, i: i32, t: Reg) -> &mut Self {
        self.ldo(i, Reg::R0, t)
    }

    /// `t = i << 11` (`LDIL`).
    pub fn ldil(&mut self, i: u32, t: Reg) -> &mut Self {
        match Im21::new(i) {
            Ok(i) => {
                self.push(Op::Ldil { i, t });
            }
            Err(e) => self.record(e),
        }
        self
    }

    /// Loads an arbitrary 32-bit constant: one `LDI` when it fits 14 signed
    /// bits, otherwise the `LDIL` + `LDO` pair (two instructions) — the cost
    /// model the paper charges for "large" constants.
    pub fn load_const(&mut self, value: u32, t: Reg) -> &mut Self {
        let sv = value as i32;
        if (Im14::MIN..=Im14::MAX).contains(&sv) {
            return self.ldi(sv, t);
        }
        // Split into (high 21 | low 11) with the low part sign-extended by
        // LDO, so the high part must compensate when bit 10 is set.
        let low = ((value << 21) as i32) >> 21; // sign-extend low 11 bits
        let high = value.wrapping_sub(low as u32) >> 11;
        self.ldil(high, t);
        if low != 0 {
            self.ldo(low, t, t);
        }
        self
    }

    // ---- shifts ---------------------------------------------------------

    /// `t = s << sa` (logical).
    pub fn shl(&mut self, s: Reg, sa: u32, t: Reg) -> &mut Self {
        let sa = self.shpos(sa);
        self.push(Op::Shl { s, sa, t })
    }

    /// `t = s >> sa` (logical).
    pub fn shr(&mut self, s: Reg, sa: u32, t: Reg) -> &mut Self {
        let sa = self.shpos(sa);
        self.push(Op::ShrU { s, sa, t })
    }

    /// `t = s >> sa` (arithmetic).
    pub fn sar(&mut self, s: Reg, sa: u32, t: Reg) -> &mut Self {
        let sa = self.shpos(sa);
        self.push(Op::ShrS { s, sa, t })
    }

    /// `t = low32((hi:lo) >> sa)` (`SHD`).
    pub fn shd(&mut self, hi: Reg, lo: Reg, sa: u32, t: Reg) -> &mut Self {
        let sa = self.shpos(sa);
        self.push(Op::Shd { hi, lo, sa, t })
    }

    /// `EXTRU s,pos,len,t` with PA-RISC bit numbering (0 = MSB).
    pub fn extru(&mut self, s: Reg, pos: u8, len: u8, t: Reg) -> &mut Self {
        if pos > 31 || len == 0 || u32::from(len) > u32::from(pos) + 1 {
            self.record(IsaError::ShiftAmountOutOfRange(u32::from(pos)));
            return self;
        }
        self.push(Op::Extru { s, pos, len, t })
    }

    /// Extracts the low `len` bits of `s` (`EXTRU s,31,len,t`).
    pub fn extract_low(&mut self, s: Reg, len: u8, t: Reg) -> &mut Self {
        self.extru(s, 31, len, t)
    }

    // ---- control transfer -------------------------------------------------

    /// Unconditional branch.
    pub fn b(&mut self, label: Label) -> &mut Self {
        self.push_branch(Op::B { target: 0 }, label)
    }

    /// Compare and branch.
    pub fn comb(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> &mut Self {
        self.push_branch(
            Op::Comb {
                cond,
                a,
                b,
                target: 0,
            },
            label,
        )
    }

    /// Compare immediate and branch (immediate is the left operand).
    pub fn combi(&mut self, cond: Cond, i: i32, b: Reg, label: Label) -> &mut Self {
        let i = self.im5(i);
        self.push_branch(
            Op::Combi {
                cond,
                i,
                b,
                target: 0,
            },
            label,
        )
    }

    /// Add immediate and branch on the updated value.
    pub fn addib(&mut self, i: i32, b: Reg, cond: Cond, label: Label) -> &mut Self {
        let i = self.im5(i);
        self.push_branch(
            Op::Addib {
                i,
                b,
                cond,
                target: 0,
            },
            label,
        )
    }

    /// Branch on bit, PA-RISC numbering (0 = MSB).
    pub fn bb(&mut self, s: Reg, bit: u8, sense: BitSense, label: Label) -> &mut Self {
        if bit > 31 {
            self.record(IsaError::ShiftAmountOutOfRange(u32::from(bit)));
            return self;
        }
        self.push_branch(
            Op::Bb {
                s,
                bit,
                sense,
                target: 0,
            },
            label,
        )
    }

    /// Branch if the low bit (PA-RISC bit 31) of `s` is set — the "test for
    /// odd" of the paper's Figure 2 loop.
    pub fn bb_lsb(&mut self, s: Reg, sense: BitSense, label: Label) -> &mut Self {
        self.bb(s, 31, sense, label)
    }

    /// Branch if the sign bit of `s` is set.
    pub fn bb_msb(&mut self, s: Reg, sense: BitSense, label: Label) -> &mut Self {
        self.bb(s, 0, sense, label)
    }

    /// Branch vectored: `pc = base + 2 * GR[x]`.
    pub fn blr(&mut self, x: Reg, base: Label) -> &mut Self {
        self.push_branch(Op::Blr { x, base: 0 }, base)
    }

    /// No operation.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Op::Nop)
    }

    /// Unconditional trap.
    pub fn brk(&mut self, code: u16) -> &mut Self {
        self.push(Op::Break { code })
    }

    /// Emits a raw operation (targets must already be resolved indices).
    pub fn raw(&mut self, op: Op) -> &mut Self {
        self.push(op)
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Reports the first recorded emitter error
    /// ([`IsaError::ImmediateOutOfRange`], …), an
    /// [`IsaError::UndefinedLabel`]/[`IsaError::DuplicateLabel`], or a
    /// validation failure from [`Program::with_names`].
    pub fn build(mut self) -> Result<Program, IsaError> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        for &(at, label) in &self.fixups {
            let state = &self.labels[label.0];
            let Some(pos) = state.pos else {
                let name = state
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("L{}", label.0));
                return Err(IsaError::UndefinedLabel(name));
            };
            self.insns[at].op.set_branch_target(pos);
        }
        let mut names = BTreeMap::new();
        let mut used: Vec<String> = Vec::new();
        for (idx, state) in self.labels.iter().enumerate() {
            let Some(pos) = state.pos else { continue };
            // Only keep labels that are actually referenced or named, and at
            // most one name per position (first named wins).
            let referenced = self.fixups.iter().any(|&(_, l)| l.0 == idx);
            if state.name.is_none() && !referenced {
                continue;
            }
            if names.contains_key(&pos) {
                continue;
            }
            let mut name = state.name.clone().unwrap_or_else(|| format!("L{idx}"));
            while used.contains(&name) {
                name.push('_');
            }
            used.push(name.clone());
            names.insert(pos, name);
        }
        Program::with_names(self.insns, names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        let out = b.named_label("out");
        b.comb(Cond::Eq, Reg::R1, Reg::R2, out);
        b.add(Reg::R1, Reg::R1, Reg::R1);
        b.b(top);
        b.bind(out);
        let p = b.build().unwrap();
        assert_eq!(p.get(0).unwrap().op.branch_target(), Some(3));
        assert_eq!(p.get(2).unwrap().op.branch_target(), Some(0));
        assert_eq!(p.name_at(3), Some("out"));
    }

    #[test]
    fn undefined_label_is_reported() {
        let mut b = ProgramBuilder::new();
        let missing = b.named_label("missing");
        b.b(missing);
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::UndefinedLabel("missing".into())
        );
    }

    #[test]
    fn duplicate_bind_is_reported() {
        let mut b = ProgramBuilder::new();
        let l = b.named_label("twice");
        b.bind(l);
        b.nop();
        b.bind(l);
        assert_eq!(
            b.build().unwrap_err(),
            IsaError::DuplicateLabel("twice".into())
        );
    }

    #[test]
    fn immediate_errors_surface_at_build() {
        let mut b = ProgramBuilder::new();
        b.addi(5000, Reg::R1, Reg::R1);
        assert!(matches!(
            b.build(),
            Err(IsaError::ImmediateOutOfRange { bits: 11, .. })
        ));
    }

    #[test]
    fn load_const_small_is_one_insn() {
        let mut b = ProgramBuilder::new();
        b.load_const(42, Reg::R5);
        assert_eq!(b.len(), 1);
        let p = b.build().unwrap();
        assert!(p.to_string().contains("ldo 42(r0),r5"));
    }

    #[test]
    fn load_const_large_is_two_insns() {
        let mut b = ProgramBuilder::new();
        b.load_const(0xDEAD_BEEF, Reg::R5);
        let p = b.build().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn load_const_negative_fits_one() {
        let mut b = ProgramBuilder::new();
        b.load_const(-1i32 as u32, Reg::R5);
        assert_eq!(b.build().unwrap().len(), 1);
    }

    #[test]
    fn extru_field_validation() {
        let mut b = ProgramBuilder::new();
        b.extru(Reg::R1, 3, 8, Reg::R2); // len 8 > pos+1
        assert!(b.build().is_err());
    }

    #[test]
    fn unnamed_labels_get_synthetic_names() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.b(l);
        let p = b.build().unwrap();
        assert!(p.name_at(0).unwrap().starts_with('L'));
    }

    #[test]
    fn colliding_names_are_disambiguated() {
        let mut b = ProgramBuilder::new();
        let l1 = b.named_label("x");
        b.bind(l1);
        b.nop();
        let l2 = b.named_label("x");
        b.bind(l2);
        b.b(l1);
        b.b(l2);
        let p = b.build().unwrap();
        assert_eq!(p.name_at(0), Some("x"));
        assert_eq!(p.name_at(1), Some("x_"));
    }
}
