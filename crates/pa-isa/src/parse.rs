//! A parser for the assembler listing format produced by
//! [`Program`]'s `Display` implementation.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! label:
//!     mnemonic[,completer] operand,operand,...
//!     ; comment lines and blank lines are ignored
//! ```
//!
//! Branch targets are label names or `@N` absolute instruction indices.
//! `parse_program(p.to_string())` round-trips every well-formed [`Program`]
//! (a property exercised in the test suites of this and downstream crates).

use std::collections::BTreeMap;

use crate::{
    BitSense, Cond, Im11, Im14, Im21, Im5, Insn, IsaError, Op, Program, Reg, ShAmount, ShiftPos,
};

fn perr(line: usize, message: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses an assembler listing into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Parse`] describing the first offending line, or the
/// underlying construction error (bad immediate, undefined label, …).
///
/// # Example
///
/// ```
/// let src = "
/// loop:
///     sh2add r26,r26,r28
///     addib,<> -1,r5,loop
/// ";
/// let p = pa_isa::parse::parse_program(src)?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), pa_isa::IsaError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, IsaError> {
    // Pass 1: assign instruction indices and collect label positions.
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut index = 0usize;
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(perr(lineno + 1, format!("invalid label `{name}`")));
            }
            if labels.insert(name.to_string(), index).is_some() {
                return Err(IsaError::DuplicateLabel(name.to_string()));
            }
        } else {
            index += 1;
        }
    }
    let len = index;

    // Pass 2: parse instructions.
    let mut insns = Vec::with_capacity(len);
    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() || line.ends_with(':') {
            continue;
        }
        let op = parse_line(line, lineno + 1, &labels, len)?;
        insns.push(Insn::new(op));
    }

    let names = labels.into_iter().map(|(name, idx)| (idx, name)).collect();
    Program::with_names(insns, names)
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '.')
}

struct Operands<'a> {
    parts: Vec<&'a str>,
    line: usize,
    mnemonic: &'a str,
    next: usize,
}

impl<'a> Operands<'a> {
    fn next(&mut self) -> Result<&'a str, IsaError> {
        let part = self.parts.get(self.next).copied().ok_or_else(|| {
            perr(
                self.line,
                format!("`{}` is missing operand {}", self.mnemonic, self.next + 1),
            )
        })?;
        self.next += 1;
        Ok(part)
    }

    fn finish(&self) -> Result<(), IsaError> {
        if self.next == self.parts.len() {
            Ok(())
        } else {
            Err(perr(
                self.line,
                format!("`{}` has extra operands", self.mnemonic),
            ))
        }
    }

    fn reg(&mut self) -> Result<Reg, IsaError> {
        let line = self.line;
        let part = self.next()?;
        part.parse::<Reg>()
            .map_err(|_| perr(line, format!("expected register, found `{part}`")))
    }

    fn int(&mut self) -> Result<i64, IsaError> {
        let line = self.line;
        let part = self.next()?;
        parse_int(part).ok_or_else(|| perr(line, format!("expected integer, found `{part}`")))
    }

    fn target(&mut self, labels: &BTreeMap<String, usize>, len: usize) -> Result<usize, IsaError> {
        let line = self.line;
        let part = self.next()?;
        if let Some(idx) = part.strip_prefix('@') {
            return idx
                .parse::<usize>()
                .ok()
                .filter(|&i| i <= len)
                .ok_or_else(|| perr(line, format!("bad target `{part}`")));
        }
        labels
            .get(part)
            .copied()
            .ok_or_else(|| IsaError::UndefinedLabel(part.to_string()))
    }
}

fn parse_int(s: &str) -> Option<i64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse::<i64>().ok()
}

fn parse_line(
    line: &str,
    lineno: usize,
    labels: &BTreeMap<String, usize>,
    len: usize,
) -> Result<Op, IsaError> {
    let (head, rest) = match line.find(char::is_whitespace) {
        Some(pos) => (&line[..pos], line[pos..].trim()),
        None => (line, ""),
    };
    let (mnemonic, completer) = match head.find(',') {
        Some(pos) => (&head[..pos], Some(&head[pos + 1..])),
        None => (head, None),
    };
    let parts: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let mut ops = Operands {
        parts,
        line: lineno,
        mnemonic,
        next: 0,
    };

    let cond = |c: Option<&str>| -> Result<Cond, IsaError> {
        let c = c.ok_or_else(|| perr(lineno, format!("`{mnemonic}` needs a condition")))?;
        c.parse::<Cond>()
            .map_err(|_| perr(lineno, format!("unknown condition `{c}`")))
    };
    let no_completer = |c: Option<&str>| -> Result<(), IsaError> {
        match c {
            None => Ok(()),
            Some(c) => Err(perr(
                lineno,
                format!("`{mnemonic}` takes no `,{c}` completer"),
            )),
        }
    };

    let im5 = |v: i64| Im5::new(v as i32).map_err(|e| attach_line(e, lineno));
    let im11 = |v: i64| Im11::new(v as i32).map_err(|e| attach_line(e, lineno));
    let im14 = |v: i64| Im14::new(v as i32).map_err(|e| attach_line(e, lineno));
    let shpos = |v: i64| {
        u32::try_from(v)
            .ok()
            .and_then(|v| ShiftPos::new(v).ok())
            .ok_or_else(|| perr(lineno, format!("bad shift amount {v}")))
    };

    let op = match mnemonic {
        "add" | "addo" | "addc" | "sub" | "subo" | "subb" | "ds" | "or" | "and" | "xor"
        | "andcm" | "sh1add" | "sh2add" | "sh3add" | "sh1addo" | "sh2addo" | "sh3addo" => {
            no_completer(completer)?;
            let (a, b, t) = (ops.reg()?, ops.reg()?, ops.reg()?);
            match mnemonic {
                "add" => Op::Add {
                    a,
                    b,
                    t,
                    trap: false,
                },
                "addo" => Op::Add {
                    a,
                    b,
                    t,
                    trap: true,
                },
                "addc" => Op::Addc { a, b, t },
                "sub" => Op::Sub {
                    a,
                    b,
                    t,
                    trap: false,
                },
                "subo" => Op::Sub {
                    a,
                    b,
                    t,
                    trap: true,
                },
                "subb" => Op::Subb { a, b, t },
                "ds" => Op::Ds { a, b, t },
                "or" => Op::Or { a, b, t },
                "and" => Op::And { a, b, t },
                "xor" => Op::Xor { a, b, t },
                "andcm" => Op::AndCm { a, b, t },
                sh => {
                    let amount = match &sh[..6] {
                        "sh1add" => ShAmount::One,
                        "sh2add" => ShAmount::Two,
                        _ => ShAmount::Three,
                    };
                    Op::ShAdd {
                        sh: amount,
                        a,
                        b,
                        t,
                        trap: sh.ends_with('o'),
                    }
                }
            }
        }
        "comclr" => {
            let cond = cond(completer)?;
            let (a, b, t) = (ops.reg()?, ops.reg()?, ops.reg()?);
            Op::Comclr { cond, a, b, t }
        }
        "comiclr" => {
            let cond = cond(completer)?;
            let i = im11(ops.int()?)?;
            let (b, t) = (ops.reg()?, ops.reg()?);
            Op::Comiclr { cond, i, b, t }
        }
        "addi" | "addio" | "subi" => {
            no_completer(completer)?;
            let i = im11(ops.int()?)?;
            let (b, t) = (ops.reg()?, ops.reg()?);
            match mnemonic {
                "addi" => Op::Addi {
                    i,
                    b,
                    t,
                    trap: false,
                },
                "addio" => Op::Addi {
                    i,
                    b,
                    t,
                    trap: true,
                },
                _ => Op::Subi { i, b, t },
            }
        }
        "ldo" => {
            no_completer(completer)?;
            // ldo D(B),T
            let line = ops.line;
            let first = ops.next()?;
            let (d_text, b_text) = first
                .strip_suffix(')')
                .and_then(|s| s.split_once('('))
                .ok_or_else(|| perr(line, format!("expected `disp(base)`, found `{first}`")))?;
            let d = im14(
                parse_int(d_text.trim())
                    .ok_or_else(|| perr(line, format!("bad displacement `{d_text}`")))?,
            )?;
            let b = b_text
                .trim()
                .parse::<Reg>()
                .map_err(|_| perr(line, format!("bad base register `{b_text}`")))?;
            let t = ops.reg()?;
            Op::Ldo { b, d, t }
        }
        "ldil" => {
            no_completer(completer)?;
            let v = ops.int()?;
            let i = u32::try_from(v)
                .ok()
                .and_then(|v| Im21::new(v).ok())
                .ok_or_else(|| perr(lineno, format!("bad ldil immediate {v}")))?;
            Op::Ldil { i, t: ops.reg()? }
        }
        "shl" | "shr" | "sar" => {
            no_completer(completer)?;
            let s = ops.reg()?;
            let sa = shpos(ops.int()?)?;
            let t = ops.reg()?;
            match mnemonic {
                "shl" => Op::Shl { s, sa, t },
                "shr" => Op::ShrU { s, sa, t },
                _ => Op::ShrS { s, sa, t },
            }
        }
        "shd" => {
            no_completer(completer)?;
            let (hi, lo) = (ops.reg()?, ops.reg()?);
            let sa = shpos(ops.int()?)?;
            Op::Shd {
                hi,
                lo,
                sa,
                t: ops.reg()?,
            }
        }
        "extru" => {
            no_completer(completer)?;
            let s = ops.reg()?;
            let pos = ops.int()?;
            let lenf = ops.int()?;
            let t = ops.reg()?;
            if !(0..=31).contains(&pos) || !(1..=32).contains(&lenf) || lenf > pos + 1 {
                return Err(perr(lineno, format!("bad extru field ({pos},{lenf})")));
            }
            Op::Extru {
                s,
                pos: pos as u8,
                len: lenf as u8,
                t,
            }
        }
        "b" => {
            no_completer(completer)?;
            Op::B {
                target: ops.target(labels, len)?,
            }
        }
        "comb" => {
            let cond = cond(completer)?;
            let (a, b) = (ops.reg()?, ops.reg()?);
            Op::Comb {
                cond,
                a,
                b,
                target: ops.target(labels, len)?,
            }
        }
        "comib" => {
            let cond = cond(completer)?;
            let i = im5(ops.int()?)?;
            let b = ops.reg()?;
            Op::Combi {
                cond,
                i,
                b,
                target: ops.target(labels, len)?,
            }
        }
        "addib" => {
            let cond = cond(completer)?;
            let i = im5(ops.int()?)?;
            let b = ops.reg()?;
            Op::Addib {
                i,
                b,
                cond,
                target: ops.target(labels, len)?,
            }
        }
        "bb" => {
            let sense = match completer {
                Some("set") => BitSense::Set,
                Some("clear") => BitSense::Clear,
                other => {
                    return Err(perr(
                        lineno,
                        format!("bb needs `,set`/`,clear`, got {other:?}"),
                    ))
                }
            };
            let s = ops.reg()?;
            let bit = ops.int()?;
            if !(0..=31).contains(&bit) {
                return Err(perr(lineno, format!("bad bit position {bit}")));
            }
            Op::Bb {
                s,
                bit: bit as u8,
                sense,
                target: ops.target(labels, len)?,
            }
        }
        "blr" => {
            no_completer(completer)?;
            let x = ops.reg()?;
            Op::Blr {
                x,
                base: ops.target(labels, len)?,
            }
        }
        "nop" => {
            no_completer(completer)?;
            Op::Nop
        }
        "break" => {
            no_completer(completer)?;
            let code = ops.int()?;
            let code =
                u16::try_from(code).map_err(|_| perr(lineno, format!("bad break code {code}")))?;
            Op::Break { code }
        }
        other => return Err(perr(lineno, format!("unknown mnemonic `{other}`"))),
    };
    ops.finish()?;
    Ok(op)
}

fn attach_line(err: IsaError, line: usize) -> IsaError {
    match err {
        IsaError::Parse { message, .. } => IsaError::Parse { line, message },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn parses_basic_listing() {
        let src = "
            ; multiply r26 by 10 into r28
            ldo 0(r26),r28
            sh2add r26,r26,r28
            add r28,r28,r28
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.get(1).unwrap().op,
            Op::ShAdd {
                sh: ShAmount::Two,
                a: Reg::R26,
                b: Reg::R26,
                t: Reg::R28,
                trap: false
            }
        );
    }

    #[test]
    fn labels_and_branches() {
        let src = "
        top:
            addib,<> -1,r5,top
            b out
        out:
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.get(0).unwrap().op.branch_target(), Some(0));
        assert_eq!(p.get(1).unwrap().op.branch_target(), Some(2));
        assert_eq!(p.name_at(2), Some("out"));
    }

    #[test]
    fn at_targets() {
        let p = parse_program("b @1\nnop\n").unwrap();
        assert_eq!(p.get(0).unwrap().op.branch_target(), Some(1));
        assert!(parse_program("b @5\nnop\n").is_err());
    }

    #[test]
    fn hex_immediates() {
        let p = parse_program("addi 0x3f,r1,r2\n").unwrap();
        assert_eq!(
            p.get(0).unwrap().op,
            Op::Addi {
                i: Im11::new(63).unwrap(),
                b: Reg::R1,
                t: Reg::R2,
                trap: false
            }
        );
    }

    #[test]
    fn undefined_label_error() {
        assert_eq!(
            parse_program("b nowhere\n").unwrap_err(),
            IsaError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_error() {
        let src = "x:\nnop\nx:\nnop\n";
        assert_eq!(
            parse_program(src).unwrap_err(),
            IsaError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn error_mentions_line() {
        let err = parse_program("nop\nfrobnicate r1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_extra_operands() {
        assert!(parse_program("nop r1\n").is_err());
        assert!(parse_program("add r1,r2,r3,r4\n").is_err());
    }

    #[test]
    fn rejects_wrong_completers() {
        assert!(parse_program("add,= r1,r2,r3\n").is_err());
        assert!(parse_program("comb r1,r2,@0\n").is_err());
        assert!(parse_program("bb,maybe r1,31,@0\n").is_err());
    }

    #[test]
    fn round_trips_builder_output() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        let tbl = b.named_label("table");
        b.comclr(Cond::Ult, Reg::R3, Reg::R4, Reg::R0);
        b.addio(-1, Reg::R7, Reg::R7);
        b.shd(Reg::R1, Reg::R2, 30, Reg::R3);
        b.extru(Reg::R9, 31, 4, Reg::R8);
        b.blr(Reg::R8, tbl);
        b.bind(tbl);
        b.sh3add(Reg::R1, Reg::R2, Reg::R3);
        b.bb_lsb(Reg::R5, BitSense::Clear, top);
        b.ds(Reg::R9, Reg::R10, Reg::R9);
        b.addc(Reg::R4, Reg::R4, Reg::R4);
        b.ldil(0x1234, Reg::R6);
        b.ldo(-100, Reg::R6, Reg::R6);
        b.brk(3);
        let p = b.build().unwrap();
        let reparsed = parse_program(&p.to_string()).unwrap();
        assert_eq!(reparsed, p);
    }
}
