//! Immediate operand types with PA-RISC field widths.
//!
//! PA-RISC instruction formats give each immediate a fixed field width, and
//! the paper's code sequences are constrained by those widths (for instance
//! the three-instruction signed divide by *small* powers of two works only
//! because `2^k - 1` fits the 11-bit `ADDI` immediate). Each width gets its
//! own validated newtype so that constructing an out-of-range operand is an
//! error at build time rather than a silent truncation.

use core::fmt;

use crate::IsaError;

macro_rules! signed_imm {
    ($(#[$doc:meta])* $name:ident, $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(i32);

        impl $name {
            /// Number of bits in the instruction field.
            pub const BITS: u32 = $bits;
            /// Smallest encodable value.
            pub const MIN: i32 = -(1 << ($bits - 1));
            /// Largest encodable value.
            pub const MAX: i32 = (1 << ($bits - 1)) - 1;

            /// Creates the immediate, validating the field range.
            ///
            /// # Errors
            ///
            /// Returns [`IsaError::ImmediateOutOfRange`] when `value` does not
            /// fit the signed field.
            pub fn new(value: i32) -> Result<Self, IsaError> {
                if (Self::MIN..=Self::MAX).contains(&value) {
                    Ok(Self(value))
                } else {
                    Err(IsaError::ImmediateOutOfRange {
                        value: i64::from(value),
                        bits: Self::BITS,
                    })
                }
            }

            /// The immediate value.
            #[must_use]
            pub fn value(self) -> i32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl TryFrom<i32> for $name {
            type Error = IsaError;

            fn try_from(value: i32) -> Result<Self, IsaError> {
                Self::new(value)
            }
        }

        impl From<$name> for i32 {
            fn from(imm: $name) -> i32 {
                imm.0
            }
        }
    };
}

signed_imm! {
    /// The 5-bit signed immediate of `COMIB`/`ADDIB` (`-16..=15`).
    Im5, 5
}

signed_imm! {
    /// The 11-bit signed immediate of `ADDI`/`SUBI`/`COMICLR` (`-1024..=1023`).
    ///
    /// This is the width that separates "small" from "large" powers of two in
    /// the paper's signed division sequences.
    Im11, 11
}

signed_imm! {
    /// The 14-bit signed immediate of `LDO` (and thus the `LDI` idiom).
    Im14, 14
}

/// The 21-bit immediate of `LDIL`, which loads `value << 11` into a register.
///
/// Together with a following `LDO`, `LDIL` synthesises any 32-bit constant in
/// two instructions — the cost charged for "large" constants throughout the
/// reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Im21(u32);

impl Im21 {
    /// Number of bits in the instruction field.
    pub const BITS: u32 = 21;
    /// Largest encodable field value.
    pub const MAX: u32 = (1 << 21) - 1;

    /// Creates the immediate, validating the 21-bit field range.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ImmediateOutOfRange`] when `value > Im21::MAX`.
    pub fn new(value: u32) -> Result<Self, IsaError> {
        if value <= Self::MAX {
            Ok(Self(value))
        } else {
            Err(IsaError::ImmediateOutOfRange {
                value: i64::from(value),
                bits: Self::BITS,
            })
        }
    }

    /// The raw 21-bit field value.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }

    /// The 32-bit value deposited in the target register: `value << 11`.
    #[must_use]
    pub fn shifted(self) -> u32 {
        self.0 << 11
    }
}

impl fmt::Display for Im21 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The shift amount of a shift-and-add instruction: 1, 2 or 3.
///
/// The pre-shifter datapath shifts one ALU input left by exactly one of these
/// amounts — the same shifts needed for half-word/word/double-word indexed
/// addressing, which is why the hardware exists at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShAmount {
    /// Shift left by one (`SH1ADD`): computes `2a + b`.
    One,
    /// Shift left by two (`SH2ADD`): computes `4a + b`.
    Two,
    /// Shift left by three (`SH3ADD`): computes `8a + b`.
    Three,
}

impl ShAmount {
    /// Creates a shift amount from an integer `1..=3`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ShiftAmountOutOfRange`] otherwise.
    pub fn new(amount: u32) -> Result<ShAmount, IsaError> {
        match amount {
            1 => Ok(ShAmount::One),
            2 => Ok(ShAmount::Two),
            3 => Ok(ShAmount::Three),
            other => Err(IsaError::ShiftAmountOutOfRange(other)),
        }
    }

    /// The number of bit positions shifted, `1..=3`.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            ShAmount::One => 1,
            ShAmount::Two => 2,
            ShAmount::Three => 3,
        }
    }

    /// The multiplier applied to the pre-shifted operand (2, 4 or 8).
    #[must_use]
    pub fn factor(self) -> u32 {
        1 << self.bits()
    }
}

impl fmt::Display for ShAmount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

/// A shift distance for whole-word shifts and `SHD`: `0..=31`.
///
/// PA-RISC encodes these in the 5-bit shift/position field of the extract and
/// deposit instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShiftPos(u8);

impl ShiftPos {
    /// Creates a shift distance, validating `0..=31`.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ShiftAmountOutOfRange`] when `amount > 31`.
    pub fn new(amount: u32) -> Result<ShiftPos, IsaError> {
        if amount < 32 {
            Ok(ShiftPos(amount as u8))
        } else {
            Err(IsaError::ShiftAmountOutOfRange(amount))
        }
    }

    /// The shift distance in bits, `0..=31`.
    #[must_use]
    pub fn bits(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for ShiftPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u32> for ShiftPos {
    type Error = IsaError;

    fn try_from(amount: u32) -> Result<ShiftPos, IsaError> {
        ShiftPos::new(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im5_bounds() {
        assert_eq!(Im5::MIN, -16);
        assert_eq!(Im5::MAX, 15);
        assert!(Im5::new(-16).is_ok());
        assert!(Im5::new(15).is_ok());
        assert!(Im5::new(16).is_err());
        assert!(Im5::new(-17).is_err());
    }

    #[test]
    fn im11_bounds() {
        assert_eq!(Im11::MIN, -1024);
        assert_eq!(Im11::MAX, 1023);
        assert!(Im11::new(1023).is_ok());
        assert!(Im11::new(1024).is_err());
    }

    #[test]
    fn im14_bounds() {
        assert_eq!(Im14::MIN, -8192);
        assert_eq!(Im14::MAX, 8191);
        assert!(Im14::new(-8192).is_ok());
        assert!(Im14::new(8192).is_err());
    }

    #[test]
    fn im21_shifting() {
        let i = Im21::new(Im21::MAX).unwrap();
        assert_eq!(i.shifted(), 0xFFFF_F800);
        assert!(Im21::new(Im21::MAX + 1).is_err());
        assert_eq!(Im21::new(1).unwrap().shifted(), 0x800);
    }

    #[test]
    fn shamount() {
        assert_eq!(ShAmount::new(1).unwrap().factor(), 2);
        assert_eq!(ShAmount::new(2).unwrap().factor(), 4);
        assert_eq!(ShAmount::new(3).unwrap().factor(), 8);
        assert!(ShAmount::new(0).is_err());
        assert!(ShAmount::new(4).is_err());
    }

    #[test]
    fn shiftpos() {
        assert!(ShiftPos::new(0).is_ok());
        assert_eq!(ShiftPos::new(31).unwrap().bits(), 31);
        assert!(ShiftPos::new(32).is_err());
    }

    #[test]
    fn error_reports_width() {
        match Im11::new(5000) {
            Err(IsaError::ImmediateOutOfRange { value, bits }) => {
                assert_eq!(value, 5000);
                assert_eq!(bits, 11);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
