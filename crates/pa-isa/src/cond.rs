//! Comparison conditions for compare-and-branch and conditional nullification.

use core::fmt;
use core::str::FromStr;

use crate::IsaError;

/// A comparison condition, evaluated between two 32-bit operands.
///
/// These are the PA-RISC compare conditions used by `COMB`, `COMIB`,
/// `COMCLR`, `COMICLR` and `ADDIB`. Signed conditions use the PA-RISC
/// spellings (`<`, `<=`, …); unsigned ones use the doubled forms (`<<`,
/// `<<=`, …).
///
/// # Example
///
/// ```
/// use pa_isa::Cond;
///
/// assert!(Cond::Lt.eval(-1, 0));       // signed
/// assert!(!Cond::Ult.eval(-1, 0));     // -1 is 0xFFFF_FFFF unsigned
/// assert!(Cond::Odd.eval(3, 0));
/// assert_eq!(Cond::Lt.negate(), Cond::Ge);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cond {
    /// Never true.
    Never,
    /// `a == b`.
    Eq,
    /// `a < b`, signed.
    Lt,
    /// `a <= b`, signed.
    Le,
    /// `a < b`, unsigned (PA-RISC `<<`).
    Ult,
    /// `a <= b`, unsigned (PA-RISC `<<=`).
    Ule,
    /// `a` is odd (low bit of `a - b` set; used with `b = 0` as a bit test).
    Odd,
    /// Always true (PA-RISC `TR`).
    Always,
    /// `a != b`.
    Ne,
    /// `a >= b`, signed.
    Ge,
    /// `a > b`, signed.
    Gt,
    /// `a >= b`, unsigned (PA-RISC `>>=`).
    Uge,
    /// `a > b`, unsigned (PA-RISC `>>`).
    Ugt,
    /// `a` is even (low bit of `a - b` clear).
    Even,
}

impl Cond {
    /// Evaluates the condition between `a` and `b`.
    ///
    /// Unsigned conditions reinterpret the operand bits as `u32`. The parity
    /// conditions test the low bit of the (wrapping) difference `a - b`,
    /// matching the PA-RISC `OD`/`EV` unit conditions.
    #[must_use]
    pub fn eval(self, a: i32, b: i32) -> bool {
        let (ua, ub) = (a as u32, b as u32);
        match self {
            Cond::Never => false,
            Cond::Eq => a == b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Ult => ua < ub,
            Cond::Ule => ua <= ub,
            Cond::Odd => (a.wrapping_sub(b) & 1) != 0,
            Cond::Always => true,
            Cond::Ne => a != b,
            Cond::Ge => a >= b,
            Cond::Gt => a > b,
            Cond::Uge => ua >= ub,
            Cond::Ugt => ua > ub,
            Cond::Even => (a.wrapping_sub(b) & 1) == 0,
        }
    }

    /// The logically negated condition (PA-RISC's `f`-bit).
    #[must_use]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Never => Cond::Always,
            Cond::Eq => Cond::Ne,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Ult => Cond::Uge,
            Cond::Ule => Cond::Ugt,
            Cond::Odd => Cond::Even,
            Cond::Always => Cond::Never,
            Cond::Ne => Cond::Eq,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::Uge => Cond::Ult,
            Cond::Ugt => Cond::Ule,
            Cond::Even => Cond::Odd,
        }
    }

    /// The condition with the operand order swapped (`a cond b` ⇔ `b swap a`).
    #[must_use]
    pub fn swap_operands(self) -> Cond {
        match self {
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
            Cond::Ult => Cond::Ugt,
            Cond::Ule => Cond::Uge,
            Cond::Ugt => Cond::Ult,
            Cond::Uge => Cond::Ule,
            other => other,
        }
    }

    /// The assembler completer spelling, e.g. `"<"`, `"<<="`, `"od"`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Never => "never",
            Cond::Eq => "=",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Ult => "<<",
            Cond::Ule => "<<=",
            Cond::Odd => "od",
            Cond::Always => "tr",
            Cond::Ne => "<>",
            Cond::Ge => ">=",
            Cond::Gt => ">",
            Cond::Uge => ">>=",
            Cond::Ugt => ">>",
            Cond::Even => "ev",
        }
    }

    /// All conditions, for exhaustive testing.
    #[must_use]
    pub fn all() -> [Cond; 14] {
        [
            Cond::Never,
            Cond::Eq,
            Cond::Lt,
            Cond::Le,
            Cond::Ult,
            Cond::Ule,
            Cond::Odd,
            Cond::Always,
            Cond::Ne,
            Cond::Ge,
            Cond::Gt,
            Cond::Uge,
            Cond::Ugt,
            Cond::Even,
        ]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Cond {
    type Err = IsaError;

    fn from_str(s: &str) -> Result<Cond, IsaError> {
        Cond::all()
            .into_iter()
            .find(|c| c.mnemonic() == s)
            .ok_or_else(|| IsaError::Parse {
                line: 0,
                message: format!("unknown condition `{s}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive_and_complementary() {
        let samples = [
            (0, 0),
            (1, 2),
            (-1, 0),
            (i32::MIN, i32::MAX),
            (7, 7),
            (-5, -9),
            (i32::MAX, i32::MIN),
        ];
        for c in Cond::all() {
            assert_eq!(c.negate().negate(), c);
            for &(a, b) in &samples {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c} on ({a},{b})");
            }
        }
    }

    #[test]
    fn swap_operands_is_consistent() {
        let samples = [(0, 1), (1, 0), (-3, 4), (i32::MIN, -1), (9, 9)];
        for c in Cond::all() {
            // Parity conditions are about a - b, whose low bit is symmetric.
            for &(a, b) in &samples {
                assert_eq!(c.eval(a, b), c.swap_operands().eval(b, a), "{c} ({a},{b})");
            }
        }
    }

    #[test]
    fn signed_vs_unsigned() {
        assert!(Cond::Lt.eval(i32::MIN, 0));
        assert!(!Cond::Ult.eval(i32::MIN, 0));
        assert!(Cond::Ult.eval(0, i32::MIN));
        assert!(Cond::Ugt.eval(-1, 1));
    }

    #[test]
    fn parity() {
        assert!(Cond::Odd.eval(5, 0));
        assert!(Cond::Even.eval(5, 1));
        assert!(Cond::Odd.eval(0, 1)); // 0 - 1 = -1, odd
    }

    #[test]
    fn mnemonic_round_trip() {
        for c in Cond::all() {
            let text = c.mnemonic();
            assert_eq!(text.parse::<Cond>().unwrap(), c);
        }
        assert!("bogus".parse::<Cond>().is_err());
    }
}
