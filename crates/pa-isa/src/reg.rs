//! General registers.

use core::fmt;
use core::str::FromStr;

use crate::IsaError;

/// A general register, `r0` through `r31`.
///
/// `r0` ([`Reg::R0`]) is hardwired to zero: writes to it are discarded and
/// reads always yield `0`, exactly as on the HP Precision Architecture. The
/// paper leans on this ("the Precision architecture allows access to a
/// register which always contains the value zero") to seed addition chains
/// with `a₋₁ = 0`.
///
/// # Example
///
/// ```
/// use pa_isa::Reg;
///
/// let r = Reg::new(26).unwrap();
/// assert_eq!(r, Reg::R26);
/// assert_eq!(r.number(), 26);
/// assert_eq!(r.to_string(), "r26");
/// assert!(Reg::new(32).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

macro_rules! named_regs {
    ($($name:ident = $n:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("General register `r", stringify!($n), "`.")]
                pub const $name: Reg = Reg($n);
            )*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
    R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21,
    R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28,
    R29 = 29, R30 = 30, R31 = 31,
}

impl Reg {
    /// Creates a register from its number.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `n > 31`.
    pub fn new(n: u8) -> Result<Reg, IsaError> {
        if n < 32 {
            Ok(Reg(n))
        } else {
            Err(IsaError::RegisterOutOfRange(n))
        }
    }

    /// The register's number, `0..=31`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The register's number as an index usable into a 32-entry register file.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0u8..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl TryFrom<u8> for Reg {
    type Error = IsaError;

    fn try_from(n: u8) -> Result<Reg, IsaError> {
        Reg::new(n)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl FromStr for Reg {
    type Err = IsaError;

    /// Parses `"r<N>"` (e.g. `"r17"`).
    fn from_str(s: &str) -> Result<Reg, IsaError> {
        let bad = || IsaError::Parse {
            line: 0,
            message: format!("invalid register name `{s}`"),
        };
        let num = s.strip_prefix('r').ok_or_else(bad)?;
        if num.is_empty() || num.len() > 2 || !num.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad());
        }
        // Reject leading zeros other than "r0" itself so the listing format
        // stays canonical and round-trippable.
        if num.len() == 2 && num.starts_with('0') {
            return Err(bad());
        }
        let n: u8 = num.parse().map_err(|_| bad())?;
        Reg::new(n).map_err(|_| bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Reg::new(0).is_ok());
        assert!(Reg::new(31).is_ok());
        assert!(matches!(
            Reg::new(32),
            Err(IsaError::RegisterOutOfRange(32))
        ));
        assert!(Reg::new(255).is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn display_round_trip() {
        for r in Reg::all() {
            let text = r.to_string();
            let back: Reg = text.parse().unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "r", "r32", "r99", "x5", "r-1", "r05", "r1x"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
        assert_eq!(Reg::all().next(), Some(Reg::R0));
        assert_eq!(Reg::all().last(), Some(Reg::R31));
    }

    #[test]
    fn conversions() {
        let r = Reg::try_from(7u8).unwrap();
        assert_eq!(u8::from(r), 7);
        assert_eq!(r.index(), 7);
    }
}
