//! Property tests over the chain machinery.

use addchain::{find_chain, find_chain_minimal, find_chain_with, RuleConfig, SearchLimits};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Every rule-generated chain evaluates to its target.
    #[test]
    fn chains_hit_their_targets(n in any::<i32>()) {
        let c = find_chain(i64::from(n));
        prop_assert_eq!(c.target(), i128::from(n));
        if n != 1 {
            prop_assert_eq!(c.eval().last().copied(), Some(i128::from(n)));
        }
    }

    /// Overflow-safe chains are monotonic add/shift-and-add for any positive
    /// target.
    #[test]
    fn overflow_safe_chains_are_safe(n in 1i64..2_000_000) {
        let c = find_chain_with(n, &RuleConfig::overflow_safe());
        prop_assert!(c.is_overflow_safe(), "n = {}", n);
        prop_assert_eq!(c.target(), i128::from(n));
    }

    /// The register-lean configurations never leave the three-live-values
    /// envelope that multi-word division codegen depends on.
    #[test]
    fn binary_rules_bound_liveness(n in 2u64..(1 << 40)) {
        let binary = RuleConfig {
            allow_splits: false,
            max_divisor_search: 1,
            ..RuleConfig::default()
        };
        let c = find_chain_with(n as i64, &binary);
        prop_assert_eq!(c.target(), i128::from(n));
        // Reconstruct liveness: at most base + previous + result.
        let steps = c.steps();
        let mut last_use = vec![0usize; steps.len() + 1];
        for (at, step) in steps.iter().enumerate() {
            let (j, k) = step.operands();
            for r in [Some(j), k].into_iter().flatten() {
                match r {
                    addchain::Ref::One => last_use[0] = at,
                    addchain::Ref::Step(e) => last_use[e as usize] = at,
                    addchain::Ref::Zero => {}
                }
            }
        }
        last_use[steps.len()] = steps.len();
        for at in 0..steps.len() {
            let live = (0..=at + 1)
                .filter(|&e| e == at + 1 || last_use[e] > at)
                .count();
            prop_assert!(live <= 3, "n = {}: {} live at step {}", n, live, at);
        }
    }

    /// The hybrid searcher is valid and never longer than pure rules.
    #[test]
    fn hybrid_is_sound_and_no_worse(n in 2i64..3000) {
        let limits = SearchLimits {
            max_len: 6,
            value_cap: 1 << 13,
            max_shift: 13,
            node_budget: 5_000_000,
        };
        let hybrid = find_chain_minimal(n, &limits);
        prop_assert_eq!(hybrid.target(), i128::from(n));
        prop_assert!(hybrid.len() <= find_chain(n).len());
    }
}
