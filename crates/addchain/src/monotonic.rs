//! Shortest **monotonic** chains — the overflow-detecting variant of §5.
//!
//! A chain compiled with the trapping `ADDO`/`SHxADDO` instructions detects
//! multiplication overflow exactly when it is *monotonic* (strictly
//! increasing values) and contains only add / shift-and-add steps. This
//! module finds minimal such chains; comparing them with the unrestricted
//! lengths quantifies the paper's "penalty incurred for the detection of
//! overflow that languages such as Pascal may have to pay".
//!
//! Because every operation increases the value and no step may exceed the
//! target, the search space is tiny (all intermediates lie strictly between
//! 1 and `n`).

use crate::chain::{Chain, Ref, Step};

/// Minimal monotonic add/shift-and-add chain length for `n`, up to
/// `max_len`.
///
/// # Example
///
/// ```
/// // §5: multiplication by 15 has a 2-step monotonic chain,
/// // but 31 "cannot be made monotonic in two steps".
/// assert_eq!(addchain::monotonic::optimal_len(15, 6), Some(2));
/// assert_eq!(addchain::monotonic::optimal_len(31, 6), Some(3));
/// ```
#[must_use]
pub fn optimal_len(n: u64, max_len: u32) -> Option<u32> {
    optimal_chain(n, max_len).map(|c| c.len() as u32)
}

/// A minimal monotonic chain for `n`, or `None` beyond `max_len`.
///
/// The returned chain always satisfies [`Chain::is_overflow_safe`].
#[must_use]
pub fn optimal_chain(n: u64, max_len: u32) -> Option<Chain> {
    if n == 1 {
        return Some(Chain::identity());
    }
    if n == 0 {
        return None; // no increasing chain reaches 0
    }
    let mut dfs = Dfs {
        target: n,
        values: vec![1],
        steps: Vec::new(),
    };
    for depth in 1..=max_len {
        if let Some(c) = dfs.search(depth) {
            return Some(c);
        }
    }
    None
}

struct Dfs {
    target: u64,
    values: Vec<u64>,
    steps: Vec<Step>,
}

impl Dfs {
    fn ref_of(&self, idx: usize) -> Ref {
        if idx == 0 {
            Ref::One
        } else {
            Ref::Step(idx as u32)
        }
    }

    fn search(&mut self, remaining: u32) -> Option<Chain> {
        let last = *self.values.last().expect("non-empty");
        // Growth bound: each monotonic step at most ×9 (+ additive slack is
        // dominated by 8a+b ≤ 9·max).
        let mut reach = u128::from(last);
        for _ in 0..remaining {
            reach = reach.saturating_mul(9);
        }
        if reach < u128::from(self.target) {
            return None;
        }

        if remaining == 1 {
            if let Some(step) = self.closing_step() {
                self.steps.push(step);
                let chain = Chain::new(i128::from(self.target), self.steps.clone()).ok();
                self.steps.pop();
                return chain;
            }
            return None;
        }

        let mut cands: Vec<(u64, Step)> = Vec::new();
        let latest = last;
        for (i, &vi) in self.values.iter().enumerate() {
            let ri = self.ref_of(i);
            for (j, &vj) in self.values.iter().enumerate() {
                let rj = self.ref_of(j);
                if j >= i {
                    let v = vi + vj;
                    if v > latest && v < self.target {
                        cands.push((v, Step::Add { j: ri, k: rj }));
                    }
                }
                for sh in 1..=3u32 {
                    let v = (vi << sh) + vj;
                    if v > latest && v < self.target {
                        cands.push((v, Step::ShAdd { sh, j: ri, k: rj }));
                    }
                }
            }
        }
        cands.sort_unstable_by_key(|&(v, _)| v);
        cands.dedup_by_key(|&mut (v, _)| v);

        for (v, step) in cands {
            self.values.push(v);
            self.steps.push(step);
            let found = self.search(remaining - 1);
            self.steps.pop();
            self.values.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }

    fn closing_step(&self) -> Option<Step> {
        let n = self.target;
        let last = *self.values.last().expect("non-empty");
        if n <= last {
            return None;
        }
        let find = |v: u64| self.values.iter().position(|&x| x == v);
        for (i, &vi) in self.values.iter().enumerate() {
            let ri = self.ref_of(i);
            if let Some(diff) = n.checked_sub(vi) {
                if let Some(k) = find(diff) {
                    return Some(Step::Add {
                        j: ri,
                        k: self.ref_of(k),
                    });
                }
            }
            for sh in 1..=3u32 {
                if let Some(diff) = n.checked_sub(vi << sh) {
                    if let Some(k) = find(diff) {
                        return Some(Step::ShAdd {
                            sh,
                            j: ri,
                            k: self.ref_of(k),
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cases() {
        assert_eq!(optimal_len(1, 4), Some(0));
        assert_eq!(optimal_len(0, 4), None);
        assert_eq!(optimal_len(2, 4), Some(1));
        assert_eq!(optimal_len(9, 4), Some(1));
    }

    #[test]
    fn paper_15_monotonic_in_two() {
        let c = optimal_chain(15, 4).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.is_overflow_safe());
    }

    #[test]
    fn paper_31_needs_three() {
        assert_eq!(optimal_len(31, 6), Some(3));
    }

    #[test]
    fn chains_verify_and_are_safe() {
        for n in 2..=256u64 {
            let c = optimal_chain(n, 8).unwrap_or_else(|| panic!("no chain for {n}"));
            assert_eq!(c.eval().last().copied(), Some(i128::from(n)));
            assert!(c.is_overflow_safe(), "n = {n}\n{c}");
        }
    }

    #[test]
    fn monotonic_never_beats_unrestricted() {
        let limits = crate::SearchLimits {
            max_len: 6,
            value_cap: 1 << 12,
            max_shift: 12,
            node_budget: 20_000_000,
        };
        for n in 2..=128u64 {
            let mono = optimal_len(n, 7).unwrap();
            let free = crate::optimal_len(n, &limits).unwrap();
            assert!(
                mono >= free,
                "n = {n}: monotonic {mono} < unrestricted {free}"
            );
        }
    }

    #[test]
    fn bounded_by_max_len() {
        assert_eq!(optimal_len(31, 2), None);
    }
}
