//! Whole-range chain-length tables: the machinery behind Figure 1.
//!
//! A breadth-first sweep over *chain states* (the multiset of values a chain
//! has produced) computes the exact minimal length `l(n)` for every `n` up to
//! a bound, within explicit value/shift caps. Two tricks keep depth 6
//! tractable, mirroring the closing-step oracle of the per-target searcher:
//!
//! * states are deduplicated level by level (chains that produced the same
//!   value set are interchangeable);
//! * the last **two** levels are never materialised — each stored state is
//!   expanded once, and every successor runs a constant-time *closure* that
//!   marks all values reachable in one more rule application.
//!
//! The paper reports that exhaustive searches at length 7 were "prohibitively
//! time consuming" in 1987; the same cliff exists here (state counts grow by
//! ~two orders of magnitude per level), which is why [`FrontierConfig`]
//! exposes the caps instead of hiding them.

use std::collections::HashSet;

/// Configuration for [`Frontier::compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierConfig {
    /// Largest chain length classified (lengths beyond report as `None`).
    pub max_len: u32,
    /// Classify `l(n)` for all `n ≤ target_max`.
    pub target_max: u64,
    /// Intermediate value cap (completeness is relative to this).
    pub value_cap: u64,
    /// Largest plain shift explored.
    pub max_shift: u32,
    /// Worker threads for the final expansion level (`1` = sequential).
    pub threads: usize,
}

impl Default for FrontierConfig {
    fn default() -> FrontierConfig {
        FrontierConfig {
            max_len: 4,
            target_max: 200,
            value_cap: 1 << 14,
            max_shift: 14,
            threads: 1,
        }
    }
}

impl FrontierConfig {
    /// The configuration used to regenerate Figure 1 (depth 6 over
    /// `n ≤ 6000`). Expect minutes of CPU; use several `threads`.
    #[must_use]
    pub fn figure1(threads: usize) -> FrontierConfig {
        FrontierConfig {
            max_len: 6,
            target_max: 6000,
            value_cap: 1 << 15,
            max_shift: 15,
            threads: threads.max(1),
        }
    }
}

/// Exact `l(n)` table for `n ≤ target_max`, lengths ≤ `max_len`.
#[derive(Debug, Clone)]
pub struct Frontier {
    config: FrontierConfig,
    /// `lens[n]` = minimal chain length, `u8::MAX` when > `max_len` (within caps).
    lens: Vec<u8>,
}

const UNKNOWN: u8 = u8::MAX;

impl Frontier {
    /// Runs the sweep.
    ///
    /// # Example
    ///
    /// ```
    /// use addchain::{Frontier, FrontierConfig};
    ///
    /// let f = Frontier::compute(&FrontierConfig {
    ///     max_len: 3,
    ///     target_max: 60,
    ///     ..FrontierConfig::default()
    /// });
    /// assert_eq!(f.len_of(10), Some(2));
    /// assert_eq!(f.least(3), Some(14)); // Figure 1: first row-3 value
    /// ```
    #[must_use]
    pub fn compute(config: &FrontierConfig) -> Frontier {
        let mut lens = vec![UNKNOWN; config.target_max as usize + 1];
        if config.target_max >= 1 {
            lens[1] = 0;
        }
        let mut frontier = Frontier {
            config: *config,
            lens,
        };
        frontier.sweep();
        frontier
    }

    /// `l(n)` within the configured caps, `None` when `> max_len`.
    #[must_use]
    pub fn len_of(&self, n: u64) -> Option<u32> {
        let v = *self.lens.get(n as usize)?;
        (v != UNKNOWN).then_some(u32::from(v))
    }

    /// All `n` with `l(n) = r`, ascending — one row of Figure 1.
    #[must_use]
    pub fn row(&self, r: u32) -> Vec<u64> {
        self.lens
            .iter()
            .enumerate()
            .filter(|&(_, &l)| u32::from(l) == r && l != UNKNOWN)
            .map(|(n, _)| n as u64)
            .collect()
    }

    /// The paper's `c(r)`: the least `n` with `l(n) = r`.
    #[must_use]
    pub fn least(&self, r: u32) -> Option<u64> {
        self.lens
            .iter()
            .position(|&l| u32::from(l) == r && l != UNKNOWN)
            .map(|n| n as u64)
    }

    /// The configuration the table was computed under.
    #[must_use]
    pub fn config(&self) -> &FrontierConfig {
        &self.config
    }

    fn sweep(&mut self) {
        let cfg = self.config;
        if cfg.max_len == 0 {
            return;
        }
        // A state is the sorted set of values a chain has produced (the
        // implicit 1 is excluded). Level d holds states of d-step chains.
        let mut level: Vec<Vec<u32>> = vec![Vec::new()];
        // Depth at which stored expansion stops: the last two levels are
        // handled by expand+closure.
        let stored_depth = cfg.max_len.saturating_sub(2);

        for depth in 0..stored_depth {
            let mut seen: HashSet<Vec<u32>> = HashSet::new();
            let mut next: Vec<Vec<u32>> = Vec::new();
            for state in &level {
                for v in successors(state, &cfg) {
                    if (v as u64) <= cfg.target_max {
                        let slot = &mut self.lens[v as usize];
                        *slot = (*slot).min((depth + 1) as u8);
                    }
                    let mut s2 = state.clone();
                    let pos = s2.partition_point(|&x| x < v);
                    s2.insert(pos, v);
                    if seen.insert(s2.clone()) {
                        next.push(s2);
                    }
                }
            }
            level = next;
        }

        // Final two levels: expand each stored state once; run the closure on
        // every successor state.
        let penultimate = stored_depth + 1; // depth of expanded values
        let last = cfg.max_len; // depth of closure marks
        let chunks: Vec<&[Vec<u32>]> = if cfg.threads <= 1 || level.len() < 64 {
            vec![&level[..]]
        } else {
            let n = cfg.threads;
            let size = level.len().div_ceil(n);
            level.chunks(size).collect()
        };
        let partials: Vec<Vec<u8>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut lens = vec![UNKNOWN; cfg.target_max as usize + 1];
                        let mut scratch = Vec::new();
                        for state in chunk {
                            if cfg.max_len == 1 {
                                // Degenerate: level 0 state, closure only.
                                closure(state, &cfg, 1, &mut lens);
                                continue;
                            }
                            for v in successors(state, &cfg) {
                                if (v as u64) <= cfg.target_max {
                                    let slot = &mut lens[v as usize];
                                    *slot = (*slot).min(penultimate as u8);
                                }
                                scratch.clear();
                                scratch.extend_from_slice(state);
                                scratch.push(v);
                                closure(&scratch, &cfg, last, &mut lens);
                            }
                        }
                        lens
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for partial in partials {
            for (slot, p) in self.lens.iter_mut().zip(partial) {
                *slot = (*slot).min(p);
            }
        }
    }
}

/// All distinct values reachable from `state ∪ {1}` in one rule application,
/// bounded by the value cap and excluding values already present.
fn successors(state: &[u32], cfg: &FrontierConfig) -> Vec<u32> {
    let mut vals: Vec<u64> = Vec::with_capacity(state.len() + 1);
    vals.push(1);
    vals.extend(state.iter().map(|&v| u64::from(v)));
    let cap = cfg.value_cap;
    let mut out: Vec<u32> = Vec::with_capacity(64);
    let mut push = |v: u64| {
        if v == 0 || v > cap {
            return;
        }
        let v32 = v as u32;
        if v == 1 || state.contains(&v32) {
            return;
        }
        out.push(v32);
    };
    for (i, &vi) in vals.iter().enumerate() {
        for &vj in &vals[i..] {
            push(vi + vj);
        }
        for &vj in &vals {
            for sh in 1..=3u32 {
                push((vi << sh) + vj);
            }
            if vi > vj {
                push(vi - vj);
            }
        }
        for s in 1..=cfg.max_shift {
            let shifted = u128::from(vi) << s;
            if shifted > u128::from(cap) {
                break;
            }
            push(shifted as u64);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Marks every target ≤ `target_max` reachable from `state ∪ {1}` in one
/// rule application at `depth`.
fn closure(state: &[u32], cfg: &FrontierConfig, depth: u32, lens: &mut [u8]) {
    let mut vals: Vec<u64> = Vec::with_capacity(state.len() + 1);
    vals.push(1);
    vals.extend(state.iter().map(|&v| u64::from(v)));
    let max = cfg.target_max;
    let d = depth as u8;
    let mut mark = |v: u64| {
        if v >= 1 && v <= max {
            let slot = &mut lens[v as usize];
            if *slot > d {
                *slot = d;
            }
        }
    };
    for (i, &vi) in vals.iter().enumerate() {
        for &vj in &vals[i..] {
            mark(vi + vj);
        }
        for &vj in &vals {
            for sh in 1..=3u32 {
                mark((vi << sh) + vj);
            }
            if vi > vj {
                mark(vi - vj);
            }
        }
        for s in 1..=cfg.max_shift {
            let shifted = u128::from(vi) << s;
            if shifted > u128::from(max) {
                break;
            }
            mark(shifted as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(max_len: u32, target_max: u64) -> Frontier {
        Frontier::compute(&FrontierConfig {
            max_len,
            target_max,
            value_cap: 1 << 13,
            max_shift: 13,
            threads: 1,
        })
    }

    #[test]
    fn figure1_row1() {
        let f = small(1, 600);
        assert_eq!(
            f.row(1),
            vec![2, 3, 4, 5, 8, 9, 16, 32, 64, 128, 256, 512],
            "Figure 1 row 1"
        );
    }

    #[test]
    fn figure1_row2_prefix() {
        let f = small(2, 30);
        let row: Vec<u64> = f.row(2);
        assert_eq!(
            &row[..12.min(row.len())],
            &[6, 7, 10, 11, 12, 13, 15, 17, 18, 19, 20, 21],
            "Figure 1 row 2"
        );
    }

    #[test]
    fn figure1_row3_prefix() {
        let f = small(3, 45);
        let row = f.row(3);
        assert_eq!(
            &row[..11.min(row.len())],
            &[14, 22, 23, 26, 28, 29, 30, 35, 38, 39, 42],
            "Figure 1 row 3"
        );
    }

    #[test]
    fn figure1_row4_prefix() {
        let f = small(4, 120);
        let row = f.row(4);
        assert_eq!(
            &row[..9.min(row.len())],
            &[58, 78, 86, 92, 106, 110, 114, 115, 116],
            "Figure 1 row 4"
        );
    }

    #[test]
    fn least_matches_rows() {
        let f = small(4, 120);
        assert_eq!(f.least(1), Some(2));
        assert_eq!(f.least(2), Some(6));
        assert_eq!(f.least(3), Some(14));
        assert_eq!(f.least(4), Some(58));
    }

    #[test]
    fn threads_agree_with_sequential() {
        let base = small(3, 100);
        let threaded = Frontier::compute(&FrontierConfig {
            max_len: 3,
            target_max: 100,
            value_cap: 1 << 13,
            max_shift: 13,
            threads: 4,
        });
        for n in 1..=100u64 {
            assert_eq!(base.len_of(n), threaded.len_of(n), "n = {n}");
        }
    }

    #[test]
    fn agrees_with_per_target_search() {
        let f = small(4, 100);
        let limits = crate::SearchLimits {
            max_len: 4,
            value_cap: 1 << 13,
            max_shift: 13,
            node_budget: 10_000_000,
        };
        for n in 1..=100u64 {
            assert_eq!(f.len_of(n), crate::optimal_len(n, &limits), "n = {n}");
        }
    }

    #[test]
    fn unreachable_lengths_report_none() {
        let f = small(2, 200);
        assert_eq!(f.len_of(14), None, "14 needs 3 steps");
        assert_eq!(f.len_of(0), None, "0 is outside the positive table");
    }
}
