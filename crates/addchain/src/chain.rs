//! The chain representation and its structural predicates.

use core::fmt;

/// A reference to an earlier element of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ref {
    /// `a₋₁ = 0` — the hardwired zero register.
    Zero,
    /// `a₀ = 1` — the multiplicand.
    One,
    /// `aᵢ` for `i ≥ 1`, the result of step `i - 1` (0-based in [`Chain::steps`]).
    Step(u32),
}

impl Ref {
    fn index_bound_ok(self, current: usize) -> bool {
        match self {
            Ref::Zero | Ref::One => true,
            Ref::Step(i) => (i as usize) < current + 1 && i >= 1,
        }
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ref::Zero => write!(f, "0"),
            Ref::One => write!(f, "a0"),
            Ref::Step(i) => write!(f, "a{i}"),
        }
    }
}

/// One chain step — the paper's §5 rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// `aᵢ = aⱼ + aₖ`.
    Add {
        /// Left addend.
        j: Ref,
        /// Right addend.
        k: Ref,
    },
    /// `aᵢ = (aⱼ << sh) + aₖ` for `sh` in 1..=3 (the shift-and-add family).
    ShAdd {
        /// Pre-shift, 1..=3.
        sh: u32,
        /// Shifted operand.
        j: Ref,
        /// Unshifted addend.
        k: Ref,
    },
    /// `aᵢ = aⱼ - aₖ`.
    Sub {
        /// Minuend.
        j: Ref,
        /// Subtrahend.
        k: Ref,
    },
    /// `aᵢ = aⱼ << amount` for `amount` in 1..=31.
    Shl {
        /// Shifted operand.
        j: Ref,
        /// Shift distance, 1..=31.
        amount: u32,
    },
}

impl Step {
    /// The operands this step reads.
    #[must_use]
    pub fn operands(&self) -> (Ref, Option<Ref>) {
        match *self {
            Step::Add { j, k } | Step::ShAdd { j, k, .. } | Step::Sub { j, k } => (j, Some(k)),
            Step::Shl { j, .. } => (j, None),
        }
    }

    /// Whether the step is an add or shift-and-add — the only operations with
    /// trapping variants, hence the only ones allowed in overflow-detecting
    /// chains.
    #[must_use]
    pub fn has_trapping_form(&self) -> bool {
        matches!(self, Step::Add { .. } | Step::ShAdd { .. })
    }
}

/// Per-rule step counts for one chain (see [`Chain::step_mix`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepMix {
    /// Plain `Add` steps.
    pub adds: u32,
    /// `ShAdd` (shift-and-add) steps.
    pub shift_adds: u32,
    /// `Sub` steps.
    pub subs: u32,
    /// Plain `Shl` steps.
    pub shifts: u32,
}

/// Errors from [`Chain::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// A step references an element at or after itself (or `a₀`-style index 0).
    BadRef {
        /// 0-based step index.
        at: usize,
        /// The offending reference.
        reference: Ref,
    },
    /// A shift amount outside 1..=31 (paper: `n < 31`) or shift-add outside 1..=3.
    BadShift {
        /// 0-based step index.
        at: usize,
        /// The offending amount.
        amount: u32,
    },
    /// Intermediate values overflowed the evaluator's 128-bit range.
    ValueOverflow {
        /// 0-based step index.
        at: usize,
    },
    /// The chain evaluates to something other than the declared target.
    WrongTarget {
        /// Declared target.
        expected: i128,
        /// Actual final value.
        actual: i128,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadRef { at, reference } => {
                write!(f, "step {at} references unavailable element {reference}")
            }
            ChainError::BadShift { at, amount } => {
                write!(f, "step {at} uses invalid shift amount {amount}")
            }
            ChainError::ValueOverflow { at } => {
                write!(f, "step {at} overflows the evaluation range")
            }
            ChainError::WrongTarget { expected, actual } => {
                write!(f, "chain evaluates to {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// A validated shift-add chain computing `target` from `a₀ = 1`.
///
/// # Example
///
/// ```
/// use addchain::{Chain, Ref, Step};
///
/// // The paper's chain for 10: a1 = 4·a0 + a0 = 5, a2 = a1 + a1 = 10.
/// let chain = Chain::new(
///     10,
///     vec![
///         Step::ShAdd { sh: 2, j: Ref::One, k: Ref::One },
///         Step::Add { j: Ref::Step(1), k: Ref::Step(1) },
///     ],
/// )?;
/// assert_eq!(chain.len(), 2);
/// assert_eq!(chain.eval(), vec![5, 10]);
/// assert!(!chain.needs_temp());
/// # Ok::<(), addchain::ChainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    target: i128,
    steps: Vec<Step>,
    values: Vec<i128>,
}

impl Chain {
    /// Validates the steps and their evaluation against `target`.
    ///
    /// # Errors
    ///
    /// See [`ChainError`] — bad references, bad shift amounts, evaluation
    /// overflow, or a final value that is not `target`.
    pub fn new(target: impl Into<i128>, steps: Vec<Step>) -> Result<Chain, ChainError> {
        let target = target.into();
        let values = eval_steps(&steps)?;
        let actual = values.last().copied().unwrap_or(1);
        if actual != target {
            return Err(ChainError::WrongTarget {
                expected: target,
                actual,
            });
        }
        Ok(Chain {
            target,
            steps,
            values,
        })
    }

    /// The empty chain for the identity multiplication (`n = 1`).
    #[must_use]
    pub fn identity() -> Chain {
        Chain {
            target: 1,
            steps: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The number the chain computes.
    #[must_use]
    pub fn target(&self) -> i128 {
        self.target
    }

    /// The chain length `l(n)` — one machine instruction per step.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether this is the zero-step identity chain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// How many steps of each rule kind the chain uses — the "rule mix"
    /// recorded by chain-search telemetry.
    #[must_use]
    pub fn step_mix(&self) -> StepMix {
        let mut mix = StepMix::default();
        for step in &self.steps {
            match step {
                Step::Add { .. } => mix.adds += 1,
                Step::ShAdd { .. } => mix.shift_adds += 1,
                Step::Sub { .. } => mix.subs += 1,
                Step::Shl { .. } => mix.shifts += 1,
            }
        }
        mix
    }

    /// The value of every step, `a₁..=aᵣ` (validated at construction).
    #[must_use]
    pub fn eval(&self) -> Vec<i128> {
        self.values.clone()
    }

    /// The value an operand refers to.
    #[must_use]
    pub fn value_of(&self, r: Ref) -> i128 {
        match r {
            Ref::Zero => 0,
            Ref::One => 1,
            Ref::Step(i) => self.values[i as usize - 1],
        }
    }

    /// The largest absolute intermediate value.
    #[must_use]
    pub fn max_intermediate(&self) -> i128 {
        self.values.iter().map(|v| v.abs()).max().unwrap_or(1)
    }

    /// §5 *Overflow*: a chain is monotonic when its values strictly increase
    /// (`aᵢ < aⱼ` for `i < j`, starting from `a₀ = 1`).
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        let mut prev = 1i128;
        for &v in &self.values {
            if v <= prev {
                return false;
            }
            prev = v;
        }
        true
    }

    /// Whether the chain can be compiled with full overflow detection: it
    /// must be monotonic and contain only add / shift-and-add steps (the
    /// operations with trapping variants).
    #[must_use]
    pub fn is_overflow_safe(&self) -> bool {
        self.is_monotonic() && self.steps.iter().all(Step::has_trapping_form)
    }

    /// §5 *Register Use*: a chain needs **no** temporary register when every
    /// step uses only the previously constructed number, `a₀` (the untouched
    /// source) or zero.
    #[must_use]
    pub fn needs_temp(&self) -> bool {
        !self.steps.iter().enumerate().all(|(i, step)| {
            let ok = |r: Ref| match r {
                Ref::Zero | Ref::One => true,
                Ref::Step(s) => s as usize == i, // aᵢ, the immediately previous element
            };
            let (j, k) = step.operands();
            ok(j) && k.is_none_or(ok)
        })
    }
}

fn eval_steps(steps: &[Step]) -> Result<Vec<i128>, ChainError> {
    let mut values: Vec<i128> = Vec::with_capacity(steps.len());
    for (at, step) in steps.iter().enumerate() {
        let get = |r: Ref| -> Result<i128, ChainError> {
            if !r.index_bound_ok(at) {
                return Err(ChainError::BadRef { at, reference: r });
            }
            Ok(match r {
                Ref::Zero => 0,
                Ref::One => 1,
                Ref::Step(i) => values[i as usize - 1],
            })
        };
        let v = match *step {
            Step::Add { j, k } => get(j)?
                .checked_add(get(k)?)
                .ok_or(ChainError::ValueOverflow { at })?,
            Step::ShAdd { sh, j, k } => {
                if !(1..=3).contains(&sh) {
                    return Err(ChainError::BadShift { at, amount: sh });
                }
                let kv = get(k)?;
                get(j)?
                    .checked_shl(sh)
                    .and_then(|x| x.checked_add(kv))
                    .ok_or(ChainError::ValueOverflow { at })?
            }
            Step::Sub { j, k } => get(j)?
                .checked_sub(get(k)?)
                .ok_or(ChainError::ValueOverflow { at })?,
            Step::Shl { j, amount } => {
                if !(1..=31).contains(&amount) {
                    return Err(ChainError::BadShift { at, amount });
                }
                let base = get(j)?;
                if base.abs() > (1i128 << 90) {
                    return Err(ChainError::ValueOverflow { at });
                }
                base << amount
            }
        };
        values.push(v);
    }
    Ok(values)
}

impl fmt::Display for Chain {
    /// Prints the paper's notation, one step per line:
    ///
    /// ```text
    /// a1 = 4*a0 + a0
    /// a2 = a1 + a1
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return writeln!(f, "a0 = 1 (identity)");
        }
        for (i, step) in self.steps.iter().enumerate() {
            let lhs = i + 1;
            match *step {
                Step::Add { j, k } => writeln!(f, "a{lhs} = {j} + {k}")?,
                Step::ShAdd { sh, j, k } => writeln!(f, "a{lhs} = {}*{j} + {k}", 1u32 << sh)?,
                Step::Sub { j, k } => writeln!(f, "a{lhs} = {j} - {k}")?,
                Step::Shl { j, amount } => writeln!(f, "a{lhs} = {j} << {amount}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Ref {
        Ref::Step(i)
    }

    #[test]
    fn paper_chain_for_10() {
        let c = Chain::new(
            10,
            vec![
                Step::ShAdd {
                    sh: 2,
                    j: Ref::One,
                    k: Ref::One,
                },
                Step::Add { j: s(1), k: s(1) },
            ],
        )
        .unwrap();
        assert_eq!(c.eval(), vec![5, 10]);
        assert!(c.is_monotonic());
        assert!(c.is_overflow_safe());
        assert!(!c.needs_temp());
    }

    #[test]
    fn monotonic_15() {
        // The paper's overflow-detecting chain: a1 = 2a0+a0 = 3; a2 = 4a1+a1 = 15.
        let c = Chain::new(
            15,
            vec![
                Step::ShAdd {
                    sh: 1,
                    j: Ref::One,
                    k: Ref::One,
                },
                Step::ShAdd {
                    sh: 2,
                    j: s(1),
                    k: s(1),
                },
            ],
        )
        .unwrap();
        assert!(c.is_overflow_safe());
    }

    #[test]
    fn paper_59_with_temp() {
        // t = 2s+s; r = 2t+s; r = 8r+t — uses t (a1) late: needs a temp.
        let c = Chain::new(
            59,
            vec![
                Step::ShAdd {
                    sh: 1,
                    j: Ref::One,
                    k: Ref::One,
                }, // a1 = 3
                Step::ShAdd {
                    sh: 1,
                    j: s(1),
                    k: Ref::One,
                }, // a2 = 7
                Step::ShAdd {
                    sh: 3,
                    j: s(2),
                    k: s(1),
                }, // a3 = 59
            ],
        )
        .unwrap();
        assert_eq!(c.eval(), vec![3, 7, 59]);
        assert!(c.needs_temp());
    }

    #[test]
    fn paper_59_temp_free() {
        // r = s+s; r = 8r+s; r = 2r+r; r = 8s+r (four steps, no temp).
        let c = Chain::new(
            59,
            vec![
                Step::Add {
                    j: Ref::One,
                    k: Ref::One,
                }, // 2
                Step::ShAdd {
                    sh: 3,
                    j: s(1),
                    k: Ref::One,
                }, // 17
                Step::ShAdd {
                    sh: 1,
                    j: s(2),
                    k: s(2),
                }, // 51
                Step::ShAdd {
                    sh: 3,
                    j: Ref::One,
                    k: s(3),
                }, // 59
            ],
        )
        .unwrap();
        assert_eq!(c.eval(), vec![2, 17, 51, 59]);
        assert!(!c.needs_temp());
    }

    #[test]
    fn bad_refs_rejected() {
        // Step 0 referencing a1 (itself) is invalid.
        let err = Chain::new(2, vec![Step::Add { j: s(1), k: s(1) }]).unwrap_err();
        assert!(matches!(err, ChainError::BadRef { at: 0, .. }));
    }

    #[test]
    fn forward_refs_rejected() {
        let err = Chain::new(
            4,
            vec![
                Step::Add {
                    j: Ref::One,
                    k: Ref::One,
                },
                Step::Add {
                    j: s(3),
                    k: Ref::Zero,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ChainError::BadRef { at: 1, .. }));
    }

    #[test]
    fn bad_shift_rejected() {
        let err = Chain::new(
            2,
            vec![Step::Shl {
                j: Ref::One,
                amount: 32,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ChainError::BadShift { at: 0, amount: 32 }));
        let err = Chain::new(
            5,
            vec![Step::ShAdd {
                sh: 4,
                j: Ref::One,
                k: Ref::One,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ChainError::BadShift { at: 0, amount: 4 }));
    }

    #[test]
    fn wrong_target_rejected() {
        let err = Chain::new(
            7,
            vec![Step::Add {
                j: Ref::One,
                k: Ref::One,
            }],
        )
        .unwrap_err();
        assert_eq!(
            err,
            ChainError::WrongTarget {
                expected: 7,
                actual: 2
            }
        );
    }

    #[test]
    fn identity_chain() {
        let c = Chain::identity();
        assert_eq!(c.target(), 1);
        assert_eq!(c.len(), 0);
        assert!(c.is_monotonic());
        assert!(!c.needs_temp());
    }

    #[test]
    fn negative_targets_allowed() {
        // a1 = 0 - a0 = -1: the paper's "-n in one more step".
        let c = Chain::new(
            -1,
            vec![Step::Sub {
                j: Ref::Zero,
                k: Ref::One,
            }],
        )
        .unwrap();
        assert_eq!(c.eval(), vec![-1]);
        assert!(!c.is_monotonic());
    }

    #[test]
    fn display_uses_paper_notation() {
        let c = Chain::new(
            10,
            vec![
                Step::ShAdd {
                    sh: 2,
                    j: Ref::One,
                    k: Ref::One,
                },
                Step::Add { j: s(1), k: s(1) },
            ],
        )
        .unwrap();
        let text = c.to_string();
        assert!(text.contains("a1 = 4*a0 + a0"), "{text}");
        assert!(text.contains("a2 = a1 + a1"), "{text}");
    }

    #[test]
    fn shift_monotonicity_check_catches_decrease() {
        // 16 then 15: the sub step makes it non-monotonic (16 > 15).
        let c = Chain::new(
            15,
            vec![
                Step::Shl {
                    j: Ref::One,
                    amount: 4,
                },
                Step::Sub {
                    j: s(1),
                    k: Ref::One,
                },
            ],
        )
        .unwrap();
        assert!(!c.is_monotonic());
        assert!(!c.is_overflow_safe());
    }

    #[test]
    fn value_overflow_detected() {
        let mut steps = Vec::new();
        for i in 0..5 {
            steps.push(Step::Shl {
                j: if i == 0 { Ref::One } else { s(i) },
                amount: 31,
            });
        }
        // 2^155 overflows the guard
        assert!(matches!(
            eval_steps(&steps),
            Err(ChainError::ValueOverflow { .. })
        ));
    }

    #[test]
    fn max_intermediate() {
        let c = Chain::new(
            15,
            vec![
                Step::Shl {
                    j: Ref::One,
                    amount: 4,
                },
                Step::Sub {
                    j: s(1),
                    k: Ref::One,
                },
            ],
        )
        .unwrap();
        assert_eq!(c.max_intermediate(), 16);
    }
}
