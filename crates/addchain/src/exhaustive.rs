//! Per-target exhaustive chain search.
//!
//! The paper validates its rule-based generator against "a program that
//! exhaustively searches for all possible chains"; this module is that
//! program. It runs iterative-deepening DFS over chain states with a
//! *closing-step oracle*: at one remaining step, instead of enumerating
//! successors it answers "can any single rule produce the target from the
//! values at hand?" in `O(|V|·shifts)` — the optimisation that makes depth-5
//! and depth-6 proofs tractable.
//!
//! Exhaustiveness is relative to explicit [`SearchLimits`] (intermediate
//! value cap, largest plain shift, node budget). The defaults comfortably
//! cover the paper's Figure 1 range; the limits are recorded with every
//! result in `EXPERIMENTS.md`.

use crate::chain::{Chain, Ref, Step};

/// Bounds on the exhaustive search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum chain length to try.
    pub max_len: u32,
    /// Largest intermediate value explored.
    pub value_cap: u64,
    /// Largest plain-shift distance explored.
    pub max_shift: u32,
    /// DFS node budget per target (guards pathological targets).
    pub node_budget: u64,
}

impl Default for SearchLimits {
    fn default() -> SearchLimits {
        SearchLimits {
            max_len: 6,
            value_cap: 1 << 17,
            max_shift: 17,
            node_budget: 200_000_000,
        }
    }
}

/// The exact minimal chain length for `n` within `limits`, or `None` if no
/// chain of length ≤ `limits.max_len` exists in the bounded space.
///
/// # Example
///
/// ```
/// use addchain::{optimal_len, SearchLimits};
///
/// let limits = SearchLimits::default();
/// assert_eq!(optimal_len(10, &limits), Some(2));
/// assert_eq!(optimal_len(14, &limits), Some(3)); // first row-3 value of Figure 1
/// ```
#[must_use]
pub fn optimal_len(n: u64, limits: &SearchLimits) -> Option<u32> {
    optimal_chain(n, limits).map(|c| c.len() as u32)
}

/// A minimal-length chain for `n` within `limits`.
///
/// Iterative deepening guarantees the returned chain is as short as any chain
/// whose intermediates respect the limits.
#[must_use]
pub fn optimal_chain(n: u64, limits: &SearchLimits) -> Option<Chain> {
    if n == 1 {
        return Some(Chain::identity());
    }
    if n == 0 {
        return Chain::new(
            0,
            vec![Step::Sub {
                j: Ref::One,
                k: Ref::One,
            }],
        )
        .ok();
    }
    let mut dfs = Dfs {
        limits: *limits,
        target: n,
        values: vec![1],
        steps: Vec::new(),
        nodes: 0,
    };
    for depth in 1..=limits.max_len {
        if let Some(chain) = dfs.search(depth) {
            telemetry::emit(|| {
                crate::chain_search_event(
                    &chain,
                    i64::try_from(n).unwrap_or(i64::MAX),
                    Some(dfs.nodes),
                    "exhaustive",
                )
            });
            return Some(chain);
        }
        if dfs.nodes > limits.node_budget {
            return None;
        }
    }
    None
}

struct Dfs {
    limits: SearchLimits,
    target: u64,
    /// `values[0] = 1`, then one entry per step taken.
    values: Vec<u64>,
    steps: Vec<Step>,
    nodes: u64,
}

impl Dfs {
    fn search(&mut self, remaining: u32) -> Option<Chain> {
        self.nodes += 1;
        if self.nodes > self.limits.node_budget {
            return None;
        }
        // Reachability bound: each step can at most shift by max_shift.
        let max_v = *self.values.iter().max().expect("non-empty");
        let growth = u32::min(self.limits.max_shift, 63) * remaining;
        if growth < 64 && (u128::from(max_v) << growth) < u128::from(self.target) {
            return None;
        }

        if remaining == 1 {
            if let Some(step) = self.closing_step() {
                self.steps.push(step);
                let steps = self.steps.clone();
                self.steps.pop();
                return Chain::new(i128::from(self.target), steps).ok();
            }
            return None;
        }

        let candidates = self.candidates();
        for (value, step) in candidates {
            self.values.push(value);
            self.steps.push(step);
            let found = self.search(remaining - 1);
            self.steps.pop();
            self.values.pop();
            if found.is_some() {
                return found;
            }
        }
        None
    }

    fn ref_of(&self, idx: usize) -> Ref {
        if idx == 0 {
            Ref::One
        } else {
            Ref::Step(idx as u32)
        }
    }

    fn contains(&self, v: u64) -> Option<usize> {
        self.values.iter().position(|&x| x == v)
    }

    /// All single-rule successors (deduplicated by value).
    fn candidates(&self) -> Vec<(u64, Step)> {
        let cap = self.limits.value_cap;
        let vals = &self.values;
        let mut out: Vec<(u64, Step)> = Vec::with_capacity(64);
        let mut push = |v: u64, step: Step, seen: &[u64]| {
            if v == 0 || v > cap || seen.contains(&v) {
                return;
            }
            out.push((v, step));
        };
        for (i, &vi) in vals.iter().enumerate() {
            let ri = self.ref_of(i);
            for (j, &vj) in vals.iter().enumerate() {
                let rj = self.ref_of(j);
                if j >= i {
                    push(vi + vj, Step::Add { j: ri, k: rj }, vals);
                }
                for sh in 1..=3u32 {
                    push((vi << sh) + vj, Step::ShAdd { sh, j: ri, k: rj }, vals);
                }
                if vi > vj {
                    push(vi - vj, Step::Sub { j: ri, k: rj }, vals);
                }
            }
            for s in 1..=self.limits.max_shift {
                let shifted = (u128::from(vi)) << s;
                if shifted > u128::from(cap) {
                    break;
                }
                push(shifted as u64, Step::Shl { j: ri, amount: s }, vals);
            }
        }
        // Deduplicate by value (keep the first step that makes it).
        out.sort_by_key(|&(v, _)| v);
        out.dedup_by_key(|&mut (v, _)| v);
        out
    }

    /// Can one rule produce the target from the current values?
    fn closing_step(&self) -> Option<Step> {
        let n = self.target;
        for (i, &vi) in self.values.iter().enumerate() {
            let ri = self.ref_of(i);
            // n = vi + vk
            if let Some(diff) = n.checked_sub(vi) {
                if diff == 0 {
                    return Some(Step::Add {
                        j: ri,
                        k: Ref::Zero,
                    });
                }
                if let Some(k) = self.contains(diff) {
                    return Some(Step::Add {
                        j: ri,
                        k: self.ref_of(k),
                    });
                }
            }
            // n = (vi << sh) + vk, sh 1..=3
            for sh in 1..=3u32 {
                let shifted = vi << sh;
                if let Some(diff) = n.checked_sub(shifted) {
                    if diff == 0 {
                        return Some(Step::ShAdd {
                            sh,
                            j: ri,
                            k: Ref::Zero,
                        });
                    }
                    if let Some(k) = self.contains(diff) {
                        return Some(Step::ShAdd {
                            sh,
                            j: ri,
                            k: self.ref_of(k),
                        });
                    }
                }
            }
            // n = vi - vk
            if vi > n {
                if let Some(k) = self.contains(vi - n) {
                    return Some(Step::Sub {
                        j: ri,
                        k: self.ref_of(k),
                    });
                }
            }
            // n = vk - vi (vk in values)
            if let Some(k) = self.contains(n + vi) {
                return Some(Step::Sub {
                    j: self.ref_of(k),
                    k: ri,
                });
            }
        }
        // n = vi << s
        for s in 1..=self.limits.max_shift {
            if n.trailing_zeros() >= s {
                if let Some(i) = self.contains(n >> s) {
                    return Some(Step::Shl {
                        j: self.ref_of(i),
                        amount: s,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_chain;

    fn limits() -> SearchLimits {
        SearchLimits {
            value_cap: 1 << 14,
            max_shift: 14,
            ..SearchLimits::default()
        }
    }

    #[test]
    fn trivial_targets() {
        let l = limits();
        assert_eq!(optimal_len(1, &l), Some(0));
        assert_eq!(optimal_len(0, &l), Some(1));
    }

    #[test]
    fn figure1_row_memberships() {
        let l = limits();
        // Row 1 sample
        for n in [2u64, 3, 5, 9, 256] {
            assert_eq!(optimal_len(n, &l), Some(1), "n = {n}");
        }
        // Row 2 sample
        for n in [6u64, 7, 11, 13, 21] {
            assert_eq!(optimal_len(n, &l), Some(2), "n = {n}");
        }
        // Row 3 sample (Figure 1: 14 is the least)
        for n in [14u64, 23, 29, 42] {
            assert_eq!(optimal_len(n, &l), Some(3), "n = {n}");
        }
        // Row 4 sample (Figure 1: 58 is the least)
        for n in [58u64, 78, 116] {
            assert_eq!(optimal_len(n, &l), Some(4), "n = {n}");
        }
    }

    #[test]
    fn chains_are_valid_and_minimal_vs_rules() {
        let l = limits();
        for n in 2..=128u64 {
            let exact = optimal_chain(n, &l).unwrap_or_else(|| panic!("no chain for {n}"));
            assert_eq!(exact.eval().last().copied(), Some(i128::from(n)));
            let ruled = find_chain(n as i64);
            assert!(
                exact.len() <= ruled.len(),
                "exhaustive worse than rules for {n}: {} vs {}",
                exact.len(),
                ruled.len()
            );
        }
    }

    #[test]
    fn row5_least_value() {
        // Figure 1: the least n with l(n) = 5 is 466.
        let l = limits();
        assert_eq!(optimal_len(466, &l), Some(5));
        assert_eq!(optimal_len(465, &l).unwrap(), 4); // 465 = 5·93 …
    }

    #[test]
    fn node_budget_aborts() {
        let l = SearchLimits {
            node_budget: 10,
            ..limits()
        };
        // Large target with a tiny budget: must give up, not hang.
        assert_eq!(optimal_chain(4838, &l), None);
    }

    #[test]
    fn closing_oracle_handles_subtraction() {
        // 2^14 - 1 needs shl then sub.
        let l = limits();
        let c = optimal_chain((1 << 14) - 1, &l).unwrap();
        assert_eq!(c.len(), 2);
    }
}
