//! Shortest chains that need **no temporary register**.
//!
//! §5 *Register Use*: a multiplication-by-constant sequence runs in just the
//! source register `s` (untouched, playing `a₀`) and the result register `r`
//! when every step combines only the previously constructed value and `a₀`.
//! Under that restriction the chain state collapses to a single value, so the
//! whole table of shortest temp-free lengths is one breadth-first search.
//!
//! Comparing this table against the exhaustive `l(n)` reproduces the paper's
//! observation that *"the only numbers less than 100 that need a temporary at
//! all in their minimal chains are 59, 87, and 94"*.

use std::collections::VecDeque;

/// Shortest temp-free chain length for every `n ≤ target_max`.
///
/// Entry `n` is `None` when no temp-free chain of length ≤ `max_len` exists
/// with intermediates ≤ `value_cap` and plain shifts ≤ `max_shift`. Entry 1
/// is `Some(0)`; entry 0 is `None` (multiplication by zero is a register
/// copy, not a chain).
///
/// # Example
///
/// ```
/// let lens = addchain::temp_free_lengths(100, 1 << 12, 12, 8);
/// assert_eq!(lens[10], Some(2));
/// // 59 temp-free needs 4 steps (the paper's r=s+s; r=8r+s; r=2r+r; r=8s+r)
/// assert_eq!(lens[59], Some(4));
/// ```
#[must_use]
pub fn temp_free_lengths(
    target_max: u64,
    value_cap: u64,
    max_shift: u32,
    max_len: u32,
) -> Vec<Option<u32>> {
    let cap = value_cap.max(target_max) as usize;
    let mut depth: Vec<u8> = vec![u8::MAX; cap + 1];
    depth[1] = 0;
    let mut queue: VecDeque<u64> = VecDeque::new();
    queue.push_back(1);

    while let Some(v) = queue.pop_front() {
        let d = depth[v as usize];
        if u32::from(d) >= max_len {
            continue;
        }
        let nd = d + 1;
        let mut push = |next: u64| {
            if next == 0 || next > cap as u64 {
                return;
            }
            let slot = &mut depth[next as usize];
            if *slot == u8::MAX {
                *slot = nd;
                queue.push_back(next);
            }
        };
        // Steps allowed on {prev = v, a₀ = 1, 0}:
        push(v + v); //        add  prev,prev
        push(v + 1); //        add  prev,a0
        for sh in 1..=3u32 {
            push((v << sh) + v); // shXadd prev,prev
            push((v << sh) + 1); // shXadd prev,a0
            push((1 << sh) + v); // shXadd a0,prev
        }
        push(v.wrapping_sub(1)); // sub prev,a0 (v ≥ 1 so no wrap below 0)
        if v > 1 {
            // sub a0,prev is negative; sub prev,prev is 0 — both useless.
        }
        for s in 1..=max_shift {
            let shifted = u128::from(v) << s;
            if shifted > cap as u128 {
                break;
            }
            push(shifted as u64); // shl prev
        }
    }

    (0..=target_max)
        .map(|n| {
            let d = depth[n as usize];
            (n != 0 && d != u8::MAX).then_some(u32::from(d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimal_len, SearchLimits};

    fn table() -> Vec<Option<u32>> {
        temp_free_lengths(100, 1 << 13, 13, 8)
    }

    #[test]
    fn base_cases() {
        let t = table();
        assert_eq!(t[0], None);
        assert_eq!(t[1], Some(0));
        assert_eq!(t[2], Some(1));
        assert_eq!(t[3], Some(1));
        assert_eq!(t[9], Some(1));
    }

    #[test]
    fn paper_register_use_claim() {
        // Exactly {59, 87, 94} below 100 have temp-free length exceeding
        // their true minimal length.
        let tf = table();
        let limits = SearchLimits {
            max_len: 6,
            value_cap: 1 << 13,
            max_shift: 13,
            node_budget: 50_000_000,
        };
        let mut need_temp = Vec::new();
        for n in 1..100u64 {
            let exact = optimal_len(n, &limits).expect("all n < 100 within 6 steps");
            let temp_free = tf[n as usize].expect("reachable temp-free");
            assert!(temp_free >= exact, "n = {n}");
            if temp_free > exact {
                need_temp.push(n);
            }
        }
        assert_eq!(need_temp, vec![59, 87, 94], "§5 Register Use");
    }

    #[test]
    fn paper_59_needs_four_temp_free() {
        let t = table();
        assert_eq!(t[59], Some(4));
        assert_eq!(t[87], Some(4));
        assert_eq!(t[94], Some(4));
    }

    #[test]
    fn respects_max_len() {
        let t = temp_free_lengths(100, 1 << 13, 13, 2);
        assert_eq!(t[59], None, "59 unreachable in 2 temp-free steps");
        assert_eq!(t[10], Some(2));
    }

    #[test]
    fn value_cap_limits_reachability() {
        // 127 = 128 - 1 needs an intermediate above the cap.
        let tight = temp_free_lengths(127, 127, 7, 8);
        let loose = temp_free_lengths(127, 1 << 8, 8, 8);
        assert!(tight[127].unwrap() > loose[127].unwrap());
    }
}
