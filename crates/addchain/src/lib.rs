//! # addchain — shift-add addition chains for multiplication by constants
//!
//! §5 of the ASPLOS'87 paper generalises Knuth's addition chains to the rule
//! set the HP Precision Architecture executes in one cycle each:
//!
//! ```text
//! aᵢ = aⱼ + aₖ          (ADD)
//! aᵢ = 2aⱼ + aₖ         (SH1ADD)
//! aᵢ = 4aⱼ + aₖ         (SH2ADD)
//! aᵢ = 8aⱼ + aₖ         (SH3ADD)
//! aᵢ = aⱼ - aₖ          (SUB)
//! aᵢ = aⱼ << k          (shift)
//! ```
//!
//! with `a₋₁ = 0` (the hardwired `r0`) and `a₀ = 1` (the multiplicand).
//! The chain length `l(n)` is the dynamic instruction count of the
//! compiled multiply-by-`n`.
//!
//! This crate provides:
//!
//! * [`Chain`] — the sequence representation with evaluation, the paper's
//!   *monotonicity* (overflow-safety) predicate, and the *temporary register*
//!   predicate from §5 *Register Use*;
//! * [`find_chain`] — the **rule-based searcher** (memoized factor/binary
//!   decomposition in the spirit of the paper's "rule-based program");
//! * [`optimal_chain`]/[`optimal_len`] — per-target **exhaustive search**
//!   (iterative deepening with a closing-step oracle), the optimality
//!   baseline the paper compares its rules against;
//! * [`Frontier`] — the breadth-first sweep that regenerates **Figure 1**
//!   (least `n` with `l(n) = r`) and exact `l(n)` tables;
//! * [`temp_free_lengths`] — shortest chains restricted to use only the
//!   previous element and `a₀`, which reproduces the §5 claim that below 100
//!   only 59, 87 and 94 require a temporary register;
//! * [`monotonic`] — shortest *monotonic* add/shift-and-add chains, the
//!   overflow-detecting variant (multiplication by 15 in 2 steps, 31 in 3).
//!
//! ## Example
//!
//! ```
//! use addchain::{find_chain, Chain};
//!
//! let chain = find_chain(10);
//! assert_eq!(chain.target(), 10);
//! assert!(chain.len() <= 2); // the paper's example: a1 = 5, a2 = 10
//! assert_eq!(chain.eval().last().copied(), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod exhaustive;
mod frontier;
pub mod monotonic;
mod rules;
mod tempfree;

pub use chain::{Chain, ChainError, Ref, Step, StepMix};
pub use exhaustive::{optimal_chain, optimal_len, SearchLimits};
pub use frontier::{Frontier, FrontierConfig};
pub use rules::{find_chain, find_chain_minimal, find_chain_with, RuleConfig};
pub use tempfree::temp_free_lengths;

/// Builds the [`telemetry::Event::ChainSearch`] record for a finished chain.
pub(crate) fn chain_search_event(
    chain: &Chain,
    target: i64,
    nodes_expanded: Option<u64>,
    source: &'static str,
) -> telemetry::Event {
    let mix = chain.step_mix();
    telemetry::Event::ChainSearch {
        target,
        len: chain.len(),
        shift_adds: mix.shift_adds,
        adds: mix.adds,
        subs: mix.subs,
        shifts: mix.shifts,
        nodes_expanded,
        source,
    }
}
