//! Span tracing: nested, timed regions across the compile → cache →
//! prepare → execute → verify pipeline.
//!
//! The [`Event`](crate::Event) stream records *decisions*; spans record
//! *where time went*. A span is opened with [`enter`] (or [`enter_with`]
//! when a dynamic label is worth its allocation), closed when its
//! [`SpanGuard`] drops, and carries
//!
//! * wall-clock duration in nanoseconds,
//! * simulated-cycle attribution (added by the instrumented stage via
//!   [`SpanGuard::add_cycles`]), and
//! * parent linkage — spans opened while another span is live become its
//!   children, so a trace reconstructs the call tree
//!   (`compile` → `cache_lookup` → `compile_cold` → `prepare`).
//!
//! Like event collection, tracing is **opt-in per thread**: outside a
//! [`trace`] scope [`enter`] costs one thread-local check and returns an
//! inert guard, so production paths stay unperturbed. Scopes nest the same
//! way [`collect`](crate::collect) scopes do: the innermost scope receives
//! the spans.
//!
//! # Example
//!
//! ```
//! use telemetry::span;
//!
//! let ((), spans) = span::trace(|| {
//!     let _compile = span::enter_with("compile", || "x * 10".to_string());
//!     {
//!         let mut execute = span::enter("execute");
//!         execute.add_cycles(2);
//!     }
//! });
//! assert_eq!(spans.len(), 2);
//! // Children close (and record) before their parents.
//! assert_eq!(spans[0].name, "execute");
//! assert_eq!(spans[0].cycles, 2);
//! assert_eq!(spans[1].name, "compile");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```

use std::cell::RefCell;
use std::time::Instant;

use crate::json::Json;

/// One closed span: a named, timed region of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Identifier, unique within one [`trace`] scope (allocated in entry
    /// order, starting at 1).
    pub id: u64,
    /// The span that was live when this one was entered, if any.
    pub parent: Option<u64>,
    /// Static stage name (`"compile"`, `"prepare"`, `"execute"`, …).
    pub name: &'static str,
    /// Dynamic detail (an operation display form, a routine name); empty
    /// when the stage had nothing cheap to say.
    pub label: String,
    /// Wall-clock duration, enter to exit, in nanoseconds.
    pub wall_ns: u64,
    /// Simulated cycles attributed to the span via
    /// [`SpanGuard::add_cycles`] (0 for host-only stages).
    pub cycles: u64,
}

impl SpanRecord {
    /// The flat JSON object form (the `span` discriminator keeps span
    /// lines distinguishable from event lines in a shared JSONL stream).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("span".to_string(), Json::str(self.name)),
            ("id".to_string(), Json::uint(self.id)),
            ("parent".to_string(), Json::opt_u64(self.parent)),
            ("label".to_string(), Json::str(&self.label)),
            ("wall_ns".to_string(), Json::uint(self.wall_ns)),
            ("cycles".to_string(), Json::uint(self.cycles)),
        ])
    }
}

struct Tracer {
    records: Vec<SpanRecord>,
    stack: Vec<u64>,
    next_id: u64,
}

thread_local! {
    static TRACER: RefCell<Option<Tracer>> = const { RefCell::new(None) };
}

/// Whether a [`trace`] scope is active on this thread.
#[must_use]
pub fn is_tracing() -> bool {
    TRACER.with(|t| t.borrow().is_some())
}

/// Opens a span named `name`. Returns an inert guard (one thread-local
/// check, no allocation) when no [`trace`] scope is active.
#[must_use = "dropping the guard immediately closes the span"]
pub fn enter(name: &'static str) -> SpanGuard {
    enter_with(name, String::new)
}

/// Opens a span with a dynamically computed label; the closure runs only
/// when a [`trace`] scope is listening.
#[must_use = "dropping the guard immediately closes the span"]
pub fn enter_with(name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    let active = TRACER.with(|t| {
        let mut slot = t.borrow_mut();
        let tracer = slot.as_mut()?;
        let id = tracer.next_id;
        tracer.next_id += 1;
        let parent = tracer.stack.last().copied();
        tracer.stack.push(id);
        Some(ActiveSpan {
            id,
            parent,
            name,
            label: label(),
            start: Instant::now(),
            cycles: 0,
        })
    });
    SpanGuard { active }
}

/// Runs `f` with span tracing enabled on this thread, returning its result
/// together with every span closed inside the scope (in exit order —
/// children precede their parents). Scopes nest like
/// [`collect`](crate::collect) scopes.
pub fn trace<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let previous = TRACER.with(|t| {
        t.borrow_mut().replace(Tracer {
            records: Vec::new(),
            stack: Vec::new(),
            next_id: 1,
        })
    });
    let result = f();
    let spans = TRACER.with(|t| {
        let mut slot = t.borrow_mut();
        let collected = slot.take().map(|tr| tr.records).unwrap_or_default();
        *slot = previous;
        collected
    });
    (result, spans)
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    label: String,
    start: Instant,
    cycles: u64,
}

/// An open span; records itself into the active trace when dropped.
///
/// Guards from an inactive thread are inert: every method is a no-op and
/// dropping records nothing.
#[derive(Debug)]
#[must_use = "a span measures the region it is alive for"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attributes simulated cycles to the span (additive across calls).
    pub fn add_cycles(&mut self, cycles: u64) {
        if let Some(a) = &mut self.active {
            a.cycles += cycles;
        }
    }

    /// Replaces the span's label (for stages that only know it late).
    pub fn set_label(&mut self, label: impl FnOnce() -> String) {
        if let Some(a) = &mut self.active {
            a.label = label();
        }
    }

    /// Whether this guard is actually recording.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let wall_ns = u64::try_from(a.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        TRACER.with(|t| {
            if let Some(tracer) = t.borrow_mut().as_mut() {
                // Pop this span (and anything a leaked guard left behind
                // above it) off the live stack.
                while let Some(top) = tracer.stack.pop() {
                    if top == a.id {
                        break;
                    }
                }
                tracer.records.push(SpanRecord {
                    id: a.id,
                    parent: a.parent,
                    name: a.name,
                    label: a.label,
                    wall_ns,
                    cycles: a.cycles,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_outside_a_trace_scope() {
        assert!(!is_tracing());
        let mut g = enter("compile");
        assert!(!g.is_active());
        g.add_cycles(10);
        drop(g);
        // Nothing leaked into a later scope.
        let ((), spans) = trace(|| {});
        assert!(spans.is_empty());
    }

    #[test]
    fn records_nesting_and_cycles() {
        let ((), spans) = trace(|| {
            let _outer = enter_with("compile", || "x / 7u".to_string());
            let mut inner = enter("execute");
            inner.add_cycles(17);
            inner.add_cycles(3);
        });
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "execute");
        assert_eq!(inner.cycles, 20);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.name, "compile");
        assert_eq!(outer.label, "x / 7u");
        assert_eq!(outer.parent, None);
        assert!(outer.wall_ns >= inner.wall_ns || inner.wall_ns == 0);
    }

    #[test]
    fn siblings_share_a_parent() {
        let ((), spans) = trace(|| {
            let _root = enter("verify");
            drop(enter("fuzz"));
            drop(enter("sweep"));
        });
        assert_eq!(spans.len(), 3);
        let root_id = spans[2].id;
        assert_eq!(spans[0].parent, Some(root_id));
        assert_eq!(spans[1].parent, Some(root_id));
        assert_ne!(spans[0].id, spans[1].id);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let ((inner_spans, outer_before), outer_spans) = trace(|| {
            drop(enter("outer-1"));
            let (_, inner) = trace(|| drop(enter("inner")));
            drop(enter("outer-2"));
            (inner, is_tracing())
        });
        assert!(outer_before, "outer scope resumes after the inner one");
        assert_eq!(inner_spans.len(), 1);
        assert_eq!(inner_spans[0].name, "inner");
        let names: Vec<&str> = outer_spans.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["outer-1", "outer-2"]);
    }

    #[test]
    fn label_closure_runs_only_when_tracing() {
        let g = enter_with("compile", || panic!("must not run untraced"));
        drop(g);
        let ((), spans) = trace(|| drop(enter_with("compile", || "ran".to_string())));
        assert_eq!(spans[0].label, "ran");
    }

    #[test]
    fn json_form_carries_the_discriminator() {
        let ((), spans) = trace(|| {
            let mut g = enter_with("execute", || "udiv".to_string());
            g.add_cycles(80);
        });
        let j = spans[0].to_json();
        assert_eq!(j.get("span").and_then(Json::as_str), Some("execute"));
        assert_eq!(j.get("label").and_then(Json::as_str), Some("udiv"));
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(80));
        assert_eq!(j.get("parent"), Some(&Json::Null));
        assert!(j.get("wall_ns").and_then(Json::as_u64).is_some());
    }
}
