//! A dependency-free JSON value model: enough to serialise telemetry and
//! benchmark artifacts and to parse them back in golden-schema tests.
//!
//! Numbers are kept as `i64`/`u64`/`f64` variants (this crate never needs
//! arbitrary precision); object key order is preserved as written, so
//! serialisation is deterministic.

use core::fmt;
use std::collections::BTreeMap;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (covers every count this workspace records).
    Int(i64),
    /// An unsigned integer too large for `Int`.
    UInt(u64),
    /// A float (averages).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with preserved key order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Shorthand for an integer value.
    #[must_use]
    pub fn int(v: i64) -> Json {
        Json::Int(v)
    }

    /// Shorthand for an unsigned value.
    #[must_use]
    pub fn uint(v: u64) -> Json {
        match i64::try_from(v) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::UInt(v),
        }
    }

    /// `Some(v)` → number, `None` → `null`.
    #[must_use]
    pub fn opt_u64(v: Option<u64>) -> Json {
        v.map_or(Json::Null, Json::uint)
    }

    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn object(pairs: Vec<(String, Json)>) -> Json {
        Json::Object(pairs)
    }

    /// An object from a string-keyed count map (sorted keys).
    #[must_use]
    pub fn from_counts(counts: &BTreeMap<String, u64>) -> Json {
        Json::Object(
            counts
                .iter()
                .map(|(k, v)| (k.clone(), Json::uint(*v)))
                .collect(),
        )
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys in written order.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Compact (single-line) serialisation.
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation with two-space indentation.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        use fmt::Write as _;
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a decimal point so parsers see a float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// [`ParseError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, at: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{word}'"), *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogates are not needed by this crate's output;
                        // map unpaired ones to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("invalid UTF-8", *pos))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("invalid number", start))?;
    if text.is_empty() || text == "-" {
        return Err(err("expected a value", start));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| err("bad float", start))
    } else if let Ok(i) = text.parse::<i64>() {
        Ok(Json::Int(i))
    } else if let Ok(u) = text.parse::<u64>() {
        Ok(Json::UInt(u))
    } else {
        Err(err("integer out of range", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let value = Json::Object(vec![
            ("name".to_string(), Json::str("mul_const \"table\"")),
            ("cycles".to_string(), Json::Int(1234)),
            ("big".to_string(), Json::UInt(u64::MAX)),
            ("avg".to_string(), Json::Float(6.5)),
            (
                "flags".to_string(),
                Json::Array(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".to_string(), Json::Object(vec![])),
        ]);
        for text in [value.to_compact_string(), value.to_pretty_string()] {
            assert_eq!(parse(&text).unwrap(), value);
        }
    }

    #[test]
    fn parses_nested_documents() {
        let parsed = parse(r#"[{"a": [1, -2, 3.5]}, "x\ny", null]"#).unwrap();
        let items = parsed.as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0]
                .get("a")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(items[1].as_str(), Some("x\ny"));
        assert_eq!(items[2], Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn uint_fallback_for_large_values() {
        assert_eq!(Json::uint(5), Json::Int(5));
        assert_eq!(Json::uint(u64::MAX), Json::UInt(u64::MAX));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
    }
}
