//! A dependency-free metrics registry: counters, gauges, and log2-bucketed
//! histograms, exportable as Prometheus text exposition format and JSON.
//!
//! The registry is the aggregation layer of the observability stack: span
//! streams ([`Registry::record_spans`]) and event streams
//! ([`Registry::record_events`]) fold into named series, and simulator
//! counts (per-opcode, per-region, per-workload) are added by the callers
//! that own them. Series are identified by a metric name plus a sorted
//! label set, so exports are deterministic.
//!
//! Histograms use power-of-two buckets (`le` boundaries `2^0 .. 2^63`,
//! then `+Inf`): cycle counts and nanosecond durations both span many
//! orders of magnitude, and log2 resolution is exactly what the paper's
//! cost envelopes need.
//!
//! # Example
//!
//! ```
//! use telemetry::metrics::Registry;
//!
//! let mut reg = Registry::new();
//! reg.inc_counter("hppa_runs_total", &[("workload", "figure5")], 3);
//! reg.observe("hppa_run_cycles", &[], 17);
//! let text = reg.to_prometheus();
//! assert!(text.contains("# TYPE hppa_runs_total counter"));
//! assert!(text.contains("hppa_runs_total{workload=\"figure5\"} 3"));
//! assert!(text.contains("hppa_run_cycles_bucket{le=\"32\"} 1"));
//! ```

use std::collections::BTreeMap;

use crate::json::Json;
use crate::span::SpanRecord;
use crate::Event;

/// Bucket count of a log2 histogram: `le` boundaries `2^0 .. 2^63` plus
/// the `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Which bucket `value` lands in: the smallest `i` with
    /// `value <= 2^i`, or the `+Inf` bucket (index 64) above `2^63`.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            // ceil(log2(value)) for value >= 2.
            64 - (value - 1).leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `index` (`None` for `+Inf`).
    #[must_use]
    pub fn bucket_le(index: usize) -> Option<u64> {
        (index < HISTOGRAM_BUCKETS - 1).then(|| 1u64 << index)
    }

    /// Records one observation (the sum saturates at `u64::MAX`).
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw (non-cumulative) per-bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    // Boxed: a histogram carries its full bucket array, which would
    // otherwise dominate the enum's size for every counter and gauge.
    Histogram(Box<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One series: a metric name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{a="x",b="y"}`, with `extra` appended (for `le`).
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={:?}", v))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}={v:?}"));
        }
        if pairs.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, pairs.join(","))
        }
    }
}

/// The registry: a deterministic map from series to metric values.
///
/// Mixing metric kinds under one name is a programming error and panics.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    series: BTreeMap<SeriesKey, Metric>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(&mut self, name: &str, labels: &[(&str, &str)], fresh: Metric) -> &mut Metric {
        let entry = self
            .series
            .entry(SeriesKey::new(name, labels))
            .or_insert_with(|| fresh.clone());
        assert_eq!(
            entry.type_name(),
            fresh.type_name(),
            "metric `{name}` already registered as a {}",
            entry.type_name()
        );
        entry
    }

    /// Adds `by` to a counter series (creating it at zero).
    pub fn inc_counter(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        if let Metric::Counter(n) = self.slot(name, labels, Metric::Counter(0)) {
            *n += by;
        }
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Metric::Gauge(g) = self.slot(name, labels, Metric::Gauge(0.0)) {
            *g = value;
        }
    }

    /// Records `value` into a histogram series.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        if let Metric::Histogram(h) = self.slot(name, labels, Metric::Histogram(Box::default())) {
            h.observe(value);
        }
    }

    /// Current value of a counter series, if registered.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series.get(&SeriesKey::new(name, labels)) {
            Some(Metric::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Current value of a gauge series, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.series.get(&SeriesKey::new(name, labels)) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A histogram series, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.series.get(&SeriesKey::new(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Whether nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Folds a span stream in: per-name span counts plus wall-clock and
    /// simulated-cycle histograms.
    pub fn record_spans(&mut self, spans: &[SpanRecord]) {
        for s in spans {
            self.inc_counter("hppa_span_total", &[("name", s.name)], 1);
            self.observe("hppa_span_wall_ns", &[("name", s.name)], s.wall_ns);
            if s.cycles > 0 {
                self.observe("hppa_span_cycles", &[("name", s.name)], s.cycles);
            }
        }
    }

    /// Folds an event stream in as per-strategy counters (the same
    /// `family/detail` keys as [`crate::strategy_histogram`]).
    pub fn record_events(&mut self, events: &[Event]) {
        for e in events {
            self.inc_counter("hppa_strategy_total", &[("strategy", &e.strategy_key())], 1);
        }
    }

    /// Prometheus text exposition format: one `# TYPE` line per metric
    /// name, histogram series expanded to cumulative `_bucket`/`_sum`/
    /// `_count` lines.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut by_name: BTreeMap<&str, Vec<(&SeriesKey, &Metric)>> = BTreeMap::new();
        for (key, metric) in &self.series {
            by_name.entry(&key.name).or_default().push((key, metric));
        }
        let mut out = String::new();
        for (name, series) in by_name {
            let _ = writeln!(out, "# TYPE {name} {}", series[0].1.type_name());
            for (key, metric) in series {
                match metric {
                    Metric::Counter(n) => {
                        let _ = writeln!(out, "{} {n}", key.render(None));
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{} {g}", key.render(None));
                    }
                    Metric::Histogram(h) => {
                        let bucket_key = SeriesKey {
                            name: format!("{name}_bucket"),
                            labels: key.labels.clone(),
                        };
                        let mut cumulative = 0u64;
                        for (i, count) in h.buckets().iter().enumerate() {
                            cumulative += count;
                            // Keep the exposition bounded: only emit the
                            // buckets that separate observations, plus the
                            // mandatory +Inf line.
                            if *count == 0 && i != HISTOGRAM_BUCKETS - 1 {
                                continue;
                            }
                            let le = match Histogram::bucket_le(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let _ = writeln!(
                                out,
                                "{} {cumulative}",
                                bucket_key.render(Some(("le", &le)))
                            );
                        }
                        let sum_key = SeriesKey {
                            name: format!("{name}_sum"),
                            labels: key.labels.clone(),
                        };
                        let count_key = SeriesKey {
                            name: format!("{name}_count"),
                            labels: key.labels.clone(),
                        };
                        let _ = writeln!(out, "{} {}", sum_key.render(None), h.sum());
                        let _ = writeln!(out, "{} {}", count_key.render(None), h.count());
                    }
                }
            }
        }
        out
    }

    /// The JSON form: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}` with rendered series names as keys and raw
    /// (non-cumulative) bucket counts.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, metric) in &self.series {
            let series = key.render(None);
            match metric {
                Metric::Counter(n) => counters.push((series, Json::uint(*n))),
                Metric::Gauge(g) => gauges.push((series, Json::Float(*g))),
                Metric::Histogram(h) => {
                    let buckets: Vec<(String, Json)> = h
                        .buckets()
                        .iter()
                        .enumerate()
                        .filter(|(_, &count)| count > 0)
                        .map(|(i, &count)| {
                            let le = match Histogram::bucket_le(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            (le, Json::uint(count))
                        })
                        .collect();
                    histograms.push((
                        series,
                        Json::object(vec![
                            ("count".to_string(), Json::uint(h.count())),
                            ("sum".to_string(), Json::uint(h.sum())),
                            ("buckets".to_string(), Json::object(buckets)),
                        ]),
                    ));
                }
            }
        }
        Json::object(vec![
            ("counters".to_string(), Json::object(counters)),
            ("gauges".to_string(), Json::object(gauges)),
            ("histograms".to_string(), Json::object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Zero and one share the first bucket (le = 1).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        // Exact powers of two land on their own boundary...
        for k in 1..=63u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k as usize, "2^{k}");
            assert_eq!(Histogram::bucket_le(k as usize), Some(v));
            // ...one below shares the bucket (2^(k-1) < 2^k - 1 for k ≥ 2),
            // and one past the boundary spills into the next bucket.
            let below = if k >= 2 { k as usize } else { 0 };
            assert_eq!(Histogram::bucket_index(v - 1), below, "2^{k}-1");
            if k < 63 {
                assert_eq!(Histogram::bucket_index(v + 1), k as usize + 1, "2^{k}+1");
            }
        }
        // Above 2^63 everything is +Inf.
        assert_eq!(Histogram::bucket_index((1u64 << 63) + 1), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_le(64), None);
    }

    #[test]
    fn histogram_counts_sum_and_saturation() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 1); // 2
        assert_eq!(h.buckets()[2], 1); // 3
        assert_eq!(h.buckets()[10], 1); // 1024
        assert_eq!(h.buckets()[64], 1); // u64::MAX
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut reg = Registry::new();
        reg.inc_counter("runs", &[("workload", "a")], 1);
        reg.inc_counter("runs", &[("workload", "a")], 2);
        reg.inc_counter("runs", &[("workload", "b")], 5);
        reg.set_gauge("speedup", &[], 1.5);
        reg.set_gauge("speedup", &[], 8.6);
        assert_eq!(reg.counter("runs", &[("workload", "a")]), Some(3));
        assert_eq!(reg.counter("runs", &[("workload", "b")]), Some(5));
        assert_eq!(reg.gauge("speedup", &[]), Some(8.6));
        assert_eq!(reg.counter("absent", &[]), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut reg = Registry::new();
        reg.inc_counter("m", &[], 1);
        reg.set_gauge("m", &[], 1.0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut reg = Registry::new();
        reg.inc_counter("hppa_runs_total", &[("workload", "f5")], 7);
        reg.set_gauge("hppa_speedup", &[], 8.5);
        reg.observe("hppa_cycles", &[], 3);
        reg.observe("hppa_cycles", &[], 17);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE hppa_runs_total counter"), "{text}");
        assert!(
            text.contains("hppa_runs_total{workload=\"f5\"} 7"),
            "{text}"
        );
        assert!(text.contains("# TYPE hppa_speedup gauge"), "{text}");
        assert!(text.contains("hppa_speedup 8.5"), "{text}");
        assert!(text.contains("# TYPE hppa_cycles histogram"), "{text}");
        // Buckets are cumulative: 3 ≤ 4 (1 obs), 17 ≤ 32 (2 obs), +Inf (2).
        assert!(text.contains("hppa_cycles_bucket{le=\"4\"} 1"), "{text}");
        assert!(text.contains("hppa_cycles_bucket{le=\"32\"} 2"), "{text}");
        assert!(text.contains("hppa_cycles_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("hppa_cycles_sum 20"), "{text}");
        assert!(text.contains("hppa_cycles_count 2"), "{text}");
    }

    #[test]
    fn json_export_round_trips_through_parser() {
        let mut reg = Registry::new();
        reg.inc_counter("runs", &[("w", "a")], 3);
        reg.observe("cycles", &[], 1000);
        let doc = crate::json::parse(&reg.to_json().to_compact_string()).unwrap();
        assert_eq!(doc.keys(), vec!["counters", "gauges", "histograms"]);
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("runs{w=\"a\"}"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let hist = doc.get("histograms").and_then(|h| h.get("cycles")).unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(1000));
        assert_eq!(
            hist.get("buckets")
                .and_then(|b| b.get("1024"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn span_and_event_streams_fold_in() {
        let ((), spans) = span::trace(|| {
            let mut g = span::enter("execute");
            g.add_cycles(17);
            drop(g);
            drop(span::enter("compile"));
        });
        let mut reg = Registry::new();
        reg.record_spans(&spans);
        reg.record_events(&[Event::Prepare {
            label: "x / 3u".to_string(),
            len: 17,
        }]);
        assert_eq!(
            reg.counter("hppa_span_total", &[("name", "execute")]),
            Some(1)
        );
        assert_eq!(
            reg.counter("hppa_span_total", &[("name", "compile")]),
            Some(1)
        );
        let cycles = reg
            .histogram("hppa_span_cycles", &[("name", "execute")])
            .unwrap();
        assert_eq!(cycles.sum(), 17);
        assert_eq!(
            reg.counter("hppa_strategy_total", &[("strategy", "prepare/program")]),
            Some(1)
        );
    }
}
