//! # telemetry — structured run telemetry for the hppa-muldiv pipeline
//!
//! The paper's whole argument is cycle accounting, and every layer of this
//! reproduction makes decisions that deserve a paper trail: the addition
//! chain searcher trades rule applications against exhaustive-search nodes,
//! the millicode multiplier picks a strategy tier per operand, and the
//! divide-by-constant planner picks magic constants and fixup sequences per
//! divisor. This crate is the spine that records those decisions:
//!
//! * [`Event`] — one structured record per codegen/runtime decision;
//! * [`collect`] / [`emit`] — a thread-local collector that codegen stages
//!   emit into; emission is a single thread-local check when nobody is
//!   listening (codegen stays cheap by default);
//! * [`JsonlSink`] — serialise events as JSON lines to any `io::Write`;
//! * [`json`] — a dependency-free JSON value model (serialise + parse) used
//!   by the sinks, the `hppa report` tool, and the golden-schema tests;
//! * [`strategy_histogram`] — fold a stream of events into the per-strategy
//!   counts that `BENCH_*.json` files record;
//! * [`span`] — nested, timed spans (wall-clock + simulated cycles) across
//!   compile → cache → prepare → execute → verify;
//! * [`metrics`] — a counters/gauges/log2-histogram registry with
//!   Prometheus-text and JSON exporters, fed by spans and events.
//!
//! ## Example
//!
//! ```
//! use telemetry::{collect, emit, strategy_histogram, Event};
//!
//! let (result, events) = collect(|| {
//!     emit(|| Event::DivPlan {
//!         y: 7,
//!         strategy: "magic",
//!         magic_a: Some(0x92492493),
//!         shift_s: Some(2),
//!         fixup: "triple-precision",
//!         chain_len: Some(3),
//!     });
//!     42
//! });
//! assert_eq!(result, 42);
//! assert_eq!(events.len(), 1);
//! let hist = strategy_histogram(&events);
//! assert_eq!(hist.get("div/magic"), Some(&1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;

pub mod json;
pub mod metrics;
pub mod span;

use json::Json;

/// Version of the serialised telemetry/benchmark artifact schema.
///
/// Written as the `schema_version` field of `BENCH_*.json` documents and as
/// the header line of JSONL sinks. Bumped when the shape of those artifacts
/// changes; documents without the field are implicitly version 1 (the PR 1–2
/// era). Comparison tools accept versions `1..=SCHEMA_VERSION` and refuse
/// anything newer with a clear error.
pub const SCHEMA_VERSION: u64 = 2;

/// One structured telemetry record.
///
/// Variants mirror the stages of the pipeline; every variant serialises to
/// a flat JSON object with an `"event"` discriminator (see
/// [`Event::to_json`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// The addition-chain machinery produced a chain for `target`.
    ChainSearch {
        /// The multiplier the chain computes.
        target: i64,
        /// Chain length (instructions on the Precision, one per step).
        len: usize,
        /// `ShAdd` steps in the chain (the paper's bread-and-butter rule).
        shift_adds: u32,
        /// Plain `Add` steps.
        adds: u32,
        /// `Sub` steps (the `-1` family).
        subs: u32,
        /// Plain `Shl` steps (factoring out powers of two).
        shifts: u32,
        /// Search nodes expanded, when the exhaustive searcher ran
        /// (`None` for the O(1) rule-based generator).
        nodes_expanded: Option<u64>,
        /// Which generator produced the chain (`"rules"`, `"exhaustive"`,
        /// `"hybrid"`).
        source: &'static str,
    },
    /// The millicode multiply classified an operand into a strategy tier.
    MulStrategy {
        /// Routine family (`"switched"`, …).
        routine: &'static str,
        /// Which tier fired: `"zero-exit"`, `"one-exit"`, `"nibble-x1"`…
        /// (see `millicode::mulvar::tier_for`).
        tier: &'static str,
        /// The driving (smaller-magnitude) operand.
        operand: i64,
        /// Measured cycles, when the caller ran the routine.
        cycles: Option<u64>,
    },
    /// The millicode divide dispatched an operand pair.
    DivDispatch {
        /// Routine family (`"udiv"`, `"sdiv"`, `"small_dispatch"`).
        routine: &'static str,
        /// Which path fired (`"general"`, `"inlined-body"`, …).
        tier: &'static str,
        /// The divisor.
        divisor: i64,
        /// Measured cycles, when the caller ran the routine.
        cycles: Option<u64>,
    },
    /// The compile cache answered a lookup for a constant-operand program.
    CacheLookup {
        /// Display form of the requested operation (e.g. `"x * 10"`).
        op: String,
        /// Whether the cache already held a compiled program.
        hit: bool,
        /// Entries resident after the lookup (and any insertion).
        entries: usize,
    },
    /// A program was pre-decoded into its dense executable form.
    Prepare {
        /// What was prepared (an operation display form or routine name).
        label: String,
        /// Instruction count of the prepared program.
        len: usize,
    },
    /// The divide-by-constant planner chose a strategy for a divisor.
    DivPlan {
        /// The divisor.
        y: u32,
        /// Strategy kind (`"identity"`, `"power-of-two"`, `"even-split"`,
        /// `"magic"`).
        strategy: &'static str,
        /// The derived-method multiplier `a`, when the strategy uses one.
        magic_a: Option<u64>,
        /// The post-multiply shift `s`, when the strategy uses one.
        shift_s: Option<u32>,
        /// Post-multiply fixup kind (`"none"`, `"pair"`,
        /// `"triple-precision"`, `"sign-fixup"`).
        fixup: &'static str,
        /// Length of the shift-add chain evaluating `x * a`, if any.
        chain_len: Option<usize>,
    },
    /// The differential verifier observed something worth recording —
    /// a divergence between execution paths, a cycle-budget violation,
    /// or a sweep landmark.
    Verify {
        /// Which verification suite fired (`"divergence"`, `"budget"`).
        suite: &'static str,
        /// Compact JSON of the replayable case.
        case: String,
        /// Human-readable description of what was observed.
        detail: String,
    },
}

impl Event {
    /// A short `family/detail` key used by [`strategy_histogram`].
    #[must_use]
    pub fn strategy_key(&self) -> String {
        match self {
            Event::ChainSearch { source, .. } => format!("chain/{source}"),
            Event::MulStrategy { tier, .. } => format!("mul/{tier}"),
            Event::DivDispatch { tier, .. } => format!("divvar/{tier}"),
            Event::DivPlan { strategy, .. } => format!("div/{strategy}"),
            Event::CacheLookup { hit, .. } => {
                format!("cache/{}", if *hit { "hit" } else { "miss" })
            }
            Event::Prepare { .. } => "prepare/program".to_string(),
            Event::Verify { suite, .. } => format!("verify/{suite}"),
        }
    }

    /// The flat JSON object form of the event.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = Vec::with_capacity(8);
        let mut put = |k: &str, v: Json| obj.push((k.to_string(), v));
        match self {
            Event::ChainSearch {
                target,
                len,
                shift_adds,
                adds,
                subs,
                shifts,
                nodes_expanded,
                source,
            } => {
                put("event", Json::str("chain_search"));
                put("target", Json::int(*target));
                put("len", Json::int(*len as i64));
                put("shift_adds", Json::int(i64::from(*shift_adds)));
                put("adds", Json::int(i64::from(*adds)));
                put("subs", Json::int(i64::from(*subs)));
                put("shifts", Json::int(i64::from(*shifts)));
                put("nodes_expanded", Json::opt_u64(*nodes_expanded));
                put("source", Json::str(*source));
            }
            Event::MulStrategy {
                routine,
                tier,
                operand,
                cycles,
            } => {
                put("event", Json::str("mul_strategy"));
                put("routine", Json::str(*routine));
                put("tier", Json::str(*tier));
                put("operand", Json::int(*operand));
                put("cycles", Json::opt_u64(*cycles));
            }
            Event::DivDispatch {
                routine,
                tier,
                divisor,
                cycles,
            } => {
                put("event", Json::str("div_dispatch"));
                put("routine", Json::str(*routine));
                put("tier", Json::str(*tier));
                put("divisor", Json::int(*divisor));
                put("cycles", Json::opt_u64(*cycles));
            }
            Event::CacheLookup { op, hit, entries } => {
                put("event", Json::str("cache_lookup"));
                put("op", Json::str(op));
                put("hit", Json::Bool(*hit));
                put("entries", Json::uint(*entries as u64));
            }
            Event::Prepare { label, len } => {
                put("event", Json::str("prepare"));
                put("label", Json::str(label));
                put("len", Json::uint(*len as u64));
            }
            Event::DivPlan {
                y,
                strategy,
                magic_a,
                shift_s,
                fixup,
                chain_len,
            } => {
                put("event", Json::str("div_plan"));
                put("y", Json::int(i64::from(*y)));
                put("strategy", Json::str(*strategy));
                put("magic_a", Json::opt_u64(*magic_a));
                put("shift_s", Json::opt_u64(shift_s.map(u64::from)));
                put("fixup", Json::str(*fixup));
                put("chain_len", Json::opt_u64(chain_len.map(|n| n as u64)));
            }
            Event::Verify {
                suite,
                case,
                detail,
            } => {
                put("event", Json::str("verify"));
                put("suite", Json::str(*suite));
                put("case", Json::str(case));
                put("detail", Json::str(detail));
            }
        }
        Json::Object(obj)
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
}

/// Whether a collector is installed on this thread. Stages can use this to
/// skip expensive event construction entirely.
#[must_use]
pub fn is_collecting() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Records an event if (and only if) a [`collect`] scope is active on this
/// thread. The closure runs only when someone is listening, so building an
/// event costs one thread-local check on the production path.
pub fn emit(event: impl FnOnce() -> Event) {
    COLLECTOR.with(|c| {
        if let Some(events) = c.borrow_mut().as_mut() {
            events.push(event());
        }
    });
}

/// Runs `f` with event collection enabled on this thread, returning its
/// result together with everything emitted. Scopes nest: the innermost
/// scope receives the events, and the outer scope resumes afterwards.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let previous = COLLECTOR.with(|c| c.borrow_mut().replace(Vec::new()));
    let result = f();
    let events = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let collected = slot.take().unwrap_or_default();
        *slot = previous;
        collected
    });
    (result, events)
}

/// Folds events into `strategy_key → count` — the `strategy_histogram`
/// object of the `BENCH_*.json` schema.
#[must_use]
pub fn strategy_histogram(events: &[Event]) -> BTreeMap<String, u64> {
    let mut hist = BTreeMap::new();
    for e in events {
        *hist.entry(e.strategy_key()).or_insert(0) += 1;
    }
    hist
}

/// Writes events as JSON lines (one compact object per line).
///
/// # Example
///
/// ```
/// use telemetry::{Event, JsonlSink};
///
/// let mut buf = Vec::new();
/// let mut sink = JsonlSink::new(&mut buf);
/// sink.write(&Event::MulStrategy {
///     routine: "switched",
///     tier: "one-exit",
///     operand: 1,
///     cycles: Some(9),
/// })?;
/// let text = String::from_utf8(buf)?;
/// assert!(text.starts_with("{\"event\":\"mul_strategy\""));
/// assert!(text.ends_with('\n'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    writer: W,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink { writer }
    }

    /// Writes the stream header line, `{"schema_version":N}`, identifying
    /// the artifact schema ([`SCHEMA_VERSION`]) to downstream consumers.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_header(&mut self) -> io::Result<()> {
        let mut line = Json::object(vec![(
            "schema_version".to_string(),
            Json::uint(SCHEMA_VERSION),
        )])
        .to_compact_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Serialises one event as a line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, event: &Event) -> io::Result<()> {
        let mut line = event.to_json().to_compact_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Serialises a batch of events.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_all(&mut self, events: &[Event]) -> io::Result<()> {
        events.iter().try_for_each(|e| self.write(e))
    }

    /// Unwraps the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::ChainSearch {
                target: 1980,
                len: 5,
                shift_adds: 4,
                adds: 0,
                subs: 0,
                shifts: 1,
                nodes_expanded: None,
                source: "rules",
            },
            Event::MulStrategy {
                routine: "switched",
                tier: "nibble-x2",
                operand: 300,
                cycles: Some(25),
            },
            Event::MulStrategy {
                routine: "switched",
                tier: "one-exit",
                operand: 1,
                cycles: None,
            },
            Event::DivPlan {
                y: 6,
                strategy: "even-split",
                magic_a: Some(0x5555_5555),
                shift_s: Some(0),
                fixup: "none",
                chain_len: Some(1),
            },
        ]
    }

    #[test]
    fn emit_outside_collect_is_dropped() {
        emit(|| panic!("must not be constructed"));
        assert!(!is_collecting());
    }

    #[test]
    fn collect_captures_in_order() {
        let ((), events) = collect(|| {
            for e in sample_events() {
                emit(|| e.clone());
            }
        });
        assert_eq!(events, sample_events());
    }

    #[test]
    fn collect_scopes_nest() {
        let ((inner_result, inner_events), outer_events) = collect(|| {
            emit(|| sample_events()[0].clone());
            let inner = collect(|| {
                emit(|| sample_events()[1].clone());
                7
            });
            emit(|| sample_events()[3].clone());
            inner
        });
        assert_eq!(inner_result, 7);
        assert_eq!(inner_events, vec![sample_events()[1].clone()]);
        assert_eq!(
            outer_events,
            vec![sample_events()[0].clone(), sample_events()[3].clone()]
        );
    }

    #[test]
    fn histogram_counts_by_key() {
        let hist = strategy_histogram(&sample_events());
        assert_eq!(hist.get("chain/rules"), Some(&1));
        assert_eq!(hist.get("mul/nibble-x2"), Some(&1));
        assert_eq!(hist.get("mul/one-exit"), Some(&1));
        assert_eq!(hist.get("div/even-split"), Some(&1));
    }

    #[test]
    fn cache_and_prepare_events_serialise_and_key() {
        let hit = Event::CacheLookup {
            op: "x * 10".to_string(),
            hit: true,
            entries: 3,
        };
        let miss = Event::CacheLookup {
            op: "x / 7u".to_string(),
            hit: false,
            entries: 4,
        };
        let prepare = Event::Prepare {
            label: "x / 7u".to_string(),
            len: 17,
        };
        assert_eq!(hit.strategy_key(), "cache/hit");
        assert_eq!(miss.strategy_key(), "cache/miss");
        assert_eq!(prepare.strategy_key(), "prepare/program");

        let j = hit.to_json();
        assert_eq!(j.get("event").and_then(Json::as_str), Some("cache_lookup"));
        assert_eq!(j.get("op").and_then(Json::as_str), Some("x * 10"));
        assert_eq!(j.get("hit"), Some(&Json::Bool(true)));
        assert_eq!(j.get("entries").and_then(Json::as_u64), Some(3));

        let j = prepare.to_json();
        assert_eq!(j.get("event").and_then(Json::as_str), Some("prepare"));
        assert_eq!(j.get("label").and_then(Json::as_str), Some("x / 7u"));
        assert_eq!(j.get("len").and_then(Json::as_u64), Some(17));

        let hist = strategy_histogram(&[hit, miss, prepare]);
        assert_eq!(hist.get("cache/hit"), Some(&1));
        assert_eq!(hist.get("cache/miss"), Some(&1));
        assert_eq!(hist.get("prepare/program"), Some(&1));
    }

    #[test]
    fn verify_events_serialise_and_key() {
        let e = Event::Verify {
            suite: "divergence",
            case: "{\"kind\":\"udiv_const\",\"y\":7,\"x\":21}".to_string(),
            detail: "interpreter value 0x3, oracle expects 0x4".to_string(),
        };
        assert_eq!(e.strategy_key(), "verify/divergence");
        let j = e.to_json();
        assert_eq!(j.get("event").and_then(Json::as_str), Some("verify"));
        assert_eq!(j.get("suite").and_then(Json::as_str), Some("divergence"));
        assert!(j
            .get("case")
            .and_then(Json::as_str)
            .unwrap()
            .contains("udiv_const"));
        assert!(j
            .get("detail")
            .and_then(Json::as_str)
            .unwrap()
            .contains("oracle"));
    }

    /// One instance of every variant (`#[non_exhaustive]` — extend when a
    /// variant is added so the round-trip test keeps covering all of them).
    fn one_of_each_variant() -> Vec<Event> {
        vec![
            Event::ChainSearch {
                target: -1980,
                len: 6,
                shift_adds: 4,
                adds: 1,
                subs: 1,
                shifts: 0,
                nodes_expanded: Some(123),
                source: "exhaustive",
            },
            Event::MulStrategy {
                routine: "switched",
                tier: "nibble-x2",
                operand: -300,
                cycles: Some(25),
            },
            Event::DivDispatch {
                routine: "small_dispatch",
                tier: "inlined-body",
                divisor: 7,
                cycles: None,
            },
            Event::CacheLookup {
                op: "x * \"10\"".to_string(),
                hit: false,
                entries: 4,
            },
            Event::Prepare {
                label: "x / 7u".to_string(),
                len: 17,
            },
            Event::DivPlan {
                y: 7,
                strategy: "magic",
                magic_a: Some(0x9249_2493),
                shift_s: Some(2),
                fixup: "triple-precision",
                chain_len: None,
            },
            Event::Verify {
                suite: "budget",
                case: "{\"kind\":\"udiv_const\",\"y\":7,\"x\":21}".to_string(),
                detail: "81 cycles > budget 80\nsecond line".to_string(),
            },
        ]
    }

    #[test]
    fn every_event_variant_round_trips_through_json() {
        let events = one_of_each_variant();
        let mut discriminators = std::collections::BTreeSet::new();
        for event in &events {
            let j = event.to_json();
            let reparsed =
                json::parse(&j.to_compact_string()).unwrap_or_else(|e| panic!("{event:?}: {e}"));
            assert_eq!(reparsed, j, "{event:?} must survive serialise → parse");
            let disc = j
                .get("event")
                .and_then(Json::as_str)
                .expect("discriminator");
            discriminators.insert(disc.to_string());
        }
        // One distinct discriminator per variant: a collision would make the
        // JSONL stream ambiguous.
        assert_eq!(discriminators.len(), events.len());
    }

    #[test]
    fn jsonl_header_carries_the_schema_version() {
        let mut buf = Vec::new();
        let mut sink = JsonlSink::new(&mut buf);
        sink.write_header().unwrap();
        sink.write(&one_of_each_variant()[0]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let header = json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert!(lines.next().unwrap().starts_with("{\"event\":"));
    }

    #[test]
    fn jsonl_round_trips_through_parser() {
        let mut buf = Vec::new();
        JsonlSink::new(&mut buf)
            .write_all(&sample_events())
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for (line, event) in lines.iter().zip(sample_events()) {
            let parsed = json::parse(line).unwrap();
            assert_eq!(parsed, event.to_json());
            assert!(
                parsed.get("event").and_then(Json::as_str).is_some(),
                "every event carries a discriminator"
            );
        }
    }
}
