//! §6 — multiplication by variables, all four generations.
//!
//! Each function builds the complete millicode routine as a [`pa_isa`]
//! program. The calling convention follows PA-RISC millicode practice:
//!
//! * multiplier in [`regs::MULTIPLIER`] (`r26`), multiplicand in
//!   [`regs::MULTIPLICAND`] (`r25`) — both preserved;
//! * product in [`regs::RESULT`] (`r28`);
//! * scratch in `r1`, `r29`, `r31`, `r24`;
//! * the PSW V bit is not used; the carry bit is freely clobbered.
//!
//! The generations, with the paper's dynamic instruction counts:
//!
//! | routine | worst | average | paper's claim |
//! |---|---|---|---|
//! | [`naive`] (Figure 2)       | ~167 | ~167 | "dynamic path of 167 instructions" |
//! | [`early_exit`]             | ~192 | ~103 | "worst case to 192 … average 103" |
//! | [`nibble`] (Figure 3)      | ~107 | ~55  | "worst case to 107 … 55 instructions" |
//! | [`swap`]                   | ~59  | ~33  | "59 instructions, worst case, 33 on the average" |
//! | [`switched`] (Figure 4/5)  | ~56  | <20  | Figure 5 + "average of less than 20" |
//!
//! The exact counts measured on `pa-sim` are recorded per operand class in
//! `EXPERIMENTS.md` (experiments E5–E9).

use pa_isa::{BitSense, Cond, IsaError, Program, ProgramBuilder, Reg};

/// Register conventions shared by all multiply-by-variable routines.
pub mod regs {
    use pa_isa::Reg;

    /// First operand: the multiplier (preserved).
    pub const MULTIPLIER: Reg = Reg::R26;
    /// Second operand: the multiplicand (preserved).
    pub const MULTIPLICAND: Reg = Reg::R25;
    /// The product.
    pub const RESULT: Reg = Reg::R28;
    /// Scratch: working multiplier.
    pub const WORK_MPY: Reg = Reg::R1;
    /// Scratch: working multiplicand.
    pub const WORK_MCAND: Reg = Reg::R29;
    /// Scratch: loop counter / nibble.
    pub const COUNT: Reg = Reg::R31;
    /// Scratch: switch index / sign word.
    pub const INDEX: Reg = Reg::R24;
}

use regs::{COUNT, INDEX, MULTIPLICAND, MULTIPLIER, RESULT, WORK_MCAND, WORK_MPY};

/// An `ADD`-family emitter (`add`/`sh1add`/`sh2add`/`sh3add`).
type AddEmitter = fn(&mut ProgramBuilder, Reg, Reg, Reg) -> &mut ProgramBuilder;

/// Emits `WORK_MPY = |MULTIPLIER|` (leaving the original untouched) — the
/// "take its absolute value, remember whether it was negative" prologue of
/// Figure 2.
fn emit_abs_multiplier(b: &mut ProgramBuilder) {
    b.copy(MULTIPLIER, WORK_MPY);
    b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0); // skip negate when ≥ 0
    b.sub(Reg::R0, WORK_MPY, WORK_MPY);
}

/// Emits the signed epilogue: negate the result when the original
/// multiplier was negative.
fn emit_sign_fixup(b: &mut ProgramBuilder) {
    b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0);
    b.sub(Reg::R0, RESULT, RESULT);
}

/// **Figure 2** — the bit-serial algorithm, 32 fixed iterations.
///
/// ```text
/// tmp = mpy; mpy = abs(mpy); rslt = 0;
/// for (i = 32; i > 0; i--) {
///     if (mpy & 1) rslt = mcand + rslt;
///     mpy >>= 1; mcand += mcand;
/// }
/// if (tmp < 0) rslt = -rslt;
/// ```
///
/// Never considered for production ("it approximates a worst case"): the
/// dynamic path is ~167 single-cycle instructions.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn naive() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    emit_abs_multiplier(&mut b);
    b.copy(MULTIPLICAND, WORK_MCAND);
    b.copy(Reg::R0, RESULT);
    b.ldi(32, COUNT);
    let top = b.here("loop");
    b.comclr(Cond::Even, WORK_MPY, Reg::R0, Reg::R0); // skip add on a 0 bit
    b.add(WORK_MCAND, RESULT, RESULT);
    b.shr(WORK_MPY, 1, WORK_MPY);
    b.add(WORK_MCAND, WORK_MCAND, WORK_MCAND);
    b.addib(-1, COUNT, Cond::Ne, top);
    emit_sign_fixup(&mut b);
    b.build()
}

/// The *Simple Optimization*: exit the loop as soon as the shifted
/// multiplier is zero. Worst case grows (~192) but the log-uniform average
/// drops to ~103.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn early_exit() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    emit_abs_multiplier(&mut b);
    b.copy(MULTIPLICAND, WORK_MCAND);
    b.copy(Reg::R0, RESULT);
    b.ldi(32, COUNT);
    let top = b.here("loop");
    b.comclr(Cond::Even, WORK_MPY, Reg::R0, Reg::R0);
    b.add(WORK_MCAND, RESULT, RESULT);
    b.shr(WORK_MPY, 1, WORK_MPY);
    b.add(WORK_MCAND, WORK_MCAND, WORK_MCAND);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done); // the added test
    b.addib(-1, COUNT, Cond::Ne, top);
    b.bind(done);
    emit_sign_fixup(&mut b);
    b.build()
}

/// **Figure 3** — examine four multiplier bits per iteration using the
/// shift-and-add instructions; exit when the rest of the multiplier is zero.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn nibble() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    emit_abs_multiplier(&mut b);
    b.copy(MULTIPLICAND, WORK_MCAND);
    b.copy(Reg::R0, RESULT);
    let top = b.here("loop");
    // Four conditional adds: BB skips over each add when the bit is clear.
    let shifts: [AddEmitter; 4] = [
        |b, a, c, t| b.add(a, c, t),
        ProgramBuilder::sh1add,
        ProgramBuilder::sh2add,
        ProgramBuilder::sh3add,
    ];
    for (bit, emit_add) in shifts.iter().enumerate() {
        let skip = b.new_label();
        b.bb(WORK_MPY, 31 - bit as u8, BitSense::Clear, skip);
        emit_add(&mut b, WORK_MCAND, RESULT, RESULT);
        b.bind(skip);
    }
    b.shr(WORK_MPY, 4, WORK_MPY);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);
    b.shl(WORK_MCAND, 4, WORK_MCAND);
    b.b(top);
    b.bind(done);
    emit_sign_fixup(&mut b);
    b.build()
}

/// §6 *An Observation* — the [`nibble`] loop plus the operand swap: since a
/// non-overflowing product has one operand below 16 bits, at most four
/// iterations run (average two).
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn swap() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    // abs both operands; the result sign is the XOR of the signs.
    b.xor(MULTIPLIER, MULTIPLICAND, INDEX); // sign word (bit 0 = result sign)
    b.copy(MULTIPLIER, WORK_MPY);
    b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0);
    b.sub(Reg::R0, WORK_MPY, WORK_MPY);
    b.copy(MULTIPLICAND, WORK_MCAND);
    b.comclr(Cond::Le, Reg::R0, MULTIPLICAND, Reg::R0);
    b.sub(Reg::R0, WORK_MCAND, WORK_MCAND);
    // Swap so the smaller magnitude is the multiplier. The sign word lives
    // in INDEX during the swap, so spill it around: use COUNT instead.
    let ordered = b.named_label("ordered");
    b.comb(Cond::Ule, WORK_MPY, WORK_MCAND, ordered);
    b.copy(WORK_MPY, COUNT);
    b.copy(WORK_MCAND, WORK_MPY);
    b.copy(COUNT, WORK_MCAND);
    b.bind(ordered);
    b.copy(Reg::R0, RESULT);
    let top = b.here("loop");
    let shifts: [AddEmitter; 4] = [
        |b, a, c, t| b.add(a, c, t),
        ProgramBuilder::sh1add,
        ProgramBuilder::sh2add,
        ProgramBuilder::sh3add,
    ];
    for (bit, emit_add) in shifts.iter().enumerate() {
        let skip = b.new_label();
        b.bb(WORK_MPY, 31 - bit as u8, BitSense::Clear, skip);
        emit_add(&mut b, WORK_MCAND, RESULT, RESULT);
        b.bind(skip);
    }
    b.shr(WORK_MPY, 4, WORK_MPY);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);
    b.shl(WORK_MCAND, 4, WORK_MCAND);
    b.b(top);
    b.bind(done);
    // Negate if operand signs differed.
    let positive = b.named_label("positive");
    b.bb_msb(INDEX, BitSense::Clear, positive);
    b.sub(Reg::R0, RESULT, RESULT);
    b.bind(positive);
    b.build()
}

/// Tier names returned by [`tier_for`], densest loop last.
const NIBBLE_TIERS: [&str; 8] = [
    "nibble-x1",
    "nibble-x2",
    "nibble-x3",
    "nibble-x4",
    "nibble-x5",
    "nibble-x6",
    "nibble-x7",
    "nibble-x8",
];

/// Classifies which strategy tier of [`switched`] fires for an operand
/// pair, returning the tier name and the driving operand magnitude.
///
/// [`switched`] takes magnitudes (signed flavour only), swaps so the
/// smaller working value drives the loop, exits early for 0 and 1, and
/// otherwise runs one 16-way switch iteration per significant nibble of
/// the driver. The tiers mirror that shape:
///
/// * `"zero-exit"` / `"one-exit"` — the §6 quick exits;
/// * `"nibble-x1"` … `"nibble-x8"` — the number of nibble-loop
///   iterations (a full-width driver costs eight).
///
/// The signed slow path (a negative operand) adds a constant prologue but
/// does not change the loop shape, so it does not get its own tier.
#[must_use]
pub fn tier_for(signed: bool, x: u32, y: u32) -> (&'static str, u32) {
    let magnitude = |v: u32| {
        if signed && (v as i32) < 0 {
            (v as i32).wrapping_neg() as u32
        } else {
            v
        }
    };
    let driver = u32::min(magnitude(x), magnitude(y));
    let tier = match driver {
        0 => "zero-exit",
        1 => "one-exit",
        _ => {
            let nibbles = (32 - driver.leading_zeros()).div_ceil(4);
            NIBBLE_TIERS[nibbles as usize - 1]
        }
    };
    (tier, driver)
}

/// **Figure 4 / Figure 5** — the final algorithm: a `BLR`-vectored 16-way
/// switch multiplies the multiplicand by each nibble using the
/// multiply-by-constant sequences, with quick exits for multipliers 0 and 1
/// and the operand swap.
///
/// `signed` selects the signed flavour (absolute values + sign fixup);
/// the unsigned flavour skips that prologue, as the paper's frequency data
/// says operands are "nearly always positive".
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn switched(signed: bool) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    let next = b.named_label("next");
    let table = b.named_label("table");
    let top = b.named_label("loop");

    let slow = b.named_label("negative_operands");
    let join = b.named_label("join");
    if signed {
        // §6: "both operands were nearly always positive. Thus we optimized
        // for … positive operands." The OR of the operands doubles as the
        // sign-check word and (on the fast path, where its sign bit is
        // clear) the final-negate guard.
        b.or(MULTIPLIER, MULTIPLICAND, INDEX);
        b.bb_msb(INDEX, BitSense::Set, slow);
        b.copy(MULTIPLIER, WORK_MPY);
        b.copy(MULTIPLICAND, WORK_MCAND);
        b.bind(join);
    } else {
        b.copy(MULTIPLIER, WORK_MPY);
        b.copy(MULTIPLICAND, WORK_MCAND);
    }
    // Swap so the smaller magnitude drives the loop.
    let ordered = b.named_label("ordered");
    b.comb(Cond::Ule, WORK_MPY, WORK_MCAND, ordered);
    b.copy(WORK_MPY, COUNT);
    b.copy(WORK_MCAND, WORK_MPY);
    b.copy(COUNT, WORK_MCAND);
    b.bind(ordered);
    b.copy(Reg::R0, RESULT);
    // Quick exits: ×0 and ×1 (§6: "quick exit for values of zero and one").
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);
    let not_one = b.named_label("not_one");
    b.combi(Cond::Ne, 1, WORK_MPY, not_one);
    b.copy(WORK_MCAND, RESULT);
    b.b(done);
    b.bind(not_one);

    b.bind(top);
    b.extract_low(WORK_MPY, 4, COUNT);
    b.blr(COUNT, table);

    // ---- the 16-entry, 2-instruction switch table -----------------------
    // Entries add nibble·mcand to the result: one shift-and-add plus a
    // branch; nibbles needing more work branch to short shared tails.
    let tails: Vec<pa_isa::Label> = (0..8).map(|i| b.named_label(&format!("tail{i}"))).collect();
    // tail indices: 0:+1m 1:+2m 2:+3m 3:+4m 4:+5m 5:+6m 6:+7m(16-… unused) 7:(15: −1m)
    b.bind(table);
    // 0: nothing
    b.b(next);
    b.nop();
    // 1: +1m
    b.add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 2: +2m
    b.sh1add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 3: +2m then +1m
    b.sh1add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 4: +4m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 5: +4m then +1m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 6: +4m then +2m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[1]);
    // 7: +8m then −1m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[7]);
    // 8: +8m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 9: +8m then +1m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 10: +8m then +2m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[1]);
    // 11: +8m then +3m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[2]);
    // 12: +8m then +4m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[3]);
    // 13: +8m then +5m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[4]);
    // 14: +8m then +6m
    b.sh3add(WORK_MCAND, RESULT, RESULT);
    b.b(tails[5]);
    // 15: +16m then −1m
    b.shl(WORK_MCAND, 4, COUNT);
    b.b(tails[6]);

    // ---- shared tails ----------------------------------------------------
    b.bind(tails[0]); // +1m
    b.add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[1]); // +2m
    b.sh1add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[2]); // +3m = +2m, +1m
    b.sh1add(WORK_MCAND, RESULT, RESULT);
    b.add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[3]); // +4m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[4]); // +5m = +4m, +1m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[5]); // +6m = +4m, +2m
    b.sh2add(WORK_MCAND, RESULT, RESULT);
    b.sh1add(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[6]); // +16m (already in COUNT) then −1m
    b.add(COUNT, RESULT, RESULT);
    b.sub(RESULT, WORK_MCAND, RESULT);
    b.b(next);
    b.bind(tails[7]); // −1m (after the +8m of nibble 7)
    b.sub(RESULT, WORK_MCAND, RESULT);
    // fall through to next

    b.bind(next);
    b.shr(WORK_MPY, 4, WORK_MPY);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);
    b.shl(WORK_MCAND, 4, WORK_MCAND);
    b.b(top);

    b.bind(done);
    if signed {
        let skip = b.named_label("no_negate");
        b.bb_msb(INDEX, BitSense::Clear, skip);
        b.sub(Reg::R0, RESULT, RESULT);
        b.b(skip);
        // Out-of-line slow path: some operand is negative. Take absolute
        // values and leave the product sign (the XOR of the operand signs)
        // in the guard word.
        b.bind(slow);
        b.xor(MULTIPLIER, MULTIPLICAND, INDEX);
        b.copy(MULTIPLIER, WORK_MPY);
        b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0);
        b.sub(Reg::R0, WORK_MPY, WORK_MPY);
        b.copy(MULTIPLICAND, WORK_MCAND);
        b.comclr(Cond::Le, Reg::R0, MULTIPLICAND, Reg::R0);
        b.sub(Reg::R0, WORK_MCAND, WORK_MCAND);
        b.b(join);
        b.bind(skip);
    }
    b.build()
}

/// **Extended multiplication** — the full 64-bit product the paper lists as
/// "an area of our current research" (§6). This reproduction implements it
/// with the same building blocks: the nibble loop runs over the multiplier
/// while the multiplicand and the accumulator are kept in two-word
/// precision (`SHD` + `ADDC` pairs).
///
/// Results: high word in [`regs::RESULT`] (`r28`), low word in `r29`.
/// `signed` selects the signed flavour (magnitudes multiplied, the 64-bit
/// product negated when operand signs differ).
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn extended(signed: bool) -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    let mcand_lo = Reg::R31;
    let mcand_hi = Reg::R24;
    let result_lo = Reg::R29;
    let result_hi = RESULT;
    let sign = Reg::R23;

    if signed {
        b.xor(MULTIPLIER, MULTIPLICAND, sign);
        b.copy(MULTIPLIER, WORK_MPY);
        b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0);
        b.sub(Reg::R0, WORK_MPY, WORK_MPY);
        b.copy(MULTIPLICAND, mcand_lo);
        b.comclr(Cond::Le, Reg::R0, MULTIPLICAND, Reg::R0);
        b.sub(Reg::R0, mcand_lo, mcand_lo);
    } else {
        b.copy(MULTIPLIER, WORK_MPY);
        b.copy(MULTIPLICAND, mcand_lo);
    }
    b.copy(Reg::R0, mcand_hi);
    b.copy(Reg::R0, result_lo);
    b.copy(Reg::R0, result_hi);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);

    let top = b.here("loop");
    // Four bits; each set bit adds the two-word multiplicand.
    for bit in 0..4u8 {
        let skip = b.new_label();
        b.bb(WORK_MPY, 31 - bit, BitSense::Clear, skip);
        b.add(mcand_lo, result_lo, result_lo);
        b.addc(mcand_hi, result_hi, result_hi);
        b.bind(skip);
        // Shift the multiplicand pair left once (SHD captures the carry
        // bit; the order keeps it safe in place).
        b.shd(mcand_hi, mcand_lo, 31, mcand_hi);
        b.shl(mcand_lo, 1, mcand_lo);
    }
    b.shr(WORK_MPY, 4, WORK_MPY);
    b.comb(Cond::Ne, WORK_MPY, Reg::R0, top);
    b.bind(done);
    if signed {
        // Negate the 64-bit product when operand signs differ.
        let keep = b.named_label("keep_sign");
        b.bb_msb(sign, BitSense::Clear, keep);
        b.sub(Reg::R0, result_lo, result_lo);
        b.subb(Reg::R0, result_hi, result_hi);
        b.bind(keep);
    }
    b.build()
}

/// The final algorithm with **full overflow detection** — the paper: *"In
/// the final algorithm, overflow checking is completely and accurately
/// handled."*
///
/// Accuracy demands care around `i32::MIN` (§6: the absolute value, the
/// final correction, or an intermediate calculation "may report an overflow
/// when it is possible that the result is perfectly representable"). The
/// trick used here accumulates **in the result's own sign**: when the
/// operand signs differ the multiplicand is negated up front and the partial
/// sums walk downward, so the trapping `ADDO`/`SHxADDO` instructions bound
/// them at exactly `i32::MIN` — no post-negation, no false trap on `MIN`,
/// no missed trap at `2^31`. Entries use additive-only decompositions
/// (7 = 4+2+1, 15 = 8+4+2+1): a subtractive 8−1 could overshoot and trap on
/// a product that fits.
///
/// Traps with the simulator's overflow trap exactly when `x * y` does not
/// fit in `i32`.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn switched_checked() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let done = b.named_label("done");
    let next = b.named_label("next");
    let table = b.named_label("table");
    let top = b.named_label("loop");
    let negative = b.named_label("negative_result");
    let setup_done = b.named_label("setup_done");

    // Quick exits for zero operands (before any MIN special-casing).
    b.comb(Cond::Eq, MULTIPLIER, Reg::R0, done); // result r28 = 0 below
    b.copy(Reg::R0, RESULT);
    b.comb(Cond::Eq, MULTIPLICAND, Reg::R0, done);

    // Magnitudes.
    b.copy(MULTIPLIER, WORK_MPY);
    b.comclr(Cond::Le, Reg::R0, MULTIPLIER, Reg::R0);
    b.sub(Reg::R0, WORK_MPY, WORK_MPY);
    b.copy(MULTIPLICAND, WORK_MCAND);
    b.comclr(Cond::Le, Reg::R0, MULTIPLICAND, Reg::R0);
    b.sub(Reg::R0, WORK_MCAND, WORK_MCAND);
    // Swap so the smaller magnitude drives the loop. (|i32::MIN| compares
    // as 2^31 unsigned, which is exactly right.)
    let ordered = b.named_label("ordered");
    b.comb(Cond::Ule, WORK_MPY, WORK_MCAND, ordered);
    b.copy(WORK_MPY, COUNT);
    b.copy(WORK_MCAND, WORK_MPY);
    b.copy(COUNT, WORK_MCAND);
    b.bind(ordered);

    // Sign of the result decides the accumulation direction.
    b.xor(MULTIPLIER, MULTIPLICAND, INDEX);
    b.bb_msb(INDEX, BitSense::Set, negative);
    // Positive result: a magnitude of 2^31 (a MIN operand, multiplier ≥ 1)
    // can never fit — trap immediately via a guaranteed-overflowing ADDO.
    let pos_ok = b.named_label("positive_ok");
    b.bb_msb(WORK_MCAND, BitSense::Clear, pos_ok);
    b.addo(WORK_MCAND, WORK_MCAND, Reg::R0); // MIN + MIN: certain trap
    b.bind(pos_ok);
    b.b(setup_done);
    b.bind(negative);
    // Negative result: accumulate negated partial products.
    b.sub(Reg::R0, WORK_MCAND, WORK_MCAND);
    b.bind(setup_done);

    b.copy(Reg::R0, RESULT);
    b.bind(top);
    b.extract_low(WORK_MPY, 4, COUNT);
    b.blr(COUNT, table);

    // 16 two-instruction entries; additive-only decompositions through
    // trapping instructions. Tails share the +1/+2/+3/+4/+5/+6/+7 codas.
    let tails: Vec<pa_isa::Label> = (0..7)
        .map(|i| b.named_label(&format!("ctail{i}")))
        .collect();
    b.bind(table);
    // 0
    b.b(next);
    b.nop();
    // 1
    b.addo(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 2
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 3 = 2 + 1
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 4
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 5 = 4 + 1
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 6 = 4 + 2
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.b(tails[1]);
    // 7 = 4 + 2 + 1 (additive only)
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.b(tails[2]);
    // 8
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    // 9 = 8 + 1
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[0]);
    // 10 = 8 + 2
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[1]);
    // 11 = 8 + 2 + 1
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[2]);
    // 12 = 8 + 4
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[3]);
    // 13 = 8 + 4 + 1
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[4]);
    // 14 = 8 + 4 + 2
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[5]);
    // 15 = 8 + 4 + 2 + 1
    b.shaddo(pa_isa::ShAmount::Three, WORK_MCAND, RESULT, RESULT);
    b.b(tails[6]);

    b.bind(tails[0]); // +1
    b.addo(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[1]); // +2
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[2]); // +2 then +1
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.addo(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[3]); // +4
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[4]); // +4 then +1
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.addo(WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[5]); // +4 then +2
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.b(next);
    b.bind(tails[6]); // +4 then +2 then +1
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, RESULT, RESULT);
    b.shaddo(pa_isa::ShAmount::One, WORK_MCAND, RESULT, RESULT);
    b.addo(WORK_MCAND, RESULT, RESULT);
    // falls into next

    b.bind(next);
    b.shr(WORK_MPY, 4, WORK_MPY);
    b.comb(Cond::Eq, WORK_MPY, Reg::R0, done);
    // "Two Shift Two and Adds neatly complete the left shift of the
    // multiplicand … and check for overflows, all in two instruction
    // cycles" (§6) — more nibbles follow, so a multiplicand overflow here
    // implies a product overflow.
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, Reg::R0, WORK_MCAND);
    b.shaddo(pa_isa::ShAmount::Two, WORK_MCAND, Reg::R0, WORK_MCAND);
    b.b(top);
    b.bind(done);
    b.build()
}
