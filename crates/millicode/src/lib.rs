//! # millicode — the runtime multiply and divide routines
//!
//! HP Precision has no multiply or divide instructions; integer `*`, `/` and
//! `%` compile to calls into *millicode* — short, register-convention-bound
//! assembly routines. This crate builds those routines as [`pa_isa`]
//! programs, reproducing §6 (multiplication by variables, all four
//! generations up to the `BLR`-switched Figure 4 algorithm) and §7/§4
//! (the `DS`/`ADDC` general divide, the small-divisor dispatch, and the
//! restoring baseline).
//!
//! ## Example
//!
//! ```
//! use millicode::mulvar;
//! use pa_isa::Reg;
//! use pa_sim::{run_fn, ExecConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let routine = mulvar::switched(true)?;
//! let (m, stats) = run_fn(
//!     &routine,
//!     &[(Reg::R26, 7u32), (Reg::R25, -3i32 as u32)],
//!     &ExecConfig::default(),
//! );
//! assert_eq!(m.reg_i32(Reg::R28), -21);
//! assert!(stats.cycles < 40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divvar;
pub mod mulvar;

#[cfg(test)]
mod tests {
    use crate::{divvar, mulvar};
    use pa_isa::{Program, Reg};
    use pa_sim::{run_fn, ExecConfig, Machine, RunResult, TrapKind};

    fn run2(p: &Program, a: u32, b: u32) -> (Machine, RunResult) {
        run_fn(p, &[(Reg::R26, a), (Reg::R25, b)], &ExecConfig::default())
    }

    fn check_mul_signed(p: &Program, x: i32, y: i32) -> u64 {
        let (m, r) = run2(p, x as u32, y as u32);
        assert!(
            r.termination.is_completed(),
            "{x} * {y}: {:?}",
            r.termination
        );
        assert_eq!(
            m.reg(Reg::R28),
            (x as u32).wrapping_mul(y as u32),
            "{x} * {y}"
        );
        assert_eq!(m.reg_i32(Reg::R26), x, "multiplier clobbered");
        assert_eq!(m.reg_i32(Reg::R25), y, "multiplicand clobbered");
        r.cycles
    }

    fn signed_cases() -> Vec<(i32, i32)> {
        let mut v = vec![
            (0, 0),
            (0, 5),
            (5, 0),
            (1, 1),
            (1, -1),
            (-1, -1),
            (3, 7),
            (-3, 7),
            (3, -7),
            (-3, -7),
            (15, 15),
            (16, 16),
            (255, 255),
            (4096, 4096),
            (46340, 46340),
            (i32::MAX, 1),
            (1, i32::MAX),
            (i32::MIN, 1),
            (i32::MIN + 1, -1),
            (65535, 65537),
            (-40000, 2),
            (31623, 31623),
        ];
        // A small deterministic pseudo-random batch.
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = (state as u32 & 0xFFFF) as i32 - 0x8000;
            let y = ((state >> 32) as u32 & 0xFFFF) as i32 - 0x8000;
            v.push((x, y));
        }
        v
    }

    #[test]
    fn naive_matches_wrapping_mul() {
        let p = mulvar::naive().unwrap();
        for (x, y) in signed_cases() {
            check_mul_signed(&p, x, y);
        }
    }

    #[test]
    fn naive_dynamic_path_is_about_167() {
        // §6: "the algorithm in Figure 2 has a dynamic path of 167
        // (single cycle) instructions."
        let p = mulvar::naive().unwrap();
        let cycles = check_mul_signed(&p, 12345, 678);
        assert!(
            (160..=175).contains(&cycles),
            "naive multiply took {cycles} cycles, expected ≈167"
        );
    }

    #[test]
    fn early_exit_matches_and_is_data_dependent() {
        let p = mulvar::early_exit().unwrap();
        for (x, y) in signed_cases() {
            check_mul_signed(&p, x, y);
        }
        let small = check_mul_signed(&p, 3, 1_000_000);
        let large = check_mul_signed(&p, 1_000_000, 3);
        assert!(
            small < large,
            "{small} !< {large}: early exit must help small multipliers"
        );
        // Worst case ≈192 (paper): a full-width multiplier magnitude.
        let worst = check_mul_signed(&p, i32::MIN, 1);
        assert!((185..=210).contains(&worst), "worst {worst}, expected ≈192");
    }

    #[test]
    fn nibble_matches_and_is_faster() {
        let p = mulvar::nibble().unwrap();
        for (x, y) in signed_cases() {
            check_mul_signed(&p, x, y);
        }
        // Worst ≈107 (paper: full-width multiplier, all bits set — clear
        // bits cost one instruction here instead of Figure 3's fixed two).
        let worst = check_mul_signed(&p, i32::MAX, 1);
        assert!((90..=120).contains(&worst), "worst {worst}, expected ≈107");
    }

    #[test]
    fn swap_matches_and_bounds_iterations() {
        let p = mulvar::swap().unwrap();
        for (x, y) in signed_cases() {
            check_mul_signed(&p, x, y);
        }
        // With the swap, a huge multiplicand no longer hurts: the smaller
        // operand drives the loop. Worst ≈59 for 16-bit × 16-bit.
        let w = check_mul_signed(&p, 46340, 46340);
        assert!((40..=65).contains(&w), "16x16 worst {w}, paper says ≈59");
        // And a worst-case multiplier no longer matters once swapped:
        let w2 = check_mul_signed(&p, i32::MIN + 1, 3);
        assert!(w2 < 50, "swap failed to bound the loop: {w2}");
    }

    #[test]
    fn switched_signed_matches() {
        let p = mulvar::switched(true).unwrap();
        for (x, y) in signed_cases() {
            check_mul_signed(&p, x, y);
        }
    }

    #[test]
    fn switched_unsigned_matches() {
        let p = mulvar::switched(false).unwrap();
        let cases: Vec<(u32, u32)> = vec![
            (0, 0),
            (1, 0xFFFF_FFFF),
            (2, 0x8000_0000),
            (15, 15),
            (0xFFFF, 0x1_0001u32),
            (12345, 6789),
            (0xFFFF_FFFF, 0xFFFF_FFFF),
        ];
        for (x, y) in cases {
            let (m, r) = run2(&p, x, y);
            assert!(r.termination.is_completed());
            assert_eq!(m.reg(Reg::R28), x.wrapping_mul(y), "{x} * {y}");
        }
    }

    #[test]
    fn switched_single_nibble_is_fast() {
        // Figure 5, first class (min operand 0..15): best 10, avg 15,
        // worst 23 including overhead.
        let p = mulvar::switched(true).unwrap();
        let mut worst = 0;
        for small in 0..=15 {
            worst = worst.max(check_mul_signed(&p, small, 1_000_000));
        }
        assert!(
            worst <= 30,
            "nibble-class multiply took {worst}, paper says ≤23"
        );
    }

    #[test]
    fn switched_class_costs_increase() {
        // Figure 5: the four min(|x|,|y|) classes cost progressively more.
        let p = mulvar::switched(true).unwrap();
        let reps = [15, 255, 4095, 46340];
        let costs: Vec<u64> = reps
            .iter()
            .map(|&v| check_mul_signed(&p, v, 46340))
            .collect();
        assert!(
            costs.windows(2).all(|w| w[0] < w[1]),
            "class costs must increase: {costs:?}"
        );
        assert!(
            costs[3] <= 60,
            "largest class worst {} (paper: 56)",
            costs[3]
        );
    }

    #[test]
    fn generations_improve_monotonically() {
        // E5–E9 ordering under a typical operand pair.
        let naive = mulvar::naive().unwrap();
        let early = mulvar::early_exit().unwrap();
        let nib = mulvar::nibble().unwrap();
        let swapped = mulvar::swap().unwrap();
        let switched = mulvar::switched(true).unwrap();
        let (x, y) = (4711, 13);
        let costs: Vec<u64> = [&naive, &early, &nib, &swapped, &switched]
            .iter()
            .map(|p| check_mul_signed(p, x, y))
            .collect();
        // The switch's dispatch overhead can cost a cycle or two against the
        // plain swapped loop on single-iteration multipliers; everything
        // else must strictly improve.
        assert!(
            costs.windows(2).all(|w| w[1] <= w[0] + 3),
            "generations must not regress: {costs:?}"
        );
        assert!(costs[4] < 30, "final algorithm: {} cycles", costs[4]);
        // On multi-nibble operands the switch wins outright.
        let wide_swap = check_mul_signed(&swapped, 46340, 46340);
        let wide_switch = check_mul_signed(&switched, 46340, 46340);
        assert!(wide_switch <= wide_swap, "{wide_switch} > {wide_swap}");
    }

    // ---- division ---------------------------------------------------------

    fn check_udiv(p: &Program, x: u32, y: u32) -> u64 {
        let (m, r) = run2(p, x, y);
        assert!(
            r.termination.is_completed(),
            "{x} / {y}: {:?}",
            r.termination
        );
        assert_eq!(m.reg(Reg::R28), x / y, "{x} / {y} quotient");
        assert_eq!(m.reg(Reg::R29), x % y, "{x} % {y} remainder");
        r.cycles
    }

    fn unsigned_div_cases() -> Vec<(u32, u32)> {
        let mut v = vec![
            (0, 1),
            (1, 1),
            (100, 7),
            (7, 100),
            (u32::MAX, 1),
            (u32::MAX, 2),
            (u32::MAX, u32::MAX),
            (u32::MAX, 0x8000_0000),
            (0x8000_0000, 3),
            (0x7FFF_FFFF, 0x8000_0001),
            (0xFFFF_FFFE, 0x7FFF_FFFF),
            (1, u32::MAX),
            (1000000007, 97),
        ];
        let mut state = 0xdead_beef_1234_5678u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let x = state as u32;
            let y = ((state >> 32) as u32).max(1);
            v.push((x, y));
        }
        v
    }

    #[test]
    fn udiv_matches_hardware_division() {
        let p = divvar::udiv().unwrap();
        for (x, y) in unsigned_div_cases() {
            check_udiv(&p, x, y);
        }
    }

    #[test]
    fn udiv_costs_about_80_cycles() {
        let p = divvar::udiv().unwrap();
        let c = check_udiv(&p, 123_456_789, 7);
        assert!(
            (68..=85).contains(&c),
            "general divide took {c}, expected ≈80"
        );
    }

    #[test]
    fn udiv_traps_on_zero() {
        let p = divvar::udiv().unwrap();
        let (_, r) = run2(&p, 5, 0);
        assert_eq!(
            r.termination.trap().map(|t| t.kind),
            Some(TrapKind::Break(divvar::DIV_ZERO_BREAK))
        );
    }

    #[test]
    fn sdiv_truncates_toward_zero() {
        let p = divvar::sdiv().unwrap();
        let cases = [
            (7i32, 2i32),
            (-7, 2),
            (7, -2),
            (-7, -2),
            (0, 5),
            (i32::MAX, 1),
            (i32::MIN, 1),
            (i32::MIN, 2),
            (i32::MIN, i32::MIN),
            (i32::MAX, i32::MIN),
            (100, 9),
            (-100, 9),
            (-1, i32::MAX),
        ];
        for (x, y) in cases {
            let (m, r) = run2(&p, x as u32, y as u32);
            assert!(r.termination.is_completed(), "{x} / {y}");
            let q = (i64::from(x) / i64::from(y)) as u32;
            let rem = (i64::from(x) % i64::from(y)) as u32;
            assert_eq!(m.reg(Reg::R28), q, "{x} / {y} quotient");
            assert_eq!(m.reg(Reg::R29), rem, "{x} % {y} remainder");
        }
    }

    #[test]
    fn sdiv_preserves_inputs() {
        let p = divvar::sdiv().unwrap();
        let (m, _) = run2(&p, -1234i32 as u32, -7i32 as u32);
        assert_eq!(m.reg_i32(Reg::R26), -1234);
        assert_eq!(m.reg_i32(Reg::R25), -7);
    }

    #[test]
    fn small_dispatch_quotients_and_speed() {
        let p = divvar::small_dispatch(20).unwrap();
        let mut worst_small = 0u64;
        for y in 1..20u32 {
            for x in [0u32, 1, 19, 100, 12345, u32::MAX, u32::MAX / 2] {
                let (m, r) = run2(&p, x, y);
                assert!(r.termination.is_completed(), "{x} / {y}");
                assert_eq!(m.reg(Reg::R28), x / y, "{x} / {y}");
                worst_small = worst_small.max(r.cycles);
            }
        }
        // §7: variable divisors below twenty take 10..36 cycles.
        assert!(
            (10..=48).contains(&worst_small),
            "small-divisor dispatch worst case {worst_small}, expected ≲36"
        );
        // Large divisors still divide correctly through the fallback.
        for (x, y) in [(100u32, 21u32), (u32::MAX, 1000), (5, 0x8000_0003)] {
            let (m, r) = run2(&p, x, y);
            assert!(r.termination.is_completed());
            assert_eq!(m.reg(Reg::R28), x / y, "{x} / {y}");
        }
        // Divide by zero reaches the trap through the table.
        let (_, r) = run2(&p, 5, 0);
        assert_eq!(
            r.termination.trap().map(|t| t.kind),
            Some(TrapKind::Break(divvar::DIV_ZERO_BREAK))
        );
    }

    #[test]
    fn restoring_baseline_is_correct_and_slower() {
        let restoring = divvar::restoring_udiv().unwrap();
        let ds = divvar::udiv().unwrap();
        for (x, y) in unsigned_div_cases().into_iter().take(60) {
            let c_r = check_udiv(&restoring, x, y);
            let c_d = check_udiv(&ds, x, y);
            if y < 0x8000_0000 {
                assert!(
                    c_r > c_d,
                    "restoring ({c_r}) should cost more than DS ({c_d}) for {x}/{y}"
                );
            }
        }
    }

    #[test]
    fn mul_tiers_classify_operand_pairs() {
        assert_eq!(mulvar::tier_for(false, 0, 5), ("zero-exit", 0));
        assert_eq!(mulvar::tier_for(false, 123, 1), ("one-exit", 1));
        assert_eq!(mulvar::tier_for(false, 300, 7), ("nibble-x1", 7));
        assert_eq!(
            mulvar::tier_for(false, 0x1234, u32::MAX),
            ("nibble-x4", 0x1234)
        );
        assert_eq!(
            mulvar::tier_for(false, u32::MAX, u32::MAX),
            ("nibble-x8", u32::MAX)
        );
        // Signed: magnitudes drive the classification, including |MIN| = 2³¹.
        assert_eq!(mulvar::tier_for(true, -8i32 as u32, 3), ("nibble-x1", 3));
        assert_eq!(mulvar::tier_for(true, i32::MIN as u32, 2), ("nibble-x1", 2));
        assert_eq!(
            mulvar::tier_for(true, i32::MIN as u32, i32::MIN as u32),
            ("nibble-x8", 0x8000_0000)
        );
    }

    #[test]
    fn mul_tiers_track_measured_cycles() {
        // A denser tier must never be cheaper than a sparser one on the
        // same multiplicand — the tier order IS the cycle order.
        let p = mulvar::switched(true).unwrap();
        let pairs: [(i32, &str); 5] = [
            (0, "zero-exit"),
            (1, "one-exit"),
            (9, "nibble-x1"),
            (200, "nibble-x2"),
            (40000, "nibble-x4"),
        ];
        let mut last = 0u64;
        for (driver, expect) in pairs {
            let (tier, _) = mulvar::tier_for(true, driver as u32, 1_000_000);
            assert_eq!(tier, expect, "driver {driver}");
            let cycles = check_mul_signed(&p, driver, 1_000_000);
            assert!(cycles >= last, "tier {tier}: {cycles} < {last}");
            last = cycles;
        }
    }

    #[test]
    fn div_tiers_classify_divisors() {
        assert_eq!(divvar::general_tier(false, 0), "zero-trap");
        assert_eq!(divvar::general_tier(false, 7), "general");
        assert_eq!(divvar::general_tier(false, 0x8000_0000), "big-divisor");
        assert_eq!(divvar::general_tier(true, -7i32 as u32), "general");
        assert_eq!(divvar::general_tier(true, i32::MIN as u32), "big-divisor");
        assert_eq!(divvar::dispatch_tier(20, 0), "zero-trap");
        assert_eq!(divvar::dispatch_tier(20, 1), "copy-body");
        assert_eq!(divvar::dispatch_tier(20, 19), "inlined-body");
        assert_eq!(divvar::dispatch_tier(20, 20), "general");
        assert_eq!(divvar::dispatch_tier(20, u32::MAX), "big-divisor");
    }

    #[test]
    fn routines_have_realistic_static_sizes() {
        // Millicode lives in a shared kernel page; keep the sizes honest.
        assert!(mulvar::naive().unwrap().len() < 20);
        assert!(mulvar::switched(true).unwrap().len() < 120);
        assert!(divvar::udiv().unwrap().len() < 90);
        let dispatch = divvar::small_dispatch(20).unwrap();
        assert!(dispatch.len() < 700, "dispatch is {}", dispatch.len());
    }
}

#[cfg(test)]
mod extended_tests {
    use crate::mulvar;
    use pa_isa::Reg;
    use pa_sim::{run_fn, ExecConfig};

    fn extended_u64(p: &pa_isa::Program, x: u32, y: u32) -> u64 {
        let (m, r) = run_fn(p, &[(Reg::R26, x), (Reg::R25, y)], &ExecConfig::default());
        assert!(r.termination.is_completed(), "{x} * {y}");
        (u64::from(m.reg(Reg::R28)) << 32) | u64::from(m.reg(Reg::R29))
    }

    #[test]
    fn extended_unsigned_full_product() {
        let p = mulvar::extended(false).unwrap();
        let cases = [
            (0u32, 0u32),
            (1, u32::MAX),
            (u32::MAX, u32::MAX),
            (0x8000_0000, 2),
            (0x1234_5678, 0x9ABC_DEF0),
            (65537, 65537),
        ];
        for (x, y) in cases {
            assert_eq!(
                extended_u64(&p, x, y),
                u64::from(x) * u64::from(y),
                "{x} * {y}"
            );
        }
        let mut state = 0x5555_1234_9999_aaaau64;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let (x, y) = (state as u32, (state >> 32) as u32);
            assert_eq!(extended_u64(&p, x, y), u64::from(x) * u64::from(y));
        }
    }

    #[test]
    fn extended_signed_full_product() {
        let p = mulvar::extended(true).unwrap();
        let cases = [
            (0i32, -1i32),
            (-1, -1),
            (i32::MIN, i32::MIN),
            (i32::MIN, i32::MAX),
            (i32::MAX, i32::MAX),
            (-46341, 46341),
            (123_456_789, -987),
        ];
        for (x, y) in cases {
            let got = extended_u64(&p, x as u32, y as u32) as i64;
            assert_eq!(got, i64::from(x) * i64::from(y), "{x} * {y}");
        }
        let mut state = 0xaaaa_5555_1234_9999u64;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let (x, y) = (state as i32, (state >> 32) as i32);
            let got = extended_u64(&p, x as u32, y as u32) as i64;
            assert_eq!(got, i64::from(x) * i64::from(y), "{x} * {y}");
        }
    }

    #[test]
    fn extended_preserves_operands() {
        let p = mulvar::extended(true).unwrap();
        let (m, _) = run_fn(
            &p,
            &[(Reg::R26, -5i32 as u32), (Reg::R25, 7)],
            &ExecConfig::default(),
        );
        assert_eq!(m.reg_i32(Reg::R26), -5);
        assert_eq!(m.reg(Reg::R25), 7);
    }
}

#[cfg(test)]
mod checked_tests {
    use crate::mulvar;
    use pa_isa::Reg;
    use pa_sim::{run_fn, ExecConfig, TrapKind};

    fn check(p: &pa_isa::Program, x: i32, y: i32) {
        let (m, r) = run_fn(
            p,
            &[(Reg::R26, x as u32), (Reg::R25, y as u32)],
            &ExecConfig::default(),
        );
        match x.checked_mul(y) {
            Some(exact) => {
                assert!(
                    r.termination.is_completed(),
                    "{x} * {y} = {exact} trapped spuriously: {:?}",
                    r.termination
                );
                assert_eq!(m.reg_i32(Reg::R28), exact, "{x} * {y}");
            }
            None => {
                assert_eq!(
                    r.termination.trap().map(|t| t.kind),
                    Some(TrapKind::Overflow),
                    "{x} * {y} must trap"
                );
            }
        }
    }

    #[test]
    fn checked_switched_handles_min_accurately() {
        let p = mulvar::switched_checked().unwrap();
        // §6's hard cases: MIN is representable, so these MUST NOT trap…
        check(&p, i32::MIN, 1);
        check(&p, 1, i32::MIN);
        check(&p, i32::MIN / 2, 2);
        check(&p, -(1 << 15), 1 << 16); // exactly MIN
        check(&p, 1 << 16, -(1 << 15));
        // …while the off-by-one cousins MUST.
        check(&p, i32::MIN, -1);
        check(&p, -1, i32::MIN);
        check(&p, 1 << 15, 1 << 16); // exactly 2^31, positive: overflow
        check(&p, i32::MIN, 2);
        check(&p, i32::MIN, i32::MIN);
    }

    #[test]
    fn checked_switched_boundary_band() {
        let p = mulvar::switched_checked().unwrap();
        // Scan products straddling ±2^31.
        for y in [2i32, 3, 7, 15, 16, 255, 46341] {
            let q = i32::MAX / y;
            for dx in -2i32..=2 {
                check(&p, q.wrapping_add(dx), y);
                check(&p, q.wrapping_add(dx), -y);
                check(&p, -q.wrapping_add(dx), y);
            }
        }
    }

    #[test]
    fn checked_switched_random_sweep() {
        let p = mulvar::switched_checked().unwrap();
        let mut state = 0x00c0_ffee_0000_1234u64;
        for i in 0..3000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Mix magnitudes so both fitting and overflowing products occur.
            let shift = (i % 3) * 8;
            let x = (state as i32) >> shift;
            let y = ((state >> 32) as i32) >> (16 - shift.min(16));
            check(&p, x, y);
        }
    }

    #[test]
    fn checked_costs_are_close_to_unchecked() {
        let checked = mulvar::switched_checked().unwrap();
        let unchecked = mulvar::switched(true).unwrap();
        let (_, rc) = run_fn(
            &checked,
            &[(Reg::R26, 9), (Reg::R25, 100)],
            &ExecConfig::default(),
        );
        let (_, ru) = run_fn(
            &unchecked,
            &[(Reg::R26, 9), (Reg::R25, 100)],
            &ExecConfig::default(),
        );
        assert!(
            rc.cycles <= ru.cycles + 8,
            "checked {} vs unchecked {}",
            rc.cycles,
            ru.cycles
        );
    }
}
