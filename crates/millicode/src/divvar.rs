//! §4 + §7 — division by variables.
//!
//! * [`udiv`]/[`sdiv`]: the general-purpose routine built from the paper's
//!   two-instruction step — `DS` on the partial remainder paired with `ADDC`
//!   on the dividend/quotient word — repeated 32 times (~70–80 cycles, the
//!   paper's "average 80 cycles for the general-purpose divide routine").
//! * [`small_dispatch`]: §7's variable-divisor fast path — divisors below 20
//!   vector through a `BLR` table into inlined derived-method sequences
//!   ("divisions using variable divisors less than twenty vary from ten to
//!   36 cycles").
//! * [`restoring_udiv`]: the §2 "usual implementation" baseline — shift,
//!   trial subtract, restore — for the A2 ablation.
//!
//! Register conventions: dividend in `r26`, divisor in `r25`, quotient in
//! `r28`, remainder in `r29` (both outputs; [`small_dispatch`] produces the
//! quotient only). Entry assumes the PSW V bit is clear, which
//! `pa_sim::Machine::new` guarantees; the real millicode instead spends two
//! instructions normalising V.

use divconst::{compile_div_const, DivCodegenConfig, Signedness};
use pa_isa::{BitSense, Cond, IsaError, Label, Program, ProgramBuilder, Reg};

/// Register conventions shared by the division routines.
pub mod regs {
    use pa_isa::Reg;

    /// The dividend (preserved).
    pub const DIVIDEND: Reg = Reg::R26;
    /// The divisor (preserved).
    pub const DIVISOR: Reg = Reg::R25;
    /// The quotient.
    pub const QUOTIENT: Reg = Reg::R28;
    /// The remainder.
    pub const REMAINDER: Reg = Reg::R29;
}

use regs::{DIVIDEND, DIVISOR, QUOTIENT, REMAINDER};

/// The `BREAK` code raised for division by zero.
pub const DIV_ZERO_BREAK: u16 = 0x2d;

/// Classifies which path of [`udiv`]/[`sdiv`] fires for a divisor (given as
/// its raw bit pattern): `"zero-trap"`, `"big-divisor"` (magnitude ≥ 2³¹,
/// the compare-only special case), or `"general"` (the 32-step `DS`/`ADDC`
/// core).
#[must_use]
pub fn general_tier(signed: bool, divisor: u32) -> &'static str {
    if divisor == 0 {
        return "zero-trap";
    }
    let magnitude = if signed && (divisor as i32) < 0 {
        (divisor as i32).wrapping_neg() as u32
    } else {
        divisor
    };
    if magnitude >> 31 != 0 {
        "big-divisor"
    } else {
        "general"
    }
}

/// Classifies which path of [`small_dispatch`] (built with `limit`) fires
/// for a divisor: `"zero-trap"`, `"copy-body"` (÷1 is a register copy),
/// `"inlined-body"` (the `BLR`-vectored derived-method bodies),
/// `"big-divisor"`, or `"general"` (the inlined fallback core).
#[must_use]
pub fn dispatch_tier(limit: u32, divisor: u32) -> &'static str {
    match divisor {
        0 => "zero-trap",
        1 => "copy-body",
        y if y < limit => "inlined-body",
        y if y >> 31 != 0 => "big-divisor",
        _ => "general",
    }
}

/// Emits the 32-step `DS`/`ADDC` core dividing the value in `dividend_reg`
/// (which must be a scratch copy — the quotient develops in it) by the value
/// in `divisor_reg` (< 2³¹); the remainder lands in `REMAINDER`.
fn emit_ds_core(b: &mut ProgramBuilder, dividend_reg: Reg, divisor_reg: Reg) {
    b.copy(Reg::R0, REMAINDER);
    // Shift the dividend left; the carry out is the first bit fed to DS.
    b.add(dividend_reg, dividend_reg, dividend_reg);
    for _ in 0..32 {
        b.ds(REMAINDER, divisor_reg, REMAINDER);
        b.addc(dividend_reg, dividend_reg, dividend_reg);
    }
    // Non-restoring correction: a negative partial remainder is short one
    // divisor.
    let ok = b.named_label("rem_ok");
    b.bb_msb(REMAINDER, BitSense::Clear, ok);
    b.add(REMAINDER, divisor_reg, REMAINDER);
    b.bind(ok);
}

/// Emits the `divisor ≥ 2^31` special case (quotient is 0 or 1) for
/// dividend magnitude `x_reg` and divisor magnitude `d_reg`, then branches
/// to `exit`.
fn emit_big_divisor(b: &mut ProgramBuilder, x_reg: Reg, d_reg: Reg, exit: Label) {
    b.copy(x_reg, REMAINDER);
    b.copy(Reg::R0, QUOTIENT);
    b.comb(Cond::Ult, x_reg, d_reg, exit);
    b.ldi(1, QUOTIENT);
    b.sub(x_reg, d_reg, REMAINDER);
    b.b(exit);
}

/// The general-purpose unsigned divide: `QUOTIENT = DIVIDEND / DIVISOR`,
/// `REMAINDER = DIVIDEND % DIVISOR`.
///
/// Traps with [`DIV_ZERO_BREAK`] on a zero divisor. Divisors with the sign
/// bit set (≥ 2³¹) cannot run through the non-restoring core (the partial
/// remainder must fit a signed word) and take a short compare path, as in
/// HP's millicode.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn udiv() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let big = b.named_label("big_divisor");
    let exit = b.named_label("exit");
    let zero = b.named_label("div_zero");
    b.comb(Cond::Eq, DIVISOR, Reg::R0, zero);
    b.bb_msb(DIVISOR, BitSense::Set, big);
    b.copy(DIVIDEND, QUOTIENT);
    emit_ds_core(&mut b, QUOTIENT, DIVISOR);
    b.b(exit);
    b.bind(big);
    emit_big_divisor(&mut b, DIVIDEND, DIVISOR, exit);
    b.bind(zero);
    b.brk(DIV_ZERO_BREAK);
    b.bind(exit);
    b.build()
}

/// The general-purpose signed divide, truncating toward zero: divide the
/// magnitudes, then fix the signs (quotient negative iff operand signs
/// differ; the remainder takes the dividend's sign — C semantics).
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn sdiv() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let zero = b.named_label("div_zero");
    let big = b.named_label("big_divisor");
    let fix = b.named_label("fix_signs");
    let exit = b.named_label("exit");
    b.comb(Cond::Eq, DIVISOR, Reg::R0, zero);
    // Magnitudes: |dividend| → r1, |divisor| → r31.
    b.copy(DIVIDEND, Reg::R1);
    b.comclr(Cond::Le, Reg::R0, DIVIDEND, Reg::R0);
    b.sub(Reg::R0, Reg::R1, Reg::R1);
    b.copy(DIVISOR, Reg::R31);
    b.comclr(Cond::Le, Reg::R0, DIVISOR, Reg::R0);
    b.sub(Reg::R0, Reg::R31, Reg::R31);
    // |divisor| = 2^31 only for divisor = i32::MIN.
    b.bb_msb(Reg::R31, BitSense::Set, big);
    b.copy(Reg::R1, QUOTIENT);
    emit_ds_core(&mut b, QUOTIENT, Reg::R31);
    b.b(fix);
    b.bind(big);
    emit_big_divisor(&mut b, Reg::R1, Reg::R31, fix);
    b.bind(fix);
    // Quotient sign: negative iff operand signs differ.
    b.xor(DIVIDEND, DIVISOR, Reg::R1);
    let q_pos = b.named_label("q_positive");
    b.bb_msb(Reg::R1, BitSense::Clear, q_pos);
    b.sub(Reg::R0, QUOTIENT, QUOTIENT);
    b.bind(q_pos);
    // Remainder sign follows the dividend.
    b.comclr(Cond::Le, Reg::R0, DIVIDEND, Reg::R0);
    b.sub(Reg::R0, REMAINDER, REMAINDER);
    b.b(exit);
    b.bind(zero);
    b.brk(DIV_ZERO_BREAK);
    b.bind(exit);
    b.build()
}

/// §7 *Performance* — the variable-divisor fast path: divisors below
/// `limit` (the paper's experiments use 20) vector through a `BLR` table
/// into inlined derived-method bodies; larger divisors fall back to the
/// inlined general routine. Produces the quotient only.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
///
/// # Panics
///
/// `limit` must be between 2 and 32.
pub fn small_dispatch(limit: u32) -> Result<Program, IsaError> {
    assert!((2..=32).contains(&limit), "limit must be in 2..=32");
    let mut b = ProgramBuilder::new();
    let table = b.named_label("table");
    let general = b.named_label("general");
    let big = b.named_label("big_divisor");
    let exit = b.named_label("exit");
    let zero = b.named_label("div_zero");

    // divisor ≥ limit → general routine. (COMIB's 5-bit immediate cannot
    // hold 20, so nullify the branch with COMICLR instead.)
    b.comiclr(Cond::Ugt, limit as i32, DIVISOR, Reg::R0);
    b.b(general);
    b.blr(DIVISOR, table);

    // Two-instruction table entries, one per divisor below `limit`.
    let bodies: Vec<Label> = (0..limit)
        .map(|y| b.named_label(&format!("div{y}")))
        .collect();
    b.bind(table);
    for body in &bodies {
        b.b(*body);
        b.nop();
    }

    // Inlined constant-divisor bodies. The registers clobbered here must
    // exclude the dividend and divisor.
    let cfg = DivCodegenConfig {
        source: DIVIDEND,
        dest: QUOTIENT,
        temps: vec![
            Reg::R1,
            Reg::R31,
            Reg::R29,
            Reg::R24,
            Reg::R23,
            Reg::R22,
            Reg::R21,
            Reg::R20,
            Reg::R19,
            Reg::R18,
            Reg::R17,
            Reg::R16,
            Reg::R15,
            Reg::R14,
        ],
    };
    for (y, body) in bodies.iter().enumerate() {
        b.bind(*body);
        match y {
            0 => {
                b.b(zero);
            }
            1 => {
                b.copy(DIVIDEND, QUOTIENT);
                b.b(exit);
            }
            _ => {
                let inner = compile_div_const(y as u32, Signedness::Unsigned, &cfg)
                    .expect("constant division for 2..32 compiles");
                for insn in inner.insns() {
                    assert!(
                        insn.op.branch_target().is_none(),
                        "unsigned constant divide bodies are straight-line"
                    );
                    b.raw(insn.op);
                }
                b.b(exit);
            }
        }
    }

    // General fallback (quotient only).
    b.bind(general);
    b.bb_msb(DIVISOR, BitSense::Set, big);
    b.copy(DIVIDEND, QUOTIENT);
    emit_ds_core(&mut b, QUOTIENT, DIVISOR);
    b.b(exit);
    b.bind(big);
    emit_big_divisor(&mut b, DIVIDEND, DIVISOR, exit);
    b.bind(zero);
    b.brk(DIV_ZERO_BREAK);
    b.bind(exit);
    b.build()
}

/// §2's "usual implementation": a **restoring** division — shift, trial
/// subtract, and restore on underflow — with no `DS` support. Up to an add
/// and a subtract per quotient bit; the A2 ablation compares this against
/// the `DS`/`ADDC` routine.
///
/// # Errors
///
/// Construction is static; errors indicate a bug in this crate.
pub fn restoring_udiv() -> Result<Program, IsaError> {
    let mut b = ProgramBuilder::new();
    let zero = b.named_label("div_zero");
    let big = b.named_label("big_divisor");
    let exit = b.named_label("exit");
    b.comb(Cond::Eq, DIVISOR, Reg::R0, zero);
    b.bb_msb(DIVISOR, BitSense::Set, big);
    b.copy(DIVIDEND, Reg::R1); // dividend bits, consumed from the top
    b.copy(Reg::R0, REMAINDER);
    b.copy(Reg::R0, QUOTIENT);
    b.ldi(32, Reg::R31);
    let top = b.here("loop");
    // remainder = (remainder << 1) | next dividend bit; quotient shifts too.
    b.add(Reg::R1, Reg::R1, Reg::R1); // carry = msb
    b.addc(REMAINDER, REMAINDER, REMAINDER);
    b.add(QUOTIENT, QUOTIENT, QUOTIENT);
    // Trial subtract; keep it only if it does not underflow.
    let no_fit = b.named_label("no_fit");
    b.sub(REMAINDER, DIVISOR, Reg::R24);
    b.comb(Cond::Ult, REMAINDER, DIVISOR, no_fit);
    b.copy(Reg::R24, REMAINDER);
    b.addi(1, QUOTIENT, QUOTIENT);
    b.bind(no_fit);
    b.addib(-1, Reg::R31, Cond::Ne, top);
    b.b(exit);
    b.bind(big);
    emit_big_divisor(&mut b, DIVIDEND, DIVISOR, exit);
    b.bind(zero);
    b.brk(DIV_ZERO_BREAK);
    b.bind(exit);
    b.build()
}
