//! Deterministic structured case generation, replay files, and shrinking.
//!
//! Cases are drawn from a seeded [splitmix64] stream, so a failing run is
//! reproduced exactly by its seed alone. Generation is *structured*: the
//! constants come from pools engineered to land in every codegen tier
//! (shift-add chains, even splits, single- and triple-precision magic,
//! dispatch bodies, the general routines) and the operands are biased
//! toward the boundaries where the §7 algebra can break — multiples of
//! the divisor ± 1 and the top of the dividend range.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use telemetry::json::{self, Json};

/// A self-seeding splitmix64 stream — the oracle carries its own
/// generator so replayability never depends on another crate's RNG.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A value in `0..bound` (`bound` ≥ 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// One differential test case: which operation, its constant (if the
/// operation is compiled against one), and the operand(s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Compiled `x * n` (wrapping or trapping).
    MulConst {
        /// The constant multiplier.
        n: i64,
        /// The operand.
        x: i32,
        /// Whether the trapping (Pascal) chain is requested.
        checked: bool,
    },
    /// Compiled unsigned `x / y`.
    UdivConst {
        /// The constant divisor.
        y: u32,
        /// The dividend.
        x: u32,
    },
    /// Compiled signed `x / y`.
    SdivConst {
        /// The constant divisor.
        y: i32,
        /// The dividend.
        x: i32,
    },
    /// Compiled unsigned `x % y`.
    UremConst {
        /// The constant divisor.
        y: u32,
        /// The dividend.
        x: u32,
    },
    /// Compiled signed `x % y`.
    SremConst {
        /// The constant divisor.
        y: i32,
        /// The dividend.
        x: i32,
    },
    /// Millicode switched multiply, signed.
    MulVar {
        /// Multiplicand.
        x: i32,
        /// Multiplier.
        y: i32,
    },
    /// Millicode switched multiply, unsigned.
    MulVarUnsigned {
        /// Multiplicand.
        x: u32,
        /// Multiplier.
        y: u32,
    },
    /// Millicode general unsigned divide (`y = 0` expects the BREAK).
    DivVar {
        /// Dividend.
        x: u32,
        /// Divisor.
        y: u32,
    },
    /// Millicode general signed divide (`y = 0` expects the BREAK).
    SdivVar {
        /// Dividend.
        x: i32,
        /// Divisor.
        y: i32,
    },
    /// Millicode §7 small-divisor dispatch (`y = 0` expects the BREAK).
    DivDispatch {
        /// Dividend.
        x: u32,
        /// Divisor.
        y: u32,
    },
}

impl Case {
    /// The `kind` discriminator used in replay files.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Case::MulConst { .. } => "mul_const",
            Case::UdivConst { .. } => "udiv_const",
            Case::SdivConst { .. } => "sdiv_const",
            Case::UremConst { .. } => "urem_const",
            Case::SremConst { .. } => "srem_const",
            Case::MulVar { .. } => "mul_var",
            Case::MulVarUnsigned { .. } => "mul_var_unsigned",
            Case::DivVar { .. } => "div_var",
            Case::SdivVar { .. } => "sdiv_var",
            Case::DivDispatch { .. } => "div_dispatch",
        }
    }

    /// The flat JSON object written to replay files.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = vec![("kind".into(), Json::str(self.kind()))];
        let mut put = |k: &str, v: i64| obj.push((k.to_string(), Json::int(v)));
        match *self {
            Case::MulConst { n, x, checked } => {
                put("n", n);
                put("x", i64::from(x));
                obj.push(("checked".into(), Json::Bool(checked)));
            }
            Case::UdivConst { y, x } | Case::UremConst { y, x } => {
                put("y", i64::from(y));
                put("x", i64::from(x));
            }
            Case::SdivConst { y, x } | Case::SremConst { y, x } => {
                put("y", i64::from(y));
                put("x", i64::from(x));
            }
            Case::MulVar { x, y } | Case::SdivVar { x, y } => {
                put("x", i64::from(x));
                put("y", i64::from(y));
            }
            Case::MulVarUnsigned { x, y } | Case::DivVar { x, y } | Case::DivDispatch { x, y } => {
                put("x", i64::from(x));
                put("y", i64::from(y));
            }
        }
        Json::Object(obj)
    }

    /// Parses a replay object produced by [`Case::to_json`].
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Case> {
        let int = |k: &str| -> Option<i64> {
            match j.get(k) {
                Some(Json::Int(v)) => Some(*v),
                Some(Json::UInt(v)) => i64::try_from(*v).ok(),
                _ => None,
            }
        };
        let u32of = |k: &str| int(k).and_then(|v| u32::try_from(v).ok());
        let i32of = |k: &str| int(k).and_then(|v| i32::try_from(v).ok());
        match j.get("kind").and_then(Json::as_str)? {
            "mul_const" => Some(Case::MulConst {
                n: int("n")?,
                x: i32of("x")?,
                checked: matches!(j.get("checked"), Some(Json::Bool(true))),
            }),
            "udiv_const" => Some(Case::UdivConst {
                y: u32of("y")?,
                x: u32of("x")?,
            }),
            "sdiv_const" => Some(Case::SdivConst {
                y: i32of("y")?,
                x: i32of("x")?,
            }),
            "urem_const" => Some(Case::UremConst {
                y: u32of("y")?,
                x: u32of("x")?,
            }),
            "srem_const" => Some(Case::SremConst {
                y: i32of("y")?,
                x: i32of("x")?,
            }),
            "mul_var" => Some(Case::MulVar {
                x: i32of("x")?,
                y: i32of("y")?,
            }),
            "mul_var_unsigned" => Some(Case::MulVarUnsigned {
                x: u32of("x")?,
                y: u32of("y")?,
            }),
            "div_var" => Some(Case::DivVar {
                x: u32of("x")?,
                y: u32of("y")?,
            }),
            "sdiv_var" => Some(Case::SdivVar {
                x: i32of("x")?,
                y: i32of("y")?,
            }),
            "div_dispatch" => Some(Case::DivDispatch {
                x: u32of("x")?,
                y: u32of("y")?,
            }),
            _ => None,
        }
    }

    /// Parses one replay line (a compact JSON object).
    #[must_use]
    pub fn parse(line: &str) -> Option<Case> {
        Case::from_json(&json::parse(line).ok()?)
    }

    /// A magnitude used to order cases while shrinking: smaller constant
    /// first, then smaller operand.
    #[must_use]
    pub fn weight(&self) -> (u64, u64) {
        match *self {
            Case::MulConst { n, x, .. } => (n.unsigned_abs(), u64::from(x.unsigned_abs())),
            Case::UdivConst { y, x } | Case::UremConst { y, x } => (u64::from(y), u64::from(x)),
            Case::SdivConst { y, x } | Case::SremConst { y, x } => {
                (u64::from(y.unsigned_abs()), u64::from(x.unsigned_abs()))
            }
            Case::MulVar { x, y } | Case::SdivVar { x, y } => {
                (u64::from(y.unsigned_abs()), u64::from(x.unsigned_abs()))
            }
            Case::MulVarUnsigned { x, y } | Case::DivVar { x, y } | Case::DivDispatch { x, y } => {
                (u64::from(y), u64::from(x))
            }
        }
    }
}

impl std::fmt::Display for Case {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Case::MulConst {
                n,
                x,
                checked: false,
            } => write!(f, "compile {x} * {n}"),
            Case::MulConst {
                n,
                x,
                checked: true,
            } => write!(f, "compile {x} * {n} (checked)"),
            Case::UdivConst { y, x } => write!(f, "compile {x} / {y}u"),
            Case::SdivConst { y, x } => write!(f, "compile {x} / {y}"),
            Case::UremConst { y, x } => write!(f, "compile {x} % {y}u"),
            Case::SremConst { y, x } => write!(f, "compile {x} % {y}"),
            Case::MulVar { x, y } => write!(f, "millicode {x} * {y}"),
            Case::MulVarUnsigned { x, y } => write!(f, "millicode {x} * {y}u"),
            Case::DivVar { x, y } => write!(f, "millicode {x} / {y}u"),
            Case::SdivVar { x, y } => write!(f, "millicode {x} / {y}"),
            Case::DivDispatch { x, y } => write!(f, "dispatch {x} / {y}u"),
        }
    }
}

/// Multiplier pool: one constant per §5 chain shape (powers of two,
/// sh-add ladders, the subtract family, factor splits, negatives, and
/// the Figure 5 examples), plus zero/one edge cases.
const MUL_CONSTANTS: [i64; 24] = [
    0, 1, -1, 2, 3, 5, 6, 9, 10, 12, 59, 100, 320, 625, 641, 1000, 1979, 46_341, 65_535, 65_537,
    -7, -100, -32_768, 1_000_000,
];

/// Divisor pool: identity, every power-of-two flavour, even splits,
/// single- and triple-precision magic (3/5/7 vs 11/641), dispatch-table
/// bodies (< 20), and divisors past every range cliff.
const DIV_CONSTANTS: [u32; 24] = [
    1,
    2,
    3,
    4,
    5,
    6,
    7,
    10,
    11,
    16,
    19,
    20,
    25,
    641,
    1000,
    65_535,
    65_537,
    1_000_003,
    (1 << 30) - 1,
    0x7FFF_FFFF,
    0x8000_0000,
    0x8000_0001,
    u32::MAX - 2,
    u32::MAX,
];

/// Operand corners for the variable-operand routines.
const VAR_OPERANDS: [u32; 10] = [
    0,
    1,
    2,
    15,
    255,
    46_340,
    65_537,
    0x7FFF_FFFF,
    0x8000_0000,
    u32::MAX,
];

/// The deterministic structured case generator.
#[derive(Debug, Clone)]
pub struct CaseGen {
    rng: Rng,
    /// Every 16th divide case is a deliberate `y = 0` trap probe and a
    /// slice of multiply cases aims straight at the overflow boundary.
    tick: u64,
    /// Seed-derived pool of arbitrary 32-bit constants. Cases *reuse*
    /// these rather than minting a fresh constant each time: compiling a
    /// constant costs a chain search (~ms), so a bounded pool keeps the
    /// verifier's compile cache hot and the run time proportional to the
    /// case count, while still spanning the full width of the space.
    wild: [u32; 64],
}

impl CaseGen {
    /// A generator reproducible from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> CaseGen {
        let mut rng = Rng::new(seed);
        let mut wild = [0u32; 64];
        for slot in &mut wild {
            *slot = rng.next_u32();
        }
        CaseGen { rng, tick: 0, wild }
    }

    fn constant_u(&mut self) -> u32 {
        match self.rng.below(4) {
            0 => *self.rng.pick(&DIV_CONSTANTS),
            1 => self.rng.next_u32() % 256 + 1,
            2 => {
                let k = self.rng.below(31) as u32;
                (1u32 << k)
                    .wrapping_add(self.rng.below(3) as u32)
                    .wrapping_sub(1)
            }
            _ => {
                let wild = self.wild;
                *self.rng.pick(&wild)
            }
        }
    }

    /// A dividend biased toward `k·y ± δ` — where derived-method
    /// off-by-ones live — or a range corner, or uniform noise.
    fn dividend_near(&mut self, y: u32) -> u32 {
        match self.rng.below(3) {
            0 if y != 0 => {
                let kmax = u64::from(u32::MAX) / u64::from(y);
                let k = self.rng.below(kmax + 1);
                let base = k * u64::from(y);
                let delta = self.rng.below(5) as i64 - 2;
                u32::try_from((base as i64).saturating_add(delta)).unwrap_or(u32::MAX)
            }
            1 => *self.rng.pick(&VAR_OPERANDS),
            _ => self.rng.next_u32(),
        }
    }

    /// The next structured case.
    pub fn next_case(&mut self) -> Case {
        self.tick += 1;
        let trap_probe = self.tick.is_multiple_of(16);
        match self.rng.below(10) {
            0 => {
                let n = *self.rng.pick(&MUL_CONSTANTS);
                let x = if trap_probe && n != 0 {
                    // Aim at the overflow boundary of the checked chain.
                    let limit = i64::from(i32::MAX) / n.abs().max(1);
                    let delta = self.rng.below(5) as i64 - 2;
                    i32::try_from(limit.saturating_add(delta)).unwrap_or(i32::MAX)
                } else {
                    self.rng.next_u32() as i32
                };
                Case::MulConst {
                    n,
                    x,
                    checked: self.rng.below(2) == 0,
                }
            }
            1 => {
                let y = self.constant_u().max(1);
                Case::UdivConst {
                    y,
                    x: self.dividend_near(y),
                }
            }
            2 => {
                let y = (self.constant_u() >> 1).max(1) as i32;
                let y = if self.rng.below(2) == 0 { y } else { -y };
                Case::SdivConst {
                    y,
                    x: self.dividend_near(y.unsigned_abs()) as i32,
                }
            }
            3 => {
                let y = self.constant_u().max(1);
                Case::UremConst {
                    y,
                    x: self.dividend_near(y),
                }
            }
            4 => {
                let y = (self.constant_u() >> 1).max(1) as i32;
                let y = if self.rng.below(2) == 0 { y } else { -y };
                Case::SremConst {
                    y,
                    x: self.dividend_near(y.unsigned_abs()) as i32,
                }
            }
            5 => Case::MulVar {
                x: self.operand() as i32,
                y: self.operand() as i32,
            },
            6 => Case::MulVarUnsigned {
                x: self.operand(),
                y: self.operand(),
            },
            7 => {
                let y = if trap_probe { 0 } else { self.constant_u() };
                Case::DivVar {
                    x: self.dividend_near(y),
                    y,
                }
            }
            8 => {
                let y = if trap_probe {
                    0
                } else {
                    self.constant_u() >> 1
                };
                Case::SdivVar {
                    x: self.dividend_near(y) as i32,
                    y: y as i32 * if self.rng.below(2) == 0 { 1 } else { -1 },
                }
            }
            _ => {
                // Half the dispatch traffic stays under the table limit.
                let y = if trap_probe {
                    0
                } else if self.rng.below(2) == 0 {
                    self.rng.below(20) as u32 + 1
                } else {
                    self.constant_u()
                };
                Case::DivDispatch {
                    x: self.dividend_near(y),
                    y,
                }
            }
        }
    }

    fn operand(&mut self) -> u32 {
        if self.rng.below(3) == 0 {
            *self.rng.pick(&VAR_OPERANDS)
        } else {
            self.rng.next_u32()
        }
    }
}

/// Greedily shrinks `case` while `fails` keeps returning `true`,
/// preferring smaller constants, then smaller operands. Deterministic
/// and bounded; the result is a local minimum, which in practice is the
/// first divisor/operand pair past the broken boundary.
pub fn shrink(case: Case, fails: impl Fn(&Case) -> bool) -> Case {
    let mut best = case;
    for _ in 0..64 {
        let mut improved = false;
        for candidate in shrink_candidates(&best) {
            if candidate.weight() < best.weight() && fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    best
}

fn shrunk_u32(v: u32) -> Vec<u32> {
    let mut out = vec![0, 1, 2, 3];
    out.extend([v / 2, v.saturating_sub(1)]);
    out.retain(|&c| c < v);
    out.dedup();
    out
}

fn shrunk_i32(v: i32) -> Vec<i32> {
    let mut out: Vec<i32> = vec![0, 1, -1, 2, 3];
    out.extend([v / 2, v.saturating_sub(v.signum())]);
    out.retain(|&c| c.unsigned_abs() < v.unsigned_abs());
    out.dedup();
    out
}

fn shrunk_i64(v: i64) -> Vec<i64> {
    let mut out: Vec<i64> = vec![0, 1, -1, 2, 3];
    out.extend([v / 2, v.saturating_sub(v.signum())]);
    out.retain(|&c| c.unsigned_abs() < v.unsigned_abs());
    out.dedup();
    out
}

fn shrink_candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    match *case {
        Case::MulConst { n, x, checked } => {
            for n2 in shrunk_i64(n) {
                out.push(Case::MulConst { n: n2, x, checked });
            }
            for x2 in shrunk_i32(x) {
                out.push(Case::MulConst { n, x: x2, checked });
            }
        }
        Case::UdivConst { y, x } => {
            for y2 in shrunk_u32(y) {
                if y2 > 0 {
                    out.push(Case::UdivConst { y: y2, x });
                }
            }
            for x2 in shrink_dividend(x, y) {
                out.push(Case::UdivConst { y, x: x2 });
            }
        }
        Case::UremConst { y, x } => {
            for y2 in shrunk_u32(y) {
                if y2 > 0 {
                    out.push(Case::UremConst { y: y2, x });
                }
            }
            for x2 in shrink_dividend(x, y) {
                out.push(Case::UremConst { y, x: x2 });
            }
        }
        Case::SdivConst { y, x } => {
            for y2 in shrunk_i32(y) {
                if y2 != 0 {
                    out.push(Case::SdivConst { y: y2, x });
                }
            }
            for x2 in shrunk_i32(x) {
                out.push(Case::SdivConst { y, x: x2 });
            }
        }
        Case::SremConst { y, x } => {
            for y2 in shrunk_i32(y) {
                if y2 != 0 {
                    out.push(Case::SremConst { y: y2, x });
                }
            }
            for x2 in shrunk_i32(x) {
                out.push(Case::SremConst { y, x: x2 });
            }
        }
        Case::MulVar { x, y } => {
            for y2 in shrunk_i32(y) {
                out.push(Case::MulVar { x, y: y2 });
            }
            for x2 in shrunk_i32(x) {
                out.push(Case::MulVar { x: x2, y });
            }
        }
        Case::MulVarUnsigned { x, y } => {
            for y2 in shrunk_u32(y) {
                out.push(Case::MulVarUnsigned { x, y: y2 });
            }
            for x2 in shrunk_u32(x) {
                out.push(Case::MulVarUnsigned { x: x2, y });
            }
        }
        Case::DivVar { x, y } => {
            for y2 in shrunk_u32(y) {
                out.push(Case::DivVar { x, y: y2 });
            }
            for x2 in shrink_dividend(x, y) {
                out.push(Case::DivVar { x: x2, y });
            }
        }
        Case::SdivVar { x, y } => {
            for y2 in shrunk_i32(y) {
                out.push(Case::SdivVar { x, y: y2 });
            }
            for x2 in shrunk_i32(x) {
                out.push(Case::SdivVar { x: x2, y });
            }
        }
        Case::DivDispatch { x, y } => {
            for y2 in shrunk_u32(y) {
                out.push(Case::DivDispatch { x, y: y2 });
            }
            for x2 in shrink_dividend(x, y) {
                out.push(Case::DivDispatch { x: x2, y });
            }
        }
    }
    out
}

/// Dividend shrink candidates: plain halving plus snapping to the
/// nearest multiple-of-`y` boundary below, which keeps divergences that
/// only fire at `k·y ± δ` alive while the magnitude collapses.
fn shrink_dividend(x: u32, y: u32) -> Vec<u32> {
    let mut out = shrunk_u32(x);
    if y > 1 && x > y {
        let k = x / y; // shrinker infrastructure may use native ops
        out.push(k.saturating_mul(y));
        out.push((k / 2).saturating_mul(y));
        out.push((k / 2).saturating_mul(y).saturating_add(1));
    }
    out.retain(|&c| c < x);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let a: Vec<Case> = {
            let mut g = CaseGen::new(0xA5);
            (0..500).map(|_| g.next_case()).collect()
        };
        let b: Vec<Case> = {
            let mut g = CaseGen::new(0xA5);
            (0..500).map(|_| g.next_case()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Case> = {
            let mut g = CaseGen::new(0xA6);
            (0..500).map(|_| g.next_case()).collect()
        };
        assert_ne!(a, c, "different seeds explore different cases");
    }

    #[test]
    fn every_kind_appears_and_roundtrips() {
        let mut g = CaseGen::new(7);
        let mut kinds = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            let case = g.next_case();
            kinds.insert(case.kind());
            let line = case.to_json().to_compact_string();
            assert_eq!(Case::parse(&line), Some(case), "{line}");
        }
        assert_eq!(kinds.len(), 10, "all ten case kinds generated: {kinds:?}");
    }

    #[test]
    fn trap_probes_are_generated() {
        let mut g = CaseGen::new(3);
        let mut zero_divisors = 0;
        for _ in 0..5000 {
            match g.next_case() {
                Case::DivVar { y: 0, .. }
                | Case::SdivVar { y: 0, .. }
                | Case::DivDispatch { y: 0, .. } => zero_divisors += 1,
                _ => {}
            }
        }
        assert!(
            zero_divisors > 10,
            "only {zero_divisors} zero-divisor probes"
        );
    }

    #[test]
    fn shrink_reaches_a_small_counterexample() {
        // Pretend every unsigned constant divide with y ≥ 3 and x ≥ y
        // "fails": the shrinker must walk down to the minimal instance.
        let start = Case::UdivConst {
            y: 1_000_003,
            x: 3_141_592_653,
        };
        let min = shrink(
            start,
            |c| matches!(c, Case::UdivConst { y, x } if *y >= 3 && x >= y),
        );
        assert_eq!(min, Case::UdivConst { y: 3, x: 3 });
    }

    #[test]
    fn shrink_keeps_the_failure_failing() {
        // A "failure" that only fires on exact multiples of 641 must
        // still be a multiple of 641 after shrinking.
        let fails = |c: &Case| matches!(c, Case::UdivConst { y: 641, x } if x % 641 == 0 && *x > 0);
        let start = Case::UdivConst {
            y: 641,
            x: 641 * 5_000_001,
        };
        let min = shrink(start, fails);
        assert!(fails(&min));
        assert_eq!(min, Case::UdivConst { y: 641, x: 641 });
    }
}
