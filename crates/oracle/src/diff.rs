//! The differential runner: every case through four computations.
//!
//! For each [`Case`] the verifier runs
//!
//! 1. the **interpreter** ([`pa_sim::run_fn`]) on the compiled program
//!    or millicode routine,
//! 2. the **prepared fast path** (`PreparedProgram::run`, the hot path
//!    PR 2 promised is bit-identical),
//! 3. a **batched session** — cases accumulate per family and flush
//!    through the cached batch APIs with one reused machine, and
//! 4. the **reference oracle** ([`crate::reference`] /
//!    [`crate::magic`]),
//!
//! and demands value, remainder, trap, and cycle agreement everywhere,
//! plus conformance to the per-strategy cycle budgets. Divergences are
//! recorded with their replayable case, and the first one is shrunk to a
//! minimal counterexample.

use std::collections::BTreeMap;

use hppa_muldiv::{CompiledOp, Compiler, Error, Runtime, DISPATCH_LIMIT};
use millicode::divvar::DIV_ZERO_BREAK;
use pa_isa::{Program, Reg};
use pa_sim::{run_fn, ExecConfig, Machine, Termination, TrapKind};

use crate::budget::{BudgetViolation, Budgets};
use crate::fuzz::{shrink, Case, CaseGen};
use crate::magic::RefMagic;
use crate::reference;

/// Batch flush threshold: large enough that a flush genuinely reuses
/// one machine across many unlike operands, small enough to attribute
/// failures tightly.
const BATCH: usize = 32;

/// Cap on *recorded* divergences (they keep being counted past it).
const RECORD_LIMIT: usize = 200;

/// A deliberate fault, for proving the harness catches what it claims
/// to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// The oracle's expectation for odd constant divisors is computed
    /// from a scratch [`RefMagic`] whose multiplier is off by one — the
    /// exact bug class the §7 algebra invites.
    MagicOffByOne,
}

/// One disagreement between paths (or between a path and the oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The replayable case.
    pub case: Case,
    /// Which comparison failed (`"interpreter-vs-oracle"`, …).
    pub paths: &'static str,
    /// Human-readable detail (observed vs expected).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.paths, self.case, self.detail)
    }
}

/// The outcome of a verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Cases checked (each runs every applicable path).
    pub cases_run: u64,
    /// Total divergences observed (may exceed `divergences.len()`).
    pub divergence_count: u64,
    /// Recorded divergences, in discovery order.
    pub divergences: Vec<Divergence>,
    /// Cycle-budget violations.
    pub budget_violations: Vec<BudgetViolation>,
    /// Worst observed cycles per budget key (for tuning the TOML).
    pub max_cycles: BTreeMap<String, u64>,
    /// Checked-multiply constants whose trapping chain cannot be built
    /// (a documented capability gap, not a divergence).
    pub skipped_unsupported: u64,
    /// The first divergence shrunk to a local minimum, when any.
    pub shrunk: Option<Case>,
}

impl VerifyReport {
    /// Whether the run was fully clean.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.divergence_count == 0 && self.budget_violations.is_empty()
    }
}

/// What the oracle says a case must do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expected {
    /// Complete with this value (and remainder, where the routine
    /// yields one). Stored as raw 32-bit patterns.
    Val { value: u32, rem: Option<u32> },
    /// Trap with the divide-by-zero BREAK.
    DivZero,
    /// Trap with the overflow condition.
    Overflow,
}

/// What a simulated path actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Observed {
    Val { value: u32, rem: Option<u32> },
    DivZero,
    Overflow,
    Other,
}

impl Observed {
    fn matches(&self, e: &Expected) -> bool {
        match (self, e) {
            (Observed::Val { value, rem }, Expected::Val { value: ev, rem: er }) => {
                value == ev && (er.is_none() || rem == er)
            }
            (Observed::DivZero, Expected::DivZero) | (Observed::Overflow, Expected::Overflow) => {
                true
            }
            _ => false,
        }
    }
}

fn describe(o: &Observed) -> String {
    match o {
        Observed::Val { value, rem: None } => format!("value {value:#x}"),
        Observed::Val {
            value,
            rem: Some(r),
        } => format!("value {value:#x} rem {r:#x}"),
        Observed::DivZero => "divide-by-zero trap".to_string(),
        Observed::Overflow => "overflow trap".to_string(),
        Observed::Other => "incomplete run".to_string(),
    }
}

fn describe_expected(e: &Expected) -> String {
    match e {
        Expected::Val { value, rem: None } => format!("value {value:#x}"),
        Expected::Val {
            value,
            rem: Some(r),
        } => format!("value {value:#x} rem {r:#x}"),
        Expected::DivZero => "divide-by-zero trap".to_string(),
        Expected::Overflow => "overflow trap".to_string(),
    }
}

/// An element waiting in a constant-op batch buffer.
#[derive(Debug, Clone)]
struct ConstItem {
    x: u32,
    expect: u32,
    cycles: u64,
    case: Case,
}

/// An element waiting in a variable-op batch buffer.
#[derive(Debug, Clone)]
struct VarItem {
    x: u32,
    y: u32,
    expect: u32,
    rem: Option<u32>,
    cycles: u64,
    case: Case,
}

/// The differential verifier. Construct once, feed cases (generated,
/// swept, or replayed), then [`Verifier::finish`] for the report.
#[derive(Debug)]
pub struct Verifier {
    compiler: Compiler,
    runtime: Runtime,
    exec: ExecConfig,
    budgets: Budgets,
    inject: Option<Inject>,
    const_batches: BTreeMap<String, (Case, Vec<ConstItem>)>,
    mul_buf: Vec<VarItem>,
    mulu_buf: Vec<VarItem>,
    udiv_buf: Vec<VarItem>,
    sdiv_buf: Vec<VarItem>,
    dispatch_buf: Vec<VarItem>,
    report: VerifyReport,
}

impl Verifier {
    /// Builds the implementation stack the verifier drives.
    ///
    /// # Errors
    ///
    /// Propagates millicode construction failures (a bug if it fires).
    pub fn new(budgets: Budgets, inject: Option<Inject>) -> Result<Verifier, Error> {
        Ok(Verifier {
            compiler: Compiler::builder().cache_capacity(4096).build(),
            runtime: Runtime::new()?,
            exec: ExecConfig::default(),
            budgets,
            inject,
            const_batches: BTreeMap::new(),
            mul_buf: Vec::new(),
            mulu_buf: Vec::new(),
            udiv_buf: Vec::new(),
            sdiv_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            report: VerifyReport::default(),
        })
    }

    /// Runs `cases` generated cases from `seed`.
    pub fn run_fuzz(&mut self, seed: u64, cases: u64) {
        let _span =
            telemetry::span::enter_with("verify_fuzz", || format!("seed {seed:#x}, {cases} cases"));
        let mut generator = CaseGen::new(seed);
        for _ in 0..cases {
            let case = generator.next_case();
            self.check_case(&case);
        }
    }

    /// Sweeps the 16-bit constants with the given stride (1 = all of
    /// them) through boundary operands, as constant divides and
    /// multiplies.
    pub fn run_sweep(&mut self, stride: u32) {
        let _span = telemetry::span::enter_with("verify_sweep", || format!("stride {stride}"));
        let stride = stride.max(1);
        let mut c = 1u32;
        while c <= u16::MAX as u32 {
            let y = c;
            let xs = [
                0,
                1,
                y - 1,
                y,
                y + 1,
                (u32::MAX / y) * y - 1,
                (u32::MAX / y) * y,
                u32::MAX,
            ];
            for x in xs {
                self.check_case(&Case::UdivConst { y, x });
            }
            for x in [0i32, 1, -1, 46_341, i32::MAX, i32::MIN] {
                self.check_case(&Case::MulConst {
                    n: i64::from(c),
                    x,
                    checked: false,
                });
            }
            // Flush while this constant's op is still hot in the compile
            // cache; deferring to finish() would recompile every divisor
            // a second time (~80ms each across the 16-bit range).
            self.flush_all();
            c = c.saturating_add(stride);
        }
    }

    /// Flushes pending batches and closes out the report, shrinking the
    /// first divergence (if any) to a minimal replayable case.
    #[must_use]
    pub fn finish(mut self) -> VerifyReport {
        self.flush_all();
        if let Some(first) = self.report.divergences.first().cloned() {
            let _span = telemetry::span::enter("shrink");
            self.report.shrunk = Some(shrink(first.case, |c| self.single_case_fails(c)));
        }
        self.report
    }

    /// Read access to the accumulating report (final only after
    /// [`Verifier::finish`]).
    #[must_use]
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The oracle's verdict for one case.
    fn expect(&self, case: &Case) -> Option<Expected> {
        Some(match *case {
            Case::MulConst { n, x, checked } => {
                let n32 = i32::try_from(n).ok()?;
                match (checked, reference::mul_checked_chain(x, n32)) {
                    (true, None) => Expected::Overflow,
                    (_, Some(v)) => Expected::Val {
                        value: v as u32,
                        rem: None,
                    },
                    (false, None) => Expected::Val {
                        value: reference::mul_wrapping_i32(x, n32) as u32,
                        rem: None,
                    },
                }
            }
            Case::UdivConst { y, x } => {
                let value = if self.inject == Some(Inject::MagicOffByOne) && y >= 3 && y & 1 == 1 {
                    // The deliberate fault: a scratch magic constant one
                    // too high stands in for the honest reference.
                    RefMagic::minimal(y)?
                        .with_multiplier_off_by_one()
                        .evaluate(x)
                } else {
                    reference::udiv(x, y)?
                };
                Expected::Val { value, rem: None }
            }
            Case::SdivConst { y, x } => Expected::Val {
                value: reference::sdiv_trunc(x, y)?.0 as u32,
                rem: None,
            },
            Case::UremConst { y, x } => Expected::Val {
                value: reference::urem(x, y)?,
                rem: None,
            },
            Case::SremConst { y, x } => Expected::Val {
                value: reference::sdiv_trunc(x, y)?.1 as u32,
                rem: None,
            },
            Case::MulVar { x, y } => Expected::Val {
                value: reference::mul_wrapping_i32(x, y) as u32,
                rem: None,
            },
            Case::MulVarUnsigned { x, y } => Expected::Val {
                value: reference::mul_wrapping_u32(x, y),
                rem: None,
            },
            Case::DivVar { x, y } => match reference::div_restoring(x, y) {
                None => Expected::DivZero,
                Some((q, r)) => Expected::Val {
                    value: q,
                    rem: Some(r),
                },
            },
            Case::SdivVar { x, y } => match reference::sdiv_trunc(x, y) {
                None => Expected::DivZero,
                Some((q, r)) => Expected::Val {
                    value: q as u32,
                    rem: Some(r as u32),
                },
            },
            Case::DivDispatch { x, y } => match reference::udiv(x, y) {
                None => Expected::DivZero,
                Some(q) => Expected::Val {
                    value: q,
                    rem: None,
                },
            },
        })
    }

    /// The `section.key` a case's cycles are budgeted under.
    fn budget_key(&self, case: &Case) -> &'static str {
        match *case {
            Case::MulConst { checked: false, .. } => "mul_const.wrapping",
            Case::MulConst { checked: true, .. } => "mul_const.checked",
            Case::UdivConst { .. } => "div_const.unsigned",
            Case::SdivConst { .. } => "div_const.signed",
            Case::UremConst { .. } => "rem_const.unsigned",
            Case::SremConst { .. } => "rem_const.signed",
            Case::MulVar { .. } | Case::MulVarUnsigned { .. } => "mul_var.switched",
            Case::DivVar { .. } => "div_var.general_unsigned",
            Case::SdivVar { .. } => "div_var.general_signed",
            Case::DivDispatch { y, .. } => {
                if (1..DISPATCH_LIMIT).contains(&y) {
                    "div_var.dispatch_small"
                } else {
                    "div_var.dispatch_large"
                }
            }
        }
    }

    fn record(&mut self, case: &Case, paths: &'static str, detail: String) {
        self.report.divergence_count += 1;
        telemetry::emit(|| telemetry::Event::Verify {
            suite: "divergence",
            case: case.to_json().to_compact_string(),
            detail: format!("[{paths}] {detail}"),
        });
        if self.report.divergences.len() < RECORD_LIMIT {
            self.report.divergences.push(Divergence {
                case: *case,
                paths,
                detail,
            });
        }
    }

    fn note_cycles(&mut self, case: &Case, cycles: u64) {
        let key = self.budget_key(case);
        let worst = self.report.max_cycles.entry(key.to_string()).or_insert(0);
        *worst = (*worst).max(cycles);
        if let Some(v) = self.budgets.check(key, cycles, &case.to_string()) {
            telemetry::emit(|| telemetry::Event::Verify {
                suite: "budget",
                case: case.to_json().to_compact_string(),
                detail: v.to_string(),
            });
            self.report.budget_violations.push(v);
        }
    }

    /// Runs one case through every applicable path, enqueueing the
    /// batched-session leg.
    pub fn check_case(&mut self, case: &Case) {
        self.report.cases_run += 1;
        let Some(expected) = self.expect(case) else {
            self.record(case, "oracle", "oracle cannot model this case".to_string());
            return;
        };
        match case {
            Case::MulConst { .. }
            | Case::UdivConst { .. }
            | Case::SdivConst { .. }
            | Case::UremConst { .. }
            | Case::SremConst { .. } => self.check_const_case(case, expected),
            _ => self.check_var_case(case, expected),
        }
    }

    fn compile(&self, case: &Case) -> Option<Result<CompiledOp, Error>> {
        Some(match *case {
            Case::MulConst {
                n, checked: false, ..
            } => self.compiler.mul_const(n),
            Case::MulConst {
                n, checked: true, ..
            } => self.compiler.mul_const_checked(n),
            Case::UdivConst { y, .. } => self.compiler.udiv_const(y),
            Case::SdivConst { y, .. } => self.compiler.sdiv_const(y),
            Case::UremConst { y, .. } => self.compiler.urem_const(y),
            Case::SremConst { y, .. } => self.compiler.srem_const(y),
            _ => return None,
        })
    }

    fn check_const_case(&mut self, case: &Case, expected: Expected) {
        let x = match *case {
            Case::MulConst { x, .. } | Case::SdivConst { x, .. } | Case::SremConst { x, .. } => {
                x as u32
            }
            Case::UdivConst { x, .. } | Case::UremConst { x, .. } => x,
            _ => unreachable!("var cases go through check_var_case"),
        };
        let op = match self.compile(case).expect("const case compiles") {
            Ok(op) => op,
            Err(_) if matches!(case, Case::MulConst { checked: true, .. }) => {
                // Not every constant has a trapping-capable chain; the
                // capability gap is documented, not a divergence.
                self.report.skipped_unsupported += 1;
                return;
            }
            Err(e) => {
                self.record(case, "compile", format!("compilation failed: {e}"));
                return;
            }
        };

        // Independent magic cross-check: both derivations must agree on
        // the Figure 6 parameters before we even run the code.
        if let Case::UdivConst { y, .. } = *case {
            if y >= 3 && y & 1 == 1 && self.inject.is_none() {
                self.cross_check_magic(case, y);
            }
        }

        // Path 1: the interpreter.
        let (m, r) = run_fn(op.program(), &[(Reg::R26, x)], &self.exec);
        let obs_interp = observe(&r.termination, m.reg(Reg::R28), None);
        // Path 2: the prepared fast path.
        let mut fast = Machine::with_regs(&[(Reg::R26, x)]);
        let rf = op.prepared().run(&mut fast);
        let obs_fast = observe(&rf.termination, fast.reg(Reg::R28), None);

        if obs_interp != obs_fast || r.cycles != rf.cycles {
            self.record(
                case,
                "interpreter-vs-prepared",
                format!(
                    "interpreter {} in {} cycles, prepared {} in {} cycles",
                    describe(&obs_interp),
                    r.cycles,
                    describe(&obs_fast),
                    rf.cycles
                ),
            );
        }
        if !obs_interp.matches(&expected) {
            self.record(
                case,
                "interpreter-vs-oracle",
                format!(
                    "interpreter {}, oracle expects {}",
                    describe(&obs_interp),
                    describe_expected(&expected)
                ),
            );
        }
        if r.termination.is_completed() {
            self.note_cycles(case, r.cycles);
        }

        // Path 3: the batched compiled op, flushed per kind.
        match expected {
            Expected::Val { value, .. } => {
                let key = format!("{}", op.kind());
                let entry = self
                    .const_batches
                    .entry(key)
                    .or_insert_with(|| (*case, Vec::new()));
                entry.1.push(ConstItem {
                    x,
                    expect: value,
                    cycles: r.cycles,
                    case: *case,
                });
                if entry.1.len() >= BATCH {
                    let (probe, items) = self
                        .const_batches
                        .remove(&format!("{}", op.kind()))
                        .unwrap();
                    self.flush_const_batch(&probe, &items);
                }
            }
            Expected::Overflow => {
                // Trap cases exercise the batch path as singletons: the
                // batch API must surface the trap as an error.
                match op.run_batch_u32(&[x]) {
                    Err(Error::Trapped(TrapKind::Overflow)) => {}
                    other => self.record(
                        case,
                        "batch-vs-oracle",
                        format!("singleton batch returned {other:?}, oracle expects overflow trap"),
                    ),
                }
            }
            Expected::DivZero => {
                // Constant divides by zero are compile-time errors and
                // never reach here (the generator keeps y >= 1).
            }
        }
    }

    fn cross_check_magic(&mut self, case: &Case, y: u32) {
        match (RefMagic::minimal(y), divconst::Magic::minimal(y)) {
            (Some(ours), Ok(theirs)) => {
                if (ours.s(), ours.a(), ours.r()) != (theirs.s(), theirs.a(), theirs.r()) {
                    self.record(
                        case,
                        "magic-derivation",
                        format!(
                            "oracle derives (s={}, a={:#x}, r={}), divconst derives (s={}, a={:#x}, r={})",
                            ours.s(),
                            ours.a(),
                            ours.r(),
                            theirs.s(),
                            theirs.a(),
                            theirs.r()
                        ),
                    );
                }
            }
            (ours, theirs) => {
                self.record(
                    case,
                    "magic-derivation",
                    format!(
                        "derivation availability differs: oracle {ours:?}, divconst {theirs:?}"
                    ),
                );
            }
        }
    }

    fn flush_const_batch(&mut self, probe: &Case, items: &[ConstItem]) {
        let op = match self.compile(probe).expect("const case compiles") {
            Ok(op) => op,
            Err(e) => {
                self.record(probe, "compile", format!("batch recompilation failed: {e}"));
                return;
            }
        };
        let xs: Vec<u32> = items.iter().map(|i| i.x).collect();
        match op.run_batch_u32(&xs) {
            Ok(batch) => {
                for (i, item) in items.iter().enumerate() {
                    if batch.values[i] != item.expect {
                        self.record(
                            &item.case,
                            "batch-vs-oracle",
                            format!(
                                "batch element {} returned {:#x}, oracle expects {:#x}",
                                i, batch.values[i], item.expect
                            ),
                        );
                    }
                }
                let total: u64 = items.iter().map(|i| i.cycles).sum();
                if batch.cycles != total {
                    self.record(
                        probe,
                        "batch-cycles",
                        format!(
                            "batch of {} spent {} cycles, per-call paths spent {}",
                            items.len(),
                            batch.cycles,
                            total
                        ),
                    );
                }
            }
            Err(e) => self.record(probe, "batch-vs-oracle", format!("batch failed: {e}")),
        }
    }

    fn routine(&self, case: &Case) -> &Program {
        let name = match case {
            Case::MulVar { .. } => "mul_signed",
            Case::MulVarUnsigned { .. } => "mul_unsigned",
            Case::DivVar { .. } => "udiv",
            Case::SdivVar { .. } => "sdiv",
            Case::DivDispatch { .. } => "udiv_dispatch",
            _ => unreachable!("const cases go through check_const_case"),
        };
        self.runtime
            .programs()
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| *p)
            .expect("runtime exposes all five routines")
    }

    fn check_var_case(&mut self, case: &Case, expected: Expected) {
        let (x, y, wants_rem) = match *case {
            Case::MulVar { x, y } => (x as u32, y as u32, false),
            Case::MulVarUnsigned { x, y } => (x, y, false),
            Case::DivVar { x, y } => (x, y, true),
            Case::SdivVar { x, y } => (x as u32, y as u32, true),
            Case::DivDispatch { x, y } => (x, y, false),
            _ => unreachable!("const cases go through check_const_case"),
        };

        // Path 1: the interpreter on the raw millicode routine.
        let (m, r) = run_fn(
            self.routine(case),
            &[(Reg::R26, x), (Reg::R25, y)],
            &self.exec,
        );
        let rem = wants_rem.then(|| m.reg(Reg::R29));
        let obs_interp = observe(&r.termination, m.reg(Reg::R28), rem);

        // Path 2: the per-call facade (fresh session, prepared program).
        let (obs_call, cycles_call) = self.observe_runtime_call(case);

        if obs_interp != obs_call || (r.termination.is_completed() && r.cycles != cycles_call) {
            self.record(
                case,
                "interpreter-vs-prepared",
                format!(
                    "interpreter {} in {} cycles, runtime call {} in {} cycles",
                    describe(&obs_interp),
                    r.cycles,
                    describe(&obs_call),
                    cycles_call
                ),
            );
        }
        if !obs_interp.matches(&expected) {
            self.record(
                case,
                "interpreter-vs-oracle",
                format!(
                    "interpreter {}, oracle expects {}",
                    describe(&obs_interp),
                    describe_expected(&expected)
                ),
            );
        }
        if r.termination.is_completed() {
            self.note_cycles(case, r.cycles);
        }

        // Path 3: the batched session.
        match expected {
            Expected::Val { value, rem } => {
                let item = VarItem {
                    x,
                    y,
                    expect: value,
                    rem,
                    cycles: r.cycles,
                    case: *case,
                };
                match case {
                    Case::MulVar { .. } => push_flush(&mut self.mul_buf, item, |items| {
                        Verifier::flush_var(&self.runtime, &mut self.report, items, VarFamily::Mul)
                    }),
                    Case::MulVarUnsigned { .. } => push_flush(&mut self.mulu_buf, item, |items| {
                        Verifier::flush_var(&self.runtime, &mut self.report, items, VarFamily::MulU)
                    }),
                    Case::DivVar { .. } => push_flush(&mut self.udiv_buf, item, |items| {
                        Verifier::flush_var(&self.runtime, &mut self.report, items, VarFamily::Udiv)
                    }),
                    Case::SdivVar { .. } => push_flush(&mut self.sdiv_buf, item, |items| {
                        Verifier::flush_var(&self.runtime, &mut self.report, items, VarFamily::Sdiv)
                    }),
                    Case::DivDispatch { .. } => push_flush(&mut self.dispatch_buf, item, |items| {
                        Verifier::flush_var(
                            &self.runtime,
                            &mut self.report,
                            items,
                            VarFamily::Dispatch,
                        )
                    }),
                    _ => unreachable!(),
                }
            }
            Expected::DivZero => {
                // Trap cases exercise the batched session as singletons.
                let outcome = match case {
                    Case::DivVar { .. } => {
                        self.runtime.session().div_unsigned_batch(&[(x, y)]).err()
                    }
                    Case::SdivVar { .. } => self.runtime.div(x as i32, y as i32).err(),
                    Case::DivDispatch { .. } => self.runtime.div_dispatch_batch(&[(x, y)]).err(),
                    _ => unreachable!("multiplies never expect a divide trap"),
                };
                if outcome != Some(Error::DivideByZero) {
                    self.record(
                        case,
                        "batch-vs-oracle",
                        format!(
                            "singleton batch returned {outcome:?}, oracle expects divide-by-zero"
                        ),
                    );
                }
            }
            Expected::Overflow => unreachable!("var cases never expect overflow"),
        }
    }

    /// One facade call (fresh session) observed through the public API.
    fn observe_runtime_call(&self, case: &Case) -> (Observed, u64) {
        let fold_i32 = |r: Result<hppa_muldiv::RunOutcome<i32>, Error>| match r {
            Ok(out) => (
                Observed::Val {
                    value: out.value as u32,
                    rem: out.rem.map(|v| v as u32),
                },
                out.cycles,
            ),
            Err(e) => (observe_err(&e), 0),
        };
        let fold_u32 = |r: Result<hppa_muldiv::RunOutcome<u32>, Error>| match r {
            Ok(out) => (
                Observed::Val {
                    value: out.value,
                    rem: out.rem,
                },
                out.cycles,
            ),
            Err(e) => (observe_err(&e), 0),
        };
        match *case {
            Case::MulVar { x, y } => fold_i32(self.runtime.mul(x, y)),
            Case::MulVarUnsigned { x, y } => fold_u32(self.runtime.mul_unsigned(x, y)),
            Case::DivVar { x, y } => fold_u32(self.runtime.div_unsigned(x, y)),
            Case::SdivVar { x, y } => fold_i32(self.runtime.div(x, y)),
            Case::DivDispatch { x, y } => fold_u32(self.runtime.div_dispatch(x, y)),
            _ => unreachable!("const cases go through check_const_case"),
        }
    }

    fn flush_var(
        runtime: &Runtime,
        report: &mut VerifyReport,
        items: &[VarItem],
        family: VarFamily,
    ) {
        if items.is_empty() {
            return;
        }
        let mut session = runtime.session();
        let (values, rems, cycles) = match family {
            VarFamily::Mul => {
                let pairs: Vec<(i32, i32)> =
                    items.iter().map(|i| (i.x as i32, i.y as i32)).collect();
                match session.mul_batch(&pairs) {
                    Ok(b) => (
                        b.values.iter().map(|&v| v as u32).collect::<Vec<u32>>(),
                        None,
                        b.cycles,
                    ),
                    Err(e) => {
                        record_batch_error(report, &items[0].case, &e);
                        return;
                    }
                }
            }
            VarFamily::MulU => {
                // No unsigned batch method exists; one persistent session
                // looping calls is the same reused-machine path.
                let mut values = Vec::with_capacity(items.len());
                let mut cycles = 0u64;
                for i in items {
                    match session.mul_unsigned(i.x, i.y) {
                        Ok(out) => {
                            values.push(out.value);
                            cycles += out.cycles;
                        }
                        Err(e) => {
                            record_batch_error(report, &i.case, &e);
                            return;
                        }
                    }
                }
                (values, None, cycles)
            }
            VarFamily::Udiv => {
                let pairs: Vec<(u32, u32)> = items.iter().map(|i| (i.x, i.y)).collect();
                match session.div_unsigned_batch(&pairs) {
                    Ok(b) => {
                        let rems = b.rems.clone();
                        (b.values, rems, b.cycles)
                    }
                    Err(e) => {
                        record_batch_error(report, &items[0].case, &e);
                        return;
                    }
                }
            }
            VarFamily::Sdiv => {
                // Likewise: signed division batches through one session.
                let mut values = Vec::with_capacity(items.len());
                let mut rems = Vec::with_capacity(items.len());
                let mut cycles = 0u64;
                for i in items {
                    match session.div(i.x as i32, i.y as i32) {
                        Ok(out) => {
                            values.push(out.value as u32);
                            rems.push(out.rem.expect("sdiv yields a remainder") as u32);
                            cycles += out.cycles;
                        }
                        Err(e) => {
                            record_batch_error(report, &i.case, &e);
                            return;
                        }
                    }
                }
                (values, Some(rems), cycles)
            }
            VarFamily::Dispatch => {
                let pairs: Vec<(u32, u32)> = items.iter().map(|i| (i.x, i.y)).collect();
                match session.div_dispatch_batch(&pairs) {
                    Ok(b) => (b.values, None, b.cycles),
                    Err(e) => {
                        record_batch_error(report, &items[0].case, &e);
                        return;
                    }
                }
            }
        };
        for (i, item) in items.iter().enumerate() {
            if values[i] != item.expect {
                push_divergence(
                    report,
                    &item.case,
                    "batch-vs-oracle",
                    format!(
                        "batch element {} returned {:#x}, oracle expects {:#x}",
                        i, values[i], item.expect
                    ),
                );
            }
            if let (Some(rems), Some(er)) = (&rems, item.rem) {
                if rems[i] != er {
                    push_divergence(
                        report,
                        &item.case,
                        "batch-vs-oracle",
                        format!(
                            "batch element {} remainder {:#x}, oracle expects {:#x}",
                            i, rems[i], er
                        ),
                    );
                }
            }
        }
        let total: u64 = items.iter().map(|i| i.cycles).sum();
        if cycles != total {
            push_divergence(
                report,
                &items[0].case,
                "batch-cycles",
                format!(
                    "batch of {} spent {cycles} cycles, per-call paths spent {total}",
                    items.len()
                ),
            );
        }
    }

    /// Flushes every pending batch buffer.
    pub fn flush_all(&mut self) {
        let pending: Vec<(Case, Vec<ConstItem>)> = std::mem::take(&mut self.const_batches)
            .into_values()
            .collect();
        for (probe, items) in &pending {
            self.flush_const_batch(probe, items);
        }
        for (buf, family) in [
            (std::mem::take(&mut self.mul_buf), VarFamily::Mul),
            (std::mem::take(&mut self.mulu_buf), VarFamily::MulU),
            (std::mem::take(&mut self.udiv_buf), VarFamily::Udiv),
            (std::mem::take(&mut self.sdiv_buf), VarFamily::Sdiv),
            (std::mem::take(&mut self.dispatch_buf), VarFamily::Dispatch),
        ] {
            Verifier::flush_var(&self.runtime, &mut self.report, &buf, family);
        }
    }

    /// Whether a single case, run through every path right now (batch
    /// leg as a singleton), shows any divergence — the shrinker's
    /// predicate.
    fn single_case_fails(&self, case: &Case) -> bool {
        let Some(expected) = self.expect(case) else {
            return true;
        };
        match case {
            Case::MulConst { .. }
            | Case::UdivConst { .. }
            | Case::SdivConst { .. }
            | Case::UremConst { .. }
            | Case::SremConst { .. } => {
                let x = match *case {
                    Case::MulConst { x, .. }
                    | Case::SdivConst { x, .. }
                    | Case::SremConst { x, .. } => x as u32,
                    Case::UdivConst { x, .. } | Case::UremConst { x, .. } => x,
                    _ => unreachable!(),
                };
                let Some(Ok(op)) = self.compile(case) else {
                    return false; // unsupported, not failing
                };
                let (m, r) = run_fn(op.program(), &[(Reg::R26, x)], &self.exec);
                let obs = observe(&r.termination, m.reg(Reg::R28), None);
                !obs.matches(&expected)
            }
            _ => {
                let (obs, _) = self.observe_runtime_call(case);
                !obs.matches(&expected)
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum VarFamily {
    Mul,
    MulU,
    Udiv,
    Sdiv,
    Dispatch,
}

fn observe(termination: &Termination, value: u32, rem: Option<u32>) -> Observed {
    match termination {
        Termination::Completed => Observed::Val { value, rem },
        Termination::Trapped(t) if t.kind == TrapKind::Break(DIV_ZERO_BREAK) => Observed::DivZero,
        Termination::Trapped(t) if t.kind == TrapKind::Overflow => Observed::Overflow,
        _ => Observed::Other,
    }
}

fn observe_err(e: &Error) -> Observed {
    match e {
        Error::DivideByZero => Observed::DivZero,
        Error::Trapped(TrapKind::Overflow) => Observed::Overflow,
        _ => Observed::Other,
    }
}

fn push_flush(buf: &mut Vec<VarItem>, item: VarItem, flush: impl FnOnce(&[VarItem])) {
    buf.push(item);
    if buf.len() >= BATCH {
        let items = std::mem::take(buf);
        flush(&items);
    }
}

fn push_divergence(report: &mut VerifyReport, case: &Case, paths: &'static str, detail: String) {
    report.divergence_count += 1;
    telemetry::emit(|| telemetry::Event::Verify {
        suite: "divergence",
        case: case.to_json().to_compact_string(),
        detail: format!("[{paths}] {detail}"),
    });
    if report.divergences.len() < RECORD_LIMIT {
        report.divergences.push(Divergence {
            case: *case,
            paths,
            detail,
        });
    }
}

fn record_batch_error(report: &mut VerifyReport, case: &Case, e: &Error) {
    push_divergence(
        report,
        case,
        "batch-vs-oracle",
        format!("batch failed unexpectedly: {e}"),
    );
}
