//! Independent reference models for multiply and divide.
//!
//! Everything here is deliberately *primitive*: the multiplier is the
//! bit-serial schoolbook shift-and-add loop and the divider is the
//! textbook restoring divider, both built from addition, subtraction,
//! shifts, and comparisons only. No routine in this module calls the
//! native `*`, `/`, or `%` operators on the operands, and none of it
//! shares a line of code with `mulconst`, `divconst`, or `millicode` —
//! when an implementation path and a reference disagree, exactly one of
//! two *independently derived* computations is wrong.
//!
//! Signedness is layered on top of the unsigned cores by the same
//! magnitude/sign-fixup argument the paper uses (§4, §6), with the one
//! wrinkle C and the Precision share: `i32::MIN / -1` wraps back to
//! `i32::MIN` (quotient magnitude `2^31` does not fit) and its remainder
//! is zero.

/// The full 64-bit product of two 32-bit values by the schoolbook method:
/// scan the multiplier bit by bit, adding the (shifted) multiplicand
/// wherever a bit is set. 32 iterations, addition and shifts only.
#[must_use]
pub fn mul_u64_bit_serial(x: u32, y: u32) -> u64 {
    let mut acc = 0u64;
    let mut addend = u64::from(x);
    let mut rest = y;
    while rest != 0 {
        if rest & 1 == 1 {
            acc = acc.wrapping_add(addend);
        }
        addend <<= 1;
        rest >>= 1;
    }
    acc
}

/// Wrapping unsigned 32-bit product (C semantics): the low word of the
/// bit-serial double-length product.
#[must_use]
pub fn mul_wrapping_u32(x: u32, y: u32) -> u32 {
    mul_u64_bit_serial(x, y) as u32
}

/// Wrapping signed 32-bit product. Two's-complement multiplication has
/// the same low word regardless of signedness, so this is the unsigned
/// model reinterpreted.
#[must_use]
pub fn mul_wrapping_i32(x: i32, y: i32) -> i32 {
    mul_wrapping_u32(x as u32, y as u32) as i32
}

/// The exact signed product as an `i64`, from magnitudes and a sign
/// fixup (the largest magnitude product, `2^31 * 2^31 = 2^62`, fits).
#[must_use]
pub fn mul_exact_i64(x: i32, y: i32) -> i64 {
    let mag = mul_u64_bit_serial(x.unsigned_abs(), y.unsigned_abs());
    if (x < 0) != (y < 0) {
        (mag as i64).wrapping_neg()
    } else {
        mag as i64
    }
}

/// Checked signed product (Pascal semantics): `None` exactly when the
/// exact product leaves the `i32` range — the cases where the trapping
/// multiply chains must raise an overflow trap.
#[must_use]
pub fn mul_checked_i32(x: i32, y: i32) -> Option<i32> {
    let exact = mul_exact_i64(x, y);
    if exact < i64::from(i32::MIN) || exact > i64::from(i32::MAX) {
        None
    } else {
        Some(exact as i32)
    }
}

/// Checked signed product with the *trapping chain's* semantics: for a
/// negative multiplier the generated code computes `x · |n|` through a
/// monotonic trapping chain and then negates with `SUBO`, so it traps
/// whenever the magnitude product leaves the `i32` range **or** lands
/// exactly on `i32::MIN` (whose negation overflows) — even though the
/// mathematical product `x · n` would fit in that last case
/// (`65536 · -32768 = i32::MIN` traps). For non-negative multipliers the
/// chain semantics coincide with [`mul_checked_i32`].
#[must_use]
pub fn mul_checked_chain(x: i32, n: i32) -> Option<i32> {
    let exact = mul_exact_i64(x, n);
    if n >= 0 {
        return mul_checked_i32(x, n);
    }
    // exact = x·n, so the pre-negation magnitude product is x·|n| = −exact.
    let mag = exact.wrapping_neg();
    if mag <= i64::from(i32::MIN) || mag > i64::from(i32::MAX) {
        None
    } else {
        Some(exact as i32)
    }
}

/// Restoring division: `(quotient, remainder)`, or `None` for a zero
/// divisor. The remainder is developed one dividend bit at a time in a
/// double-width accumulator; each step subtracts the divisor back out
/// whenever it fits. Subtraction and comparison only — structurally
/// unlike the paper's non-restoring `DS`/`ADDC` scheme, which is the
/// point.
#[must_use]
pub fn div_restoring(x: u32, y: u32) -> Option<(u32, u32)> {
    if y == 0 {
        return None;
    }
    let mut rem = 0u64;
    let mut quot = 0u32;
    for i in (0..32).rev() {
        rem = (rem << 1) | u64::from((x >> i) & 1);
        if rem >= u64::from(y) {
            rem -= u64::from(y);
            quot |= 1 << i;
        }
    }
    Some((quot, rem as u32))
}

/// Unsigned quotient, or `None` for a zero divisor.
#[must_use]
pub fn udiv(x: u32, y: u32) -> Option<u32> {
    div_restoring(x, y).map(|(q, _)| q)
}

/// Unsigned remainder, or `None` for a zero divisor.
#[must_use]
pub fn urem(x: u32, y: u32) -> Option<u32> {
    div_restoring(x, y).map(|(_, r)| r)
}

/// Signed division truncating toward zero: `(quotient, remainder)` with
/// the remainder taking the dividend's sign (C semantics), or `None` for
/// a zero divisor. `i32::MIN / -1` wraps to `(i32::MIN, 0)`.
#[must_use]
pub fn sdiv_trunc(x: i32, y: i32) -> Option<(i32, i32)> {
    let (qmag, rmag) = div_restoring(x.unsigned_abs(), y.unsigned_abs())?;
    let q = if (x < 0) != (y < 0) {
        (qmag as i32).wrapping_neg()
    } else {
        qmag as i32 // 2^31 wraps to i32::MIN here, matching C
    };
    let r = if x < 0 {
        (rmag as i32).wrapping_neg()
    } else {
        rmag as i32
    };
    Some((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES_U: [u32; 12] = [
        0,
        1,
        2,
        3,
        7,
        100,
        46_340,
        65_537,
        0x7FFF_FFFF,
        0x8000_0000,
        0xFFFF_FFFE,
        u32::MAX,
    ];

    #[test]
    fn bit_serial_product_matches_native() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                assert_eq!(
                    mul_u64_bit_serial(x, y),
                    u64::from(x) * u64::from(y),
                    "{x} * {y}"
                );
            }
        }
    }

    #[test]
    fn wrapping_products_match_native() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                assert_eq!(mul_wrapping_u32(x, y), x.wrapping_mul(y));
                let (xs, ys) = (x as i32, y as i32);
                assert_eq!(mul_wrapping_i32(xs, ys), xs.wrapping_mul(ys));
            }
        }
    }

    #[test]
    fn checked_product_matches_native() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                let (xs, ys) = (x as i32, y as i32);
                assert_eq!(mul_checked_i32(xs, ys), xs.checked_mul(ys), "{xs} * {ys}");
                assert_eq!(
                    mul_exact_i64(xs, ys),
                    i64::from(xs) * i64::from(ys),
                    "{xs} * {ys}"
                );
            }
        }
    }

    #[test]
    fn chain_semantics_differ_only_on_the_negation_edge() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                let (xs, ys) = (x as i32, y as i32);
                let math = mul_checked_i32(xs, ys);
                let chain = mul_checked_chain(xs, ys);
                if ys >= 0 || math != Some(i32::MIN) {
                    assert_eq!(chain, math, "{xs} * {ys}");
                }
            }
        }
        // The one divergence: a product of exactly i32::MIN through a
        // negative constant traps in the chain (the SUBO negation
        // overflows on +2^31) though the value is representable.
        assert_eq!(mul_checked_i32(65_536, -32_768), Some(i32::MIN));
        assert_eq!(mul_checked_chain(65_536, -32_768), None);
        assert_eq!(mul_checked_chain(-65_536, -32_768), None); // +2^31 overflows
        assert_eq!(mul_checked_chain(-65_535, -32_768), Some(2_147_450_880));
    }

    #[test]
    fn restoring_divider_matches_native() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                if y == 0 {
                    assert_eq!(div_restoring(x, y), None);
                } else {
                    assert_eq!(div_restoring(x, y), Some((x / y, x % y)), "{x} / {y}");
                }
            }
        }
    }

    #[test]
    fn signed_division_truncates_and_wraps() {
        for &x in &SAMPLES_U {
            for &y in &SAMPLES_U {
                let (xs, ys) = (x as i32, y as i32);
                if ys == 0 {
                    assert_eq!(sdiv_trunc(xs, ys), None);
                } else {
                    let q = (i64::from(xs) / i64::from(ys)) as i32;
                    let r = (i64::from(xs) % i64::from(ys)) as i32;
                    assert_eq!(sdiv_trunc(xs, ys), Some((q, r)), "{xs} / {ys}");
                }
            }
        }
        assert_eq!(sdiv_trunc(i32::MIN, -1), Some((i32::MIN, 0)));
        assert_eq!(sdiv_trunc(i32::MIN, 1), Some((i32::MIN, 0)));
        assert_eq!(sdiv_trunc(-7, 3), Some((-2, -1)));
        assert_eq!(sdiv_trunc(7, -3), Some((-2, 1)));
    }
}
