//! From-scratch recomputation of the §7 "derived method" magic numbers.
//!
//! `divconst` derives its constants with native `u128` division and
//! validates them with the paper's reach condition. This module rebuilds
//! the same parameters a second time from first principles — long
//! division done bit by bit, and a correctness bound proved exactly
//! rather than inherited — so a slip in the production derivation cannot
//! hide behind an identical slip in its checker.
//!
//! ## The exact bound
//!
//! The derived method computes `q'(x) = (a·x + b) / z` with `z = 2^s`,
//! `a = ⌊z/y⌋`, `r = z mod y`, `b = a + r − 1` (evaluated as
//! `(x+1)·a + (r−1)` in the generated code). Writing `x = q·y + t` with
//! `0 ≤ t < y`:
//!
//! ```text
//! a·x + b = q·z + a·(t+1) + (r−1) − q·r
//! ```
//!
//! so `q'(x) = q + ⌊(a·(t+1) + (r−1) − q·r) / z⌋`. The bracketed term is
//! maximised at `t = y−1`, where `a·y + r = z` makes it `z − 1 − q·r < z`,
//! so `q'` never overshoots. It is minimised at `t = 0`, where it is
//! `a + r − 1 − q·r = b − q·r`, which stays non-negative exactly while
//! `q ≤ K = ⌊b/r⌋` (for the odd divisors the method targets, `r ≥ 1`).
//! Hence the method is correct for every dividend `x < N` **iff** every
//! quotient reachable below `N` is at most `K`, i.e. iff
//! `(K+1)·y ≥ N` — the same quantity `divconst` calls the *reach*, but
//! arrived at independently (this is the bound Lemire et al. and Li
//! state for the round-up variant).

/// Bit-by-bit long division of a 128-bit dividend: `(quotient,
/// remainder)`. Shift-and-subtract only — the oracle's magic constants
/// never touch a native divide.
#[must_use]
pub fn divmod_u128(n: u128, d: u128) -> Option<(u128, u128)> {
    if d == 0 {
        return None;
    }
    let mut rem = 0u128;
    let mut quot = 0u128;
    let bits = 128 - n.leading_zeros();
    for i in (0..bits).rev() {
        rem = (rem << 1) | ((n >> i) & 1);
        if rem >= d {
            rem -= d;
            quot |= 1 << i;
        }
    }
    Some((quot, rem))
}

/// Shift-and-add 128-bit product (the schoolbook loop widened).
#[must_use]
pub fn mul_u128_bit_serial(x: u128, y: u128) -> u128 {
    let mut acc = 0u128;
    let mut addend = x;
    let mut rest = y;
    while rest != 0 {
        if rest & 1 == 1 {
            acc = acc.wrapping_add(addend);
        }
        addend <<= 1;
        rest >>= 1;
    }
    acc
}

/// An independently recomputed set of derived-method parameters for an
/// odd divisor `y ≥ 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefMagic {
    y: u32,
    s: u32,
    a: u64,
    r: u64,
}

impl RefMagic {
    /// Derives parameters for `z = 2^s`, without checking validity.
    /// Returns `None` unless `y` is odd and ≥ 3 and `s ≤ 63`.
    #[must_use]
    pub fn derive(y: u32, s: u32) -> Option<RefMagic> {
        if y < 3 || y & 1 == 0 || s > 63 {
            return None;
        }
        let (a, r) = divmod_u128(1u128 << s, u128::from(y))?;
        Some(RefMagic {
            y,
            s,
            a: a as u64,
            r: r as u64,
        })
    }

    /// The smallest `s` whose parameters are exact for all dividends
    /// below `2^32` (the Figure 6 `z` column, re-derived).
    #[must_use]
    pub fn minimal(y: u32) -> Option<RefMagic> {
        RefMagic::minimal_for(y, 1u128 << 32)
    }

    /// The smallest `s` exact for all dividends below `need`.
    #[must_use]
    pub fn minimal_for(y: u32, need: u128) -> Option<RefMagic> {
        (32..=63).find_map(|s| RefMagic::derive(y, s).filter(|m| m.is_valid_for(need)))
    }

    /// The divisor.
    #[must_use]
    pub fn y(&self) -> u32 {
        self.y
    }

    /// The exponent: `z = 2^s`.
    #[must_use]
    pub fn s(&self) -> u32 {
        self.s
    }

    /// The multiplier `a = ⌊2^s / y⌋`.
    #[must_use]
    pub fn a(&self) -> u64 {
        self.a
    }

    /// The residue `r = 2^s mod y` (≥ 1 for odd `y ≥ 3`).
    #[must_use]
    pub fn r(&self) -> u64 {
        self.r
    }

    /// The additive constant `b = a + r − 1`.
    #[must_use]
    pub fn b(&self) -> u64 {
        self.a + self.r - 1
    }

    /// Whether `q'(x) = (a·x + b)/2^s` equals `⌊x/y⌋` for *every*
    /// `x < need` — the exact `(K+1)·y ≥ need` bound with `K = ⌊b/r⌋`
    /// (see the module docs for the proof).
    #[must_use]
    pub fn is_valid_for(&self, need: u128) -> bool {
        let Some((k, _)) = divmod_u128(u128::from(self.b()), u128::from(self.r)) else {
            return false; // r = 0 cannot happen for odd y ≥ 3
        };
        mul_u128_bit_serial(k + 1, u128::from(self.y)) >= need
    }

    /// Evaluates `q'(x) = (a·x + b) / 2^s` directly.
    #[must_use]
    pub fn evaluate(&self, x: u32) -> u32 {
        let num = mul_u128_bit_serial(u128::from(x), u128::from(self.a)) + u128::from(self.b());
        (num >> self.s) as u32
    }

    /// Evaluates the generated code's algebraic form,
    /// `((x+1)·a + (r−1)) / 2^s` — identical to [`RefMagic::evaluate`]
    /// by construction, and checked to be so by the oracle tests.
    #[must_use]
    pub fn evaluate_via_xplus1(&self, x: u32) -> u32 {
        let num =
            mul_u128_bit_serial(u128::from(x) + 1, u128::from(self.a)) + u128::from(self.r) - 1;
        (num >> self.s) as u32
    }

    /// A deliberately wrong scratch copy with the multiplier off by one,
    /// used to prove the differential harness catches exactly this class
    /// of bug (see `Inject::MagicOffByOne`).
    #[must_use]
    pub fn with_multiplier_off_by_one(&self) -> RefMagic {
        RefMagic {
            a: self.a + 1,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn long_division_matches_native() {
        let samples: [u128; 8] = [
            0,
            1,
            5,
            1 << 32,
            (1 << 33) + 7,
            u128::from(u64::MAX),
            1 << 63,
            12345,
        ];
        for &n in &samples {
            for d in [1u128, 2, 3, 7, 11, 1 << 31, u128::from(u32::MAX)] {
                assert_eq!(divmod_u128(n, d), Some((n / d, n % d)), "{n} / {d}");
            }
            assert_eq!(divmod_u128(n, 0), None);
        }
    }

    #[test]
    fn figure6_rows_rederive() {
        // Spot rows of the paper's Figure 6, recomputed from nothing.
        let m = RefMagic::minimal(3).unwrap();
        assert_eq!((m.s(), m.a(), m.r()), (32, 0x5555_5555, 1));
        let m = RefMagic::minimal(5).unwrap();
        assert_eq!((m.s(), m.a(), m.r()), (32, 0x3333_3333, 1));
        let m = RefMagic::minimal(7).unwrap();
        assert_eq!(m.s(), 33);
        let m = RefMagic::minimal(11).unwrap();
        assert_eq!((m.s(), m.a()), (36, 0x1_745D_1745));
    }

    #[test]
    fn minimal_agrees_with_production_derivation() {
        // The differential point: two independent derivations, same
        // constants. `step_by(2)` keeps the sweep odd-only.
        for y in (3u32..400).step_by(2) {
            let ours = RefMagic::minimal(y).unwrap();
            let theirs = divconst::Magic::minimal(y).unwrap();
            assert_eq!(ours.s(), theirs.s(), "s for y = {y}");
            assert_eq!(ours.a(), theirs.a(), "a for y = {y}");
            assert_eq!(ours.r(), theirs.r(), "r for y = {y}");
        }
    }

    #[test]
    fn evaluate_is_exact_on_boundaries() {
        for y in [3u32, 7, 11, 641, 0x7FFF_FFFF] {
            let m = RefMagic::minimal(y).unwrap();
            for x in [0u32, 1, y - 1, y, y + 1, u32::MAX - 1, u32::MAX] {
                let expect = reference::udiv(x, y).unwrap();
                assert_eq!(m.evaluate(x), expect, "{x} / {y}");
                assert_eq!(m.evaluate_via_xplus1(x), expect, "{x} / {y} via x+1");
            }
        }
    }

    #[test]
    fn validity_bound_is_sharp() {
        // For y = 7 the minimal s is 33; s = 32 must fail the bound and
        // actually produce a wrong quotient somewhere below 2^32.
        let short = RefMagic::derive(7, 32).unwrap();
        assert!(!short.is_valid_for(1u128 << 32));
        let wrong = (0..=u32::MAX / 7)
            .map(|k| k * 7)
            .rev()
            .take(10_000)
            .find(|&x| short.evaluate(x) != x / 7);
        assert!(wrong.is_some(), "an invalid s must actually fail");
    }

    #[test]
    fn off_by_one_multiplier_fails() {
        let m = RefMagic::minimal(3).unwrap().with_multiplier_off_by_one();
        assert!((0..=u32::MAX)
            .rev()
            .take(100)
            .any(|x| m.evaluate(x) != x / 3));
    }
}
