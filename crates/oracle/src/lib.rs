//! # oracle — differential verification for the muldiv stack
//!
//! Everything in this workspace that computes a product or a quotient is
//! checked here against implementations that share **no code** with the
//! production pipeline:
//!
//! * [`mod@reference`] — a bit-serial schoolbook multiplier and a 32-step
//!   restoring divider (plus signed wrappers with the same
//!   truncate-toward-zero, `i32::MIN / -1`-wraps semantics the millicode
//!   implements). No native `*`, `/` or `%` touches an operand.
//! * [`magic`] — the §7 derived-method constants recomputed from first
//!   principles with bit-by-bit long division, including an exact
//!   correctness bound proved in the module docs rather than inherited
//!   from `divconst`.
//! * [`fuzz`] — a deterministic, seed-reproducible structured case
//!   generator spanning every strategy tier (constant multiply chains,
//!   magic divides, millicode dispatch, signed/unsigned, trap and
//!   non-trap), with a greedy shrinker that reduces a failing case to a
//!   minimal replayable JSON line.
//! * [`budget`] — the paper's cycle envelopes (Tables 1–3 and the
//!   per-section counts) as a checked-in TOML table, asserted per case.
//! * [`diff`] — the [`Verifier`] that runs each case through the
//!   interpreter, the prepared fast path, and a batched session, compares
//!   all three against the oracle, checks cycle budgets, and shrinks the
//!   first divergence.
//!
//! The `hppa verify` subcommand in `crates/tools` drives this crate; see
//! `docs/VERIFICATION.md` for the replay workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod diff;
pub mod fuzz;
pub mod magic;
pub mod reference;

pub use budget::{BudgetParseError, BudgetViolation, Budgets};
pub use diff::{Divergence, Inject, Verifier, VerifyReport};
pub use fuzz::{shrink, Case, CaseGen};
pub use magic::RefMagic;
