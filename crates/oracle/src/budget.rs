//! Cycle-budget conformance: the paper's table envelopes as data.
//!
//! The budgets live in a checked-in TOML file (`crates/oracle/budgets.toml`,
//! embedded at build time and overridable from the CLI). Each `[section]`
//! is an operation family and each `key = N` entry caps the simulated
//! cycles any single case of that strategy may spend. The verifier maps
//! every fuzz case to a `section.key` and flags any run over its cap.
//!
//! The parser handles exactly the subset the file uses — `[section]`
//! headers, `key = <integer>` pairs, `#` comments, blank lines — so the
//! crate stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed budget table: `section.key → max cycles`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budgets {
    caps: BTreeMap<String, u64>,
}

/// A malformed line in a budget file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for BudgetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "budget file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BudgetParseError {}

/// One case that ran over its cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetViolation {
    /// The `section.key` that was exceeded.
    pub key: String,
    /// Cycles the case actually spent.
    pub cycles: u64,
    /// The configured cap.
    pub budget: u64,
    /// Display form of the offending case.
    pub case: String,
}

impl fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} took {} cycles, budget {}",
            self.key, self.case, self.cycles, self.budget
        )
    }
}

impl Budgets {
    /// The checked-in budget table (see `crates/oracle/budgets.toml`).
    ///
    /// # Panics
    ///
    /// Never — the embedded file is validated by the crate's tests.
    #[must_use]
    pub fn embedded() -> Budgets {
        Budgets::parse(include_str!("../budgets.toml")).expect("embedded budgets.toml parses")
    }

    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// [`BudgetParseError`] on the first malformed line.
    pub fn parse(text: &str) -> Result<Budgets, BudgetParseError> {
        let mut caps = BTreeMap::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            let err = |message: String| BudgetParseError {
                line: idx + 1,
                message,
            };
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(err(format!("unterminated section header `{raw}`")));
                };
                section = name.trim().to_string();
                if section.is_empty() {
                    return Err(err("empty section name".to_string()));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected `key = value`, got `{raw}`")));
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(err("empty key".to_string()));
            }
            let cycles: u64 = value
                .trim()
                .parse()
                .map_err(|_| err(format!("`{}` is not an integer cycle count", value.trim())))?;
            let full = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            if caps.insert(full.clone(), cycles).is_some() {
                return Err(err(format!("duplicate budget `{full}`")));
            }
        }
        Ok(Budgets { caps })
    }

    /// The cap for a strategy key, if one is configured.
    #[must_use]
    pub fn cap(&self, key: &str) -> Option<u64> {
        self.caps.get(key).copied()
    }

    /// All configured `(key, cap)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.caps.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of configured caps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether no caps are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Checks one measurement; `None` when within budget (or when the
    /// key has no cap, which the verifier reports separately).
    #[must_use]
    pub fn check(&self, key: &str, cycles: u64, case: &str) -> Option<BudgetViolation> {
        let budget = self.cap(key)?;
        if cycles > budget {
            Some(BudgetViolation {
                key: key.to_string(),
                cycles,
                budget,
                case: case.to_string(),
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let b = Budgets::parse(
            "# header comment\n\
             top = 5\n\
             [mul_const]\n\
             wrapping = 14   # trailing comment\n\
             checked = 30\n\
             \n\
             [div_var]\n\
             general_unsigned = 88\n",
        )
        .unwrap();
        assert_eq!(b.cap("top"), Some(5));
        assert_eq!(b.cap("mul_const.wrapping"), Some(14));
        assert_eq!(b.cap("mul_const.checked"), Some(30));
        assert_eq!(b.cap("div_var.general_unsigned"), Some(88));
        assert_eq!(b.cap("missing"), None);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(Budgets::parse("[oops\n").unwrap_err().line, 1);
        assert_eq!(Budgets::parse("a = 1\nnot a pair\n").unwrap_err().line, 2);
        assert_eq!(Budgets::parse("k = soon\n").unwrap_err().line, 1);
        assert_eq!(Budgets::parse("[s]\nk = 1\nk = 2\n").unwrap_err().line, 3);
        assert_eq!(Budgets::parse("[]\n").unwrap_err().line, 1);
    }

    #[test]
    fn check_flags_only_over_budget() {
        let b = Budgets::parse("[m]\nk = 10\n").unwrap();
        assert_eq!(b.check("m.k", 10, "case"), None);
        let v = b.check("m.k", 11, "case").unwrap();
        assert_eq!((v.cycles, v.budget), (11, 10));
        assert_eq!(v.to_string(), "m.k: case took 11 cycles, budget 10");
        assert_eq!(b.check("unknown", 999, "case"), None);
    }

    #[test]
    fn embedded_budgets_parse_and_cover_every_family() {
        let b = Budgets::embedded();
        for key in [
            "mul_const.wrapping",
            "mul_const.checked",
            "div_const.unsigned",
            "div_const.signed",
            "rem_const.unsigned",
            "rem_const.signed",
            "mul_var.switched",
            "div_var.general_unsigned",
            "div_var.general_signed",
            "div_var.dispatch_small",
            "div_var.dispatch_large",
        ] {
            assert!(b.cap(key).is_some(), "missing embedded budget for {key}");
        }
    }
}
