//! End-to-end checks of the differential verifier itself.

use oracle::{Budgets, Case, Inject, Verifier};

/// Constant compiles cost real time (a chain search each); debug builds
/// get a smaller but still tier-spanning slice.
const CASES: u64 = if cfg!(debug_assertions) { 100 } else { 2_000 };

#[test]
fn fuzz_run_is_clean_and_deterministic() {
    let run = |seed: u64| {
        let mut v = Verifier::new(Budgets::embedded(), None).unwrap();
        v.run_fuzz(seed, CASES);
        v.finish()
    };
    let a = run(0xA5);
    assert!(
        a.passed(),
        "divergences: {:?}\nbudget violations: {:?}",
        a.divergences,
        a.budget_violations
    );
    assert_eq!(a.cases_run, CASES);
    let b = run(0xA5);
    assert_eq!(a.max_cycles, b.max_cycles, "same seed, same measurements");
    assert_eq!(a.skipped_unsupported, b.skipped_unsupported);
}

#[test]
fn sweep_smoke_is_clean() {
    let mut v = Verifier::new(Budgets::embedded(), None).unwrap();
    v.run_sweep(if cfg!(debug_assertions) { 9_973 } else { 997 });
    let report = v.finish();
    assert!(
        report.passed(),
        "divergences: {:?}\nbudget violations: {:?}",
        report.divergences,
        report.budget_violations
    );
    assert!(report.cases_run > 0);
}

#[test]
fn injected_magic_fault_is_caught_and_shrunk() {
    let mut v = Verifier::new(Budgets::embedded(), Some(Inject::MagicOffByOne)).unwrap();
    v.run_fuzz(0xA5, CASES);
    let report = v.finish();
    assert!(
        report.divergence_count > 0,
        "an off-by-one magic multiplier must not survive the fuzzer"
    );
    let shrunk = report.shrunk.expect("first divergence shrinks");
    // The shrinker must land on a constant divide (the injected family)
    // with small parameters, still failing.
    match shrunk {
        Case::UdivConst { y, x } => {
            assert!(
                y >= 3 && y & 1 == 1,
                "injection targets odd divisors, got y={y}"
            );
            assert!(y <= 25, "shrunk divisor should be small, got y={y}");
            assert!(x <= 1_000, "shrunk dividend should be small, got x={x}");
        }
        other => panic!("shrunk case should be a constant unsigned divide, got {other:?}"),
    }
}

#[test]
fn replayed_case_reports_through_check_case() {
    // A single replayed case runs every path; a clean one stays clean.
    let mut v = Verifier::new(Budgets::embedded(), None).unwrap();
    let case = Case::parse(r#"{"kind":"udiv_const","y":7,"x":4294967295}"#).unwrap();
    v.check_case(&case);
    let report = v.finish();
    assert!(report.passed(), "divergences: {:?}", report.divergences);
    assert_eq!(report.cases_run, 1);
}

#[test]
fn budget_violations_surface_with_tight_budgets() {
    let tight = Budgets::parse("[div_var]\ngeneral_unsigned = 1\n").unwrap();
    let mut v = Verifier::new(tight, None).unwrap();
    let case = Case::parse(r#"{"kind":"div_var","x":1000,"y":7}"#).unwrap();
    v.check_case(&case);
    let report = v.finish();
    assert_eq!(report.divergence_count, 0);
    assert_eq!(report.budget_violations.len(), 1);
    let v0 = &report.budget_violations[0];
    assert_eq!(v0.key, "div_var.general_unsigned");
    assert!(v0.cycles > 1);
}
