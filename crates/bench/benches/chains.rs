//! Criterion benches for the §5 chain machinery (E1, E4, E14): rule-based
//! generation throughput, exhaustive-search latency, and the Figure 1
//! frontier sweep at test scale.

use addchain::{find_chain, optimal_chain, Frontier, FrontierConfig, SearchLimits};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_rule_based(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_based_chain");
    group.bench_function("n=10", |b| b.iter(|| find_chain(black_box(10))));
    group.bench_function("n=1980", |b| b.iter(|| find_chain(black_box(1980))));
    group.bench_function("n=0x55555555", |b| {
        b.iter(|| find_chain(black_box(0x5555_5555)))
    });
    group.bench_function("sweep_1..1024", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for n in 1..1024i64 {
                total += find_chain(black_box(n)).len();
            }
            total
        })
    });
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let limits = SearchLimits {
        max_len: 5,
        value_cap: 1 << 13,
        max_shift: 13,
        node_budget: 50_000_000,
    };
    let mut group = c.benchmark_group("exhaustive_chain");
    group.sample_size(20);
    group.bench_function("n=59 (needs temp)", |b| {
        b.iter(|| optimal_chain(black_box(59), &limits))
    });
    group.bench_function("n=466 (first l=5)", |b| {
        b.iter(|| optimal_chain(black_box(466), &limits))
    });
    group.finish();
}

fn bench_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_frontier");
    group.sample_size(10);
    group.bench_function("depth4_n600", |b| {
        b.iter(|| {
            Frontier::compute(&FrontierConfig {
                max_len: 4,
                target_max: 600,
                value_cap: 1 << 14,
                max_shift: 14,
                threads: 1,
            })
        })
    });
    group.finish();

    // Print the regenerated rows once, so `cargo bench` output carries the
    // figure itself.
    let f = Frontier::compute(&FrontierConfig {
        max_len: 4,
        target_max: 600,
        value_cap: 1 << 14,
        max_shift: 14,
        threads: 2,
    });
    for r in 1..=4 {
        println!(
            "Figure 1 row {r}: {:?}",
            &f.row(r)[..f.row(r).len().min(12)]
        );
    }
}

criterion_group!(benches, bench_rule_based, bench_exhaustive, bench_frontier);
criterion_main!(benches);
